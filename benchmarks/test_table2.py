"""Table II — instruction and device counts of endurance-aware compilation.

The reproduced claims: endurance-aware MIG rewriting (Algorithm 2) cuts
the naive instruction count by a large factor (paper: −36.48% #I,
−24% #R on average), and adding endurance-aware node selection
(Algorithm 3) costs only slightly more instructions and devices.
"""

from repro.analysis.report import render_table2
from repro.analysis.tables import average_row
from repro.opt import rewrite_dac16, rewrite_endurance_aware
from repro.synth.registry import build_benchmark

from .conftest import PRESET, suite_plain, write_artifact


def test_table2_regeneration(benchmark):
    evaluations = benchmark.pedantic(suite_plain, rounds=1, iterations=1)
    text = render_table2(evaluations)
    write_artifact("table2.txt", text)
    print("\n" + text)

    naive = average_row(evaluations, "naive")
    ea_rw = average_row(evaluations, "ea-rewrite")
    ea_full = average_row(evaluations, "ea-full")

    # Rewriting shrinks programs substantially vs naive translation.
    assert ea_rw["instructions"] < 0.8 * naive["instructions"]
    # Endurance-aware selection adds only a small overhead on top
    # (paper: +0.5% #I, +8% #R).
    assert ea_full["instructions"] < 1.15 * ea_rw["instructions"]
    # The full stack still beats naive on both metrics.
    assert ea_full["instructions"] < naive["instructions"]


def test_rewriting_cost_algorithm1_vs_2(benchmark):
    """Algorithm 2 runs the same order of work as Algorithm 1 (it is a
    pass-sequence swap, not an asymptotic change)."""
    mig = build_benchmark("square", preset=PRESET)

    def run_both():
        a1 = rewrite_dac16(mig, effort=2)
        a2 = rewrite_endurance_aware(mig, effort=2)
        return a1, a2

    a1, a2 = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # both scripts reduce the elaborated graph
    assert a1.num_live_gates() < mig.num_live_gates()
    assert a2.num_live_gates() < mig.num_live_gates()


def test_node_count_drives_instruction_count(benchmark):
    """#I correlates with live gate count across the suite (the paper's
    'sequential nature of PLiM' argument)."""
    evaluations = benchmark.pedantic(suite_plain, rounds=1, iterations=1)
    pairs = [
        (ev.gates, ev.results["naive"].num_instructions)
        for ev in evaluations
    ]
    # Spearman-lite: larger graphs never need fewer instructions than
    # graphs a tenth their size.
    pairs.sort()
    small = pairs[: len(pairs) // 3]
    large = pairs[-len(pairs) // 3 :]
    assert sum(i for _, i in large) > sum(i for _, i in small)
