"""Table III — full endurance management under maximum write constraints.

Sweeps ``W_max`` over the paper's {10, 20, 50, 100} and checks the
trade-off structure the paper reports: tighter caps give near-uniform
write traffic (tiny stdev) at the price of more devices and instructions;
looser caps converge to the uncapped full-management flow.
"""

from repro.analysis.report import render_table3
from repro.analysis.tables import TABLE3_CAPS, average_row
from repro.core.manager import compile_pipeline, full_management
from repro.synth.registry import build_benchmark

from .conftest import PRESET, suite_with_caps, write_artifact


def test_table3_regeneration(benchmark):
    evaluations = benchmark.pedantic(suite_with_caps, rounds=1, iterations=1)
    text = render_table3(evaluations)
    write_artifact("table3.txt", text)
    print("\n" + text)

    rows = {cap: average_row(evaluations, f"wmax{cap}") for cap in TABLE3_CAPS}

    # Monotone trade-off on the AVG row, as in the paper:
    #   tighter cap -> more devices, worse area; looser cap -> worse stdev.
    # At tiny widths the stdev ordering is marginal (caps barely bind on
    # circuits this small), so the smoke preset gets a small tolerance.
    slack = 1.05 if PRESET == "tiny" else 1.0
    assert rows[10]["rrams"] >= rows[20]["rrams"] >= rows[50]["rrams"] \
        >= rows[100]["rrams"]
    assert rows[10]["stdev"] <= slack * rows[20]["stdev"]
    assert rows[20]["stdev"] <= slack * rows[50]["stdev"]
    assert rows[50]["stdev"] <= slack * rows[100]["stdev"]
    assert rows[10]["instructions"] >= rows[100]["instructions"]

    # Hard bound: no device ever exceeds its cap.
    for cap in TABLE3_CAPS:
        for ev in evaluations:
            assert ev.stats(f"wmax{cap}").max_writes <= cap


def test_cap_bounds_single_benchmark(benchmark):
    """One compile under the tightest paper cap, timed."""
    mig = build_benchmark("sqrt", preset=PRESET)

    def run():
        return compile_pipeline(mig, full_management(10))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.stats.max_writes <= 10


def test_loose_cap_matches_uncapped(benchmark):
    """A cap far above the natural maximum changes nothing — the dashes
    of the paper's Table III."""
    mig = build_benchmark("dec", preset=PRESET)

    def run():
        return (
            compile_pipeline(mig, full_management(10**6)),
            compile_pipeline(
                mig, full_management(10**6).with_cap(None)
            ),
        )

    capped, uncapped = benchmark.pedantic(run, rounds=1, iterations=1)
    assert capped.num_instructions == uncapped.num_instructions
    assert capped.num_rrams == uncapped.num_rrams
    assert capped.stats.stdev == uncapped.stats.stdev
