"""Simulation-backend micro-benchmarks at 2^18 patterns.

Runs the exhaustive hot paths of the harness — full truth tables and an
exhaustive equivalence check — on the ``multiplier`` benchmark sized to
18 primary inputs (262 144 patterns), under every simulation kernel,
asserting bit-identical results and recording the measured wall-clock
and speedups into ``BENCH_suite.json`` / ``BENCH_kernel.json`` (see
``conftest.BENCH_REPORT``).

Two lanes:

* ``test_numpy_backend_speedup_at_2e18_patterns`` — the historic
  bigint-vs-numpy comparison with its conservative speedup floor.
* ``test_kernel_matrix_at_2e18_patterns`` — the backend × thread-count
  matrix over the per-gate and level-batched numpy kernels, feeding
  ``BENCH_kernel.json``; the ≥2x threaded-batch-vs-numpy assertion only
  arms on runners with at least 4 cores (threading cannot win on fewer).

The speedup floors asserted here are deliberately conservative (shared
CI runners jitter); the JSON artefacts carry the exact numbers so the
trajectory is tracked per run.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.mig import kernel
from repro.mig.simulate import equivalent, truth_tables
from repro.synth.arithmetic import build_multiplier

from .conftest import BENCH_REPORT

#: 2 * 9 input bits -> 2^18 exhaustive patterns.
MULT_WIDTH = 9

#: Conservative floor for the numpy speedup assertions; the measured
#: values land in BENCH_suite.json.
MIN_SPEEDUP = 1.5


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.skipif(
    not kernel.numpy_available(), reason="numpy backend not installed"
)
def test_numpy_backend_speedup_at_2e18_patterns():
    mig = build_multiplier(MULT_WIDTH)
    assert mig.num_pis == 2 * MULT_WIDTH
    other = mig.clone()
    try:
        bigint = kernel.set_backend("bigint")
        tables_big = truth_tables(mig)
        tt_big = _best_of(lambda: truth_tables(mig))
        eq_big = _best_of(lambda: equivalent(mig, other))

        numpy_k = kernel.set_backend("numpy")
        tables_np = truth_tables(mig)
        tt_np = _best_of(lambda: truth_tables(mig))
        eq_np = _best_of(lambda: equivalent(mig, other))
    finally:
        kernel.set_backend(None)

    assert tables_np == tables_big  # bit-identical across backends
    assert bigint.name == "bigint" and numpy_k.name == "numpy"

    BENCH_REPORT["sim_backend"] = {
        "benchmark": f"multiplier(width={MULT_WIDTH})",
        "patterns": 1 << mig.num_pis,
        "gates": mig.num_live_gates(),
        "truth_tables_seconds": {"bigint": tt_big, "numpy": tt_np},
        "truth_tables_speedup": tt_big / tt_np,
        "equivalence_seconds": {"bigint": eq_big, "numpy": eq_np},
        "equivalence_speedup": eq_big / eq_np,
    }
    assert tt_big / tt_np >= MIN_SPEEDUP
    assert eq_big / eq_np >= MIN_SPEEDUP


#: Threaded batch-vs-numpy floor; only asserted on >= 4 cores.
MIN_BATCH_SPEEDUP = 2.0


@pytest.mark.skipif(
    not kernel.numpy_available(), reason="numpy backend not installed"
)
def test_kernel_matrix_at_2e18_patterns():
    """Backend x thread-count matrix feeding ``BENCH_kernel.json``."""
    mig = build_multiplier(MULT_WIDTH)
    other = mig.clone()
    cores = os.cpu_count() or 1
    thread_counts = sorted({1, min(2, cores), min(4, cores)})

    reference = truth_tables(mig, kernel=kernel._BIGINT)
    matrix = {}
    try:
        for name in ("numpy", "numpy-batch"):
            kernel.set_backend(name)
            for threads in thread_counts if name == "numpy-batch" else [1]:
                with kernel.sim_threads_scope(threads):
                    tables = truth_tables(mig)
                    assert tables == reference, (name, threads)
                    assert equivalent(mig, other), (name, threads)
                    matrix[f"{name}@{threads}"] = {
                        "backend": name,
                        "threads": threads,
                        "truth_tables_seconds": _best_of(
                            lambda: truth_tables(mig)
                        ),
                        "equivalence_seconds": _best_of(
                            lambda: equivalent(mig, other)
                        ),
                    }
    finally:
        kernel.set_backend(None)

    baseline = matrix["numpy@1"]["truth_tables_seconds"]
    for entry in matrix.values():
        entry["truth_tables_speedup_vs_numpy"] = (
            baseline / entry["truth_tables_seconds"]
        )
    best_batch = min(
        entry["truth_tables_seconds"]
        for key, entry in matrix.items()
        if entry["backend"] == "numpy-batch"
    )
    BENCH_REPORT["kernel"] = {
        "benchmark": f"multiplier(width={MULT_WIDTH})",
        "patterns": 1 << mig.num_pis,
        "gates": mig.num_live_gates(),
        "cpu_count": cores,
        "matrix": matrix,
        "batch_best_speedup_vs_numpy": baseline / best_batch,
    }
    if cores >= 4:
        assert baseline / best_batch >= MIN_BATCH_SPEEDUP
