"""Scaling study (extension) — endurance vs circuit size.

Not in the paper, but a direct consequence of its argument.  Two
findings, both pinned by the cap:

* on multiplier-like circuits the *naive* compiler's peak per-device
  write count grows super-linearly with size, so array lifetime shrinks
  as designs grow;
* on adder-like circuits it is the *uncapped managed* flow whose hot
  cell grows with width (the level-ordered selection starves the free
  pool, funnelling helper traffic through one device) — evidence that
  the maximum write strategy matters *more* at scale, not less.

With ``W_max`` set, peak writes — and therefore lifetime — are
size-independent in both families.
"""

from repro.analysis.sweeps import by_config, render_sweep, scaling_exponent, sweep_widths
from repro.synth.arithmetic import build_adder, build_multiplier

from .conftest import write_artifact


def test_adder_width_scaling(benchmark):
    widths = [8, 16, 32, 64]

    def run():
        return sweep_widths(lambda w: build_adder(width=w), widths)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_sweep(points)
    write_artifact("scaling_adder.txt", text)
    print("\n" + text)

    managed = by_config(points, "ea-full")
    capped = by_config(points, "wmax20")

    # the uncapped managed flow's hot cell grows with adder width
    # (starved free pool under level-ordered selection) ...
    managed_max = [p.max_writes for p in managed]
    assert managed_max == sorted(managed_max)
    assert managed_max[-1] > 2 * managed_max[0]
    # ... while the capped flow pins peak writes, so lifetime never
    # drops below the cap-implied floor at any width.
    from repro.plim.memory import TYPICAL_ENDURANCE_LOW

    assert all(p.max_writes <= 20 for p in capped)
    assert min(p.lifetime for p in capped) >= TYPICAL_ENDURANCE_LOW // 20

    # instruction overhead per gate stays bounded for the managed flow
    # (compilation does not asymptotically degrade).
    assert max(p.writes_per_gate for p in managed) < 4.0


def test_multiplier_width_scaling(benchmark):
    widths = [4, 8, 12]

    def run():
        return sweep_widths(lambda w: build_multiplier(width=w), widths)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_sweep(points)
    write_artifact("scaling_multiplier.txt", text)
    print("\n" + text)

    naive = by_config(points, "naive")
    exponent = scaling_exponent(naive, "max_writes")
    assert exponent > 0.5  # naive hot cell grows clearly with size
    capped = by_config(points, "wmax20")
    assert all(p.max_writes <= 20 for p in capped)
