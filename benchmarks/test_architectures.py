"""Architecture sweep — one benchmark across PLiM machine models.

The machine the compiler targets is a pluggable :mod:`repro.arch` value;
this module regenerates the architecture-sweep artefact
(``ARCH_sweep.txt``): one registry benchmark compiled for the DAC'16
endurance-oblivious crossbar, the paper's wear-tracked crossbar (the
default machine the rest of the harness reproduces), and the
word-addressed ``blocked`` machine — through the shared session, so
the default-machine rows are pure cache hits against the table suite.
"""

from repro.analysis.report import render_architecture_sweep
from repro.analysis.scenarios import architecture_sweep
from repro.arch import DEFAULT_ARCHITECTURE, get_architecture

from .conftest import PRESET, SESSION, write_artifact

#: The sweep source: small enough to keep the nightly lane fast, rich
#: enough (multi-output decoder) for allocation behaviour to differ.
SWEEP_BENCHMARK = "dec"


def test_architecture_sweep_artifact(benchmark):
    def run():
        return architecture_sweep(
            SWEEP_BENCHMARK,
            configs=("naive", "ea-full"),
            session=SESSION,
            verify=True,
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_architecture_sweep(
        points,
        title=f"ARCHITECTURE SWEEP - {SWEEP_BENCHMARK} ({PRESET} preset)",
    )
    write_artifact("ARCH_sweep.txt", text)
    print("\n" + text)

    by_pair = {(p.arch, p.config): p for p in points}

    # The endurance-oblivious machine cannot run min-write configs…
    assert not by_pair[("dac16", "ea-full")].supported
    # …but reproduces the naive program of the default machine exactly.
    dac16 = by_pair[("dac16", "naive")].result.program
    default = by_pair[(DEFAULT_ARCHITECTURE, "naive")].result.program
    assert dac16.instructions == default.instructions
    assert dac16.num_cells == default.num_cells

    # The word-addressed machine provisions whole lines.
    block = get_architecture("blocked").geometry.block_size
    for config in ("naive", "ea-full"):
        point = by_pair[("blocked", config)]
        assert point.supported
        assert point.result.program.num_cells % block == 0


def test_default_architecture_rows_match_table_suite():
    """The sweep's default-machine rows equal the Table I suite results —
    the architecture layer shares (not forks) the session cache."""
    from .conftest import suite_plain

    evaluation = next(
        e for e in suite_plain() if e.name == SWEEP_BENCHMARK
    )
    points = architecture_sweep(
        SWEEP_BENCHMARK,
        archs=(DEFAULT_ARCHITECTURE,),
        configs=("naive", "ea-full"),
        session=SESSION,
    )
    for point in points:
        suite_result = evaluation.results[point.config]
        assert point.result.program.instructions == (
            suite_result.program.instructions
        )
        assert point.result.program.write_counts() == (
            suite_result.program.write_counts()
        )
