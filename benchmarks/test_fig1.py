"""Fig. 1 — repeated-destination write concentration.

The paper's Fig. 1 MIG makes the cost-greedy compiler overwrite one
device with the results of A, B, and C in turn.  We regenerate the exact
figure and a parametric chain, showing (a) the pathology scales linearly
with chain length under the naive flow, (b) the minimum write strategy
alone cannot fix it (Section III-B's motivation for the cap), and (c) the
maximum write strategy bounds it.
"""

from repro.analysis.scenarios import fig1_chain, fig1_mig
from repro.core.manager import PRESETS, compile_pipeline, full_management

from .conftest import write_artifact


def test_fig1_exact_scenario(benchmark):
    mig = fig1_mig()

    def run():
        return {
            name: compile_pipeline(mig, PRESETS[name])
            for name in ("naive", "min-write", "ea-full")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Fig. 1 MIG ({mig.num_live_gates()} nodes)"]
    for name, res in results.items():
        lines.append(
            f"  {name:10s} writes/device={res.program.write_counts()} "
            f"stdev={res.stats.stdev:.2f}"
        )
    text = "\n".join(lines)
    write_artifact("fig1.txt", text)
    print("\n" + text)

    assert results["naive"].stats.max_writes >= 3
    assert results["ea-full"].stats.stdev <= results["naive"].stats.stdev


def test_fig1_chain_scaling(benchmark):
    """Hot-cell writes grow ~linearly with chain length under naive."""

    def run():
        rows = []
        for length in (4, 8, 16, 32):
            mig = fig1_chain(length)
            naive = compile_pipeline(mig, PRESETS["naive"])
            capped = compile_pipeline(mig, full_management(5))
            rows.append((length, naive.stats.max_writes,
                         capped.stats.max_writes, capped.num_rrams,
                         naive.num_rrams))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["length  naive-max  capped-max  capped-#R  naive-#R"]
    for row in rows:
        lines.append("  ".join(f"{v:8d}" for v in row))
    text = "\n".join(lines)
    write_artifact("fig1_chain.txt", text)
    print("\n" + text)

    maxes = [r[1] for r in rows]
    assert maxes == sorted(maxes)  # monotone growth
    assert maxes[-1] >= 32  # ~1 write per step on the hot cell
    for _, _, capped_max, capped_r, naive_r in rows:
        assert capped_max <= 5
    # the cap buys balance with devices (area), as the paper trades
    assert rows[-1][3] >= rows[-1][4]
