"""Fig. 2 — blocked RRAMs: long-storage values versus write balance.

Regenerates the paper's Fig. 2 MIG and a parametric ladder of blocked
producers.  The reproduced claim of Section III-B.4: reversing the node
selection priority (Algorithm 3: shortest storage duration first) evens
out the write traffic that the area-driven DAC'16 order concentrates —
but cannot eliminate the blocking entirely (the paper's closing remark).
"""

from repro.analysis.scenarios import fig2_ladder, fig2_mig, storage_pressure
from repro.core.manager import PRESETS, compile_pipeline

from .conftest import write_artifact


def test_fig2_exact_scenario(benchmark):
    mig = fig2_mig()

    def run():
        return {
            name: compile_pipeline(mig, PRESETS[name])
            for name in ("dac16", "ea-full")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Fig. 2 MIG ({mig.num_live_gates()} nodes A..G)"]
    for name, res in results.items():
        longest, mean = storage_pressure(res.program)
        lines.append(
            f"  {name:8s} longest-lifetime={longest} mean={mean:.1f} "
            f"stdev={res.stats.stdev:.2f}"
        )
    text = "\n".join(lines)
    write_artifact("fig2.txt", text)
    print("\n" + text)

    # blocking exists under both orders (it cannot be eliminated)
    for res in results.values():
        longest, _ = storage_pressure(res.program)
        assert longest >= 4


def test_fig2_ladder_selection_comparison(benchmark):
    def run():
        rows = []
        for rungs in (4, 8, 12, 16):
            mig = fig2_ladder(rungs)
            dac16 = compile_pipeline(mig, PRESETS["dac16"])
            ea = compile_pipeline(mig, PRESETS["ea-full"])
            rows.append(
                (
                    rungs,
                    dac16.stats.stdev,
                    ea.stats.stdev,
                    dac16.stats.max_writes,
                    ea.stats.max_writes,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["rungs  dac16-stdev  ea-stdev  dac16-max  ea-max"]
    for rungs, sd1, sd2, m1, m2 in rows:
        lines.append(f"{rungs:5d}  {sd1:11.2f}  {sd2:8.2f}  {m1:9d}  {m2:6d}")
    text = "\n".join(lines)
    write_artifact("fig2_ladder.txt", text)
    print("\n" + text)

    # Algorithm 3 wins on balance for every non-trivial ladder size
    for rungs, sd1, sd2, m1, m2 in rows[1:]:
        assert sd2 <= sd1
        assert m2 <= m1

    # and the gap widens with ladder size (more blocked producers)
    first_gap = rows[1][3] - rows[1][4]
    last_gap = rows[-1][3] - rows[-1][4]
    assert last_gap >= first_gap
