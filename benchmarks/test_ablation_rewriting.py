"""Ablation — rewriting scripts and their pass composition.

Compares no rewriting, Algorithm 1 (with Psi.C), and Algorithm 2 (the
endurance-aware script), plus a step-dropped variant of Algorithm 2
without the inverter-propagation sandwich — quantifying the paper's two
design decisions (drop Psi.C; sandwich Omega.A with inverter passes).
"""

from repro.opt import ALGORITHM2_STEPS
from repro.mig.rewrite import apply_script
from repro.plim.compiler import PlimCompiler
from repro.core.selection import make_selection
from repro.core.stats import WriteTrafficStats
from repro.synth.registry import build_benchmark

from .conftest import PRESET, write_artifact

CASES = ["adder", "square", "i2c", "int2float"]


def _compile_with_script(mig, steps, effort=5):
    rewritten = apply_script(mig, steps, cycles=effort) if steps else \
        mig.cleanup()
    compiler = PlimCompiler(
        selection=make_selection("endurance"), allocation="min_write"
    )
    program = compiler.compile(rewritten)
    return program, WriteTrafficStats.from_counts(program.write_counts())


def test_rewriting_ablation(benchmark):
    no_sandwich = [s for s in ALGORITHM2_STEPS[:4]] + ["A", "M", "D_rl"]

    def run():
        table = {}
        for name in CASES:
            mig = build_benchmark(name, preset=PRESET)
            table[name] = {
                "none": _compile_with_script(mig, None),
                "alg2": _compile_with_script(mig, ALGORITHM2_STEPS),
                "alg2-no-sandwich": _compile_with_script(mig, no_sandwich),
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["bench        variant              #I      stdev"]
    for name, row in table.items():
        for variant, (program, stats) in row.items():
            lines.append(
                f"{name:12s} {variant:18s} {program.num_instructions:7d} "
                f"{stats.stdev:8.2f}"
            )
    text = "\n".join(lines)
    write_artifact("ablation_rewriting.txt", text)
    print("\n" + text)

    # Algorithm 2 always shortens programs vs no rewriting.
    for name, row in table.items():
        assert (
            row["alg2"][0].num_instructions
            < row["none"][0].num_instructions
        ), name


def test_effort_sweep(benchmark):
    """Effort (script cycles) saturates quickly — the paper fixes it at
    5; show the knee."""
    mig = build_benchmark("square", preset=PRESET)

    def run():
        return {
            effort: _compile_with_script(mig, ALGORITHM2_STEPS, effort)
            for effort in (0, 1, 2, 5)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["effort  #I"] + [
        f"{e:6d}  {p.num_instructions}" for e, (p, _) in sorted(results.items())
    ]
    text = "\n".join(lines)
    write_artifact("ablation_effort.txt", text)
    print("\n" + text)

    counts = [results[e][0].num_instructions for e in (0, 1, 2, 5)]
    assert counts[1] <= counts[0]  # first cycle does the bulk
    assert counts[3] <= counts[1]  # later cycles refine monotonically
    # saturation: cycle 5 gains little over cycle 2
    assert counts[3] >= counts[2] * 0.9
