"""Table I — write-traffic statistics of the incremental technique stack.

Regenerates the paper's Table I over the benchmark suite and checks the
*shape* of the result: every added endurance technique improves the
average write balance relative to the naive compiler, with the full stack
(minimum write strategy + Algorithm 2 rewriting + Algorithm 3 selection)
the strongest.  Absolute numbers differ from the paper (our substrate
re-synthesises the EPFL circuits; see DESIGN.md §4), the ordering is the
reproduced claim.
"""

import pytest

from repro.analysis.report import render_table1
from repro.analysis.tables import average_row
from repro.core.manager import PRESETS, compile_pipeline
from repro.synth.registry import build_benchmark

from .conftest import PRESET, suite_plain, write_artifact


def test_table1_regeneration(benchmark):
    evaluations = benchmark.pedantic(suite_plain, rounds=1, iterations=1)
    text = render_table1(evaluations)
    write_artifact("table1.txt", text)
    print("\n" + text)

    naive = average_row(evaluations, "naive")
    dac16 = average_row(evaluations, "dac16")
    min_write = average_row(evaluations, "min-write")
    ea_full = average_row(evaluations, "ea-full")

    # Paper shape (Table I AVG row): 0 < [21] < +min-write < full stack.
    assert dac16["improvement"] > 0
    assert min_write["improvement"] > dac16["improvement"]
    assert ea_full["improvement"] > dac16["improvement"]
    # The full stack reduces the average stdev by a large factor
    # (paper: 72.17%; our substrate: same direction).
    assert ea_full["stdev"] < 0.6 * naive["stdev"]
    # and the hottest cell cools down on average (lifetime gain).
    assert ea_full["max"] < naive["max"]


@pytest.mark.parametrize("name", ["adder", "multiplier", "sin", "i2c"])
def test_single_benchmark_compile_cost(benchmark, name):
    """Compile-time cost of the full endurance-managed flow per circuit."""
    mig = build_benchmark(name, preset=PRESET)

    def run():
        return compile_pipeline(mig, PRESETS["ea-full"])

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.num_instructions > 0


def test_min_write_strategy_dominates_dac16_per_benchmark(benchmark):
    """Adding the minimum write strategy improves (or preserves) the
    write balance on the large majority of benchmarks — the paper's
    30.95% -> 57.07% step."""
    evaluations = benchmark.pedantic(suite_plain, rounds=1, iterations=1)
    wins = sum(
        1
        for ev in evaluations
        if ev.stats("min-write").stdev <= ev.stats("dac16").stdev * 1.05
    )
    assert wins >= len(evaluations) * 2 // 3
