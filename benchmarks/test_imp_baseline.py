"""Section II baseline — IMPLY write concentration versus managed RM3.

The paper motivates RM3/PLiM endurance work by the intrinsic imbalance of
IMP-based logic-in-memory: the IMP NAND rewrites only its work device, and
bounded work-device schemes concentrate an entire computation's writes on
a handful of cells.  This bench quantifies both effects on our substrate.
"""

from repro.core.manager import PRESETS, compile_pipeline
from repro.core.stats import WriteTrafficStats, gini_coefficient
from repro.imp import mig_to_nand, synthesize_imp
from repro.imp.synthesize import required_pool_estimate
from repro.synth.registry import build_benchmark

from .conftest import write_artifact

#: Control circuits small enough for the bounded-pool scheduler.
CASES = ["ctrl", "cavlc", "int2float", "router"]


def test_imp_vs_rm3_write_balance(benchmark):
    def run():
        rows = []
        for name in CASES:
            mig = build_benchmark(name, preset="tiny")
            net = mig_to_nand(mig)
            imp = synthesize_imp(net)
            imp_stats = WriteTrafficStats.from_counts(imp.write_counts())
            plim = compile_pipeline(mig, PRESETS["ea-full"])
            rows.append(
                (
                    name,
                    imp.num_instructions,
                    imp_stats.stdev,
                    gini_coefficient(imp.write_counts()),
                    plim.num_instructions,
                    plim.stats.stdev,
                    gini_coefficient(plim.program.write_counts()),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "bench        imp-#I  imp-stdev  imp-gini  rm3-#I  rm3-stdev  rm3-gini"
    ]
    for name, ii, isd, ig, ri, rsd, rg in rows:
        lines.append(
            f"{name:12s} {ii:6d}  {isd:9.2f}  {ig:8.3f}  {ri:6d}  "
            f"{rsd:9.2f}  {rg:8.3f}"
        )
    text = "\n".join(lines)
    write_artifact("imp_baseline.txt", text)
    print("\n" + text)

    for name, ii, isd, ig, ri, rsd, rg in rows:
        assert isd > rsd, name  # IMP concentrates writes harder
        assert ii > ri, name  # and needs more operations (NAND blow-up)


def test_bounded_pool_concentration(benchmark):
    """Shrinking the IMP work pool concentrates traffic (higher Gini) and
    inflates the instruction count through rematerialisation."""
    mig = build_benchmark("ctrl", preset="tiny")
    net = mig_to_nand(mig)
    full_k = required_pool_estimate(net)

    def run():
        rows = []
        for k in (full_k, max(3, full_k // 2), max(3, full_k // 3)):
            try:
                prog = synthesize_imp(net, work_devices=k)
            except Exception:
                continue
            counts = prog.write_counts()
            rows.append(
                (k, prog.num_instructions, gini_coefficient(counts))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["pool-K  #ops  gini"] + [
        f"{k:6d}  {n:4d}  {g:.3f}" for k, n, g in rows
    ]
    text = "\n".join(lines)
    write_artifact("imp_pool.txt", text)
    print("\n" + text)

    assert len(rows) >= 2
    ops = [n for _, n, _ in rows]
    assert ops == sorted(ops)  # fewer devices -> more recomputation
