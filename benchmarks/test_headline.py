"""The abstract's headline numbers.

Paper: at ``W_max = 100`` the standard deviation of writes drops by
86.65% on average while instructions drop 36.45% and devices 13.67%,
all relative to the naive compiler.  We assert the same *direction* for
all three aggregates on our substrate and record the measured values in
``benchmarks/output/headline.txt`` (EXPERIMENTS.md discusses the match).
"""

from repro.analysis.report import render_headline
from repro.analysis.tables import headline_metrics
from repro.core.stats import average_improvement

from .conftest import suite_with_caps, write_artifact


def test_headline_numbers(benchmark):
    evaluations = benchmark.pedantic(suite_with_caps, rounds=1, iterations=1)
    text = render_headline(evaluations)
    write_artifact("headline.txt", text)
    print("\n" + text)

    metrics = headline_metrics(evaluations)
    # direction of all three headline claims
    assert metrics["stdev_improvement_pct"] > 40.0
    assert metrics["instruction_reduction_pct"] > 15.0
    assert metrics["rram_reduction_pct"] > -60.0  # device count may trade off

    # per-benchmark stdev improvement, the 86.65% aggregate of the paper
    impr = average_improvement(
        [e.stats("naive").stdev for e in evaluations],
        [e.stats("wmax100").stdev for e in evaluations],
    )
    assert impr > 40.0


def test_lifetime_multiplier(benchmark):
    """Balance converts directly into array lifetime: the managed flow's
    hottest cell is far cooler than the naive flow's."""
    evaluations = benchmark.pedantic(suite_with_caps, rounds=1, iterations=1)
    gains = []
    for ev in evaluations:
        naive_max = ev.stats("naive").max_writes
        managed_max = ev.stats("wmax100").max_writes
        if managed_max:
            gains.append(naive_max / managed_max)
    avg_gain = sum(gains) / len(gains)
    assert avg_gain > 1.5  # managed arrays live >1.5x longer on average
