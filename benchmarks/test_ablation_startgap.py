"""Ablation — compile-time endurance management vs runtime wear levelling.

The paper's introduction positions its compile-time techniques against
runtime write-balancing schemes from the PCM literature (Start-Gap et
al.).  This bench runs both — and their combination — on the same
workload and compares the *physical* wear after many executions:

* naive compilation + Start-Gap rotation (runtime only),
* endurance-managed compilation on a plain array (compile time only),
* endurance-managed compilation + Start-Gap (both).

The reproduced qualitative claim: compile-time management attacks the
per-execution write *profile* (so it also shortens programs), while
rotation only spreads a bad profile around; combining them is strictly
better than rotation alone.
"""

from repro.core.manager import PRESETS, compile_pipeline, full_management
from repro.core.stats import WriteTrafficStats
from repro.plim.startgap import run_with_start_gap
from repro.plim.controller import PlimController
from repro.plim.memory import RramArray
from repro.synth.registry import build_benchmark

from .conftest import write_artifact

EXECUTIONS = 40
GAP_INTERVAL = 64


def _physical_wear(program, num_inputs, use_start_gap):
    words = [0] * num_inputs
    if use_start_gap:
        array = run_with_start_gap(
            program, words, executions=EXECUTIONS, gap_interval=GAP_INTERVAL
        )
        return array.write_counts()
    array = RramArray(program.num_cells)
    controller = PlimController(array)
    for _ in range(EXECUTIONS):
        controller.run(program, words)
    return list(array.writes)


def test_compile_time_vs_runtime_wear_levelling(benchmark):
    mig = build_benchmark("ctrl", preset="tiny")

    def run():
        naive = compile_pipeline(mig, PRESETS["naive"]).program
        managed = compile_pipeline(mig, full_management(10)).program
        return {
            "naive + plain": _physical_wear(naive, mig.num_pis, False),
            "naive + start-gap": _physical_wear(naive, mig.num_pis, True),
            "managed + plain": _physical_wear(managed, mig.num_pis, False),
            "managed + start-gap": _physical_wear(managed, mig.num_pis, True),
        }

    wear = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"physical wear after {EXECUTIONS} executions (ctrl, tiny)"]
    stats = {}
    for label, counts in wear.items():
        s = WriteTrafficStats.from_counts(counts)
        stats[label] = s
        lines.append(
            f"  {label:22s} max={s.max_writes:6d} stdev={s.stdev:9.2f} "
            f"total={s.total_writes:7d}"
        )
    text = "\n".join(lines)
    write_artifact("ablation_startgap.txt", text)
    print("\n" + text)

    # rotation helps the naive program...
    assert (
        stats["naive + start-gap"].max_writes
        < stats["naive + plain"].max_writes
    )
    # ...but compile-time management alone already beats plain naive...
    assert (
        stats["managed + plain"].max_writes
        < stats["naive + plain"].max_writes
    )
    # ...and the combination beats managed-only on peak physical wear.
    assert (
        stats["managed + start-gap"].max_writes
        <= stats["managed + plain"].max_writes
    )
    # runtime rotation cannot reduce total work — compile time does:
    assert (
        stats["managed + plain"].total_writes
        < stats["naive + plain"].total_writes
    )
