"""Shared infrastructure for the benchmark harness.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper.  Suite evaluations are expensive (18 benchmarks x 9 compiler
configurations), so all of them run through one session-scoped
:class:`~repro.analysis.runner.ExperimentCache`: each (benchmark,
configuration) pair is built, rewritten, and compiled exactly once per
pytest session no matter how many table/figure modules ask for it — in
particular, the capped Table III evaluation reuses every Table I column
instead of recompiling it.  Rendered tables are written to
``benchmarks/output/`` so a harness run leaves the reproduced artefacts
on disk.

Set ``REPRO_BENCH_PRESET=tiny`` for a fast smoke run, ``paper`` for the
paper's full widths (slow in pure Python).  ``REPRO_BENCH_PARALLEL=N``
fans the suite evaluation out over N worker processes (results are
identical to the serial run).
"""

from __future__ import annotations

import functools
import os
import pathlib
import warnings

import pytest

from repro.analysis.runner import ExperimentCache
from repro.analysis.tables import TABLE3_CAPS, evaluate_suite


_BENCH_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    """Mark everything collected under ``benchmarks/`` as ``bench``.

    Centralised here so new table/figure modules land in the slow lane
    (`-m "not bench"` deselects them) without per-file boilerplate.  The
    hook sees the whole session's items, hence the path filter.
    """
    for item in items:
        if _BENCH_DIR in item.path.parents:
            item.add_marker(pytest.mark.bench)

#: Benchmark widths used by the harness (see repro.synth.registry).
PRESET = os.environ.get("REPRO_BENCH_PRESET", "default")

def _parallel_from_env() -> "int | None":
    """Parse REPRO_BENCH_PARALLEL; serial when unset, <= 1, or garbage."""
    raw = os.environ.get("REPRO_BENCH_PARALLEL", "")
    if not raw:
        return None
    try:
        value = int(raw)
        if value < 0:
            raise ValueError("negative worker count")
    except ValueError as exc:
        warnings.warn(
            f"ignoring REPRO_BENCH_PARALLEL={raw!r} ({exc}); running serially",
            stacklevel=1,
        )
        return None
    return value if value > 1 else None


#: Worker processes for the suite evaluation (serial when unset/<=1).
PARALLEL = _parallel_from_env()

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: One cache per pytest session, shared by every benchmark module.
SESSION_CACHE = ExperimentCache()


@functools.lru_cache(maxsize=None)
def suite_plain():
    """The five Table I configurations over all 18 benchmarks."""
    return evaluate_suite(
        preset=PRESET, verify=False, cache=SESSION_CACHE, parallel=PARALLEL
    )


@functools.lru_cache(maxsize=None)
def suite_with_caps():
    """Table I configurations plus the four Table III write caps.

    With the shared session cache this only compiles the four capped
    configurations on top of :func:`suite_plain`'s results.
    """
    return evaluate_suite(
        preset=PRESET,
        caps=tuple(TABLE3_CAPS),
        verify=False,
        cache=SESSION_CACHE,
        parallel=PARALLEL,
    )


def write_artifact(name: str, text: str) -> pathlib.Path:
    """Persist a rendered table under ``benchmarks/output/``."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    return path
