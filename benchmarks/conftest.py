"""Shared infrastructure for the benchmark harness.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper.  Suite evaluations are expensive (18 benchmarks x 9 compiler
configurations), so all of them route through one session-scoped
:class:`repro.flow.Session`: each (benchmark, configuration) pair is
built, rewritten, and compiled exactly once per pytest session no matter
how many table/figure modules ask for it — in particular, the capped
Table III evaluation reuses every Table I column instead of recompiling
it.  Rendered tables are written to ``benchmarks/output/`` so a harness
run leaves the reproduced artefacts on disk.

Set ``REPRO_BENCH_PRESET=tiny`` for a fast smoke run, ``paper`` for the
paper's full widths (slow in pure Python).  ``REPRO_BENCH_PARALLEL=N``
fans the suite evaluation out over N worker processes (results are
identical to the serial run).  With ``REPRO_CACHE_DIR=<dir>`` the
session reads through / writes back to the persistent on-disk cache, so
a warm rerun of the harness deserialises instead of recompiling;
``REPRO_SIM_BACKEND`` picks the simulation kernel.  All of these resolve
through ``Session.from_env()``.

Every benchmark session additionally emits a timing artefact,
``benchmarks/output/BENCH_suite.json``: suite wall-clock per evaluation
stage, per-stage flow timings from the session's observer hooks,
experiment-cache hit rates (memory and disk), the active simulation
backend, and the backend micro-benchmark numbers recorded by
``test_simbackend.py`` — the perf trajectory of the harness is tracked
from these files.
"""

from __future__ import annotations

import functools
import json
import os
import pathlib
import time
import warnings

import pytest

from repro.flow import Session


_BENCH_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    """Mark everything collected under ``benchmarks/`` as ``bench``.

    Centralised here so new table/figure modules land in the slow lane
    (`-m "not bench"` deselects them) without per-file boilerplate.  The
    hook sees the whole session's items, hence the path filter.
    """
    for item in items:
        if _BENCH_DIR in item.path.parents:
            item.add_marker(pytest.mark.bench)

#: Benchmark widths used by the harness (see repro.synth.registry).
PRESET = os.environ.get("REPRO_BENCH_PRESET", "default")

def _parallel_from_env() -> "int | None":
    """Parse REPRO_BENCH_PARALLEL; serial when unset, <= 1, or garbage."""
    raw = os.environ.get("REPRO_BENCH_PARALLEL", "")
    if not raw:
        return None
    try:
        value = int(raw)
        if value < 0:
            raise ValueError("negative worker count")
    except ValueError as exc:
        warnings.warn(
            f"ignoring REPRO_BENCH_PARALLEL={raw!r} ({exc}); running serially",
            stacklevel=1,
        )
        return None
    return value if value > 1 else None


#: Worker processes for the suite evaluation (serial when unset/<=1).
PARALLEL = _parallel_from_env()

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: One session per pytest run, shared by every benchmark module; its
#: cache is persistent across runs when REPRO_CACHE_DIR points at a
#: root, and its backend follows REPRO_SIM_BACKEND.
SESSION = Session.from_env(preset=PRESET, parallel=PARALLEL)

#: The session's experiment cache — kept under its historic name for the
#: ablation modules that drive it directly.
SESSION_CACHE = SESSION.cache

#: Accumulated BENCH_suite.json content (stage timings, backend
#: micro-benchmarks); written out at session finish.
BENCH_REPORT: dict = {"suite_seconds": {}, "stages": {}}


class _StageTimes:
    """Session observer folding flow stage events into BENCH_REPORT."""

    def on_stage_end(self, event):
        entry = BENCH_REPORT["stages"].setdefault(
            event.stage, {"events": 0, "cached": 0, "seconds": 0.0}
        )
        entry["events"] += 1
        entry["cached"] += 1 if event.cached else 0
        entry["seconds"] += event.seconds or 0.0


SESSION.add_observer(_StageTimes())


@functools.lru_cache(maxsize=None)
def suite_plain():
    """The five Table I configurations over all 18 benchmarks."""
    start = time.perf_counter()
    result = SESSION.evaluate_suite(verify=False)
    BENCH_REPORT["suite_seconds"]["plain"] = time.perf_counter() - start
    return result


@functools.lru_cache(maxsize=None)
def suite_with_caps():
    """Table I configurations plus the four Table III write caps.

    With the shared session cache this only compiles the four capped
    configurations on top of :func:`suite_plain`'s results.
    """
    from repro.analysis.tables import TABLE3_CAPS

    start = time.perf_counter()
    result = SESSION.evaluate_suite(caps=tuple(TABLE3_CAPS), verify=False)
    BENCH_REPORT["suite_seconds"]["with_caps"] = time.perf_counter() - start
    return result


def write_artifact(name: str, text: str) -> pathlib.Path:
    """Persist a rendered table under ``benchmarks/output/``."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    return path


def pytest_sessionfinish(session):
    """Emit the benchmark JSON artefacts for whatever actually ran.

    ``BENCH_suite.json`` carries the suite/stage story;
    ``BENCH_kernel.json`` carries the simulation-kernel matrix
    (per-backend × thread-count timings from ``test_simbackend.py``)
    plus the same stage timings, so the kernel perf trajectory is
    recorded even when only the kernel lane ran.
    """
    if "kernel" in BENCH_REPORT:
        write_artifact(
            "BENCH_kernel.json",
            json.dumps(
                {
                    "preset": PRESET,
                    "backend": SESSION.kernel.name,
                    "kernel": BENCH_REPORT["kernel"],
                    "stages": BENCH_REPORT["stages"],
                    "suite_seconds": BENCH_REPORT["suite_seconds"],
                },
                indent=2,
            ),
        )
    if not BENCH_REPORT["suite_seconds"] and "sim_backend" not in BENCH_REPORT:
        return
    disk = SESSION.disk
    # Remote-tier counters (shared cache server, see repro.cachesvc):
    # present only when the session reads through a RemoteCache.
    tier_counters = getattr(disk, "tier_counters", None)
    report = {
        "preset": PRESET,
        "parallel": PARALLEL,
        "backend": SESSION.kernel.name,
        "cache": {
            "memory_hits": SESSION_CACHE.hits,
            "memory_misses": SESSION_CACHE.misses,
            "disk": (
                {
                    "root": str(getattr(disk, "root", None)),
                    "hits": disk.hits,
                    "misses": disk.misses,
                    "lock_skips": disk.lock_skips,
                }
                if disk is not None
                else None
            ),
            "tiers": tier_counters() if tier_counters is not None else None,
            # Aggregated over every run_matrix(parallel=N) worker
            # process of the session: the parent's counters alone
            # under-report what a fanned-out suite actually hit.
            "workers": dict(SESSION_CACHE.worker_counters),
        },
        **BENCH_REPORT,
    }
    write_artifact("BENCH_suite.json", json.dumps(report, indent=2))
