"""Shared infrastructure for the benchmark harness.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper.  Suite evaluations are expensive (18 benchmarks x 9 compiler
configurations), so they are computed once per pytest session and shared
through the memoised helpers below.  Rendered tables are written to
``benchmarks/output/`` so a harness run leaves the reproduced artefacts
on disk.

Set ``REPRO_BENCH_PRESET=tiny`` for a fast smoke run, ``paper`` for the
paper's full widths (slow in pure Python).
"""

from __future__ import annotations

import functools
import os
import pathlib

from repro.analysis.tables import TABLE3_CAPS, evaluate_suite

#: Benchmark widths used by the harness (see repro.synth.registry).
PRESET = os.environ.get("REPRO_BENCH_PRESET", "default")

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@functools.lru_cache(maxsize=None)
def suite_plain():
    """The five Table I configurations over all 18 benchmarks."""
    return evaluate_suite(preset=PRESET, verify=False)


@functools.lru_cache(maxsize=None)
def suite_with_caps():
    """Table I configurations plus the four Table III write caps."""
    return evaluate_suite(preset=PRESET, caps=tuple(TABLE3_CAPS), verify=False)


def write_artifact(name: str, text: str) -> pathlib.Path:
    """Persist a rendered table under ``benchmarks/output/``."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    return path
