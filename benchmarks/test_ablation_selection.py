"""Ablation — node-selection keys in isolation.

Algorithm 3 combines two keys (fanout level index primary, releasing
count secondary).  This ablation runs each key alone and the two combined
orders, quantifying what each contributes to write balance and device
count — the design choice DESIGN.md calls out.
"""

from repro.core.manager import EnduranceConfig
from repro.core.policies import AllocationPolicy

from .conftest import PRESET, SESSION_CACHE, write_artifact

SELECTIONS = ["topo", "dac16", "endurance", "releasing-only", "level-only"]
CASES = ["adder", "bar", "sin", "cavlc", "priority"]


def _config(selection: str) -> EnduranceConfig:
    return EnduranceConfig(
        name=f"ablate-{selection}",
        rewriting="endurance",
        selection=selection,
        allocation=AllocationPolicy("min_write"),
    )


def test_selection_ablation(benchmark):
    def run():
        table = {}
        for name in CASES:
            mig = SESSION_CACHE.benchmark_mig(name, PRESET)
            table[name] = {
                sel: SESSION_CACHE.compile(mig, _config(sel))
                for sel in SELECTIONS
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["bench        " + "".join(f"{s:>16s}" for s in SELECTIONS)]
    for name, row in table.items():
        cells = "".join(
            f"{row[s].stats.stdev:10.2f}/{row[s].num_rrams:<5d}"
            for s in SELECTIONS
        )
        lines.append(f"{name:12s} {cells}")
    text = "stdev/#R per selection strategy\n" + "\n".join(lines)
    write_artifact("ablation_selection.txt", text)
    print("\n" + text)

    # The combined Algorithm 3 order beats plain topological order on
    # average balance across the cases.
    avg = {
        sel: sum(table[n][sel].stats.stdev for n in CASES) / len(CASES)
        for sel in SELECTIONS
    }
    assert avg["endurance"] < avg["topo"]
    # The releasing-count key is the area lever: dac16-style orders use
    # no more devices than level-only on average.
    avg_r = {
        sel: sum(table[n][sel].num_rrams for n in CASES) / len(CASES)
        for sel in SELECTIONS
    }
    assert avg_r["releasing-only"] <= avg_r["level-only"] * 1.25
