"""Optimizer sweep — cost-guided rewriting vs the paper's fixed scripts.

The rewrite stage is a pluggable :mod:`repro.opt` optimizer; this module
regenerates the optimizer-sweep artefact (``OPT_sweep.txt``):

* a focus sweep — one benchmark compiled under the legacy ``script``
  strategy, the cost-guided ``greedy`` strategy, and the bounded
  look-ahead ``budget`` strategy, with the measured #I/#R next to the
  compile-free objective estimates, through the shared session (the
  script rows are pure cache hits against the table suite);
* a suite-wide objective study — the architecture-aware ``greedy``
  strategy scored against the fixed ``endurance`` script on every
  registry benchmark, asserting the cost-guided search strictly reduces
  the estimated write cost on at least half the suite (the
  paper-level claim that target-cost-driven rewriting beats generic
  fixed pipelines).
"""

from repro.analysis.report import (
    render_objective_study,
    render_optimizer_sweep,
)
from repro.analysis.scenarios import (
    optimizer_objective_study,
    optimizer_sweep,
)

from .conftest import PRESET, SESSION, write_artifact

#: The focus benchmark: small enough to keep the lane fast, rich enough
#: (multi-output decoder) for the strategies to differ.
SWEEP_BENCHMARK = "dec"

#: Suite-wide study widths: tiny keeps the default lane within its
#: budget; the paper-preset nightly lane studies the default widths.
STUDY_PRESET = "default" if PRESET == "paper" else "tiny"


def test_optimizer_sweep_artifact(benchmark):
    def run():
        points = optimizer_sweep(
            SWEEP_BENCHMARK,
            opts=("script", "greedy", "budget"),
            configs=("ea-full",),
            session=SESSION,
            verify=True,
        )
        rows = optimizer_objective_study(
            opt="greedy",
            baseline="endurance",
            preset=STUDY_PRESET,
            session=SESSION,
        )
        return points, rows

    points, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_optimizer_sweep(
        points,
        title=(
            f"OPTIMIZER SWEEP - {SWEEP_BENCHMARK} ({PRESET} preset, "
            f"{SESSION.architecture.name} machine)"
        ),
    )
    text += "\n\n" + render_objective_study(
        rows,
        title=(
            "OBJECTIVE STUDY - greedy:write_cost vs the endurance script "
            f"({STUDY_PRESET} preset, {SESSION.architecture.name} machine)"
        ),
    )
    write_artifact("OPT_sweep.txt", text)
    print("\n" + text)

    by_opt = {p.opt: p for p in points}
    # Every strategy produced a verified, compilable result…
    assert set(by_opt) == {"script", "greedy:write_cost", "budget:write_cost@2"}
    # …and the cost-guided strategies never do worse than the fixed
    # script under their own objective.
    assert by_opt["greedy:write_cost"].objective <= by_opt["script"].objective
    assert by_opt["budget:write_cost@2"].objective <= by_opt["script"].objective

    # The acceptance bar of the optimizer layer: the architecture-aware
    # greedy search strictly reduces the estimated write cost vs the
    # paper's fixed endurance script on at least half the suite.
    improved = sum(1 for row in rows if row.improved)
    assert improved >= len(rows) // 2, (
        f"greedy strictly improved only {improved}/{len(rows)} benchmarks"
    )
    # and never regresses anywhere
    assert all(row.optimized <= row.script for row in rows)


def test_script_rows_match_table_suite():
    """The sweep's script rows equal the Table I suite results — the
    optimizer layer shares (not forks) the session cache."""
    from .conftest import suite_plain

    evaluation = next(
        e for e in suite_plain() if e.name == SWEEP_BENCHMARK
    )
    points = optimizer_sweep(
        SWEEP_BENCHMARK,
        opts=("script",),
        configs=("naive", "ea-full"),
        session=SESSION,
    )
    for point in points:
        suite_result = evaluation.results[point.config]
        assert point.result.program.instructions == (
            suite_result.program.instructions
        )
        assert point.result.program.write_counts() == (
            suite_result.program.write_counts()
        )
