#!/usr/bin/env python3
"""Merge sharded ``BENCH_suite.json`` artefacts into one report.

The nightly CI lane shards the benchmark suite across a job matrix;
each shard emits its own ``BENCH_suite.json`` (see ``conftest.py``).
This script folds any number of shard reports into a single file with
the same schema, so downstream perf tracking keeps reading one
artefact:

* ``suite_seconds`` entries are merged keyed by evaluation name,
  prefixed with the shard label on collision;
* ``stages`` counters (events / cached / seconds) are summed per stage;
* cache hit/miss counters are summed (memory and disk), as are the
  remote-tier counters of shards that read through a shared cache
  server (``cache.tiers``, see :mod:`repro.cachesvc`);
* scalar fields (preset, backend, parallel) must agree across shards —
  a mismatch aborts loudly rather than averaging apples and oranges;
* every other top-level key (e.g. the ``sim_backend`` micro-benchmark
  block) is taken from whichever shard produced it.

Usage::

    python benchmarks/merge_bench.py shard-a/BENCH_suite.json \
        shard-b/BENCH_suite.json -o merged/BENCH_suite.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List


def merge_reports(reports: List[dict], labels: List[str]) -> dict:
    merged: dict = {
        "shards": labels,
        "suite_seconds": {},
        "stages": {},
        "cache": {
            "memory_hits": 0,
            "memory_misses": 0,
            "disk": None,
            "tiers": None,
            "workers": {},
        },
    }
    for label, report in zip(labels, reports):
        for scalar in ("preset", "parallel", "backend"):
            if scalar in report:
                previous = merged.setdefault(scalar, report[scalar])
                if previous != report[scalar]:
                    raise SystemExit(
                        f"shard {label}: {scalar}={report[scalar]!r} "
                        f"disagrees with {previous!r}; refusing to merge"
                    )
        for name, seconds in report.get("suite_seconds", {}).items():
            key = name if name not in merged["suite_seconds"] else (
                f"{label}:{name}"
            )
            merged["suite_seconds"][key] = seconds
        for stage, entry in report.get("stages", {}).items():
            bucket = merged["stages"].setdefault(
                stage, {"events": 0, "cached": 0, "seconds": 0.0}
            )
            bucket["events"] += entry.get("events", 0)
            bucket["cached"] += entry.get("cached", 0)
            bucket["seconds"] += entry.get("seconds", 0.0)
        cache = report.get("cache", {})
        merged["cache"]["memory_hits"] += cache.get("memory_hits", 0)
        merged["cache"]["memory_misses"] += cache.get("memory_misses", 0)
        disk = cache.get("disk")
        if disk:
            bucket = merged["cache"]["disk"] or {
                "root": disk.get("root"), "hits": 0, "misses": 0,
                "lock_skips": 0,
            }
            bucket["hits"] += disk.get("hits", 0)
            bucket["misses"] += disk.get("misses", 0)
            bucket["lock_skips"] += disk.get("lock_skips", 0)
            merged["cache"]["disk"] = bucket
        tiers = cache.get("tiers")
        if tiers:
            bucket = merged["cache"]["tiers"] or {}
            for key, value in tiers.items():
                bucket[key] = bucket.get(key, 0) + value
            merged["cache"]["tiers"] = bucket
        for key, value in cache.get("workers", {}).items():
            workers = merged["cache"]["workers"]
            workers[key] = workers.get(key, 0) + value
        for key, value in report.items():
            if key in ("suite_seconds", "stages", "cache", "preset",
                       "parallel", "backend"):
                continue
            merged.setdefault(key, value)
    return merged


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("shards", nargs="+", type=pathlib.Path,
                        help="per-shard BENCH_suite.json files")
    parser.add_argument("-o", "--output", type=pathlib.Path, required=True,
                        help="merged report destination")
    args = parser.parse_args(argv)

    reports, labels = [], []
    for path in args.shards:
        reports.append(json.loads(path.read_text(encoding="utf-8")))
        labels.append(path.parent.name or path.stem)
    merged = merge_reports(reports, labels)
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(merged, indent=2) + "\n",
                           encoding="utf-8")
    print(f"merged {len(reports)} shard(s) -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
