"""Shared cache-service benchmark: cold vs warm vs 4-way shared server.

Times three evaluation shapes against one :mod:`repro.cachesvc` server
over the same disk root and emits
``benchmarks/output/BENCH_cache.json``:

* **cold** — a fresh root: every (benchmark, config) pair compiles and
  is stored through the server;
* **warm** — the same matrix again from a fresh client: everything is
  served from the server's in-memory tier (the disk tier never spins);
* **shared** — a fresh root evaluated by ``run_matrix(parallel=4)``,
  all four worker processes pointed at one server: the single-flight
  leases must keep the duplicate-compile count at **zero**, which this
  module asserts from the server's ``/stats``.

The artefact records the wall-clock of each shape, the server tier
counters, and the warm-run hit ratio — the nightly perf trajectory
reads the warm-vs-cold speedup from here.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cachesvc import RemoteCache, create_cache_server
from repro.flow import Session

from .conftest import write_artifact

#: Small fixed slice of the registry: enough distinct keys to exercise
#: the tiers, small enough for the nightly lane.
BENCHMARKS = ["adder", "bar", "ctrl", "int2float"]
CONFIGS = ["naive", "ea-full"]


@pytest.fixture
def cache_server(tmp_path):
    server = create_cache_server(port=0, root=str(tmp_path / "root"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.close()
        thread.join(timeout=5)


def _evaluate(url, root, *, parallel=None):
    import time

    session = Session(
        cache_url=url, cache_dir=str(root), preset="tiny", parallel=parallel
    )
    start = time.perf_counter()
    evaluations = session.run_matrix(
        BENCHMARKS, CONFIGS, verify=False, parallel=parallel
    )
    return time.perf_counter() - start, evaluations, session


def test_cache_service_bench(cache_server, tmp_path):
    url = cache_server.url

    cold_seconds, cold, _ = _evaluate(url, tmp_path / "root")
    warm_seconds, warm, warm_session = _evaluate(url, tmp_path / "root")

    # The warm rerun must be answered from the server, not recompiled:
    # every pair that stored on the cold pass hits on the warm pass.
    remote = warm_session.cache.disk
    assert isinstance(remote, RemoteCache)
    tiers = remote.tier_counters()
    assert tiers["remote_memory_hits"] > 0, tiers
    assert tiers["remote_fallbacks"] == 0, tiers
    warm_requests = remote.hits + remote.misses
    warm_ratio = remote.hits / warm_requests if warm_requests else 0.0
    cold_stats = cache_server.stats_payload()

    # Shared-server fan-out: four worker processes, one server, fresh
    # root — the single-flight leases must absorb every duplicate.
    shared_server = create_cache_server(port=0, root=str(tmp_path / "shared"))
    thread = threading.Thread(
        target=shared_server.serve_forever, daemon=True
    )
    thread.start()
    try:
        shared_seconds, shared, _ = _evaluate(
            shared_server.url, tmp_path / "shared", parallel=4
        )
        shared_stats = shared_server.stats_payload()
    finally:
        shared_server.close()
        thread.join(timeout=5)

    # Zero duplicates is only meaningful if the workers actually stored
    # through the server — a silent fallback to direct disk would pass
    # vacuously.
    assert shared_stats["puts"] > 0, shared_stats
    assert shared_stats["duplicate_puts"] == 0, shared_stats
    # Same matrix, same preset: the shared run reproduces the serial
    # artefacts (byte-identical programs => identical stat rows).
    assert _rows(shared) == _rows(cold)
    assert _rows(warm) == _rows(cold)

    write_artifact(
        "BENCH_cache.json",
        json.dumps(
            {
                "benchmarks": BENCHMARKS,
                "configs": CONFIGS,
                "preset": "tiny",
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "shared_parallel4_seconds": shared_seconds,
                "warm_hit_ratio": warm_ratio,
                "warm_tiers": tiers,
                "server": {
                    "cold_warm": cold_stats["tiers"],
                    "shared": shared_stats["tiers"],
                },
                "duplicate_compiles": shared_stats["duplicate_puts"],
            },
            indent=2,
        ),
    )


def _rows(evaluations):
    return [
        (
            ev.name,
            sorted(
                (cfg, r.num_instructions, r.num_rrams)
                for cfg, r in ev.results.items()
            ),
        )
        for ev in evaluations
    ]
