"""Ablation — allocation policy and the W_max resolution sweep.

Separates the two write-count strategies from the rest of the stack:
LIFO vs minimum-write allocation under identical rewriting/selection, and
a finer W_max sweep than the paper's four points to expose the knee of
the balance/area trade-off.
"""

from repro.core.manager import EnduranceConfig, full_management
from repro.core.policies import AllocationPolicy

from .conftest import PRESET, SESSION_CACHE, write_artifact

CASES = ["adder", "sin", "cavlc", "priority"]


def test_allocation_policy_isolated(benchmark):
    """min-write vs naive with everything else held fixed: identical
    #I/#R (paper-stated invariant), better balance."""

    def run():
        table = {}
        for name in CASES:
            mig = SESSION_CACHE.benchmark_mig(name, PRESET)
            table[name] = {
                strategy: SESSION_CACHE.compile(
                    mig,
                    EnduranceConfig(
                        name=strategy,
                        rewriting="endurance",
                        selection="endurance",
                        allocation=AllocationPolicy(strategy),
                    ),
                )
                for strategy in ("naive", "min_write")
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["bench        naive-sd  minw-sd   #I-equal  #R-equal"]
    for name, row in table.items():
        naive, minw = row["naive"], row["min_write"]
        lines.append(
            f"{name:12s} {naive.stats.stdev:8.2f}  {minw.stats.stdev:8.2f}"
            f"  {naive.num_instructions == minw.num_instructions!s:>8s}"
            f"  {naive.num_rrams == minw.num_rrams!s:>8s}"
        )
        assert naive.num_instructions == minw.num_instructions
        assert naive.num_rrams == minw.num_rrams
    text = "\n".join(lines)
    write_artifact("ablation_allocator.txt", text)
    print("\n" + text)

    better = sum(
        1
        for row in table.values()
        if row["min_write"].stats.stdev <= row["naive"].stats.stdev
    )
    assert better >= len(CASES) - 1


def test_wmax_fine_sweep(benchmark):
    """Finer W_max resolution than Table III: the stdev/#R trade-off is
    monotone all the way down to the minimum feasible cap."""
    mig = SESSION_CACHE.benchmark_mig("sin", PRESET)
    caps = [4, 6, 8, 10, 15, 20, 35, 50, 75, 100]

    def run():
        return {
            cap: SESSION_CACHE.compile(mig, full_management(cap))
            for cap in caps
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["wmax   #I      #R    stdev   max"]
    for cap in caps:
        r = results[cap]
        lines.append(
            f"{cap:4d}  {r.num_instructions:6d}  {r.num_rrams:5d} "
            f"{r.stats.stdev:7.2f}  {r.stats.max_writes:4d}"
        )
    text = "\n".join(lines)
    write_artifact("ablation_wmax.txt", text)
    print("\n" + text)

    for cap in caps:
        assert results[cap].stats.max_writes <= cap
    rrams = [results[cap].num_rrams for cap in caps]
    assert rrams == sorted(rrams, reverse=True)  # monotone area cost
