#!/usr/bin/env python3
"""A compile-cache farm: one ``repro.cachesvc`` server, many clients.

``run_matrix(parallel=N)`` workers, ``repro serve`` executors, and
separate CLI runs used to coordinate through per-entry lockfiles on a
shared root.  The cache service centralises that coordination in one
daemon that owns the root: a byte-budgeted warm in-memory tier over the
disk tier, plus cross-process *single-flight* — the first requester of
a missing key gets a lease and compiles, every concurrent requester
blocks and receives the stored artefact, so a racing fleet compiles
each key exactly once.  This walkthrough:

1. boots a cache server on an ephemeral port (standalone:
   ``python -m repro cachesvc serve``);
2. evaluates a small matrix through ``Session(cache_url=...)`` — every
   artefact is stored through the server;
3. re-evaluates from a fresh session: pure warm-tier hits, nothing
   recompiles;
4. races 4 threads at one *missing* key and shows the single-flight
   counters: one lease, zero duplicate compiles;
5. scrapes ``/stats`` — the same payload behind
   ``repro cachesvc stats`` and ``repro cache stats --cache-url``.

Run:  python examples/cachefarm.py
"""

import os
import tempfile
import threading
import time

from repro import RemoteCache, Session, create_cache_server

PRESET = os.environ.get("REPRO_EXAMPLE_PRESET", "tiny")
BENCHMARKS = ["adder", "bar", "ctrl"]
CONFIGS = ["naive", "ea-full"]


def main() -> None:
    root = os.path.join(tempfile.mkdtemp(prefix="repro-cachefarm-"), "cache")
    server = create_cache_server(port=0, root=root)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"cache server up at {server.url} (root={root})\n")

    # -- 1. cold evaluation through the server ------------------------
    start = time.perf_counter()
    session = Session(preset=PRESET, cache_url=server.url, cache_dir=root)
    session.run_matrix(BENCHMARKS, CONFIGS, verify=False)
    cold = time.perf_counter() - start
    print(f"cold matrix ({len(BENCHMARKS)}x{len(CONFIGS)}): {cold:.2f}s")

    # -- 2. warm rerun: a fresh client, zero recompiles ---------------
    start = time.perf_counter()
    warm_session = Session(preset=PRESET, cache_url=server.url, cache_dir=root)
    warm_session.run_matrix(BENCHMARKS, CONFIGS, verify=False)
    warm = time.perf_counter() - start
    tiers = warm_session.cache.disk.tier_counters()
    print(f"warm matrix: {warm:.2f}s "
          f"({tiers['remote_memory_hits']} warm-tier hits, "
          f"{tiers['remote_fallbacks']} fallbacks)\n")

    # -- 3. single-flight: race 4 clients at one missing key ----------
    key = ("result", "demo", "race", "key")
    compiles = []

    def contender(i: int) -> None:
        client = RemoteCache(server.url, root=root)
        with client.flight(key) as resolved:
            if resolved is not None:
                return  # adopted the winner's artefact, no work done
            compiles.append(i)
            time.sleep(0.2)  # pretend this is an expensive compile
            client.store(key, (f"artefact by thread {i}", 64))

    threads = [
        threading.Thread(target=contender, args=(i,)) for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    print(f"4 contenders, {len(compiles)} compile(s) "
          f"(thread {compiles[0]} won the lease)")

    # -- 4. the numbers behind it -------------------------------------
    stats = server.stats_payload()
    flight = stats["single_flight"]
    print(f"leases granted {flight['leases']}, "
          f"waiters served in-flight {flight['served']}, "
          f"duplicate compiles {stats['duplicate_puts']}")
    print(f"tiers: {stats['tiers']}")

    server.close()
    assert len(compiles) == 1
    assert stats["duplicate_puts"] == 0
    print("\ncache farm done: every key compiled exactly once.")


if __name__ == "__main__":
    main()
