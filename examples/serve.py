#!/usr/bin/env python3
"""Compilation-as-a-service: the ``repro.serve`` REST front.

The batch pipeline behind ``repro table1`` also runs as a long-lived
service: one warm :class:`~repro.flow.Session`, a background job queue,
and a dependency-free HTTP API on the stdlib ``http.server``.  This
walkthrough starts an in-process server on an ephemeral port and plays
a full client session against it with nothing but ``urllib``:

1. submit a compilation job (``POST /jobs``) and poll it to completion;
2. stream the pipeline's per-stage progress as NDJSON events;
3. fetch the compiled RM3 program and its provenance manifest —
   re-verified server-side against the artefact on disk;
4. submit the same job twice more: one duplicate coalesces onto the
   in-flight compile, and the warm repeat is a pure cache hit
   (``disk.misses == 0``, every stage event ``cached``);
5. read the service health counters (``GET /stats``) and stop the
   server over HTTP.

The same API comes up standalone with ``python -m repro serve``.

Run:  python examples/serve.py
"""

import json
import os
import tempfile
import threading
import urllib.request

from repro import Session, create_server

PRESET = os.environ.get("REPRO_EXAMPLE_PRESET", "tiny")


def get(url: str):
    with urllib.request.urlopen(url, timeout=60) as response:
        body = response.read().decode("utf-8")
    if "json" in response.headers.get("Content-Type", ""):
        if "ndjson" in response.headers["Content-Type"]:
            return [json.loads(line) for line in body.splitlines()]
        return json.loads(body)
    return body


def post(url: str, payload=None):
    data = json.dumps(payload or {}).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read().decode("utf-8"))


def main() -> None:
    cache_dir = os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(tempfile.mkdtemp(prefix="repro-serve-"), "cache"),
    )
    session = Session(preset=PRESET, cache_dir=cache_dir)

    # Ephemeral port; inline executors keep the example single-process.
    server = create_server(
        "127.0.0.1", 0, session=session, workers=2,
        isolate=False, allow_shutdown=True,
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = server.url
    print(f"repro.serve up at {base} (preset={PRESET})\n")

    # -- 1. submit and poll ------------------------------------------
    print("1. POST /jobs {'source': 'adder', 'config': 'ea-full'}")
    ticket = post(f"{base}/jobs", {
        "source": "adder", "config": "ea-full", "verify": 16,
    })
    job_id = ticket["id"]
    print(f"   -> {ticket['status']} as {job_id}")
    server.store.wait_terminal(job_id, timeout=600)
    job = get(f"{base}/jobs/{job_id}")
    result = job["result"]
    print(
        f"   done: {result['instructions']} instructions on "
        f"{result['rrams']} RRAMs, max writes/device "
        f"{result['stats']['max_writes']}\n"
    )

    # -- 2. the per-stage event feed ---------------------------------
    print("2. GET /jobs/<id>/events (NDJSON)")
    for event in get(f"{base}/jobs/{job_id}/events?timeout=5"):
        if event["kind"].startswith("stage"):
            cached = " (cached)" if event.get("cached") else ""
            print(f"   {event['kind']:<12} {event['stage']}{cached}")
    print()

    # -- 3. artefact + verified provenance ---------------------------
    print("3. GET /jobs/<id>/artifact and /manifest")
    artifact = get(f"{base}/jobs/{job_id}/artifact")
    print(f"   artifact: {len(artifact.splitlines())} program lines")
    manifest = get(f"{base}/jobs/{job_id}/manifest")
    verdict = "OK" if not manifest["problems"] else manifest["problems"]
    print(f"   manifest: digests re-verified -> {verdict}\n")

    # -- 4. duplicates coalesce; repeats are cache hits --------------
    print("4. duplicate + repeat submissions")
    body = {"source": "ctrl", "config": "ea-full", "verify": 16}
    first = post(f"{base}/jobs", body)
    twin = post(f"{base}/jobs", body)  # identical & in flight
    if twin.get("coalesced_with"):
        print(f"   {twin['id']} coalesced with {twin['coalesced_with']}")
    else:  # first finished before the twin arrived: still one compile
        print(f"   {first['id']} finished before {twin['id']} was queued")
    server.store.wait_terminal(twin["id"], timeout=600)
    repeat = post(f"{base}/jobs", body)  # warm: pure cache hit
    server.store.wait_terminal(repeat["id"], timeout=600)
    counters = get(f"{base}/jobs/{repeat['id']}")["counters"]
    print(f"   warm repeat counters: {counters}\n")

    # -- 5. health + shutdown ----------------------------------------
    print("5. GET /stats, POST /shutdown")
    stats = get(f"{base}/stats")
    print(
        f"   jobs={stats['jobs']['done']} done "
        f"({stats['jobs']['coalesced']} coalesced), "
        f"disk entries={stats['disk']['entries']}"
    )
    print(f"   {post(f'{base}/shutdown')['status']}")
    server.close()


if __name__ == "__main__":
    main()
