#!/usr/bin/env python3
"""Section II of the paper: IMPLY-based logic-in-memory vs managed RM3.

Material implication (IMP) was the first stateful logic primitive for
memristive computing.  Its NAND gate [Borghetti et al., Nature 2010]
executes in three operations that all write the same *work* device, and
minimal schemes compute entire functions with just two work devices
[Lehtonen et al., 2010] — concentrating every write of the computation on
a couple of cells.  The paper uses this to motivate endurance management
for the majority-based PLiM computer.

This example synthesises the same function three ways and compares write
traffic:

1. IMP with an unbounded work pool (one device per live NAND value);
2. IMP with a bounded work pool (rematerialising scheduler);
3. RM3/PLiM with the paper's full endurance management, run as a
   ``repro.flow`` pipeline.

Run:  python examples/imp_vs_rm3.py
"""

from repro import Flow, Session
from repro.core.stats import WriteTrafficStats, gini_coefficient
from repro.imp import mig_to_nand, synthesize_imp, verify_imp_program
from repro.imp.synthesize import required_pool_estimate


def describe(label: str, instructions: int, counts) -> None:
    stats = WriteTrafficStats.from_counts(counts)
    hot = sorted(counts, reverse=True)[:5]
    print(
        f"{label:28s} ops={instructions:6d}  devices={len(counts):4d}  "
        f"max={stats.max_writes:4d}  stdev={stats.stdev:7.2f}  "
        f"gini={gini_coefficient(counts):.3f}  hottest={hot}"
    )


def main() -> None:
    bench = "cavlc"
    # from_env: honours $REPRO_SIM_BACKEND / $REPRO_CACHE_DIR if set
    session = Session.from_env(preset="tiny")
    mig = session.cache.benchmark_mig(bench, session.preset)
    print(
        f"function: {bench} ({mig.num_pis} inputs, "
        f"{mig.num_live_gates()} majority nodes)\n"
    )

    net = mig_to_nand(mig)
    print(
        f"NAND decomposition: {len(net.gates)} gates, depth {net.depth()}\n"
    )

    imp = synthesize_imp(net)
    assert verify_imp_program(imp, net)
    describe("IMP, unbounded pool", imp.num_instructions, imp.write_counts())

    pool = required_pool_estimate(net)
    bounded = synthesize_imp(net, work_devices=pool)
    assert verify_imp_program(bounded, net)
    describe(
        f"IMP, {pool}-device pool", bounded.num_instructions,
        bounded.write_counts(),
    )

    plim = Flow.for_config("ea-full", session=session).source(bench).run()
    describe(
        "RM3 + endurance management",
        plim.compilation.num_instructions,
        plim.program.write_counts(),
    )

    print()
    print("observations (the paper's Section II):")
    print(" * IMP needs several operations per gate and concentrates all")
    print("   of them on work devices (inputs are never written);")
    print(" * bounding the work pool trades instructions for even harder")
    print("   concentration — the 'two memristors suffice' regime is an")
    print("   endurance worst case;")
    print(" * the majority-native RM3 flow with endurance management")
    print("   spreads writes across the array at a fraction of the")
    print("   operation count.")


if __name__ == "__main__":
    main()
