#!/usr/bin/env python3
"""The architecture dimension: one benchmark across PLiM machine models.

The paper's endurance results are one point in a space of RRAM machine
models.  ``repro.arch`` makes the machine a pluggable value the compiler
targets: the DAC'16 crossbar without wear counters (``dac16``), the
paper's wear-tracked crossbar (``endurance``, the default), and a
word-addressed machine whose capacity is provisioned a whole 8-cell
line at a time (``blocked``).  This script sweeps a benchmark across
all three, shows where capability gaps fall (the endurance-oblivious
machine cannot run the minimum write count strategy at all), and
registers a custom wide-word machine to show the registry is open.

Run:  python examples/architectures.py
"""

import os

from repro import Session
from repro.arch import Architecture, Geometry, register_architecture
from repro.analysis.report import render_architecture_sweep
from repro.analysis.scenarios import architecture_sweep

PRESET = os.environ.get("REPRO_EXAMPLE_PRESET", "tiny")


def main() -> None:
    session = Session.from_env(preset=PRESET)

    print("Built-in machine models over one benchmark ('dec'):")
    print("(the dac16 machine has no wear counters, so every")
    print(" min-write-based configuration is a capability gap)\n")
    points = architecture_sweep(
        "dec",
        configs=("naive", "min-write", "ea-full"),
        session=session,
        verify=True,
    )
    print(render_architecture_sweep(points, title=f"dec @ {PRESET} preset"))
    print()

    # The registry is open: a custom machine is one dataclass away.
    register_architecture(
        Architecture(
            name="wide-word",
            geometry=Geometry(block_size=32),
            description="32-cell word lines (coarser provisioning)",
        ),
        overwrite=True,  # idempotent when the example is re-run in-process
    )
    print("A custom 32-cell-word machine, registered on the fly:")
    print("(coarser words waste more provisioned devices -> higher #R)\n")
    points = architecture_sweep(
        "dec",
        archs=("blocked", "wide-word"),
        configs=("ea-full",),
        session=session,
        verify=True,
    )
    print(
        render_architecture_sweep(
            points, title="word-size comparison, ea-full"
        )
    )
    print()
    print("observations:")
    print(" * the compiled instruction stream depends on the machine's")
    print("   cost table and allocator, not just the configuration;")
    print(" * word-addressed machines pay #R in whole lines — the tables")
    print("   report what the machine provisions, not what it touches;")
    print(" * every artefact above landed in one shared cache, keyed by")
    print("   architecture, so re-running this script is pure cache hits.")


if __name__ == "__main__":
    main()
