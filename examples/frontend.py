#!/usr/bin/env python3
"""Bring your own circuit: the Python-AST frontend and netlist import.

The registry benchmarks are not the only way into the pipeline.  This
example walks the two external routes of the ``repro.source`` layer:

1. decorate a plain Python function with ``@mig_function`` — its body
   (bitvector arithmetic, comparisons, if-expressions) elaborates into
   a Majority-Inverter Graph through the same word-level builders the
   registry benchmarks use;
2. run it through a ``Flow`` like any benchmark: the circuit is keyed
   by a content fingerprint of the *source text*, so artefacts persist
   in the experiment cache exactly like registry artefacts do;
3. cross-check the compiled RM3 program against the original Python
   semantics, input by input;
4. import a BLIF netlist from disk and send it down the same pipeline.

Run:  python examples/frontend.py
"""

import os
import tempfile

from repro import Flow, Session
from repro.mig import simulate_one
from repro.synth.frontend import mig_function


# Every parameter is a 4-bit unsigned word; `+` grows a carry bit,
# comparisons are unsigned, `x if cond else y` becomes a mux.
@mig_function(width=4)
def clamped_add(a, b, limit):
    total = a + b
    return total if total <= limit else limit


FULL_ADDER_BLIF = """\
.model fulladder
.inputs a b cin
.outputs sum cout
.names a b t
10 1
01 1
.names t cin sum
10 1
01 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
"""


def main() -> None:
    # --- 1. a Python function as a circuit -------------------------------
    mig = clamped_add.build()
    print(f"compiled {clamped_add.name!r}: {mig.num_pis} inputs, "
          f"{mig.num_pos} outputs, {mig.num_live_gates()} majority nodes")
    print(f"source fingerprint: {clamped_add.fingerprint[:16]}...")
    print()

    # The decorated function is still a plain Python callable, so the
    # circuit can be checked against the software semantics directly.
    a, b, limit = 9, 5, 12
    assignment = {}
    for name, value in (("a", a), ("b", b), ("limit", limit)):
        for i in range(4):
            assignment[f"{name}{i}"] = (value >> i) & 1
    bits = simulate_one(mig, assignment)
    word = sum(bits[mig.po_name(i)] << i for i in range(mig.num_pos))
    print(f"clamped_add({a}, {b}, limit={limit}): python="
          f"{clamped_add(a, b, limit)}  circuit={word}")
    print()

    # --- 2. the function through the full pipeline -----------------------
    session = Session()
    for config in ("naive", "ea-full"):
        result = (
            Flow.for_config(config, session=session)
            .source(clamped_add)        # any SourceLike works here
            .verify()
            .run()
        )
        stats = result.stats
        print(f"{config:10s} #I={result.compilation.num_instructions:4d} "
              f"#R={result.compilation.num_rrams:3d} "
              f"writes {stats.min_writes}/{stats.max_writes} "
              f"stdev {stats.stdev:.2f}")
    print()

    # --- 3. a netlist file through the same pipeline ----------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "fulladder.blif")
        with open(path, "w") as handle:
            handle.write(FULL_ADDER_BLIF)
        result = (
            Flow.for_config("ea-full", session=session)
            .source(path)               # .mig / .blif / .aag all work
            .verify()
            .run()
        )
        print(f"imported {result.mig.name!r} from BLIF: "
              f"{result.mig.num_pis} inputs -> "
              f"#I={result.compilation.num_instructions}, "
              f"stdev {result.stats.stdev:.2f}")
    print()
    print("the same sources work on the command line:")
    print("  python -m repro bench my_circuit.blif")
    print("  python -m repro sourcesweep adder my_circuit.blif")
    print("  REPRO_SOURCE=my_circuit.blif python -m repro bench")


if __name__ == "__main__":
    main()
