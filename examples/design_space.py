#!/usr/bin/env python3
"""Design-space exploration: the endurance / latency / area trade-off.

The paper's Table III shows that the maximum write count strategy exposes
a *knob*: tightening ``W_max`` buys write balance (endurance, lifetime)
with instructions (latency) and devices (area).  This example sweeps the
knob finely on one benchmark and prints the Pareto picture a designer
would use to pick an operating point — including the paper's observation
that ``W_max = 100`` is "a good trade-off".

All compilations are flows over one session, so they share the built
benchmark and the rewriting runs; ``REPRO_EXAMPLE_PRESET=tiny`` shrinks
the benchmark for a quick smoke run (the CI examples job uses this).

Run:  python examples/design_space.py [benchmark]
"""

import os
import sys

from repro import Flow, Session, PRESETS, full_management
from repro.plim.memory import TYPICAL_ENDURANCE_LOW, estimate_lifetime
from repro.synth.registry import BENCHMARK_ORDER


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "sin"
    if bench not in BENCHMARK_ORDER:
        raise SystemExit(f"unknown benchmark {bench!r}; pick from "
                         f"{', '.join(BENCHMARK_ORDER)}")
    session = Session.from_env(
        preset=os.environ.get("REPRO_EXAMPLE_PRESET", "default")
    )
    mig = session.cache.benchmark_mig(bench, session.preset)
    print(
        f"benchmark: {bench} ({mig.num_pis} inputs, "
        f"{mig.num_live_gates()} nodes)\n"
    )

    def compile_under(config):
        return Flow.for_config(config, session=session).source(bench).run()

    naive = compile_under(PRESETS["naive"]).compilation
    print(
        f"{'W_max':>6s} {'#I':>7s} {'#R':>6s} {'stdev':>8s} {'max':>5s} "
        f"{'lifetime (runs @1e10)':>22s} {'#I vs naive':>12s}"
    )

    def row(label, result):
        life = estimate_lifetime(
            result.program.write_counts(), endurance=TYPICAL_ENDURANCE_LOW
        )
        delta = (
            result.num_instructions / naive.num_instructions - 1.0
        ) * 100.0
        print(
            f"{label:>6s} {result.num_instructions:7d} "
            f"{result.num_rrams:6d} {result.stats.stdev:8.2f} "
            f"{result.stats.max_writes:5d} {life.executions:22,d} "
            f"{delta:+11.1f}%"
        )

    row("naive", naive)
    row("none", compile_under(PRESETS["ea-full"]).compilation)
    for cap in (200, 100, 50, 20, 10, 5):
        row(str(cap), compile_under(full_management(cap)).compilation)

    print()
    print("how to read this: moving down the table tightens the write")
    print("cap.  stdev and the hottest cell shrink (longer lifetime),")
    print("while instructions and devices grow.  The paper calls")
    print("W_max=100 a good trade-off; W_max=10 buys near-uniform traffic")
    print("at a visible area premium.")


if __name__ == "__main__":
    main()
