#!/usr/bin/env python3
"""Fault-tolerant experiment execution: the ``repro.resilience`` layer.

A 40-benchmark sweep that dies at benchmark 39 because one worker
process was OOM-killed is a wasted night.  The resilience layer makes
the harness survive exactly that class of failure — and proves it, by
*injecting real faults* and recovering from them:

1. a transient job failure, retried under the deterministic
   exponential-backoff policy;
2. a worker process calling ``os._exit`` mid-job, which breaks the
   whole process pool — the supervisor respawns it and resubmits only
   the unfinished jobs;
3. a wall-clock stage timeout interrupting a wedged computation;
4. the ``run_manifest.json`` provenance sidecars written next to every
   persisted experiment artefact, carrying the recovery history and
   re-verifiable artefact digests.

Everything is driven by the same knobs the CLI exposes:
``$REPRO_FAULTS`` (fault spec), ``--timeout`` / ``$REPRO_TIMEOUT``
(stage budgets), and ``repro manifest show|verify``.

Run:  python examples/resilience.py
"""

import os
import tempfile
import time

from repro import Session
from repro.resilience import (
    RetryPolicy,
    StageTimeoutError,
    events,
    iter_manifests,
    time_limit,
    verify_manifest,
)

PRESET = os.environ.get("REPRO_EXAMPLE_PRESET", "tiny")
BENCHMARKS = ["adder", "dec", "ctrl"]


def arm_faults(spec: str, ledger: str) -> None:
    """Point the ambient fault plan at *spec* with a fresh fire budget."""
    from repro.resilience import faults

    os.environ[faults.FAULTS_ENV_VAR] = spec
    os.environ[faults.LEDGER_ENV_VAR] = ledger
    faults._CACHED = None


def disarm_faults() -> None:
    from repro.resilience import faults

    os.environ.pop(faults.FAULTS_ENV_VAR, None)
    os.environ.pop(faults.LEDGER_ENV_VAR, None)
    faults._CACHED = None


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-resilience-")
    cache_dir = os.path.join(workdir, "cache")

    # -- 1. a transient job failure, retried -------------------------
    print("1. Transient failure -> deterministic retry")
    print("   REPRO_FAULTS=job_fail:job=dec:count=1\n")
    arm_faults(
        "job_fail:job=dec:count=1", os.path.join(workdir, "ledger1")
    )
    with events.capture() as log:
        Session(preset=PRESET).run_matrix(
            BENCHMARKS, ["naive"],
        )
    for event in log:
        if event["kind"] == "retry":
            print(f"   retried {event['job']!r} (attempt "
                  f"{event['attempt']}): {event['error']}")
    print("   matrix completed despite the injected failure\n")

    # -- 2. a dying worker process, pool respawned -------------------
    print("2. Worker crash (os._exit mid-job) -> pool respawn + retry")
    print("   REPRO_FAULTS=worker_crash:job=dec:count=1\n")
    arm_faults(
        "worker_crash:job=dec:count=1", os.path.join(workdir, "ledger2")
    )
    with events.capture() as log:
        evaluations = Session(
            preset=PRESET, cache_dir=cache_dir
        ).run_matrix(BENCHMARKS, ["naive"], parallel=2)
    disarm_faults()
    for event in log:
        if event["kind"] == "pool_respawn":
            print(f"   pool respawned; resubmitted jobs: {event['jobs']}")
        if event["kind"] == "retry":
            print(f"   retried {event['job']!r}: {event['error']}")
    print(f"   all {len(evaluations)} benchmarks completed\n")

    # -- 3. a wall-clock budget on a wedged stage --------------------
    print("3. Stage timeout: a wedged loop is interrupted")
    print('   (Session(timeouts="compile=120,job=600") / --timeout /'
          " $REPRO_TIMEOUT)\n")
    try:
        with time_limit(0.2, stage="compile", job="example"):
            while True:  # a compile stuck in a pathological case
                time.sleep(0.01)
    except StageTimeoutError as error:
        print(f"   interrupted: {error}")
    print("   (timeouts are permanent failures: a deterministic stage"
          " that blew its budget once would blow it again)\n")

    # -- 4. run manifests: provenance + recovery history -------------
    print("4. Run manifests next to every persisted artefact")
    print("   (repro manifest show / repro manifest verify)\n")
    checked = problems = 0
    shown = 0
    for path, manifest in iter_manifests(cache_dir):
        checked += 1
        problems += len(verify_manifest(path, manifest))
        if shown < 3:
            shown += 1
            kinds = sorted({
                e.get("kind", "?") for e in manifest.get("events", [])
            }) or ["-"]
            print(f"   {manifest.get('benchmark', '?'):8s} "
                  f"config={manifest.get('config', '?'):10s} "
                  f"sha256={manifest['artefact']['sha256'][:12]}... "
                  f"events={kinds}")
    print(f"\n   {checked} manifest(s), {problems} verification "
          "problem(s)")
    print("   (the crashed job's manifests carry its retry history;"
          " tampering")
    print("   with an artefact makes 'repro manifest verify' fail"
          " loudly)")

    # The retry policy itself is deterministic and inspectable:
    policy = RetryPolicy()
    delays = [round(policy.delay(n, key=("dec",)), 4) for n in (1, 2, 3)]
    print(f"\n   retry backoff for job 'dec': {delays} s"
          " (SHA-256-keyed jitter, no randomness)")


if __name__ == "__main__":
    main()
