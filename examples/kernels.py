#!/usr/bin/env python3
"""Simulation kernels: selection, threading, and the parity guarantee.

Bit-parallel MIG simulation runs on one of three interchangeable
kernels (``repro.mig.kernel``): **bigint** — Python integers as
simulation words, always available, the reference engine; **numpy** —
per-gate ``uint64`` lane rows; and **numpy-batch** — the level-batched
multi-core engine, which gathers each MIG level's operand rows into
contiguous 2-D arrays (a handful of large ufunc calls per level
instead of per-gate dispatch) and fans pattern chunks over a thread
pool.  All three are bit-identical on every routed operation, so this
script sweeps the same truth tables across the whole inventory and
diffs them, then shows the two knobs — backend and worker threads — at
every layer they surface: kernel scopes, ``Session`` arguments, and
the ``--backend``/``--sim-threads`` flags whose precedence mirrors
``$REPRO_SIM_BACKEND``/``$REPRO_SIM_THREADS``.

Run:  python examples/kernels.py
"""

import os
import time

from repro.flow import Session
from repro.mig import kernel
from repro.mig.simulate import equivalent, truth_tables
from repro.synth.arithmetic import build_multiplier

PRESET = os.environ.get("REPRO_EXAMPLE_PRESET", "tiny")

#: Multiplier operand width per preset: 2*W primary inputs, 2^(2W)
#: exhaustive patterns — big enough to time, small enough for CI.
WIDTH = {"tiny": 5, "paper": 8}.get(PRESET, 7)


def _timed_tables(mig):
    start = time.perf_counter()
    tables = truth_tables(mig)
    return tables, time.perf_counter() - start


def main() -> None:
    mig = build_multiplier(WIDTH)
    print(
        f"multiplier(width={WIDTH}): {mig.num_pis} inputs, "
        f"{mig.num_live_gates()} gates, "
        f"2^{mig.num_pis} exhaustive patterns\n"
    )

    print("Kernel inventory (auto prefers the last importable one):")
    auto = kernel.resolve_backend("auto")
    for name in kernel.available_backends():
        marker = "  <- auto" if name == auto.name else ""
        print(f"  {name}{marker}")
    print(
        f"worker threads resolve to {kernel.resolve_sim_threads()}  "
        "(explicit > $REPRO_SIM_THREADS > min(4, cpu_count))\n"
    )

    # -- 1. the parity guarantee: same tables from every kernel --------
    print("Exhaustive truth tables under each kernel:")
    reference = None
    for name in kernel.available_backends():
        with kernel.backend_scope(name):
            tables, seconds = _timed_tables(mig)
        if reference is None:
            reference, verdict = tables, "reference"
        else:
            verdict = (
                "bit-identical" if tables == reference else "MISMATCH"
            )
        print(f"  {name:<12} {seconds * 1e3:8.2f} ms   {verdict}")
    print()

    # -- 2. the worker pool: pattern chunks fanned over threads --------
    if kernel.numpy_available():
        print("numpy-batch across worker-pool sizes (same bits out):")
        with kernel.backend_scope("numpy-batch"):
            for threads in sorted({1, 2, kernel.DEFAULT_SIM_THREADS}):
                with kernel.sim_threads_scope(threads):
                    tables, seconds = _timed_tables(mig)
                assert tables == reference
                print(f"  {threads} thread(s)  {seconds * 1e3:8.2f} ms")
        print()
    else:
        print("numpy not importable: only the bigint kernel is loaded\n")

    # -- 3. the same knobs through a Session ---------------------------
    # Flow runs and matrix evaluations enter activated() on their own;
    # entering it by hand scopes hand-driven kernel APIs the same way.
    # On the command line the equivalent wiring is
    #   python -m repro table1 --backend numpy-batch --sim-threads 2
    session = Session(preset=PRESET, backend="auto", sim_threads=1)
    with session.activated() as active:
        print(
            f"Session(backend='auto', sim_threads=1) activates "
            f"{active.name!r} with {kernel.resolve_sim_threads()} thread(s)"
        )
        assert equivalent(mig, mig.clone())
    print("exhaustive equivalence vs a clone inside the session: OK\n")

    print("Also honoured by every kernel: $REPRO_SIM_CHUNK_BITS pins the")
    print("log2 chunk width (clamped to [7, 20]); and a kernel failure at")
    print("runtime demotes the affected job one step down the")
    print("numpy-batch -> numpy -> bigint chain with identical results.")


if __name__ == "__main__":
    main()
