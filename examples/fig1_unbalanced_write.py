#!/usr/bin/env python3
"""Fig. 1 of the paper: why area/latency-optimal compilation burns a hole
in the array.

The compiler prefers to *overwrite* a fanin's device with each node's
result (that is the free RM3 destination).  When the only legal
destination at every step is the previously computed value — single
fanout, non-complemented — the same physical device absorbs the whole
chain.  This script rebuilds the exact 4-node MIG of the paper's Fig. 1,
then scales the pathology with a parametric chain and shows how each
proposed technique responds.  Every compilation is a verified flow over
one shared session.

Run:  python examples/fig1_unbalanced_write.py
"""

from repro import Session
from repro.analysis.scenarios import evaluate_scenarios, fig1_chain, fig1_mig
from repro.core.manager import PRESETS, full_management
from repro.core.stats import write_histogram


def show(session, mig, configs) -> None:
    print(f"--- {mig.name}: {mig.num_live_gates()} nodes ---")
    scenario_results = evaluate_scenarios(
        mig, [config for _, config in configs], session=session, verify=True
    )
    for (label, _), (_, flow_result) in zip(configs, scenario_results):
        result = flow_result.compilation
        counts = result.program.write_counts()
        print(
            f"{label:12s} #I={result.num_instructions:4d} "
            f"#R={result.num_rrams:3d} max={result.stats.max_writes:3d} "
            f"stdev={result.stats.stdev:5.2f}  "
            f"histogram={write_histogram(counts, bins=6)}"
        )
    print()


def main() -> None:
    print("The exact MIG of Fig. 1 (A feeds B feeds C; D complemented):")
    print(fig1_mig().dump())
    print()

    session = Session()
    configs = [
        ("naive", PRESETS["naive"]),
        ("min-write", PRESETS["min-write"]),
        ("ea-full", PRESETS["ea-full"]),
        ("wmax=5", full_management(5)),
    ]

    show(session, fig1_mig(), configs)

    print("Scaling the pathology: a destination chain of length L forces")
    print("L writes onto one device unless the write cap intervenes:\n")
    for length in (8, 16, 32, 64):
        show(session, fig1_chain(length), configs)

    print("observations (the paper's Section III-B):")
    print(" * the minimum write strategy cannot fix this — the structure")
    print("   dictates the destination, not the allocator;")
    print(" * only the maximum write count strategy bounds the hot cell,")
    print("   paying instructions and devices for fresh destinations.")


if __name__ == "__main__":
    main()
