#!/usr/bin/env python3
"""Fig. 1 of the paper: why area/latency-optimal compilation burns a hole
in the array.

The compiler prefers to *overwrite* a fanin's device with each node's
result (that is the free RM3 destination).  When the only legal
destination at every step is the previously computed value — single
fanout, non-complemented — the same physical device absorbs the whole
chain.  This script rebuilds the exact 4-node MIG of the paper's Fig. 1,
then scales the pathology with a parametric chain and shows how each
proposed technique responds.

Run:  python examples/fig1_unbalanced_write.py
"""

from repro.analysis.scenarios import fig1_chain, fig1_mig
from repro.core.manager import PRESETS, compile_with_management, full_management
from repro.core.stats import write_histogram
from repro.plim.verify import verify_program


def show(mig, configs) -> None:
    print(f"--- {mig.name}: {mig.num_live_gates()} nodes ---")
    for label, config in configs:
        result = compile_with_management(mig, config)
        verify_program(result.program, mig)
        counts = result.program.write_counts()
        print(
            f"{label:12s} #I={result.num_instructions:4d} "
            f"#R={result.num_rrams:3d} max={result.stats.max_writes:3d} "
            f"stdev={result.stats.stdev:5.2f}  "
            f"histogram={write_histogram(counts, bins=6)}"
        )
    print()


def main() -> None:
    print("The exact MIG of Fig. 1 (A feeds B feeds C; D complemented):")
    print(fig1_mig().dump())
    print()

    configs = [
        ("naive", PRESETS["naive"]),
        ("min-write", PRESETS["min-write"]),
        ("ea-full", PRESETS["ea-full"]),
        ("wmax=5", full_management(5)),
    ]

    show(fig1_mig(), configs)

    print("Scaling the pathology: a destination chain of length L forces")
    print("L writes onto one device unless the write cap intervenes:\n")
    for length in (8, 16, 32, 64):
        show(fig1_chain(length), configs)

    print("observations (the paper's Section III-B):")
    print(" * the minimum write strategy cannot fix this — the structure")
    print("   dictates the destination, not the allocator;")
    print(" * only the maximum write count strategy bounds the hot cell,")
    print("   paying instructions and devices for fresh destinations.")


if __name__ == "__main__":
    main()
