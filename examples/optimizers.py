#!/usr/bin/env python3
"""The optimizer dimension: one benchmark across rewriting strategies.

The paper's Algorithm 2 is one fixed rewriting pipeline.  ``repro.opt``
generalises the rewrite stage into a cost-guided optimizer: pluggable
``RewritePass`` candidates, compile-free ``Objective`` cost functions
(including the architecture-aware estimated write cost, priced through
the target machine's cost model), and search strategies — ``script``
(the paper's pipelines, byte-identical), ``greedy`` (best candidate per
round), ``budget`` (bounded look-ahead).  This script sweeps one
benchmark across strategies, shows the compile-free objective next to
the measured instruction counts, crosses the sweep with a second
machine model (the same strategy re-prices its moves per architecture),
and registers a custom objective to show the registry is open.

Run:  python examples/optimizers.py
"""

import os

from repro import Session
from repro.analysis.report import render_optimizer_sweep
from repro.analysis.scenarios import optimizer_sweep
from repro.opt import Objective, register_objective

PRESET = os.environ.get("REPRO_EXAMPLE_PRESET", "tiny")
BENCH = "dec"


def main() -> None:
    session = Session.from_env(preset=PRESET)

    print("Rewriting strategies over one benchmark ('dec'):")
    print("(the 'objective' column is the compile-free estimate the")
    print(" search minimises; #I/#R are the measured compilation)\n")
    points = optimizer_sweep(
        BENCH,
        opts=("script", "greedy", "budget"),
        configs=("ea-full",),
        session=session,
        verify=True,
    )
    print(render_optimizer_sweep(
        points, title=f"{BENCH} @ {PRESET} preset, endurance machine"
    ))
    print()

    # The same strategies against a different machine: the write-cost
    # objective re-prices every candidate through the blocked machine's
    # cost model, so the search itself is architecture-aware.
    print("The same sweep targeting the word-addressed 'blocked' machine:")
    print("(#R grows to whole word lines; the greedy search now optimises")
    print(" under that machine's costs — artefacts are cached per machine)\n")
    from repro import Flow
    from repro.analysis.scenarios import OptSweepPoint
    from repro.opt import Optimizer, resolve_optimizer

    arch_points = []
    for opt in ("script", "greedy"):
        spec = resolve_optimizer(opt)
        result = (
            Flow.for_config("ea-full", session=session)
            .arch("blocked")
            .optimize(spec)
            .source(BENCH)
            .verify(16)
            .run()
        )
        arch_points.append(
            OptSweepPoint(
                opt=spec.label(),
                config="ea-full",
                result=result,
                objective=Optimizer(spec, result.architecture).score(
                    result.rewritten
                ),
            )
        )
    print(render_optimizer_sweep(
        arch_points, title=f"{BENCH} @ {PRESET} preset, blocked machine"
    ))
    print()

    # The registry is open: a custom objective is one dataclass away
    # and immediately works in specs, sweeps, and cache keys.
    register_objective(
        Objective(
            name="complement_edges",
            fn=lambda mig, arch: mig.num_complemented_edges(),
            description="total complemented edges",
        ),
        overwrite=True,  # idempotent when the example is re-run in-process
    )
    print("A custom objective ('complement_edges'), registered on the fly:\n")
    custom = optimizer_sweep(
        BENCH,
        opts=("script", "greedy:complement_edges"),
        configs=("ea-full",),
        session=session,
        verify=True,
    )
    print(render_optimizer_sweep(
        custom, title=f"{BENCH} @ {PRESET} preset, custom objective"
    ))


if __name__ == "__main__":
    main()
