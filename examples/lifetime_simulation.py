#!/usr/bin/env python3
"""Lifetime simulation: running a workload on a wear-limited RRAM array.

The paper argues write balancing extends array lifetime.  This example
closes the loop *dynamically*: it executes compiled programs over and
over on a behavioural array with a (scaled-down) endurance budget until
the first cell hard-fails, and compares how many evaluations each
compiler configuration survives — naive vs the full endurance-managed
stack of the paper.  Compilation routes through ``repro.flow``.

Run:  python examples/lifetime_simulation.py
"""

import random

from repro import Flow, Session, PRESETS, full_management
from repro.plim.controller import PlimController
from repro.plim.memory import EnduranceExhaustedError, RramArray, estimate_lifetime

#: Scaled-down endurance so the demo finishes in seconds.  Real cells
#: endure ~1e10-1e11 writes; lifetimes scale linearly.
DEMO_ENDURANCE = 2_000


def run_until_failure(program, num_inputs: int, seed: int = 1) -> int:
    """Execute *program* with random inputs until a cell wears out."""
    array = RramArray(program.num_cells, endurance=DEMO_ENDURANCE)
    controller = PlimController(array)
    rng = random.Random(seed)
    executions = 0
    while True:
        words = [rng.getrandbits(1) for _ in range(num_inputs)]
        try:
            controller.run(program, words)
        except EnduranceExhaustedError as failure:
            print(
                f"    first failure: cell {failure.cell} after "
                f"{executions} runs ({failure.writes} writes)"
            )
            return executions
        executions += 1


def main() -> None:
    bench = "sin"
    # from_env: honours $REPRO_SIM_BACKEND / $REPRO_CACHE_DIR if set
    session = Session.from_env(preset="tiny")
    mig = session.cache.benchmark_mig(bench, session.preset)
    print(
        f"workload: {bench} ({mig.num_pis} inputs, "
        f"{mig.num_live_gates()} nodes), per-cell endurance budget "
        f"{DEMO_ENDURANCE} writes\n"
    )

    results = {}
    for label, config in [
        ("naive", PRESETS["naive"]),
        ("ea-full", PRESETS["ea-full"]),
        ("ea-full + wmax=20", full_management(20)),
    ]:
        result = (
            Flow.for_config(config, session=session)
            .source(bench)
            .run()
            .compilation
        )
        static = estimate_lifetime(
            result.program.write_counts(), endurance=DEMO_ENDURANCE
        )
        print(
            f"{label}:\n"
            f"    #I={result.num_instructions}, #R={result.num_rrams}, "
            f"max writes/run={result.stats.max_writes}"
        )
        print(
            f"    static estimate: {static.executions} runs "
            f"(cell {static.first_failing_cell} dies first)"
        )
        measured = run_until_failure(result.program, mig.num_pis)
        assert measured == static.executions, "static model must be exact"
        results[label] = measured
        print()

    base = results["naive"]
    print("lifetime relative to the naive compiler:")
    for label, runs in results.items():
        print(f"    {label:20s} {runs:6d} runs   ({runs / base:.1f}x)")
    print()
    print("the static estimate (endurance / max-writes-per-run) matches")
    print("the dynamic simulation exactly, because PLiM write traffic is")
    print("static — every run issues the same RM3 stream.")


if __name__ == "__main__":
    main()
