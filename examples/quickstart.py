#!/usr/bin/env python3
"""Quickstart: compile a function for the PLiM computer with endurance
management and inspect the write traffic.

This walks the full pipeline of the reproduced paper on a small adder,
driven through the ``repro.flow`` API:

1. describe a Boolean function as a Majority-Inverter Graph (MIG);
2. declare a ``Flow`` per configuration — the incremental technique
   stack of the paper's Table I — over one shared ``Session``;
3. let the flow's verify stage check the compiled program against MIG
   simulation on the behavioural RRAM array;
4. compare the per-device write distributions and the implied array
   lifetime.

Run:  python examples/quickstart.py
"""

from repro import Flow, Session, PRESETS, full_management
from repro.plim.memory import estimate_lifetime
from repro.synth.arithmetic import build_adder


def main() -> None:
    # An 8-bit ripple-carry adder, built the way a naive tool flow would
    # translate it (AND/inverter style, no sharing recovery).
    mig = build_adder(width=8)
    print(f"function: {mig.name}  ({mig.num_pis} inputs, "
          f"{mig.num_pos} outputs, {mig.num_live_gates()} majority nodes)")
    print()

    # One session owns the experiment cache (and the backend/persistence
    # knobs); every flow below routes through it, so configurations with
    # a common rewriting script share one rewriting run.
    session = Session()

    configs = list(PRESETS.values()) + [full_management(10)]
    print(f"{'configuration':18s} {'#I':>6s} {'#R':>5s} "
          f"{'min/max':>9s} {'stdev':>7s} {'lifetime':>9s}")
    baseline_life = None
    for config in configs:
        # source -> rewrite -> compile -> verify, with per-stage caching;
        # the verify stage co-simulates program vs MIG on the array model.
        result = (
            Flow.for_config(config, session=session)
            .source_mig(mig)
            .verify()
            .run()
        )

        stats = result.stats
        life = estimate_lifetime(result.program.write_counts())
        if baseline_life is None:
            baseline_life = life.executions
        gain = life.executions / baseline_life
        print(
            f"{config.name:18s} {result.compilation.num_instructions:6d} "
            f"{result.compilation.num_rrams:5d} "
            f"{stats.min_writes:>4d}/{stats.max_writes:<4d} "
            f"{stats.stdev:7.2f} {gain:8.1f}x"
        )

    print()
    print("reading the table:")
    print(" * naive       — node translation only (the paper's baseline)")
    print(" * dac16       — the DAC'16 PLiM compiler (Algorithm 1 + its")
    print("                 area/latency node selection)")
    print(" * min-write   — + minimum write count strategy (same #I/#R!)")
    print(" * ea-rewrite  — + endurance-aware rewriting (Algorithm 2)")
    print(" * ea-full     — + endurance-aware selection (Algorithm 3)")
    print(" * +wmax10     — + maximum write count strategy (cap = 10)")
    print()
    print("lifetime = executions until the hottest cell exhausts a 1e10-")
    print("write endurance budget, relative to the naive compiler.")


if __name__ == "__main__":
    main()
