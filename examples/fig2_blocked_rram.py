#!/usr/bin/env python3
"""Fig. 2 of the paper: blocked RRAMs and endurance-aware node selection.

A value produced early but consumed late pins its device for most of the
program ("blocked RRAM"); its neighbours absorb the recycled traffic.
Algorithm 3 reverses the compiler's selection priority — candidates with
the *shortest storage duration* first — so producers of long-lived values
are scheduled as late as possible.

This script rebuilds the paper's 7-node Fig. 2 MIG, reports per-device
value lifetimes under both selection orders, then sweeps a parametric
"ladder" of blocked producers.  Compilations run as verified flows over
one shared session.

Run:  python examples/fig2_blocked_rram.py
"""

from repro import Session
from repro.analysis.scenarios import (
    evaluate_scenarios,
    fig2_ladder,
    fig2_mig,
    storage_pressure,
)


def report(session, mig) -> None:
    print(f"--- {mig.name}: {mig.num_live_gates()} nodes ---")
    for label, flow_result in evaluate_scenarios(
        mig, ("dac16", "ea-full"), session=session, verify=True
    ):
        result = flow_result.compilation
        longest, mean = storage_pressure(result.program)
        print(
            f"{label:8s} #I={result.num_instructions:4d} "
            f"max-writes={result.stats.max_writes:3d} "
            f"stdev={result.stats.stdev:5.2f} "
            f"longest-lifetime={longest:3d} mean={mean:5.1f}"
        )
    print()


def main() -> None:
    print("The exact MIG of Fig. 2 (A waits for the root G; B, C are")
    print("consumed immediately by D and E):")
    print(fig2_mig().dump())
    print()

    session = Session()
    report(session, fig2_mig())

    print("Ladders of blocked producers (each consumed only at the root):")
    print("the DAC'16 order computes them early and recycles around them;")
    print("Algorithm 3 defers them, spreading the writes.\n")
    for rungs in (4, 8, 16, 24):
        report(session, fig2_ladder(rungs))

    print("observations (the paper's Section III-B.4):")
    print(" * Algorithm 3 consistently lowers the write stdev and the")
    print("   hottest cell on blocked-producer structures;")
    print(" * blocking itself cannot be eliminated — the sequential PLiM")
    print("   execution always pins some values (the paper's closing")
    print("   remark on generic MIG-based in-memory architectures).")


if __name__ == "__main__":
    main()
