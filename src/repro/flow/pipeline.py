"""The :class:`Flow`: a declarative, cached, observable pass pipeline.

The paper's evaluation is one pipeline — build benchmark → MIG rewriting
(Algorithm 2) → node selection (Algorithm 3) → allocation → RM3
compilation → co-simulation verify → write-traffic statistics.  A
:class:`Flow` declares that pipeline stage by stage::

    from repro.flow import Flow, Session

    session = Session(cache_dir=".repro_cache")
    result = (
        Flow(session)
        .source("adder")            # registry benchmark (or .source_mig(mig))
        .compile("ea-full")         # preset name or EnduranceConfig
        .verify(patterns=64)        # co-simulate program vs MIG
        .run()
    )
    result.stats.stdev, result.program.num_instructions

or, for the common case of one endurance configuration end to end::

    result = Flow.for_config("ea-full", session=session).source("adder").run()

Every stage produces a typed :class:`StageArtifact` (value, cached flag,
wall-clock seconds), cached through the session's
:class:`~repro.analysis.runner.ExperimentCache` — and hence through the
content-addressed disk cache when the session is persistent, so a second
run hits every stage.  ``on_stage_start`` / ``on_stage_end`` hooks (per
flow and per session) observe the run for progress reporting and the
benchmark harness's ``BENCH_suite.json`` timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..arch import Architecture, DEFAULT_ARCHITECTURE, resolve_architecture
from ..core.manager import CompilationResult, EnduranceConfig, PRESETS
from ..core.stats import WriteTrafficStats
from ..opt import (
    DEFAULT_EFFORT,
    Optimizer,
    OptimizerSpec,
    resolve_optimizer,
)
from ..mig.graph import Mig
from ..plim.isa import Program
from ..resilience import time_limit
from ..source import MigSource, Source, SourceLike, resolve_source
from ..analysis.runner import mig_key
from .session import Session

#: Stage names in pipeline order.
STAGES: Tuple[str, ...] = ("source", "rewrite", "compile", "verify")


@dataclass(frozen=True)
class StageEvent:
    """One observer notification (start or end of a pipeline stage)."""

    stage: str
    flow: Optional[str] = None
    benchmark: Optional[str] = None
    config: Optional[str] = None
    #: Filled on end events only.
    cached: Optional[bool] = None
    seconds: Optional[float] = None

    def finished(self, *, seconds: float, cached: bool) -> "StageEvent":
        """The matching end event for this start event."""
        return _dc_replace(self, seconds=seconds, cached=cached)


@dataclass(frozen=True)
class StageArtifact:
    """What one stage produced: the value, provenance, and timing."""

    stage: str
    value: object
    #: Whether the artefact was served from the session cache (memory or,
    #: for registry benchmarks, the attached disk cache) without being
    #: recomputed.
    cached: bool
    seconds: float


@dataclass
class FlowResult:
    """Typed per-stage artefacts of one flow run."""

    mig: Mig
    rewritten: Mig
    compilation: CompilationResult
    verified_patterns: int = 0
    stages: Dict[str, StageArtifact] = field(default_factory=dict)
    #: The machine model the compile stage targeted.
    architecture: Optional[Architecture] = None
    #: The rewriting optimizer the rewrite stage ran.
    optimizer: Optional[OptimizerSpec] = None

    @property
    def program(self) -> Program:
        return self.compilation.program

    @property
    def stats(self) -> WriteTrafficStats:
        return self.compilation.stats

    @property
    def config(self) -> EnduranceConfig:
        return self.compilation.config


def _resolve_config(config: Union[str, EnduranceConfig]) -> EnduranceConfig:
    if isinstance(config, str):
        try:
            return PRESETS[config]
        except KeyError:
            raise ValueError(
                f"unknown configuration preset {config!r}; "
                f"choose one of: {', '.join(PRESETS)}"
            ) from None
    return config


class Flow:
    """Builder for one source → rewrite → compile → verify pipeline.

    Stage declarations (:meth:`source` / :meth:`source_mig`,
    :meth:`rewrite`, :meth:`compile`, :meth:`verify`) mutate the builder
    and return it, so declarations chain; :meth:`run` executes the
    pipeline through the session cache and returns a
    :class:`FlowResult`.  A flow can be run repeatedly — reruns are pure
    cache hits.
    """

    def __init__(self, session: Optional[Session] = None) -> None:
        self.session = session if session is not None else Session()
        self._source: Optional[Source] = None
        self._source_preset: Optional[str] = None
        self._config: Optional[EnduranceConfig] = None
        self._rewrite: Optional[Tuple[str, int]] = None
        self._verify_patterns: Optional[int] = None
        self._arch: "str | Architecture | None" = None
        self._opt: "str | OptimizerSpec | None" = None
        self._start_hooks: List[Callable[[StageEvent], None]] = []
        self._end_hooks: List[Callable[[StageEvent], None]] = []

    # -- declaration ---------------------------------------------------

    @classmethod
    def for_config(
        cls,
        config: Union[str, EnduranceConfig],
        *,
        session: Optional[Session] = None,
    ) -> "Flow":
        """A flow whose rewrite/compile stages follow *config*."""
        return cls(session).compile(config)

    @classmethod
    def for_job(
        cls,
        source: SourceLike,
        config: Union[str, EnduranceConfig],
        *,
        preset: Optional[str] = None,
        arch: "str | Architecture | None" = None,
        opt: "str | OptimizerSpec | None" = None,
        verify: Optional[int] = None,
        session: Optional[Session] = None,
    ) -> "Flow":
        """The job-shaped entry: one call declaring a whole pipeline.

        Everything a self-contained compilation job specifies — source,
        configuration, machine model, optimizer, verification width —
        in one declaration, so job-oriented callers (the
        :mod:`repro.serve` queue, scripts replaying a service job
        serially) build identical flows from identical parameters::

            result = Flow.for_job(
                "adder", "ea-full", arch="blocked", verify=64,
                session=session,
            ).run()
        """
        flow = cls(session).source(source, preset).compile(config)
        if arch is not None:
            flow.arch(arch)
        if opt is not None:
            flow.optimize(opt)
        if verify is not None:
            flow.verify(verify)
        return flow

    def source(
        self, source: SourceLike, preset: Optional[str] = None
    ) -> "Flow":
        """Declare where the circuit under evaluation comes from.

        *source* is anything :func:`repro.source.resolve_source`
        accepts: a registry benchmark name (today's path, built through
        the session cache exactly as before), a netlist path
        (``.mig``/``.blif``/``.aag``), an explicit
        :class:`~repro.source.Source`, a built
        :class:`~repro.mig.graph.Mig`, or a
        :func:`~repro.synth.frontend.mig_function` decorated function.
        External circuits persist — and fan out — under their stable
        content fingerprints, so they hit both cache tiers like
        registry benchmarks do.  *preset* only affects registry
        sources (defaults to the session's).
        """
        self._source = resolve_source(source)
        self._source_preset = preset
        return self

    def source_mig(self, mig: Mig) -> "Flow":
        """Take an explicit, already-built MIG.

        Equivalent to ``source(mig)``: the graph is keyed by its
        content fingerprint, so downstream artefacts persist in the
        disk cache and repeat runs hit every stage.
        """
        return self.source(MigSource(mig))

    def rewrite(self, script: str, *, effort: int = DEFAULT_EFFORT) -> "Flow":
        """Override the rewriting stage (defaults to the config's script)."""
        self._rewrite = (script, effort)
        return self

    def compile(self, config: Union[str, EnduranceConfig]) -> "Flow":
        """Set the endurance configuration (preset name or explicit)."""
        self._config = _resolve_config(config)
        return self

    def verify(self, patterns: int = 64) -> "Flow":
        """Append a co-simulation verify stage (program vs MIG)."""
        self._verify_patterns = patterns
        return self

    def arch(self, arch: "str | Architecture") -> "Flow":
        """Target a specific machine model (overrides the session's).

        *arch* is a registry name or an explicit
        :class:`repro.arch.Architecture`; unset, the session's
        architecture (``--arch`` / ``$REPRO_ARCH`` / default) applies.
        Per-flow overrides are how architecture sweeps share one
        session cache — artefacts are keyed by machine.
        """
        self._arch = arch
        return self

    def optimize(self, opt: "str | OptimizerSpec") -> "Flow":
        """Run the rewrite stage through a specific optimizer.

        *opt* is an :class:`repro.opt.OptimizerSpec` or its compact
        string form (``"greedy:node_count"``); unset, the session's
        optimizer (``--opt`` / ``$REPRO_OPT`` / the ``script`` default)
        applies.  Per-flow overrides are how optimizer sweeps share one
        session cache — artefacts are keyed by optimizer.
        """
        self._opt = opt
        return self

    def on_stage_start(self, hook: Callable[[StageEvent], None]) -> "Flow":
        self._start_hooks.append(hook)
        return self

    def on_stage_end(self, hook: Callable[[StageEvent], None]) -> "Flow":
        self._end_hooks.append(hook)
        return self

    # -- execution -----------------------------------------------------

    def _effective_config(self) -> EnduranceConfig:
        config = self._config if self._config is not None else PRESETS["naive"]
        if self._rewrite is not None:
            script, effort = self._rewrite
            config = _dc_replace(config, rewriting=script, effort=effort)
        return config

    def _emit_start(self, event: StageEvent) -> None:
        for hook in self._start_hooks:
            hook(event)
        self.session.emit("on_stage_start", event)

    def _emit_end(self, event: StageEvent) -> None:
        for hook in self._end_hooks:
            hook(event)
        self.session.emit("on_stage_end", event)

    def run(self) -> FlowResult:
        """Execute the declared pipeline and return its artefacts."""
        source = (
            self._source
            if self._source is not None
            else self.session.default_source
        )
        if source is None:
            raise ValueError(
                "flow has no source; declare .source(benchmark) or "
                ".source_mig(mig) before running (or set "
                "Session(source=...)/$REPRO_SOURCE)"
            )
        preset = self._source_preset or self.session.preset
        config = self._effective_config()
        cache = self.session.cache
        machine = (
            resolve_architecture(self._arch)
            if self._arch is not None
            else self.session.architecture
        )
        opt_spec = (
            resolve_optimizer(self._opt)
            if self._opt is not None
            else self.session.optimizer
        )
        optimizer = Optimizer(opt_spec, machine)
        label = f"{source.label(preset)}/{config.name}"
        if machine.name != DEFAULT_ARCHITECTURE:
            label += f"#{machine.name}"
        if opt_spec.strategy != "script":
            label += f"!{opt_spec.label()}"
        stages: Dict[str, StageArtifact] = {}

        timeouts = self.session.timeouts

        def stage(name: str, benchmark: Optional[str], work, cached_probe):
            event = StageEvent(
                stage=name, flow=label, benchmark=benchmark, config=config.name
            )
            self._emit_start(event)
            start = time.perf_counter()
            cached = bool(cached_probe())
            # Enforce the session's per-stage wall-clock budget
            # (Session(timeouts=...) / --timeout / $REPRO_TIMEOUT); a
            # blown budget raises StageTimeoutError instead of wedging
            # the flow.
            with time_limit(
                timeouts.limit(name), stage=name, job=benchmark or ""
            ):
                value = work()
            seconds = time.perf_counter() - start
            stages[name] = StageArtifact(
                stage=name, value=value, cached=cached, seconds=seconds
            )
            self._emit_end(event.finished(seconds=seconds, cached=cached))
            return value

        with self.session.activated():
            # source: build (or fetch) the graph under evaluation —
            # registry benchmarks through their classic (name, preset)
            # keys, external sources under their content fingerprints
            mig = stage(
                "source",
                source.name,
                lambda: cache.source_mig(source, preset),
                lambda: cache.cached_source_mig(source, preset) is not None,
            )
            bench_name = mig.name
            graph_id = mig_key(mig)

            # rewrite: shared by every config running the same script
            # through the same optimizer
            rewritten = stage(
                "rewrite",
                bench_name,
                lambda: cache.rewritten(
                    mig, config.rewriting, config.effort, key=graph_id,
                    optimizer=optimizer,
                ),
                lambda: cache.has_rewritten(
                    graph_id, config.rewriting, config.effort,
                    optimizer=optimizer,
                ),
            )

            # compile: selection + allocation + RM3 emission + stats,
            # targeting the resolved machine model
            compilation = stage(
                "compile",
                bench_name,
                lambda: cache.compile(
                    mig, config, key=graph_id, arch=machine,
                    optimizer=optimizer,
                ),
                lambda: cache.has(
                    graph_id, config, arch=machine, optimizer=optimizer
                ),
            )

            # verify: co-simulate program vs MIG (certificate-cached)
            verified = 0
            if self._verify_patterns is not None:
                patterns = self._verify_patterns
                stage(
                    "verify",
                    bench_name,
                    lambda: cache.verify(
                        mig, config, key=graph_id, patterns=patterns,
                        arch=machine, optimizer=optimizer,
                    ),
                    lambda: cache.has(
                        graph_id, config, verified_patterns=patterns,
                        arch=machine, optimizer=optimizer,
                    ),
                )
                verified = patterns

        return FlowResult(
            mig=mig,
            rewritten=rewritten,
            compilation=compilation,
            verified_patterns=verified,
            stages=stages,
            architecture=machine,
            optimizer=opt_spec,
        )
