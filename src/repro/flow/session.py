"""The :class:`Session`: one object owning every cross-cutting concern.

The harness resolves the same knobs over and over — which
simulation-kernel backend to use (``$REPRO_SIM_BACKEND``) and how many
simulation worker threads it may spin up (``$REPRO_SIM_THREADS`` /
``--sim-threads``), whether and
where to persist experiment artefacts (``$REPRO_CACHE_DIR`` /
``--cache-dir``), whether to route them through a shared cache server
(``$REPRO_CACHE_URL`` / ``--cache-url``, see :mod:`repro.cachesvc`),
which PLiM machine model to target (``$REPRO_ARCH`` /
``--arch``, see :mod:`repro.arch`), which rewriting optimizer to run
(``$REPRO_OPT`` / ``--opt``, see :mod:`repro.opt`), which circuit
source to evaluate by default (``$REPRO_SOURCE`` / ``--source``, see
:mod:`repro.source`), how many worker
processes to fan out over, and which benchmark width preset to build.  Before this module
each entry point
(CLI subcommands, table runners, benchmark conftest, examples) re-derived
them independently; a :class:`Session` resolves them once and everything
downstream — :class:`repro.flow.Flow` pipelines, matrix evaluations,
report generation — routes through it.

Construction
------------
* ``Session(backend=..., cache_dir=..., parallel=..., preset=...)`` —
  explicit; ``None`` fields mean "no override" (ambient backend
  selection, no persistence, serial, default widths).
* :meth:`Session.from_env` — reads ``$REPRO_SIM_BACKEND`` and
  ``$REPRO_CACHE_DIR``.
* :meth:`Session.from_args` — from an ``argparse`` namespace, applying
  the uniform precedence **flag > environment > none** for the cache
  directory.  :meth:`Session.add_arguments` installs the matching
  options on a parser, so every CLI subcommand shares one definition.

Sessions are picklable *by spec*: :meth:`Session.spec` captures the
resolved knobs in a :class:`SessionSpec`, and worker processes rebuild
an equivalent session with :meth:`Session.from_spec` — this is how
``run_matrix`` ships backend + cache-root selection across the process
boundary.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..arch import (
    Architecture,
    arch_from_env,
    available_architectures,
    resolve_architecture,
)
from ..opt import (
    DEFAULT_EFFORT,
    OptimizerSpec,
    opt_from_env,
    resolve_optimizer,
)
from ..mig.kernel import (
    BACKEND_ENV_VAR,
    backend_scope,
    get_kernel,
    resolve_backend,
    resolve_sim_threads,
    sim_threads_from_env,
    sim_threads_scope,
)
from ..resilience import Timeouts, resolve_timeouts
from ..source import (
    Source,
    SourceLike,
    resolve_source,
    source_from_env,
)
from ..analysis.diskcache import DiskCache, resolve_cache_dir
from ..cachesvc.client import resolve_cache_url
from ..analysis.runner import (
    BenchmarkEvaluation,
    ConfigLike,
    ExperimentCache,
    TABLE1_PRESETS,
    run_matrix as _run_matrix,
)

#: Benchmark width presets understood by the synthesis registry.
PRESET_CHOICES: List[str] = ["tiny", "default", "paper"]

#: Simulation backends selectable per session (see repro.mig.kernel).
BACKEND_CHOICES: List[str] = ["auto", "bigint", "numpy", "numpy-batch"]


@dataclass(frozen=True)
class SessionSpec:
    """Picklable capture of a session's resolved knobs.

    Worker processes cannot inherit live caches or kernel overrides, so
    :func:`repro.analysis.runner.run_matrix` ships this spec instead and
    each worker rebuilds an equivalent :class:`Session` from it.
    ``parallel`` is deliberately absent from what workers adopt — a
    worker never fans out again.  ``arch`` is a registry name (custom
    architectures must be registered in the worker too, e.g. at module
    import); ``None`` defers to the worker's ambient
    ``$REPRO_ARCH``/default resolution, which matches the parent's.
    ``opt`` is a canonical optimizer spec string (see
    :meth:`repro.opt.OptimizerSpec.label`) with the same ``None``
    semantics against ``$REPRO_OPT``.
    """

    backend: Optional[str] = None
    cache_dir: Optional[str] = None
    #: Shared cache-server URL (see :mod:`repro.cachesvc`); workers
    #: talk to the same server as the parent, so single-flight leases
    #: span the whole pool.  ``None`` means direct disk access.
    cache_url: Optional[str] = None
    preset: str = "default"
    #: Simulation worker-thread count; ``None`` defers to the worker's
    #: ambient ``$REPRO_SIM_THREADS``/default resolution.
    sim_threads: Optional[int] = None
    arch: Optional[str] = None
    opt: Optional[str] = None
    #: Default circuit source as a resolvable string (registry name or
    #: netlist path); ``None`` defers to the worker's ambient
    #: ``$REPRO_SOURCE``.  Non-string sources (bare graphs, frontend
    #: functions) are not spec-representable and ship as ``None``.
    source: Optional[str] = None
    #: Per-stage wall-clock budgets as a canonical spec string (see
    #: :meth:`repro.resilience.Timeouts.spec`); ``None`` defers to the
    #: worker's ambient ``$REPRO_TIMEOUT``.
    timeouts: Optional[str] = None


class Session:
    """Owns backend, experiment cache, parallelism, and width preset.

    The session's :attr:`cache` is a single
    :class:`~repro.analysis.runner.ExperimentCache` shared by every flow
    and matrix evaluation routed through it, disk-backed when a cache
    directory is configured.  Observers registered with
    :meth:`add_observer` receive the :class:`~repro.flow.StageEvent`
    stream of every flow run in this session (plus matrix-level events),
    which is how progress reporting and ``BENCH_suite.json`` timings are
    fed.
    """

    def __init__(
        self,
        *,
        backend: Optional[str] = None,
        sim_threads: Optional[int] = None,
        cache_dir: "str | os.PathLike[str] | None" = None,
        cache_url: Optional[str] = None,
        parallel: Optional[int] = None,
        preset: str = "default",
        cache: Optional[ExperimentCache] = None,
        arch: "str | Architecture | None" = None,
        opt: "str | OptimizerSpec | None" = None,
        source: SourceLike = None,
        timeouts: "str | float | Timeouts | None" = None,
    ) -> None:
        if backend is not None:
            resolve_backend(backend)  # fail fast on unknown/unavailable
        self.backend = backend
        # Simulation worker threads: explicit > $REPRO_SIM_THREADS >
        # kernel default; validated now so a bad count fails at
        # construction, like the backend.
        if sim_threads is not None:
            sim_threads = resolve_sim_threads(sim_threads)
        self.sim_threads = sim_threads
        self.parallel = parallel
        self.preset = preset
        # Per-stage wall-clock budgets: explicit > $REPRO_TIMEOUT > none
        # (fails fast on a malformed spec, like the other knobs).
        self.timeouts = resolve_timeouts(timeouts)
        # Default circuit source: resolve an explicit one now (fail fast
        # on unknown names / missing files); None defers to ambient
        # $REPRO_SOURCE at use time.  Flows that declare their own
        # source ignore this knob.
        self._source = resolve_source(source) if source is not None else None
        # The spec-shippable string form: only string selections (names,
        # paths) can be resolved again in a worker process.  Registry
        # sources round-trip by name either way.
        if isinstance(source, str):
            self._source_spec: Optional[str] = source
        elif self._source is not None and self._source.kind == "registry":
            self._source_spec = self._source.name
        else:
            self._source_spec = None
        self.source = (
            self._source.name if self._source is not None else None
        )
        # Resolve an explicit architecture now (fail fast on unknown
        # names); None defers to ambient $REPRO_ARCH/default at use time.
        self._architecture = (
            resolve_architecture(arch) if arch is not None else None
        )
        self.arch = (
            self._architecture.name if self._architecture is not None else None
        )
        # Same contract for the rewriting optimizer ($REPRO_OPT).
        self._optimizer = (
            OptimizerSpec.parse(opt) if opt is not None else None
        )
        self.opt = (
            self._optimizer.label() if self._optimizer is not None else None
        )
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.cache_url = str(cache_url) if cache_url else None
        if cache is not None:
            # Adopt an existing cache (legacy shims, shared harnesses);
            # its disk root — possibly none — wins over the cache_dir
            # argument, so the session never claims persistence the
            # adopted cache doesn't have.
            self.cache = cache
            self.cache_dir = (
                str(getattr(cache.disk, "root", None) or "") or None
                if cache.disk is not None
                else None
            )
            self.cache_url = getattr(cache.disk, "url", None)
        elif self.cache_url is not None:
            # Shared cache server: the RemoteCache slots in where the
            # DiskCache went, falling back to direct disk access at
            # cache_dir (if any) when the server is unreachable.
            from ..cachesvc.client import RemoteCache  # deferred: heavy

            remote = RemoteCache(self.cache_url, root=self.cache_dir)
            self.cache = ExperimentCache(disk=remote)
        else:
            disk = DiskCache(self.cache_dir) if self.cache_dir else None
            self.cache = ExperimentCache(disk=disk)
        self._observers: list = []

    # -- construction ------------------------------------------------

    @classmethod
    def from_env(
        cls,
        *,
        preset: Optional[str] = None,
        parallel: Optional[int] = None,
    ) -> "Session":
        """Session configured from ``$REPRO_SIM_BACKEND`` /
        ``$REPRO_CACHE_DIR`` / ``$REPRO_ARCH`` / ``$REPRO_OPT``."""
        backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or None
        return cls(
            backend=backend,
            sim_threads=sim_threads_from_env(),
            cache_dir=resolve_cache_dir(),
            cache_url=resolve_cache_url(),
            parallel=parallel,
            preset=preset or "default",
            arch=arch_from_env(),
            opt=opt_from_env(),
            source=source_from_env(),
        )

    @classmethod
    def from_args(cls, args, *, preset: Optional[str] = None) -> "Session":
        """Session from an ``argparse`` namespace (see :meth:`add_arguments`).

        Missing attributes fall back exactly like absent flags: the
        cache directory resolves flag > environment > none, the backend
        defaults to ambient selection, parallelism to serial.
        """
        return cls(
            backend=getattr(args, "backend", None),
            sim_threads=getattr(args, "sim_threads", None),
            cache_dir=resolve_cache_dir(getattr(args, "cache_dir", None)),
            cache_url=resolve_cache_url(getattr(args, "cache_url", None)),
            parallel=getattr(args, "parallel", None),
            preset=getattr(args, "preset", None) or preset or "default",
            arch=getattr(args, "arch", None),
            opt=getattr(args, "opt", None),
            source=getattr(args, "source", None),
            timeouts=getattr(args, "timeout", None),
        )

    @staticmethod
    def add_arguments(
        parser,
        *,
        preset: bool = True,
        parallel: bool = True,
        cache: bool = True,
        backend: bool = True,
        arch: bool = True,
        opt: bool = True,
        source: bool = False,
        timeout: bool = True,
    ):
        """Install the session options on an ``argparse`` parser.

        One definition shared by every CLI subcommand; the boolean
        switches let scenario commands opt out of options that cannot
        affect them.
        """
        if preset:
            parser.add_argument(
                "--preset",
                default="default",
                choices=PRESET_CHOICES,
                help="benchmark width preset (paper = the paper's sizes)",
            )
        if backend:
            parser.add_argument(
                "--backend",
                default=None,
                choices=BACKEND_CHOICES,
                help=(
                    "simulation-kernel backend (default: $REPRO_SIM_BACKEND "
                    "if set, else auto-detection)"
                ),
            )
            parser.add_argument(
                "--sim-threads",
                type=int,
                default=None,
                metavar="N",
                help=(
                    "simulation worker threads for the numpy-batch kernel "
                    "(default: $REPRO_SIM_THREADS if set, else "
                    "min(4, cpu count))"
                ),
            )
        if arch:
            parser.add_argument(
                "--arch",
                default=None,
                choices=available_architectures(),
                help=(
                    "target PLiM machine model (default: $REPRO_ARCH if "
                    "set, else the paper's 'endurance' machine)"
                ),
            )
        if source:
            parser.add_argument(
                "--source",
                default=None,
                metavar="NAME_OR_PATH",
                help=(
                    "circuit source: a registry benchmark name or a "
                    "netlist path (.mig/.blif/.aag) (default: "
                    "$REPRO_SOURCE if set; see 'repro source list')"
                ),
            )
        if opt:
            parser.add_argument(
                "--opt",
                default=None,
                metavar="SPEC",
                help=(
                    "rewriting optimizer spec, STRATEGY[:OBJECTIVE][@DEPTH] "
                    "— e.g. 'script', 'greedy', 'budget:write_cost@3' "
                    "(default: $REPRO_OPT if set, else the paper's fixed "
                    "scripts; see 'repro opt list')"
                ),
            )
        if timeout:
            parser.add_argument(
                "--timeout",
                default=None,
                metavar="SPEC",
                help=(
                    "per-stage wall-clock budget in seconds, "
                    "[STAGE=]SECONDS[,...] — e.g. '30' or "
                    "'compile=120,verify=30,job=600' (default: "
                    "$REPRO_TIMEOUT if set, else unlimited)"
                ),
            )
        if parallel:
            parser.add_argument(
                "--parallel",
                type=int,
                default=None,
                metavar="N",
                help="fan benchmarks out over N worker processes",
            )
        if cache:
            parser.add_argument(
                "--cache-dir",
                default=None,
                metavar="DIR",
                help=(
                    "persist built/compiled artefacts under DIR across runs "
                    "(default: $REPRO_CACHE_DIR if set, else no persistence)"
                ),
            )
            parser.add_argument(
                "--cache-url",
                default=None,
                metavar="URL",
                help=(
                    "route artefacts through a shared cache server "
                    "(see 'repro cachesvc serve'; default: "
                    "$REPRO_CACHE_URL if set, else direct disk access)"
                ),
            )
        return parser

    # -- spec (process boundary) ---------------------------------------

    def spec(self) -> SessionSpec:
        """Picklable spec a worker process rebuilds this session from."""
        return SessionSpec(
            backend=self.backend,
            cache_dir=self.cache_dir,
            cache_url=self.cache_url,
            preset=self.preset,
            sim_threads=self.sim_threads,
            arch=self.arch,
            opt=self.opt,
            source=self._source_spec,
            timeouts=self.timeouts.spec(),
        )

    @classmethod
    def from_spec(cls, spec: SessionSpec) -> "Session":
        return cls(
            backend=spec.backend,
            cache_dir=spec.cache_dir,
            cache_url=getattr(spec, "cache_url", None),
            preset=spec.preset,
            sim_threads=getattr(spec, "sim_threads", None),
            arch=getattr(spec, "arch", None),
            opt=getattr(spec, "opt", None),
            source=getattr(spec, "source", None),
            timeouts=getattr(spec, "timeouts", None),
        )

    # -- backend -------------------------------------------------------

    @property
    def kernel(self):
        """The simulation kernel this session resolves to."""
        if self.backend is not None:
            return resolve_backend(self.backend)
        return get_kernel()

    # -- architecture --------------------------------------------------

    @property
    def architecture(self) -> Architecture:
        """The target machine model this session resolves to.

        An explicit ``Session(arch=...)`` wins; otherwise the ambient
        selection (``$REPRO_ARCH``, else the default ``endurance``
        machine) applies at access time, mirroring :attr:`kernel`.
        """
        if self._architecture is not None:
            return self._architecture
        return resolve_architecture(None)

    @property
    def optimizer(self) -> OptimizerSpec:
        """The rewriting optimizer this session resolves to.

        An explicit ``Session(opt=...)`` wins; otherwise the ambient
        selection (``$REPRO_OPT``, else the ``script`` default) applies
        at access time, mirroring :attr:`architecture`.
        """
        if self._optimizer is not None:
            return self._optimizer
        return resolve_optimizer(None)

    @property
    def default_source(self) -> Optional[Source]:
        """The default circuit source this session resolves to, if any.

        An explicit ``Session(source=...)`` wins; otherwise the ambient
        ``$REPRO_SOURCE`` selection applies at access time, mirroring
        :attr:`architecture`.  Unlike the other knobs there is no final
        default — ``None`` means flows must declare their own source.
        """
        if self._source is not None:
            return self._source
        env = source_from_env()
        return resolve_source(env) if env is not None else None

    @property
    def disk(self) -> Optional[DiskCache]:
        """The attached persistent cache, if any."""
        return self.cache.disk

    @contextmanager
    def activated(self):
        """Context manager installing this session's simulation overrides.

        Enters the backend scope and the simulation-thread scope
        together; ``None`` knobs are no-op scopes (ambient selection
        applies), and the previous overrides are restored on exit, so
        sessions nest.  Flow runs and matrix evaluations enter this
        scope themselves — call it directly only when driving
        kernel-level APIs by hand.  Yields the active kernel.
        """
        with backend_scope(self.backend) as kernel:
            with sim_threads_scope(self.sim_threads):
                yield kernel

    # -- observers -------------------------------------------------------

    def add_observer(self, observer):
        """Register an observer for this session's stage events.

        An observer is any object with (optional) ``on_stage_start(event)``
        / ``on_stage_end(event)`` methods; events are
        :class:`repro.flow.StageEvent` instances.  Returns *observer* so
        registration can be inlined.
        """
        self._observers.append(observer)
        return observer

    def remove_observer(self, observer) -> None:
        self._observers.remove(observer)

    def emit(self, hook: str, event) -> None:
        """Dispatch *event* to every observer implementing *hook*."""
        for observer in list(self._observers):
            fn = getattr(observer, hook, None)
            if fn is not None:
                fn(event)

    # -- matrix evaluation -------------------------------------------

    def flow(self, config: ConfigLike = "naive") -> "Flow":
        """A fresh :class:`repro.flow.Flow` bound to this session."""
        from .pipeline import Flow

        return Flow.for_config(config, session=self)

    def run_matrix(
        self,
        benchmarks: Optional[Iterable[str]] = None,
        configs: Optional[Sequence[ConfigLike]] = None,
        *,
        caps: Optional[Sequence[int]] = None,
        effort: int = DEFAULT_EFFORT,
        verify: bool = False,
        verify_patterns: int = 64,
        parallel: Optional[int] = None,
    ) -> List[BenchmarkEvaluation]:
        """Evaluate a benchmarks x configurations matrix in this session.

        Delegates to :func:`repro.analysis.runner.run_matrix` with the
        session's cache, preset, and parallelism; worker processes are
        rebuilt from :meth:`spec`.  Emits ``"matrix"`` stage events to
        the session observers around the whole evaluation.
        """
        from .pipeline import StageEvent  # deferred: pipeline imports session

        names = (
            list(benchmarks)
            if benchmarks is not None
            else None
        )
        event = StageEvent(
            stage="matrix",
            flow=f"matrix[{len(names) if names is not None else 'all'}x"
            f"{len(configs) if configs is not None else len(TABLE1_PRESETS)}]",
            benchmark=None,
            config=None,
        )
        self.emit("on_stage_start", event)
        start = time.perf_counter()
        with self.activated():
            evaluations = _run_matrix(
                names,
                configs,
                preset=self.preset,
                caps=caps,
                effort=effort,
                verify=verify,
                verify_patterns=verify_patterns,
                parallel=parallel if parallel is not None else self.parallel,
                cache=self.cache,
                session=self,
            )
        self.emit(
            "on_stage_end",
            event.finished(seconds=time.perf_counter() - start, cached=False),
        )
        return evaluations

    def evaluate_suite(
        self,
        names: Optional[Iterable[str]] = None,
        *,
        configs: Optional[Sequence[str]] = None,
        caps: Optional[Sequence[int]] = None,
        effort: int = DEFAULT_EFFORT,
        verify: bool = True,
        verify_patterns: int = 64,
        parallel: Optional[int] = None,
    ) -> List[BenchmarkEvaluation]:
        """The paper's suite evaluation (default: all 18 benchmarks,
        Table I configuration columns, verified)."""
        return self.run_matrix(
            names,
            configs if configs is not None else list(TABLE1_PRESETS),
            caps=caps,
            effort=effort,
            verify=verify,
            verify_patterns=verify_patterns,
            parallel=parallel,
        )

    def full_report(
        self,
        names: Optional[Iterable[str]] = None,
        *,
        caps: Optional[Sequence[int]] = None,
        effort: int = DEFAULT_EFFORT,
        verify: bool = True,
    ):
        """Every table + the headline, rendered from one matrix pass."""
        from ..analysis import report  # deferred: report imports flow shims

        return report.full_report(
            names=names,
            caps=caps if caps is not None else report.TABLE3_CAPS,
            effort=effort,
            verify=verify,
            session=self,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(backend={self.backend!r}, "
            f"sim_threads={self.sim_threads!r}, "
            f"cache_dir={self.cache_dir!r}, "
            f"parallel={self.parallel!r}, preset={self.preset!r}, "
            f"arch={self.arch!r}, opt={self.opt!r}, source={self.source!r})"
        )
