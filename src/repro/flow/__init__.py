"""repro.flow — the Session + pass-pipeline API everything routes through.

This package is the stable seam between *what* the reproduction computes
(:mod:`repro.core`, :mod:`repro.plim`, :mod:`repro.mig`) and *how* a run
is provisioned:

* :class:`Session` owns the cross-cutting concerns — simulation-kernel
  backend, persistent experiment cache, parallelism, benchmark width
  preset — resolved once per run (explicitly, from the environment, or
  from CLI arguments) instead of per entry point.
* :class:`Flow` declares the paper's pipeline (source → rewrite →
  compile → verify) as composable stages with typed
  :class:`StageArtifact` outputs, per-stage caching, and
  ``on_stage_start`` / ``on_stage_end`` observer hooks.

Every harness entry point — CLI subcommands, table/report generation,
sweeps, the benchmark conftest, the examples — routes through this
layer; the legacy ``compile_with_management`` / ``evaluate_suite``
functions survive only as deprecated shims over it.
"""

from .session import (
    BACKEND_CHOICES,
    PRESET_CHOICES,
    Session,
    SessionSpec,
    resolve_cache_dir,
)
from .pipeline import (
    STAGES,
    Flow,
    FlowResult,
    StageArtifact,
    StageEvent,
)

__all__ = [
    "BACKEND_CHOICES",
    "Flow",
    "FlowResult",
    "PRESET_CHOICES",
    "STAGES",
    "Session",
    "SessionSpec",
    "StageArtifact",
    "StageEvent",
    "resolve_cache_dir",
]
