"""Behavioural simulation of IMPLY programs.

Executes FALSE/IMP streams bit-parallel (integers as pattern vectors) and
verifies them against the source NAND netlist or MIG, the same way
:mod:`repro.plim.verify` treats RM3 programs.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .gates import ImpProgram, NandNetlist, OP_FALSE


class ImpSimulator:
    """Executes IMPLY programs on a write-counting device array."""

    def __init__(self, num_cells: int) -> None:
        self.values: List[int] = [0] * num_cells
        self.writes: List[int] = [0] * num_cells

    def run(
        self,
        program: ImpProgram,
        pi_values: Optional[Sequence[int]] = None,
        mask: int = 1,
    ) -> List[int]:
        """Execute *program*; returns the output words."""
        pi_values = list(pi_values or [])
        if len(pi_values) != len(program.pi_cells):
            raise ValueError(
                f"expected {len(program.pi_cells)} inputs, got "
                f"{len(pi_values)}"
            )
        for cell, word in zip(program.pi_cells, pi_values):
            self.values[cell] = word & mask  # preload, not a write
        for ins in program.instructions:
            if ins[0] == OP_FALSE:
                _, q = ins
                self.values[q] = 0
            else:
                _, p, q = ins
                # material implication: q <- ~p OR q
                self.values[q] = ((self.values[p] ^ mask) | self.values[q]) & mask
            self.writes[ins[-1]] += 1
        return [self.values[c] & mask for c in program.po_cells]


def verify_imp_program(
    program: ImpProgram,
    netlist: NandNetlist,
    *,
    patterns: int = 128,
    seed: int = 0x1497,
) -> bool:
    """Random bit-parallel equivalence check program-vs-netlist."""
    rng = random.Random(seed)
    width = 64
    mask = (1 << width) - 1
    rounds = max(1, (patterns + width - 1) // width)
    for _ in range(rounds):
        words = [rng.getrandbits(width) for _ in range(netlist.num_inputs)]
        expected = netlist.evaluate(words, mask=mask)
        sim = ImpSimulator(program.num_cells)
        got = sim.run(program, words, mask=mask)
        if expected != got:
            return False
    return True
