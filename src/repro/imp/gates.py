"""Material-implication (IMPLY) logic substrate.

Section II of the reproduced paper surveys why IMP-based in-memory
computing has intrinsically unbalanced write traffic: the IMP-based NAND
gate of [Borghetti et al., Nature 2010] rewrites only its *work* device
(three operations, all targeting the same cell), and schemes like
[Lehtonen et al., 2010] that compute any function with just two work
devices concentrate the entire computation's writes on those two cells.

This package provides the baseline the paper argues against:

* the two stateful primitives, ``FALSE(q)`` (unconditional reset) and
  ``IMP(p, q)`` (``q <- ~p OR q``, the material implication with ``q`` as
  the stateful target);
* a NAND-netlist intermediate representation plus a decomposition from
  MIGs (majority = 6 NANDs, inverter = 1 NAND);
* a scheduler/allocator (:mod:`repro.imp.synthesize`) with a configurable
  work-device pool, down to the two-device scheme;
* a simulator and write-traffic accounting compatible with
  :class:`repro.core.stats.WriteTrafficStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..mig.graph import Mig
from ..mig.signal import is_complemented, node_of

#: IMP instruction opcodes.
OP_FALSE = "FALSE"
OP_IMP = "IMP"


@dataclass
class ImpProgram:
    """A sequence of FALSE/IMP operations over a memristive array.

    ``instructions`` entries are ``(OP_FALSE, q)`` or ``(OP_IMP, p, q)``;
    in both cases ``q`` is written (its device takes one write pulse).
    """

    instructions: List[Tuple] = field(default_factory=list)
    num_cells: int = 0
    pi_cells: List[int] = field(default_factory=list)
    po_cells: List[int] = field(default_factory=list)
    name: str = ""

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)

    def write_counts(self) -> List[int]:
        """Static per-device write counts (every op writes its target)."""
        counts = [0] * self.num_cells
        for ins in self.instructions:
            counts[ins[-1]] += 1
        return counts

    def disassemble(self, limit: Optional[int] = None) -> str:
        lines = [f"; imp program {self.name or '<anonymous>'}"]
        for idx, ins in enumerate(self.instructions):
            if limit is not None and idx >= limit:
                lines.append(f"; ... {len(self.instructions) - limit} more")
                break
            if ins[0] == OP_FALSE:
                lines.append(f"{idx:6d}: FALSE(@{ins[1]})")
            else:
                lines.append(f"{idx:6d}: IMP(@{ins[1]}, @{ins[2]})")
        return "\n".join(lines)


@dataclass(frozen=True)
class NandGate:
    """One two-input NAND in the intermediate netlist.

    Operands are netlist *nets*: non-negative integers, with nets
    ``0 .. num_inputs-1`` reserved for the primary inputs.
    """

    a: int
    b: int


@dataclass
class NandNetlist:
    """A NAND-only netlist with designated output nets."""

    num_inputs: int
    gates: List[NandGate] = field(default_factory=list)
    outputs: List[int] = field(default_factory=list)
    name: str = ""

    def add_nand(self, a: int, b: int) -> int:
        """Append a NAND; returns the net index of its output."""
        self.gates.append(NandGate(a, b))
        return self.num_inputs + len(self.gates) - 1

    def add_not(self, a: int) -> int:
        """Inverter as a one-operand NAND."""
        return self.add_nand(a, a)

    @property
    def num_nets(self) -> int:
        return self.num_inputs + len(self.gates)

    def depth(self) -> int:
        """Logic depth in NAND levels (inputs are level 0)."""
        level = [0] * self.num_nets
        for idx, gate in enumerate(self.gates):
            level[self.num_inputs + idx] = 1 + max(level[gate.a], level[gate.b])
        return max((level[o] for o in self.outputs), default=0)

    def evaluate(self, inputs: List[int], mask: int = 1) -> List[int]:
        """Bit-parallel reference evaluation of the netlist."""
        values = list(inputs) + [0] * len(self.gates)
        for idx, gate in enumerate(self.gates):
            values[self.num_inputs + idx] = (
                ~(values[gate.a] & values[gate.b])
            ) & mask
        return [values[o] & mask for o in self.outputs]


def mig_to_nand(mig: Mig) -> NandNetlist:
    """Decompose a MIG into a NAND-only netlist.

    ``maj(a, b, c) = NAND(NOT NAND(NAND(a,b), NAND(a,c)), NAND(b,c))``
    (six NANDs); complemented edges and outputs cost one inverter-NAND.
    Constants are materialised as ``NAND(x, NOT x)`` (1) and its inverse
    (0) from the first input, or as nets derived from an input when one
    exists.
    """
    net = NandNetlist(num_inputs=mig.num_pis, name=mig.name)
    if mig.num_pis == 0:
        raise ValueError("IMP synthesis needs at least one input")

    # nets for constants, built once on demand
    const_net: Dict[int, int] = {}

    def get_const(value: int) -> int:
        if value not in const_net:
            n0 = net.add_not(0)  # ~x0
            one = net.add_nand(0, n0)  # x0 NAND ~x0 = 1
            const_net[1] = one
            const_net[0] = net.add_not(one)
        return const_net[value]

    sig_net: Dict[int, int] = {}

    def resolve(signal: int) -> int:
        if signal in sig_net:
            return sig_net[signal]
        node = node_of(signal)
        if node == 0:
            result = get_const(1 if is_complemented(signal) else 0)
        elif is_complemented(signal):
            result = net.add_not(resolve(signal ^ 1))
        else:
            raise KeyError(f"unresolved signal {signal}")
        sig_net[signal] = result
        return result

    for idx, node in enumerate(mig.pis()):
        sig_net[node * 2] = idx

    for node in mig.live_gates():
        fa, fb, fc = mig.fanins(node)
        a, b, c = resolve(fa), resolve(fb), resolve(fc)
        t1 = net.add_nand(a, b)
        t2 = net.add_nand(a, c)
        t3 = net.add_nand(b, c)
        t12 = net.add_nand(t1, t2)
        t12n = net.add_not(t12)
        sig_net[node * 2] = net.add_nand(t12n, t3)

    for s in mig.pos():
        net.outputs.append(resolve(s))
    return net
