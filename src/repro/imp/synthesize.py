"""Scheduling NAND netlists onto IMPLY hardware.

Two allocation regimes, matching the two designs Section II of the paper
discusses:

* **unbounded pool** (``work_devices=None``) — one device per live NAND
  value, LIFO reuse, mirroring what a naive in-memory compiler does.
  Every NAND still hammers its own output device with three pulses
  (FALSE + two IMPs), so write traffic concentrates on the work devices
  while input devices stay untouched — the imbalance the paper
  describes for [Borghetti et al., 2010];
* **bounded pool** (``work_devices=K``) — the [Lehtonen et al., 2010]
  regime taken to its logical conclusion: only ``K`` work devices beside
  the inputs.  Values evicted from the pool are *recomputed* on demand
  (rematerialisation), trading instructions for devices; the write
  traffic of the whole computation lands on ``K`` cells.  The scheduler
  raises :class:`WorkPoolExhaustedError` when ``K`` cannot host the
  netlist's working set (two-device schemes only work for shallow
  functions without massive recomputation, which is the paper's point).
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from .gates import ImpProgram, NandNetlist, OP_FALSE, OP_IMP


class WorkPoolExhaustedError(RuntimeError):
    """The bounded work pool cannot host the current working set."""


def required_pool_estimate(netlist: NandNetlist) -> int:
    """A work-pool size that is always sufficient for *netlist*.

    The rematerialising scheduler pins at most two operands per recursion
    level plus one destination, so ``2 * depth + 1`` devices never
    exhaust.  Much smaller pools usually work too (at the price of
    recomputation); this is the guaranteed bound.
    """
    return 2 * netlist.depth() + 1


class ImpSynthesizer:
    """Schedules a :class:`NandNetlist` into an :class:`ImpProgram`."""

    def __init__(
        self,
        work_devices: Optional[int] = None,
        max_instructions: int = 2_000_000,
    ) -> None:
        if work_devices is not None and work_devices < 3:
            raise ValueError(
                "bounded IMP scheduling needs at least 3 work devices "
                "(two pinned operands plus one destination)"
            )
        self.work_devices = work_devices
        self.max_instructions = max_instructions

    def synthesize(self, netlist: NandNetlist) -> ImpProgram:
        if self.work_devices is None:
            return self._synthesize_unbounded(netlist)
        return self._synthesize_bounded(netlist)

    # -- unbounded: one live value per device, LIFO reuse ----------------

    def _synthesize_unbounded(self, netlist: NandNetlist) -> ImpProgram:
        program = ImpProgram(name=netlist.name)
        program.pi_cells = list(range(netlist.num_inputs))
        next_cell = netlist.num_inputs
        free: List[int] = []

        refs = [0] * netlist.num_nets
        for gate in netlist.gates:
            refs[gate.a] += 1
            refs[gate.b] += 1
        for out in netlist.outputs:
            refs[out] += 1

        cell_of: Dict[int, int] = {
            i: i for i in range(netlist.num_inputs)
        }
        for idx, gate in enumerate(netlist.gates):
            net_id = netlist.num_inputs + idx
            if refs[net_id] == 0:
                continue  # dead gate
            if free:
                dest = free.pop()
            else:
                dest = next_cell
                next_cell += 1
            program.instructions.append((OP_FALSE, dest))
            program.instructions.append((OP_IMP, cell_of[gate.a], dest))
            program.instructions.append((OP_IMP, cell_of[gate.b], dest))
            cell_of[net_id] = dest
            for operand in (gate.a, gate.b):
                refs[operand] -= 1
                if (
                    refs[operand] == 0
                    and operand >= netlist.num_inputs
                ):
                    free.append(cell_of[operand])

        program.po_cells = [cell_of[o] for o in netlist.outputs]
        program.num_cells = next_cell
        return program

    # -- bounded: K work devices with rematerialisation -------------------

    def _synthesize_bounded(self, netlist: NandNetlist) -> ImpProgram:
        k = self.work_devices
        assert k is not None
        program = ImpProgram(name=netlist.name)
        program.pi_cells = list(range(netlist.num_inputs))
        slots = list(range(netlist.num_inputs, netlist.num_inputs + k))
        program.num_cells = netlist.num_inputs + k

        resident: Dict[int, int] = {}  # net -> slot
        slot_net: Dict[int, Optional[int]] = {s: None for s in slots}
        pins: Dict[int, int] = {s: 0 for s in slots}
        clock = [0]
        last_use: Dict[int, int] = {s: 0 for s in slots}

        def touch(slot: int) -> None:
            clock[0] += 1
            last_use[slot] = clock[0]

        def acquire_slot() -> int:
            candidates = [s for s in slots if pins[s] == 0]
            if not candidates:
                raise WorkPoolExhaustedError(
                    f"all {k} work devices are pinned; the netlist needs a "
                    f"larger pool"
                )
            victim = min(candidates, key=lambda s: last_use[s])
            old = slot_net[victim]
            if old is not None:
                resident.pop(old, None)
            slot_net[victim] = None
            return victim

        def locate(net_id: int) -> int:
            """Cell currently holding *net_id*, recomputing if needed."""
            if net_id < netlist.num_inputs:
                return net_id  # inputs live in their own devices
            if net_id in resident:
                slot = resident[net_id]
                touch(slot)
                return slot
            return compute(net_id)

        def pin(cell: int) -> None:
            if cell >= netlist.num_inputs:
                pins[cell] += 1

        def unpin(cell: int) -> None:
            if cell >= netlist.num_inputs:
                pins[cell] -= 1

        def compute(net_id: int) -> int:
            if len(program.instructions) > self.max_instructions:
                raise WorkPoolExhaustedError(
                    "rematerialisation exploded past the instruction "
                    f"budget ({self.max_instructions}); increase the work "
                    "pool"
                )
            gate = netlist.gates[net_id - netlist.num_inputs]
            # Pinned slots are never evicted, so once an operand is
            # located and pinned it stays put while the other operand
            # rematerialises.
            cell_a = locate(gate.a)
            pin(cell_a)
            try:
                cell_b = locate(gate.b)
                pin(cell_b)
                try:
                    dest = acquire_slot()
                finally:
                    unpin(cell_b)
            finally:
                unpin(cell_a)
            program.instructions.append((OP_FALSE, dest))
            program.instructions.append((OP_IMP, cell_a, dest))
            program.instructions.append((OP_IMP, cell_b, dest))
            resident[net_id] = dest
            slot_net[dest] = net_id
            touch(dest)
            return dest

        po_cells = []
        old_limit = sys.getrecursionlimit()
        # locate() recurses once per netlist level; leave generous head room.
        sys.setrecursionlimit(max(old_limit, 4 * netlist.depth() + 1000))
        try:
            for out in netlist.outputs:
                slot = locate(out)
                if slot >= netlist.num_inputs:
                    pins[slot] += 1  # keep outputs resident to the end
                po_cells.append(slot)
        finally:
            sys.setrecursionlimit(old_limit)
        program.po_cells = po_cells
        return program


def synthesize_imp(
    netlist: NandNetlist, work_devices: Optional[int] = None
) -> ImpProgram:
    """Convenience wrapper over :class:`ImpSynthesizer`."""
    return ImpSynthesizer(work_devices=work_devices).synthesize(netlist)
