"""Material-implication (IMPLY) baseline from Section II of the paper."""

from .gates import ImpProgram, NandGate, NandNetlist, OP_FALSE, OP_IMP, mig_to_nand
from .simulate import ImpSimulator, verify_imp_program
from .synthesize import ImpSynthesizer, WorkPoolExhaustedError, synthesize_imp

__all__ = [
    "ImpProgram",
    "ImpSimulator",
    "ImpSynthesizer",
    "NandGate",
    "NandNetlist",
    "OP_FALSE",
    "OP_IMP",
    "WorkPoolExhaustedError",
    "mig_to_nand",
    "synthesize_imp",
    "verify_imp_program",
]
