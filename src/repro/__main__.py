"""``python -m repro`` — experiment harness entry point."""

import sys

from .analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
