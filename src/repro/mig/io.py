"""Plain-text serialisation of MIGs and PLiM programs.

A small line-oriented exchange format so users can persist graphs,
diff rewriting results, and feed their own circuits to the compiler
without writing Python:

.. code-block:: text

    # anything after '#' is a comment
    mig adder4
    input a0
    input a1
    node n5 = <a0 a1 0>        # majority of two signals and a constant
    node n6 = <~n5 a0 1>       # '~' marks a complemented edge
    output s0 = ~n6

Signals are referenced by *name*: declared input names, previously
declared node names, or the constants ``0``/``1``.  Programs use an
equally simple listing of ``RM3 p q z`` lines with ``@addr`` operands.
"""

from __future__ import annotations

import io as _io
from typing import BinaryIO, Dict, List, TextIO, Tuple, Union

from ..plim.isa import OP_CONST0, OP_CONST1, Program
from .graph import Mig
from .signal import CONST0, CONST1, complement, is_complemented, node_of

PathOrFile = Union[str, TextIO]
PathOrBytes = Union[str, BinaryIO]


def _open(target: PathOrFile, mode: str):
    if isinstance(target, str):
        return open(target, mode, encoding="utf-8"), True
    return target, False


# ----------------------------------------------------------------------
# MIG text format
# ----------------------------------------------------------------------

def write_mig(mig: Mig, target: PathOrFile) -> None:
    """Serialise *mig* in the textual exchange format."""
    handle, owned = _open(target, "w")
    try:
        handle.write(f"mig {mig.name or 'unnamed'}\n")
        for i in range(mig.num_pis):
            handle.write(f"input {mig.pi_name(i)}\n")
        names: Dict[int, str] = {0: "0"}
        for i, node in enumerate(mig.pis()):
            names[node] = mig.pi_name(i)
        live = mig.live_mask()
        for node in mig.gates():
            if not live[node]:
                continue
            names[node] = f"n{node}"
            ops = " ".join(
                _format_ref(s, names) for s in mig.fanins(node)
            )
            handle.write(f"node n{node} = <{ops}>\n")
        for i, s in enumerate(mig.pos()):
            handle.write(
                f"output {mig.po_name(i)} = {_format_ref(s, names)}\n"
            )
    finally:
        if owned:
            handle.close()


def _format_ref(signal: int, names: Dict[int, str]) -> str:
    if signal == CONST0:
        return "0"
    if signal == CONST1:
        return "1"
    prefix = "~" if is_complemented(signal) else ""
    return prefix + names[node_of(signal)]


def dumps_mig(mig: Mig) -> str:
    """:func:`write_mig` into a string."""
    buffer = _io.StringIO()
    write_mig(mig, buffer)
    return buffer.getvalue()


class MigParseError(ValueError):
    """Malformed MIG text."""


def read_mig(source: PathOrFile) -> Mig:
    """Parse the textual exchange format back into a :class:`Mig`."""
    handle, owned = _open(source, "r")
    try:
        text = handle.read()
    finally:
        if owned:
            handle.close()
    return loads_mig(text)


def loads_mig(text: str) -> Mig:
    """Parse MIG text from a string."""
    mig: Mig = Mig()
    names: Dict[str, int] = {"0": CONST0, "1": CONST1}
    seen_header = False

    def resolve(token: str, line_no: int) -> int:
        compl = token.startswith("~")
        name = token[1:] if compl else token
        if name not in names:
            raise MigParseError(f"line {line_no}: unknown signal {name!r}")
        sig = names[name]
        return complement(sig) if compl else sig

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "mig":
            mig.name = parts[1] if len(parts) > 1 else ""
            seen_header = True
        elif kind == "input":
            if len(parts) != 2:
                raise MigParseError(f"line {line_no}: bad input declaration")
            if parts[1] in names:
                raise MigParseError(
                    f"line {line_no}: duplicate name {parts[1]!r}"
                )
            names[parts[1]] = mig.add_pi(parts[1])
        elif kind == "node":
            # node NAME = <a b c>
            try:
                name = parts[1]
                assert parts[2] == "="
                body = line.split("=", 1)[1].strip()
                assert body.startswith("<") and body.endswith(">")
                ops = body[1:-1].split()
                assert len(ops) == 3
            except (IndexError, AssertionError):
                raise MigParseError(
                    f"line {line_no}: expected 'node NAME = <a b c>'"
                ) from None
            if name in names:
                raise MigParseError(
                    f"line {line_no}: duplicate name {name!r}"
                )
            sig = mig.add_maj(*(resolve(op, line_no) for op in ops))
            names[name] = sig
        elif kind == "output":
            try:
                name = parts[1]
                assert parts[2] == "="
                ref = parts[3]
            except (IndexError, AssertionError):
                raise MigParseError(
                    f"line {line_no}: expected 'output NAME = signal'"
                ) from None
            mig.add_po(resolve(ref, line_no), name)
        else:
            raise MigParseError(f"line {line_no}: unknown directive {kind!r}")
    if not seen_header:
        raise MigParseError("missing 'mig NAME' header")
    return mig


# ----------------------------------------------------------------------
# BLIF netlists
# ----------------------------------------------------------------------

def read_blif(source: PathOrFile) -> Mig:
    """Parse a (combinational, single-clause) BLIF netlist into a MIG."""
    handle, owned = _open(source, "r")
    try:
        text = handle.read()
    finally:
        if owned:
            handle.close()
    return loads_blif(text)


def loads_blif(text: str) -> Mig:
    """Parse BLIF text from a string.

    Supports ``.model``/``.inputs``/``.outputs``/``.names`` with PLA
    cover rows (on-set or off-set planes) and ``\\`` line continuations.
    Each ``.names`` body becomes sum-of-products over the existing MIG
    builders.  Latches, subcircuits, and multi-model files raise
    :class:`MigParseError`; tables may appear in any order.
    """
    # Fold continuations, strip comments, keep original line numbers.
    lines = []
    pending, pending_no = "", 0
    for line_no, raw in enumerate(text.splitlines(), start=1):
        body = raw.split("#", 1)[0].rstrip()
        if not pending:
            pending_no = line_no
        if body.endswith("\\"):
            pending += body[:-1] + " "
            continue
        merged = (pending + body).strip()
        pending = ""
        if merged:
            lines.append((pending_no, merged))
    if pending.strip():
        lines.append((pending_no, pending.strip()))

    model = ""
    inputs: list = []
    outputs: list = []
    # output name -> (line_no, input names, cover rows)
    tables: Dict[str, tuple] = {}
    current: tuple = None
    seen_model = False

    for line_no, line in lines:
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            current = None
            if directive == ".model":
                if seen_model:
                    raise MigParseError(
                        f"line {line_no}: multiple .model sections"
                    )
                seen_model = True
                model = parts[1] if len(parts) > 1 else ""
            elif directive == ".inputs":
                inputs.extend(parts[1:])
            elif directive == ".outputs":
                outputs.extend(parts[1:])
            elif directive == ".names":
                if len(parts) < 2:
                    raise MigParseError(f"line {line_no}: empty .names")
                out = parts[-1]
                if out in tables or out in inputs:
                    raise MigParseError(
                        f"line {line_no}: duplicate definition of {out!r}"
                    )
                current = (line_no, parts[1:-1], [])
                tables[out] = current
            elif directive == ".end":
                current = None
            else:
                raise MigParseError(
                    f"line {line_no}: unsupported directive {directive!r}"
                )
        else:
            if current is None:
                raise MigParseError(
                    f"line {line_no}: cover row outside .names"
                )
            row = line.split()
            n_ins = len(current[1])
            if n_ins == 0:
                pattern, bit = "", row[0]
            elif len(row) == 2:
                pattern, bit = row
            else:
                raise MigParseError(f"line {line_no}: bad cover row")
            if len(pattern) != n_ins or bit not in ("0", "1") or any(
                ch not in "01-" for ch in pattern
            ):
                raise MigParseError(f"line {line_no}: bad cover row")
            current[2].append((pattern, bit))

    if not seen_model:
        raise MigParseError("missing .model header")

    mig = Mig(model)
    signals: Dict[str, int] = {}
    for name in inputs:
        if name in signals:
            raise MigParseError(f"duplicate input {name!r}")
        signals[name] = mig.add_pi(name)

    def elaborate(name: str, stack: tuple) -> int:
        if name in signals:
            return signals[name]
        if name not in tables:
            raise MigParseError(f"undefined signal {name!r}")
        if name in stack:
            raise MigParseError(f"combinational loop through {name!r}")
        line_no, ins, rows = tables[name]
        operands = [elaborate(i, stack + (name,)) for i in ins]
        planes = {bit for _, bit in rows}
        if len(planes) > 1:
            raise MigParseError(
                f"line {line_no}: mixed on-set/off-set rows for {name!r}"
            )
        terms = []
        for pattern, _ in rows:
            literals = []
            for ch, sig in zip(pattern, operands):
                if ch == "1":
                    literals.append(sig)
                elif ch == "0":
                    literals.append(complement(sig))
            term = CONST1
            for lit in literals:
                term = mig.add_and(term, lit)
            terms.append(term)
        plane = CONST0
        for term in terms:
            plane = mig.add_or(plane, term)
        if planes == {"0"}:
            plane = complement(plane)
        signals[name] = plane
        return plane

    for name in outputs:
        mig.add_po(elaborate(name, ()), name)
    return mig


# ----------------------------------------------------------------------
# ASCII AIGER netlists
# ----------------------------------------------------------------------

def read_aiger(source: PathOrFile) -> Mig:
    """Parse an ASCII AIGER (``aag``) netlist into a MIG."""
    handle, owned = _open(source, "r")
    try:
        text = handle.read()
    finally:
        if owned:
            handle.close()
    return loads_aiger(text)


def loads_aiger(text: str, name: str = "") -> Mig:
    """Parse ASCII AIGER text from a string.

    Combinational circuits only — a non-zero latch count raises
    :class:`MigParseError`.  The optional symbol table supplies PI/PO
    names; the comment section (after ``c``) is ignored.
    """
    lines = text.splitlines()
    if not lines or not lines[0].startswith("aag "):
        raise MigParseError("missing 'aag M I L O A' header")
    try:
        m, i, latches, o, a = (int(t) for t in lines[0].split()[1:6])
    except (ValueError, IndexError):
        raise MigParseError("malformed 'aag M I L O A' header") from None
    if latches:
        raise MigParseError(
            f"sequential AIGER not supported ({latches} latches)"
        )
    body = lines[1:]
    if len(body) < i + o + a:
        raise MigParseError("truncated AIGER body")

    def literal(token: str, line_no: int) -> int:
        try:
            lit = int(token)
        except ValueError:
            raise MigParseError(
                f"line {line_no}: bad literal {token!r}"
            ) from None
        if lit < 0 or lit // 2 > m:
            raise MigParseError(
                f"line {line_no}: literal {lit} exceeds maxvar {m}"
            )
        return lit

    mig = Mig(name)
    # aiger variable index -> mig signal of the positive literal
    var_sig: Dict[int, int] = {0: CONST0}
    pi_vars = []
    for idx in range(i):
        lit = literal(body[idx].split()[0], idx + 2)
        if lit & 1 or lit == 0 or lit // 2 in var_sig:
            raise MigParseError(f"line {idx + 2}: bad input literal {lit}")
        var_sig[lit // 2] = mig.add_pi(f"i{idx}")
        pi_vars.append(lit // 2)

    out_lits = []
    for idx in range(o):
        out_lits.append(literal(body[i + idx].split()[0], i + idx + 2))

    # And-gate definitions may reference later gates in non-reindexed
    # files; iterate until the worklist stops shrinking.
    gates = []
    for idx in range(a):
        line_no = i + o + idx + 2
        parts = body[i + o + idx].split()
        if len(parts) != 3:
            raise MigParseError(f"line {line_no}: bad and-gate line")
        lhs, rhs0, rhs1 = (literal(t, line_no) for t in parts)
        if lhs & 1 or lhs // 2 in var_sig:
            raise MigParseError(
                f"line {line_no}: bad and-gate output literal {lhs}"
            )
        var_sig[lhs // 2] = None
        gates.append((lhs // 2, rhs0, rhs1))

    def resolve(lit: int) -> int:
        sig = var_sig.get(lit // 2)
        if sig is None:
            return None
        return complement(sig) if lit & 1 else sig

    remaining = gates
    while remaining:
        deferred = []
        for var, rhs0, rhs1 in remaining:
            s0, s1 = resolve(rhs0), resolve(rhs1)
            if s0 is None or s1 is None:
                deferred.append((var, rhs0, rhs1))
                continue
            var_sig[var] = mig.add_and(s0, s1)
        if len(deferred) == len(remaining):
            raise MigParseError(
                "cyclic or undefined and-gate operands: "
                + ", ".join(str(v * 2) for v, _, _ in deferred[:5])
            )
        remaining = deferred

    po_names = {}
    for line in body[i + o + a:]:
        parts = line.split()
        if not parts:
            continue
        tag = parts[0]
        if tag == "c":
            break
        if len(parts) == 2 and tag[0] in "io" and tag[1:].isdigit():
            pos = int(tag[1:])
            if tag[0] == "i" and pos < len(pi_vars):
                mig._pi_names[pos] = parts[1]
            elif tag[0] == "o" and pos < o:
                po_names[pos] = parts[1]

    for idx, lit in enumerate(out_lits):
        sig = resolve(lit)
        if sig is None:
            raise MigParseError(f"output {idx} references undefined literal")
        mig.add_po(sig, po_names.get(idx, f"o{idx}"))
    return mig


# ----------------------------------------------------------------------
# AIGER export (ASCII and binary) and binary import
# ----------------------------------------------------------------------

def _mig_to_aig(mig: Mig) -> Tuple[int, List[Tuple[int, int]], List[int]]:
    """Decompose *mig* into an and-inverter gate list.

    MAJ nodes expand as ``maj(a,b,c) = ab + ac + bc`` with ORs expressed
    through De Morgan inverters.  Structural hashing and constant folding
    keep the expansion compact.  Returns ``(num_inputs, gates, outputs)``
    where ``gates[k] = (rhs0, rhs1)`` (``rhs0 >= rhs1``) defines AIGER
    literal ``2 * (num_inputs + k + 1)`` and ``outputs`` are literals.
    """
    node_lit: Dict[int, int] = {}
    for idx, node in enumerate(mig.pis()):
        node_lit[node] = 2 * (idx + 1)
    num_inputs = mig.num_pis
    gates: List[Tuple[int, int]] = []
    cache: Dict[Tuple[int, int], int] = {}

    def aig_and(x: int, y: int) -> int:
        lo, hi = (x, y) if x <= y else (y, x)
        if lo == 0:
            return 0
        if lo == 1:
            return hi
        if lo == hi:
            return lo
        if lo ^ 1 == hi:
            return 0
        key = (hi, lo)
        lit = cache.get(key)
        if lit is None:
            lit = 2 * (num_inputs + len(gates) + 1)
            gates.append(key)
            cache[key] = lit
        return lit

    def aig_or(x: int, y: int) -> int:
        return aig_and(x ^ 1, y ^ 1) ^ 1

    def sig_lit(signal: int) -> int:
        if signal == CONST0:
            return 0
        if signal == CONST1:
            return 1
        lit = node_lit[node_of(signal)]
        return lit ^ 1 if is_complemented(signal) else lit

    live = mig.live_mask()
    for node in mig.gates():
        if not live[node]:
            continue
        a, b, c = (sig_lit(s) for s in mig.fanins(node))
        node_lit[node] = aig_or(
            aig_and(a, b), aig_or(aig_and(a, c), aig_and(b, c))
        )
    outputs = [sig_lit(s) for s in mig.pos()]
    return num_inputs, gates, outputs


def _aiger_symbols(mig: Mig) -> List[str]:
    lines = []
    for idx in range(mig.num_pis):
        lines.append(f"i{idx} {mig.pi_name(idx)}")
    for idx in range(mig.num_pos):
        lines.append(f"o{idx} {mig.po_name(idx)}")
    return lines


def dumps_aiger(mig: Mig) -> str:
    """Serialise *mig* as an ASCII AIGER (``aag``) netlist.

    The MIG is decomposed into and-inverter gates first (see
    :func:`dumps_aiger_binary` for the compact binary flavour), so the
    result round-trips through :func:`loads_aiger` to an equivalent
    circuit, not an identical graph.
    """
    num_inputs, gates, outputs = _mig_to_aig(mig)
    maxvar = num_inputs + len(gates)
    lines = [f"aag {maxvar} {num_inputs} 0 {len(outputs)} {len(gates)}"]
    lines.extend(str(2 * (idx + 1)) for idx in range(num_inputs))
    lines.extend(str(lit) for lit in outputs)
    for k, (rhs0, rhs1) in enumerate(gates):
        lines.append(f"{2 * (num_inputs + k + 1)} {rhs0} {rhs1}")
    lines.extend(_aiger_symbols(mig))
    return "\n".join(lines) + "\n"


def write_aiger(mig: Mig, target: PathOrFile) -> None:
    """:func:`dumps_aiger` to a path or text file object."""
    handle, owned = _open(target, "w")
    try:
        handle.write(dumps_aiger(mig))
    finally:
        if owned:
            handle.close()


def _encode_delta(value: int) -> bytes:
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def dumps_aiger_binary(mig: Mig) -> bytes:
    """Serialise *mig* as a binary AIGER (``aig``) netlist.

    Same and-inverter decomposition as :func:`dumps_aiger`; gates are
    stored as the standard 7-bit variable-length delta pairs
    ``(lhs - rhs0, rhs0 - rhs1)`` in ascending variable order, inputs
    are implicit literals ``2..2I``.
    """
    num_inputs, gates, outputs = _mig_to_aig(mig)
    maxvar = num_inputs + len(gates)
    chunks = [
        f"aig {maxvar} {num_inputs} 0 {len(outputs)} {len(gates)}\n".encode(
            "ascii"
        )
    ]
    chunks.extend(f"{lit}\n".encode("ascii") for lit in outputs)
    for k, (rhs0, rhs1) in enumerate(gates):
        lhs = 2 * (num_inputs + k + 1)
        chunks.append(_encode_delta(lhs - rhs0))
        chunks.append(_encode_delta(rhs0 - rhs1))
    symbols = _aiger_symbols(mig)
    if symbols:
        chunks.append(("\n".join(symbols) + "\n").encode("ascii"))
    return b"".join(chunks)


def write_aiger_binary(mig: Mig, target: PathOrBytes) -> None:
    """:func:`dumps_aiger_binary` to a path or binary file object."""
    if isinstance(target, str):
        with open(target, "wb") as handle:
            handle.write(dumps_aiger_binary(mig))
    else:
        target.write(dumps_aiger_binary(mig))


def loads_aiger_binary(data: bytes, name: str = "") -> Mig:
    """Parse binary AIGER (``aig``) bytes into a MIG.

    Combinational circuits only, mirroring :func:`loads_aiger`.  Inputs
    are the implicit literals ``2..2I``; gate definitions are the binary
    delta pairs, so operands always precede their gate.
    """
    if isinstance(data, str):
        raise MigParseError("binary AIGER input must be bytes, not str")
    data = bytes(data)

    def ascii_line(pos: int, what: str) -> Tuple[str, int]:
        end = data.find(b"\n", pos)
        if end < 0:
            raise MigParseError(f"truncated AIGER {what}")
        return data[pos:end].decode("ascii", errors="replace"), end + 1

    header, pos = ascii_line(0, "header")
    if not header.startswith("aig "):
        raise MigParseError("missing 'aig M I L O A' header")
    try:
        m, i, latches, o, a = (int(t) for t in header.split()[1:6])
    except (ValueError, IndexError):
        raise MigParseError("malformed 'aig M I L O A' header") from None
    if latches:
        raise MigParseError(
            f"sequential AIGER not supported ({latches} latches)"
        )
    if m < i + a:
        raise MigParseError(f"maxvar {m} below {i} inputs + {a} gates")

    out_lits = []
    for idx in range(o):
        token, pos = ascii_line(pos, "outputs")
        try:
            lit = int(token)
        except ValueError:
            raise MigParseError(f"bad output literal {token!r}") from None
        if lit < 0 or lit // 2 > m:
            raise MigParseError(f"output literal {lit} exceeds maxvar {m}")
        out_lits.append(lit)

    def decode_delta() -> int:
        nonlocal pos
        value, shift = 0, 0
        while True:
            if pos >= len(data):
                raise MigParseError("truncated AIGER gate section")
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    mig = Mig(name)
    # aiger variable index -> mig signal of the positive literal
    var_sig: Dict[int, int] = {0: CONST0}
    for idx in range(i):
        var_sig[idx + 1] = mig.add_pi(f"i{idx}")

    def resolve(lit: int, what: str) -> int:
        sig = var_sig.get(lit // 2)
        if sig is None:
            raise MigParseError(f"{what} references undefined literal {lit}")
        return complement(sig) if lit & 1 else sig

    for k in range(a):
        lhs = 2 * (i + k + 1)
        delta0 = decode_delta()
        delta1 = decode_delta()
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        if delta0 == 0 or rhs0 < 0 or rhs1 < 0:
            raise MigParseError(
                f"gate {lhs}: invalid deltas ({delta0}, {delta1})"
            )
        var_sig[lhs // 2] = mig.add_and(
            resolve(rhs0, f"gate {lhs}"), resolve(rhs1, f"gate {lhs}")
        )

    po_names = {}
    if pos < len(data):
        for line in data[pos:].decode("ascii", errors="replace").splitlines():
            parts = line.split()
            if not parts:
                continue
            tag = parts[0]
            if tag == "c":
                break
            if len(parts) == 2 and tag[0] in "io" and tag[1:].isdigit():
                idx = int(tag[1:])
                if tag[0] == "i" and idx < i:
                    mig._pi_names[idx] = parts[1]
                elif tag[0] == "o" and idx < o:
                    po_names[idx] = parts[1]

    for idx, lit in enumerate(out_lits):
        mig.add_po(resolve(lit, f"output {idx}"), po_names.get(idx, f"o{idx}"))
    return mig


def read_aiger_binary(source: PathOrBytes) -> Mig:
    """Parse a binary AIGER (``aig``) netlist file into a MIG."""
    if isinstance(source, str):
        with open(source, "rb") as handle:
            data = handle.read()
    else:
        data = source.read()
    return loads_aiger_binary(data)


# ----------------------------------------------------------------------
# Format dispatch
# ----------------------------------------------------------------------

NETLIST_READERS = {
    ".mig": read_mig,
    ".blif": read_blif,
    ".aag": read_aiger,
    ".aiger": read_aiger,
    ".aig": read_aiger_binary,
}


def read_netlist(path: str) -> Mig:
    """Read a circuit file, dispatching on its extension.

    Recognises the native exchange format (``.mig``), BLIF (``.blif``),
    ASCII AIGER (``.aag``/``.aiger``), and binary AIGER (``.aig``).  The
    parsed graph's name defaults to the file stem when the format
    carries none.
    """
    import os

    ext = os.path.splitext(path)[1].lower()
    reader = NETLIST_READERS.get(ext)
    if reader is None:
        known = ", ".join(sorted(NETLIST_READERS))
        raise MigParseError(
            f"unrecognised netlist extension {ext!r} for {path!r}"
            f" (expected one of: {known})"
        )
    mig = reader(path)
    if not mig.name:
        mig.name = os.path.splitext(os.path.basename(path))[0]
    return mig


# ----------------------------------------------------------------------
# Program text format
# ----------------------------------------------------------------------

def write_program(program: Program, target: PathOrFile) -> None:
    """Serialise a PLiM program as a readable instruction listing."""
    handle, owned = _open(target, "w")
    try:
        handle.write(f"program {program.name or 'unnamed'}\n")
        handle.write(f"cells {program.num_cells}\n")
        if program.pi_cells:
            handle.write(
                "inputs " + " ".join(str(c) for c in program.pi_cells) + "\n"
            )
        if program.po_cells:
            handle.write(
                "outputs " + " ".join(str(c) for c in program.po_cells) + "\n"
            )
        for p, q, z in program.instructions:
            handle.write(f"RM3 {_op_str(p)} {_op_str(q)} @{z}\n")
    finally:
        if owned:
            handle.close()


def dumps_program(program: Program) -> str:
    """:func:`write_program` into a string."""
    buffer = _io.StringIO()
    write_program(program, buffer)
    return buffer.getvalue()


def _op_str(op: int) -> str:
    if op == OP_CONST0:
        return "0"
    if op == OP_CONST1:
        return "1"
    return f"@{op}"


def read_program(source: PathOrFile) -> Program:
    """Parse a program listing back into a :class:`Program`."""
    handle, owned = _open(source, "r")
    try:
        text = handle.read()
    finally:
        if owned:
            handle.close()
    program = Program()

    def parse_op(token: str, line_no: int) -> int:
        if token == "0":
            return OP_CONST0
        if token == "1":
            return OP_CONST1
        if token.startswith("@"):
            return int(token[1:])
        raise MigParseError(f"line {line_no}: bad operand {token!r}")

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if parts[0] == "program":
            program.name = parts[1] if len(parts) > 1 else ""
        elif parts[0] == "cells":
            program.num_cells = int(parts[1])
        elif parts[0] == "inputs":
            program.pi_cells = [int(t) for t in parts[1:]]
        elif parts[0] == "outputs":
            program.po_cells = [int(t) for t in parts[1:]]
        elif parts[0] == "RM3":
            if len(parts) != 4 or not parts[3].startswith("@"):
                raise MigParseError(f"line {line_no}: bad RM3 line")
            program.instructions.append(
                (
                    parse_op(parts[1], line_no),
                    parse_op(parts[2], line_no),
                    int(parts[3][1:]),
                )
            )
        else:
            raise MigParseError(
                f"line {line_no}: unknown directive {parts[0]!r}"
            )
    program.validate()
    return program
