"""Plain-text serialisation of MIGs and PLiM programs.

A small line-oriented exchange format so users can persist graphs,
diff rewriting results, and feed their own circuits to the compiler
without writing Python:

.. code-block:: text

    # anything after '#' is a comment
    mig adder4
    input a0
    input a1
    node n5 = <a0 a1 0>        # majority of two signals and a constant
    node n6 = <~n5 a0 1>       # '~' marks a complemented edge
    output s0 = ~n6

Signals are referenced by *name*: declared input names, previously
declared node names, or the constants ``0``/``1``.  Programs use an
equally simple listing of ``RM3 p q z`` lines with ``@addr`` operands.
"""

from __future__ import annotations

import io as _io
from typing import Dict, TextIO, Union

from ..plim.isa import OP_CONST0, OP_CONST1, Program
from .graph import Mig
from .signal import CONST0, CONST1, complement, is_complemented, node_of

PathOrFile = Union[str, TextIO]


def _open(target: PathOrFile, mode: str):
    if isinstance(target, str):
        return open(target, mode, encoding="utf-8"), True
    return target, False


# ----------------------------------------------------------------------
# MIG text format
# ----------------------------------------------------------------------

def write_mig(mig: Mig, target: PathOrFile) -> None:
    """Serialise *mig* in the textual exchange format."""
    handle, owned = _open(target, "w")
    try:
        handle.write(f"mig {mig.name or 'unnamed'}\n")
        for i in range(mig.num_pis):
            handle.write(f"input {mig.pi_name(i)}\n")
        names: Dict[int, str] = {0: "0"}
        for i, node in enumerate(mig.pis()):
            names[node] = mig.pi_name(i)
        live = mig.live_mask()
        for node in mig.gates():
            if not live[node]:
                continue
            names[node] = f"n{node}"
            ops = " ".join(
                _format_ref(s, names) for s in mig.fanins(node)
            )
            handle.write(f"node n{node} = <{ops}>\n")
        for i, s in enumerate(mig.pos()):
            handle.write(
                f"output {mig.po_name(i)} = {_format_ref(s, names)}\n"
            )
    finally:
        if owned:
            handle.close()


def _format_ref(signal: int, names: Dict[int, str]) -> str:
    if signal == CONST0:
        return "0"
    if signal == CONST1:
        return "1"
    prefix = "~" if is_complemented(signal) else ""
    return prefix + names[node_of(signal)]


def dumps_mig(mig: Mig) -> str:
    """:func:`write_mig` into a string."""
    buffer = _io.StringIO()
    write_mig(mig, buffer)
    return buffer.getvalue()


class MigParseError(ValueError):
    """Malformed MIG text."""


def read_mig(source: PathOrFile) -> Mig:
    """Parse the textual exchange format back into a :class:`Mig`."""
    handle, owned = _open(source, "r")
    try:
        text = handle.read()
    finally:
        if owned:
            handle.close()
    return loads_mig(text)


def loads_mig(text: str) -> Mig:
    """Parse MIG text from a string."""
    mig: Mig = Mig()
    names: Dict[str, int] = {"0": CONST0, "1": CONST1}
    seen_header = False

    def resolve(token: str, line_no: int) -> int:
        compl = token.startswith("~")
        name = token[1:] if compl else token
        if name not in names:
            raise MigParseError(f"line {line_no}: unknown signal {name!r}")
        sig = names[name]
        return complement(sig) if compl else sig

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "mig":
            mig.name = parts[1] if len(parts) > 1 else ""
            seen_header = True
        elif kind == "input":
            if len(parts) != 2:
                raise MigParseError(f"line {line_no}: bad input declaration")
            names[parts[1]] = mig.add_pi(parts[1])
        elif kind == "node":
            # node NAME = <a b c>
            try:
                name = parts[1]
                assert parts[2] == "="
                body = line.split("=", 1)[1].strip()
                assert body.startswith("<") and body.endswith(">")
                ops = body[1:-1].split()
                assert len(ops) == 3
            except (IndexError, AssertionError):
                raise MigParseError(
                    f"line {line_no}: expected 'node NAME = <a b c>'"
                ) from None
            sig = mig.add_maj(*(resolve(op, line_no) for op in ops))
            names[name] = sig
        elif kind == "output":
            try:
                name = parts[1]
                assert parts[2] == "="
                ref = parts[3]
            except (IndexError, AssertionError):
                raise MigParseError(
                    f"line {line_no}: expected 'output NAME = signal'"
                ) from None
            mig.add_po(resolve(ref, line_no), name)
        else:
            raise MigParseError(f"line {line_no}: unknown directive {kind!r}")
    if not seen_header:
        raise MigParseError("missing 'mig NAME' header")
    return mig


# ----------------------------------------------------------------------
# Program text format
# ----------------------------------------------------------------------

def write_program(program: Program, target: PathOrFile) -> None:
    """Serialise a PLiM program as a readable instruction listing."""
    handle, owned = _open(target, "w")
    try:
        handle.write(f"program {program.name or 'unnamed'}\n")
        handle.write(f"cells {program.num_cells}\n")
        if program.pi_cells:
            handle.write(
                "inputs " + " ".join(str(c) for c in program.pi_cells) + "\n"
            )
        if program.po_cells:
            handle.write(
                "outputs " + " ".join(str(c) for c in program.po_cells) + "\n"
            )
        for p, q, z in program.instructions:
            handle.write(f"RM3 {_op_str(p)} {_op_str(q)} @{z}\n")
    finally:
        if owned:
            handle.close()


def _op_str(op: int) -> str:
    if op == OP_CONST0:
        return "0"
    if op == OP_CONST1:
        return "1"
    return f"@{op}"


def read_program(source: PathOrFile) -> Program:
    """Parse a program listing back into a :class:`Program`."""
    handle, owned = _open(source, "r")
    try:
        text = handle.read()
    finally:
        if owned:
            handle.close()
    program = Program()

    def parse_op(token: str, line_no: int) -> int:
        if token == "0":
            return OP_CONST0
        if token == "1":
            return OP_CONST1
        if token.startswith("@"):
            return int(token[1:])
        raise MigParseError(f"line {line_no}: bad operand {token!r}")

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if parts[0] == "program":
            program.name = parts[1] if len(parts) > 1 else ""
        elif parts[0] == "cells":
            program.num_cells = int(parts[1])
        elif parts[0] == "inputs":
            program.pi_cells = [int(t) for t in parts[1:]]
        elif parts[0] == "outputs":
            program.po_cells = [int(t) for t in parts[1:]]
        elif parts[0] == "RM3":
            if len(parts) != 4 or not parts[3].startswith("@"):
                raise MigParseError(f"line {line_no}: bad RM3 line")
            program.instructions.append(
                (
                    parse_op(parts[1], line_no),
                    parse_op(parts[2], line_no),
                    int(parts[3][1:]),
                )
            )
        else:
            raise MigParseError(
                f"line {line_no}: unknown directive {parts[0]!r}"
            )
    program.validate()
    return program
