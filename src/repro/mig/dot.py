"""Graphviz (DOT) export for MIGs.

Complemented edges are drawn dashed, matching the figures of the MIG and
PLiM papers (e.g. Fig. 1 and Fig. 2 of the reproduced paper use dotted
edges for complements).
"""

from __future__ import annotations

from typing import Optional

from .graph import Mig
from .signal import is_complemented, node_of


def to_dot(mig: Mig, title: Optional[str] = None) -> str:
    """Render *mig* as a DOT digraph string."""
    lines = ["digraph mig {"]
    lines.append("  rankdir=BT;")
    if title or mig.name:
        lines.append(f'  label="{title or mig.name}";')
    lines.append('  node [shape=circle, fontsize=10];')
    lines.append('  n0 [label="0", shape=box];')
    for idx, node in enumerate(mig.pis()):
        lines.append(
            f'  n{node} [label="{mig.pi_name(idx)}", shape=triangle];'
        )
    live = mig.live_mask()
    for node in mig.gates():
        if not live[node]:
            continue
        lines.append(f'  n{node} [label="MAJ"];')
        for s in mig.fanins(node):
            style = "dashed" if is_complemented(s) else "solid"
            lines.append(f"  n{node_of(s)} -> n{node} [style={style}];")
    for idx, s in enumerate(mig.pos()):
        po = f"po{idx}"
        lines.append(
            f'  {po} [label="{mig.po_name(idx)}", shape=invtriangle];'
        )
        style = "dashed" if is_complemented(s) else "solid"
        lines.append(f"  n{node_of(s)} -> {po} [style={style}];")
    lines.append("}")
    return "\n".join(lines)


def write_dot(mig: Mig, path: str, title: Optional[str] = None) -> None:
    """Write :func:`to_dot` output to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(mig, title))
        handle.write("\n")
