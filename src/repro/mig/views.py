"""Derived views over a MIG: fanouts, levels, storage-duration metrics.

The PLiM compiler's node-selection heuristics (both the area/latency-driven
selection of [Soeken et al., DAC'16] and the endurance-aware selection of
Algorithm 3 in the reproduced paper) rank candidate nodes by

* the number of RRAM devices *released* by computing the node (children
  whose last pending use this is), and
* the *fanout level index*: how long the node's own value must stay resident
  before its last consumer is computed.

This module computes the static parts of those metrics once per graph.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .graph import Mig
from .signal import node_of


class FanoutView:
    """Fanout lists and storage-duration metrics for the live part of a MIG.

    One instance may be shared by many consumers (it is memoized on the
    graph via :meth:`repro.mig.graph.Mig.fanout_view`), so ``fanouts``
    and ``ref_counts`` are immutable tuples; copy before mutating, like
    the compiler does with its working reference counts.
    """

    def __init__(self, mig: Mig) -> None:
        self.mig = mig
        self.live = mig.live_mask()
        self.levels = mig.levels()
        n = mig.num_nodes
        fanouts: List[List[int]] = [[] for _ in range(n)]
        ref_counts: List[int] = [0] * n
        for node, na, _, nb, _, nc, _ in mig.flat_gates():
            fanouts[na].append(node)
            ref_counts[na] += 1
            fanouts[nb].append(node)
            ref_counts[nb] += 1
            fanouts[nc].append(node)
            ref_counts[nc] += 1
        self.po_refs: List[int] = [0] * n
        for s in mig.pos():
            self.po_refs[node_of(s)] += 1
            ref_counts[node_of(s)] += 1
        self.fanouts: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(f) for f in fanouts
        )
        self.ref_counts: Tuple[int, ...] = tuple(ref_counts)
        self.depth = max(
            (self.levels[node_of(s)] for s in mig.pos()), default=0
        )
        self._level_indices: Dict[str, List[int]] = {}

    def fanout_level_index(self, node: int, aggregate: str = "max") -> int:
        """Level of the consumer that finally releases *node*'s device.

        ``max`` (default) is the storage-duration reading used by the
        endurance-aware selection: the device stays blocked until the
        highest-level fanout is computed.  ``min`` gives the first-use
        level, exposed for the ablation benchmarks.  Nodes that drive a
        primary output are pinned until the end of the program and get
        ``depth + 1``.
        """
        if self.po_refs[node]:
            return self.depth + 1
        levels = [self.levels[f] for f in self.fanouts[node]]
        if not levels:
            return 0
        if aggregate == "max":
            return max(levels)
        if aggregate == "min":
            return min(levels)
        raise ValueError(f"unknown aggregate {aggregate!r}")

    def fanout_level_indices(self, aggregate: str = "max") -> List[int]:
        """Vector of :meth:`fanout_level_index` per node (memoized)."""
        cached = self._level_indices.get(aggregate)
        if cached is None:
            if aggregate not in ("max", "min"):
                raise ValueError(f"unknown aggregate {aggregate!r}")
            reduce = max if aggregate == "max" else min
            levels = self.levels
            pinned = self.depth + 1
            cached = [
                pinned
                if self.po_refs[node]
                else reduce((levels[f] for f in fanout), default=0)
                for node, fanout in enumerate(self.fanouts)
            ]
            self._level_indices[aggregate] = cached
        return list(cached)

    def single_fanout_nodes(self) -> List[int]:
        """Live nodes with exactly one use (ideal RM3 destinations)."""
        return [
            node
            for node in range(1, self.mig.num_nodes)
            if self.live[node] and self.ref_counts[node] == 1
        ]

    def level_spread(self) -> Dict[int, int]:
        """Histogram of ``fanout_level_index - own_level`` over live gates.

        Large spreads are the "blocked RRAM" pathology of Fig. 2 in the
        paper: values produced early but consumed late pin their devices.
        """
        spread: Dict[int, int] = {}
        for node in range(1, self.mig.num_nodes):
            if not self.live[node] or not self.fanouts[node]:
                continue
            d = self.fanout_level_index(node) - self.levels[node]
            spread[d] = spread.get(d, 0) + 1
        return spread
