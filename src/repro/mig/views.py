"""Derived views over a MIG: fanouts, levels, storage-duration metrics.

The PLiM compiler's node-selection heuristics (both the area/latency-driven
selection of [Soeken et al., DAC'16] and the endurance-aware selection of
Algorithm 3 in the reproduced paper) rank candidate nodes by

* the number of RRAM devices *released* by computing the node (children
  whose last pending use this is), and
* the *fanout level index*: how long the node's own value must stay resident
  before its last consumer is computed.

This module computes the static parts of those metrics once per graph.
"""

from __future__ import annotations

from typing import Dict, List

from .graph import Mig
from .signal import node_of


class FanoutView:
    """Fanout lists and storage-duration metrics for the live part of a MIG."""

    def __init__(self, mig: Mig) -> None:
        self.mig = mig
        self.live = mig.live_mask()
        self.levels = mig.levels()
        n = mig.num_nodes
        self.fanouts: List[List[int]] = [[] for _ in range(n)]
        self.ref_counts: List[int] = [0] * n
        for node in range(1, n):
            if not self.live[node] or not mig.is_gate(node):
                continue
            for s in mig.fanins(node):
                child = node_of(s)
                self.fanouts[child].append(node)
                self.ref_counts[child] += 1
        self.po_refs: List[int] = [0] * n
        for s in mig.pos():
            self.po_refs[node_of(s)] += 1
            self.ref_counts[node_of(s)] += 1
        self.depth = max(
            (self.levels[node_of(s)] for s in mig.pos()), default=0
        )

    def fanout_level_index(self, node: int, aggregate: str = "max") -> int:
        """Level of the consumer that finally releases *node*'s device.

        ``max`` (default) is the storage-duration reading used by the
        endurance-aware selection: the device stays blocked until the
        highest-level fanout is computed.  ``min`` gives the first-use
        level, exposed for the ablation benchmarks.  Nodes that drive a
        primary output are pinned until the end of the program and get
        ``depth + 1``.
        """
        if self.po_refs[node]:
            return self.depth + 1
        levels = [self.levels[f] for f in self.fanouts[node]]
        if not levels:
            return 0
        if aggregate == "max":
            return max(levels)
        if aggregate == "min":
            return min(levels)
        raise ValueError(f"unknown aggregate {aggregate!r}")

    def fanout_level_indices(self, aggregate: str = "max") -> List[int]:
        """Vector of :meth:`fanout_level_index` for every node."""
        return [
            self.fanout_level_index(node, aggregate)
            for node in range(self.mig.num_nodes)
        ]

    def single_fanout_nodes(self) -> List[int]:
        """Live nodes with exactly one use (ideal RM3 destinations)."""
        return [
            node
            for node in range(1, self.mig.num_nodes)
            if self.live[node] and self.ref_counts[node] == 1
        ]

    def level_spread(self) -> Dict[int, int]:
        """Histogram of ``fanout_level_index - own_level`` over live gates.

        Large spreads are the "blocked RRAM" pathology of Fig. 2 in the
        paper: values produced early but consumed late pin their devices.
        """
        spread: Dict[int, int] = {}
        for node in range(1, self.mig.num_nodes):
            if not self.live[node] or not self.fanouts[node]:
                continue
            d = self.fanout_level_index(node) - self.levels[node]
            spread[d] = spread.get(d, 0) + 1
        return spread
