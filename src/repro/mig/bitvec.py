"""Word-level helper circuits over MIG signals.

Small, generic bit-vector building blocks that both the MIG convenience API
(:meth:`repro.mig.graph.Mig.add_maj_n`) and the benchmark generators in
:mod:`repro.synth` rely on.  Everything here emits plain majority nodes via
the :class:`~repro.mig.graph.Mig` construction API; the full adder in
particular uses the native majority carry (``carry = <a b c>``), which is
the canonical MIG idiom.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .signal import CONST0, CONST1, complement


def full_adder(mig, a: int, b: int, c: int) -> Tuple[int, int]:
    """Return ``(sum, carry)`` of three bits.

    The carry is a single majority node; the sum is the 3-input XOR
    expressed with majorities: ``sum = <~carry <a b ~c> c>``
    (the standard 3-node MIG full adder).
    """
    carry = mig.add_maj(a, b, c)
    inner = mig.add_maj(a, b, complement(c))
    total = mig.add_maj(complement(carry), inner, c)
    return total, carry


def half_adder(mig, a: int, b: int) -> Tuple[int, int]:
    """Return ``(sum, carry)`` of two bits."""
    return mig.add_xor(a, b), mig.add_and(a, b)


def popcount(mig, bits: Sequence[int]) -> List[int]:
    """Binary population count of *bits*, least-significant bit first.

    Uses column-wise 3:2 compression (carry-save reduction), which keeps
    the node count linear in the number of inputs.
    """
    if not bits:
        return []
    columns: List[List[int]] = [list(bits)]
    while any(len(col) > 1 for col in columns):
        next_columns: List[List[int]] = [[] for _ in range(len(columns) + 1)]
        for weight, col in enumerate(columns):
            pending = list(col)
            while len(pending) >= 3:
                a, b, c = pending.pop(), pending.pop(), pending.pop()
                s, cy = full_adder(mig, a, b, c)
                next_columns[weight].append(s)
                next_columns[weight + 1].append(cy)
            if len(pending) == 2:
                a, b = pending.pop(), pending.pop()
                s, cy = half_adder(mig, a, b)
                next_columns[weight].append(s)
                next_columns[weight + 1].append(cy)
            elif len(pending) == 1:
                next_columns[weight].append(pending.pop())
        while next_columns and not next_columns[-1]:
            next_columns.pop()
        columns = next_columns
    return [col[0] if col else CONST0 for col in columns]


def ge_const(mig, bits: Sequence[int], k: int) -> int:
    """Signal that is 1 iff the unsigned number *bits* (LSB first) >= *k*."""
    if k <= 0:
        return CONST1
    if k >= (1 << len(bits)):
        return CONST0
    # Compare from the most significant bit down:
    #   ge(i) = (bit_i > k_i) OR (bit_i == k_i AND ge(i-1))
    result = CONST1  # equal-so-far at the end means >=
    for i in range(len(bits)):
        k_i = (k >> i) & 1
        bit = bits[i]
        if k_i:
            # need bit_i = 1 to stay equal; bit_i = 0 makes it smaller
            result = mig.add_and(bit, result)
        else:
            # bit_i = 1 makes it larger regardless of lower bits
            result = mig.add_or(bit, result)
    return result


def popcount_threshold(mig, bits: Sequence[int], k: int) -> int:
    """Signal that is 1 iff at least *k* of *bits* are 1."""
    return ge_const(mig, popcount(mig, bits), k)
