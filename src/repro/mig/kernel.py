"""Pluggable bit-parallel simulation kernels.

The harness evaluates every MIG function two ways — bit-parallel
simulation of the graph and execution of its compiled PLiM program — and
the graph side is a pure streaming computation over the memoized flat
gate records (:meth:`repro.mig.graph.Mig.flat_gates`).  This module
abstracts that computation behind a *kernel* so the engine is
interchangeable:

* :class:`BigintKernel` — the reference engine.  Simulation words are
  plain Python integers; every gate costs a handful of bigint boolean
  operations.  Always available, no dependencies.
* :class:`NumpyKernel` — packs the pattern window into ``uint64`` lane
  arrays (64 patterns per lane) and compiles each graph once into a flat
  program of whole-row numpy operations (4–6 per gate), so wide sweeps
  run at array speed with no per-pattern Python.
* :class:`NumpyBatchKernel` — the level-batched, multi-threaded engine.
  Gates are grouped by MIG level (fanins always sit at strictly lower
  levels, so a whole level is data-independent) and each level executes
  as a handful of large 2-D ufunc calls over ``(gates_in_level, lanes)``
  matrices via precomputed gather indices, instead of 4–6 scalar-row
  ops per gate.  Exhaustive sweeps additionally fan pattern chunks out
  over a small worker-thread pool (numpy ufuncs release the GIL), sized
  by ``$REPRO_SIM_THREADS`` / :func:`resolve_sim_threads`.

All kernels consume the same flat gate records — complement attributes
pre-folded into XOR masks, so none pays per-pattern complement
branches — and all speak Python-int words at the boundary: a kernel's
outputs are bit-identical to the reference engine's, which the
backend-parity tests assert over random graphs and the full registry.

Selection
---------
:func:`get_kernel` resolves the active kernel: an explicit
:func:`set_backend` override wins, then the ``REPRO_SIM_BACKEND``
environment variable (``bigint``, ``numpy``, ``numpy-batch``, or
``auto``), then auto-detection (the batch kernel when numpy is
importable, bigint otherwise).  Requesting a numpy engine without numpy
installed fails loudly rather than silently degrading.

Degradation
-----------
Selection failures are loud, but *runtime* failures inside the numpy
engines degrade gracefully: every kernel is bit-identical, so a fault
mid-job is recoverable by recomputing one step down the chain
**numpy-batch → numpy → bigint**.  Every numpy dispatch is guarded — on
failure the call falls back to the next engine, a ``kernel_degraded``
event is recorded (:mod:`repro.resilience.events`, surfaced in run
manifests), and inside a :func:`degradation_scope` the demotion is
*sticky* per engine for the rest of the job, so a faulting engine is
not re-tried gate-by-gate.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

from ..resilience import events as _res_events
from ..resilience import faults as _res_faults
from ..resilience.errors import StageTimeoutError
from .graph import Mig

#: Environment variable naming the simulation backend.
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"

#: Environment variable sizing the simulation worker-thread pool.
THREADS_ENV_VAR = "REPRO_SIM_THREADS"

#: Environment variable pinning the exhaustive chunk width (log2).
CHUNK_BITS_ENV_VAR = "REPRO_SIM_CHUNK_BITS"

try:  # numpy is optional: the bigint kernel needs nothing beyond CPython
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the without-numpy CI job
    _np = None


# ----------------------------------------------------------------------
# Thread-count resolution (flag > scope > override > env > default)
# ----------------------------------------------------------------------

#: Default simulation thread count: enough to scale the exhaustive
#: paths on a multi-core runner without oversubscribing boxes that also
#: fan out process pools.
DEFAULT_SIM_THREADS = min(4, os.cpu_count() or 1)

#: Explicit override installed by :func:`set_sim_threads`.
_THREADS_OVERRIDE: Optional[int] = None

#: Per-thread stack of :func:`sim_threads_scope` entries; beats the
#: override, mirroring :func:`backend_scope`.
_THREADS_SCOPE = threading.local()


def _validate_threads(value) -> int:
    try:
        count = int(value)
    except (TypeError, ValueError):
        count = 0
    if count < 1:
        raise ValueError(
            f"invalid simulation thread count {value!r}; "
            "expected a positive integer"
        )
    return count


def sim_threads_from_env() -> Optional[int]:
    """``$REPRO_SIM_THREADS`` as a validated count, or ``None`` if unset."""
    raw = os.environ.get(THREADS_ENV_VAR, "").strip()
    if not raw:
        return None
    return _validate_threads(raw)


def resolve_sim_threads(value=None) -> int:
    """Resolve the simulation worker-thread count.

    An explicit *value* wins (validated, so callers like
    :class:`repro.flow.Session` fail fast on garbage), then the active
    :func:`sim_threads_scope`, then a :func:`set_sim_threads` override,
    then ``$REPRO_SIM_THREADS``, then :data:`DEFAULT_SIM_THREADS` —
    the same flag > env > default precedence as :func:`resolve_backend`.
    """
    if value is not None:
        return _validate_threads(value)
    stack = getattr(_THREADS_SCOPE, "stack", None)
    if stack:
        return stack[-1]
    if _THREADS_OVERRIDE is not None:
        return _THREADS_OVERRIDE
    env = sim_threads_from_env()
    if env is not None:
        return env
    return DEFAULT_SIM_THREADS


@contextmanager
def sim_threads_scope(count: Optional[int]):
    """Temporarily pin the simulation thread count on this thread.

    ``None`` is a no-op scope (ambient resolution applies).  Yields the
    count active inside the scope.  :meth:`repro.flow.Session.activated`
    enters this alongside :func:`backend_scope`.
    """
    if count is None:
        yield resolve_sim_threads()
        return
    count = _validate_threads(count)
    stack = getattr(_THREADS_SCOPE, "stack", None)
    if stack is None:
        stack = _THREADS_SCOPE.stack = []
    stack.append(count)
    try:
        yield count
    finally:
        stack.pop()


def set_sim_threads(count: Optional[int]) -> int:
    """Install an explicit thread-count override (``None`` removes it)."""
    global _THREADS_OVERRIDE
    _THREADS_OVERRIDE = _validate_threads(count) if count is not None else None
    return resolve_sim_threads()


#: Worker-thread pools by size, created lazily and kept for the life of
#: the process so pool threads' per-thread executable caches survive
#: across sweeps.  Never shut down (idle threads are cheap; tearing one
#: down under a concurrent dispatcher would turn its submits into
#: spurious kernel failures).
_POOLS: Dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _reset_pools_after_fork() -> None:  # pragma: no cover - fork timing
    # A forked child inherits the executor objects but not their
    # threads; submitting to one would hang forever.  Start fresh.
    _POOLS.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_pools_after_fork)


def _thread_pool(size: int) -> ThreadPoolExecutor:
    pool = _POOLS.get(size)
    if pool is None:
        with _POOLS_LOCK:
            pool = _POOLS.get(size)
            if pool is None:
                pool = _POOLS[size] = ThreadPoolExecutor(
                    max_workers=size, thread_name_prefix="repro-sim"
                )
    return pool


def _run_tasks(tasks, threads: int) -> list:
    """Run thunks across the worker pool; results in task order.

    Serial when a single task (or thread) makes threading pointless.
    Exceptions propagate to the caller — the dispatching kernel's
    degradation guard treats them like any other engine failure.
    """
    if threads <= 1 or len(tasks) <= 1:
        return [task() for task in tasks]
    pool = _thread_pool(min(threads, len(tasks)))
    futures = [pool.submit(task) for task in tasks]
    return [future.result() for future in futures]


def _env_chunk_bits() -> Optional[int]:
    """``$REPRO_SIM_CHUNK_BITS`` clamped to a sane window, or ``None``.

    The clamp keeps the override inside what the engines support: at
    least 2^7 patterns (below that every kernel's fast paths decline
    anyway) and at most the exhaustive ceiling of 2^20.
    """
    raw = os.environ.get(CHUNK_BITS_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        bits = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {CHUNK_BITS_ENV_VAR}={raw!r}; expected an integer "
            "log2 chunk width"
        ) from None
    return max(7, min(bits, 20))


def _bigint_simulate(mig: Mig, pi_values: Sequence[int], mask: int) -> List[int]:
    """Reference engine: one Python-int word per node.

    The complement XOR masks from the flat gate records are ``0`` or
    ``-1``; ``xor & mask`` widens them to the pattern window, so the
    inner loop is branch-free.
    """
    values = [0] * mig.num_nodes
    for node, word in zip(mig.pis(), pi_values):
        values[node] = word & mask
    for node, na, xa, nb, xb, nc, xc in mig.flat_gates():
        a = values[na] ^ (xa & mask)
        b = values[nb] ^ (xb & mask)
        c = values[nc] ^ (xc & mask)
        # <a b c> = (a & b) | ((a | b) & c): 4 ops instead of the
        # textbook 5-op (a&b)|(a&c)|(b&c).
        values[node] = (a & b) | ((a | b) & c)
    outputs = []
    for s in mig.pos():
        word = values[s >> 1]
        if s & 1:
            word ^= mask
        outputs.append(word & mask)
    return outputs


class BigintKernel:
    """Pure-Python engine over arbitrary-precision integer words."""

    name = "bigint"
    #: Preferred word width (patterns per round) for randomized checks.
    random_width = 64

    def chunk_bits_for(self, mig: Mig) -> int:
        """log2 of the widest exhaustive simulation word (graph-independent).

        2^13-bit words keep every node value L1/L2-resident, where
        CPython's bigint boolean loops run near memory speed; wider words
        were measured slower in PR 1's chunking experiments.
        ``$REPRO_SIM_CHUNK_BITS`` pins the width explicitly.
        """
        env = _env_chunk_bits()
        if env is not None:
            return env
        return 13

    def simulate(
        self, mig: Mig, pi_values: Sequence[int], mask: int
    ) -> List[int]:
        return _bigint_simulate(mig, pi_values, mask)


# ----------------------------------------------------------------------
# Graceful degradation (numpy-batch -> numpy -> bigint)
# ----------------------------------------------------------------------

#: Per-thread stack of degradation frames; a frame marks a job boundary
#: within which a numpy-engine failure demotes every later dispatch.
_DEGRADE = threading.local()


@contextmanager
def degradation_scope(job: Optional[str] = None):
    """Mark a job boundary for sticky numpy-kernel demotion.

    Inside the scope, the first runtime failure of a numpy engine
    demotes *this thread's* remaining dispatches one step down the
    **numpy-batch → numpy → bigint** chain (each demotion recorded as a
    ``kernel_degraded`` event tagged with *job*); the demotions end with
    the scope, so the next job tries the full engine again.  Outside any
    scope failures still fall back, but per call.  The job runner enters
    one scope per (benchmark, configurations) job — in worker processes
    and the serial path alike.  Yields the frame dict (``{"job": ...,
    "demoted": set-of-engine-names}``) so tests can observe demotion.
    """
    stack = getattr(_DEGRADE, "stack", None)
    if stack is None:
        stack = _DEGRADE.stack = []
    frame = {"job": job, "demoted": set()}
    stack.append(frame)
    try:
        yield frame
    finally:
        stack.pop()


def _degrade_frame() -> Optional[dict]:
    stack = getattr(_DEGRADE, "stack", None)
    return stack[-1] if stack else None


def _degrade_job() -> Optional[str]:
    frame = _degrade_frame()
    return frame["job"] if frame else None


def _demoted(backend: str) -> bool:
    frame = _degrade_frame()
    return bool(frame) and backend in frame["demoted"]


def _demote(error: BaseException, backend: str, fallback: str) -> None:
    """Record an engine failure and make the demotion scope-sticky."""
    frame = _degrade_frame()
    if frame is not None:
        frame["demoted"].add(backend)
    _res_events.record(
        "kernel_degraded",
        job=frame["job"] if frame else None,
        backend=backend,
        fallback=fallback,
        error=repr(error),
    )


# ----------------------------------------------------------------------
# numpy engines: shared plan compilation + executables
# ----------------------------------------------------------------------

#: Pattern windows at or below one uint64 lane stay on the bigint
#: engine: a 64-bit Python int operation beats numpy dispatch overhead.
_NUMPY_MIN_WIDTH = 65

#: Soft cap on the node-value matrix (bytes); exhaustive chunks shrink
#: until ``num_nodes * lanes * 8`` fits.
_NUMPY_MEM_BUDGET = 64 << 20

#: Tighter per-thread cap for the level-batched engine: its gather
#: passes read rows from across the whole matrix (no per-gate temporal
#: locality), so it wants the working set near cache-resident.  This is
#: the *fallback* when the actual last-level cache size cannot be read
#: from sysfs — see :func:`_batch_mem_budget`.
_BATCH_MEM_BUDGET = 8 << 20

#: Clamp window for the detected budget: below 1 MiB the chunks get too
#: narrow to amortise ufunc dispatch, above 64 MiB the "cache-resident"
#: premise no longer holds (and the generic engine's budget takes over).
_BATCH_BUDGET_MIN = 1 << 20
_BATCH_BUDGET_MAX = 64 << 20

#: sysfs directory describing cpu0's cache hierarchy.
_SYSFS_CACHE_DIR = "/sys/devices/system/cpu/cpu0/cache"


def _parse_cache_size(text: str) -> Optional[int]:
    """Bytes of a sysfs cache ``size`` value (``'32K'``, ``'8M'``, …)."""
    text = text.strip().upper()
    scale = 1
    if text.endswith("K"):
        scale, text = 1 << 10, text[:-1]
    elif text.endswith("M"):
        scale, text = 1 << 20, text[:-1]
    elif text.endswith("G"):
        scale, text = 1 << 30, text[:-1]
    try:
        size = int(text)
    except ValueError:
        return None
    return size * scale if size > 0 else None


def _detect_llc_bytes(base: str = _SYSFS_CACHE_DIR) -> Optional[int]:
    """The largest level>=2 unified/data cache reported by sysfs.

    That is the last-level cache the batch engine's gather passes
    actually stream through — L1 is far too small to hold a value
    matrix and instruction caches are irrelevant.  Any unreadable or
    malformed entry is skipped; ``None`` means "nothing detected" and
    the caller falls back to the static default.
    """
    try:
        indexes = sorted(os.listdir(base))
    except OSError:
        return None
    best = None
    for index in indexes:
        if not index.startswith("index"):
            continue
        path = os.path.join(base, index)
        try:
            with open(os.path.join(path, "level")) as fh:
                level = int(fh.read().strip())
            with open(os.path.join(path, "type")) as fh:
                kind = fh.read().strip()
            with open(os.path.join(path, "size")) as fh:
                size = _parse_cache_size(fh.read())
        except (OSError, ValueError):
            continue
        if level < 2 or kind not in ("Unified", "Data") or size is None:
            continue
        if best is None or size > best:
            best = size
    return best


_BATCH_BUDGET_CACHE: Optional[int] = None


def _batch_mem_budget() -> int:
    """Per-thread working-set budget of the level-batched engine.

    Derived once per process from the machine's detected last-level
    cache size (sysfs), clamped to
    [:data:`_BATCH_BUDGET_MIN`, :data:`_BATCH_BUDGET_MAX`]; when sysfs
    is unavailable (containers, non-Linux) the static
    :data:`_BATCH_MEM_BUDGET` default applies.  ``$REPRO_SIM_CHUNK_BITS``
    still pins the chunk width outright, bypassing the budget entirely.
    """
    global _BATCH_BUDGET_CACHE
    if _BATCH_BUDGET_CACHE is None:
        detected = _detect_llc_bytes()
        budget = detected if detected is not None else _BATCH_MEM_BUDGET
        _BATCH_BUDGET_CACHE = max(
            _BATCH_BUDGET_MIN, min(budget, _BATCH_BUDGET_MAX)
        )
    return _BATCH_BUDGET_CACHE

#: Executables kept per thread per plan (distinct widths); interleaved
#: widths — e.g. serve jobs at different presets on one warm graph —
#: rebind instead of thrashing a single-slot cache.
_EXEC_LRU_SIZE = 4

#: Minimum patterns per threaded sub-window; below this, thread spawn
#: and buffer fill dominate the ufunc work.
_MIN_SUBWINDOW = 1 << 12

#: Minimum uint64 lanes per thread when splitting a generic simulate
#: call (arbitrary input words) across the pool.
_MIN_THREAD_LANES = 32


def _compile_gate_program(mig: Mig):
    """Polarity-propagated, operand-rotated gate program + PO map.

    Gates are compiled to the 4-op majority form

        maj(a, b, c) = b ^ ((a ^ b) & (b ^ c))

    with two algebraic rewrites applied per gate to minimise complement
    work:

    * *polarity propagation* — each node's value is stored in a chosen
      polarity (possibly inverted); since majority is self-dual
      (``maj(~a,~b,~c) = ~maj(a,b,c)``), the stored polarity is picked so
      the trailing output inversion is always free, and fanin edge
      complements are re-derived against the fanins' stored polarities;
    * *operand rotation* — majority is symmetric, so the middle operand
      ``b`` is chosen to minimise the two pair-complement terms.  Of any
      three polarities at least two agree, so rotation always leaves **at
      most one** of the two pair complements set — an invariant the
      level-batched executor relies on to keep tail-lane bits clean.

    Returns ``(program, po_extract)`` where *program* is a list of
    ``(node, a, b, c, flip_ab, flip_bc)`` tuples in flat-gate (topological)
    order and *po_extract* is ``(node, flip)`` per PO with the stored
    polarity folded in.
    """
    program: List[Tuple[int, int, int, int, bool, bool]] = []
    pol = [False] * mig.num_nodes
    for node, na, xa, nb, xb, nc, xc in mig.flat_gates():
        operands = (
            (na, bool(xa) ^ pol[na]),
            (nb, bool(xb) ^ pol[nb]),
            (nc, bool(xc) ^ pol[nc]),
        )
        best = None
        for mid in range(3):
            (a, pa), (b, pb), (c, pc) = (
                operands[mid - 2],
                operands[mid],
                operands[mid - 1],
            )
            cost = (pa ^ pb) + (pb ^ pc)
            if best is None or cost < best[0]:
                best = (cost, a, b, c, pa ^ pb, pb ^ pc, pb)
        _, a, b, c, fab, fbc, pb = best
        # Store maj of the triple with all polarities flipped by pb:
        # self-duality makes the stored value maj ^ pb, for free.
        pol[node] = pb
        program.append((node, a, b, c, fab, fbc))
    po_extract = [(s >> 1, bool(s & 1) ^ pol[s >> 1]) for s in mig.pos()]
    return program, po_extract


def _budget_chunk_bits(num_nodes: int, budget: int = _NUMPY_MEM_BUDGET) -> int:
    """Widest exhaustive chunk whose value matrix fits *budget* bytes.

    Wide rows amortise numpy dispatch overhead, so prefer 2^18 patterns
    (32 KiB per node row) and shrink — never below the bigint kernel's
    2^13 — for graphs whose node count would blow the working-set
    budget.  ``$REPRO_SIM_CHUNK_BITS`` (handled by the callers) pins the
    width explicitly instead.
    """
    bits = 18
    while bits > 13 and (num_nodes << (bits - 6 + 3)) > budget:
        bits -= 1
    return bits


def _tls_executable(plan, num_lanes: int, width: int):
    """This thread's executable for *width*, via a per-width LRU.

    Executables (value matrices + work buffers) are bound per thread —
    the worker pool's sweep threads and concurrent ``serve`` jobs each
    own their buffers, so no lock serializes simulation of a shared warm
    graph — and cached per width in a small LRU, so interleaved widths
    (jobs at different presets on one graph) rebind instead of
    rebuilding on every call.
    """
    cache = getattr(plan._tls, "cache", None)
    if cache is None:
        cache = plan._tls.cache = OrderedDict()
    exe = cache.get(width)
    if exe is not None:
        cache.move_to_end(width)
        return exe
    exe = plan._build_executable(num_lanes, width)
    cache[width] = exe
    if len(cache) > _EXEC_LRU_SIZE:
        cache.popitem(last=False)
    return exe


class _Exec:
    """Per-thread, per-width buffers + bound op list (per-gate engine).

    The complement row ``full`` carries the window's tail mask in its
    last lane, so every value row keeps the invariant "bits at or above
    *width* are zero" and extraction never re-masks.  ``exh_width``
    memoizes which width's low/middle exhaustive stimulus currently
    fills the PI rows (``None`` when they hold arbitrary words).
    """

    __slots__ = ("width", "vals", "ops", "tmp", "full", "exh_width")

    def __init__(self, width, vals, ops, tmp, full) -> None:
        self.width = width
        self.vals = vals
        self.ops = ops
        self.tmp = tmp
        self.full = full
        self.exh_width: Optional[int] = None

    def run(self, plan) -> None:
        for f, x, y, out in self.ops:
            f(x, y, out=out)


class _NumpyPlan:
    """Per-graph compiled form for the per-gate numpy kernel.

    The compiled gate program (see :func:`_compile_gate_program`) is a
    flat list of binary ``(ufunc, x, y, out)`` row operations — 4 per
    gate plus one per surviving pair complement — bound to concrete
    array rows once per (thread, lane width) and replayed for every
    chunk.  The plan lives in the graph's ``_derived`` memo, hence is
    invalidated by any mutation alongside ``flat_gates``.
    """

    __slots__ = ("num_nodes", "pi_rows", "po_extract", "gate_program", "_tls")

    def __init__(self, mig: Mig) -> None:
        self.num_nodes = mig.num_nodes
        # Value rows are indexed by node id; PI "rows" are the PI nodes.
        self.pi_rows = mig.pis()
        self.gate_program, self.po_extract = _compile_gate_program(mig)
        self._tls = threading.local()

    def executable(self, num_lanes: int, width: int) -> _Exec:
        return _tls_executable(self, num_lanes, width)

    def _build_executable(self, num_lanes: int, width: int) -> _Exec:
        np = _np
        vals = np.empty((self.num_nodes, num_lanes), dtype=np.uint64)
        vals[0] = 0  # constant-false node; dead rows are never read
        tmp = np.empty(num_lanes, dtype=np.uint64)
        full = np.full(num_lanes, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        if width & 63:
            full[-1] = (1 << (width & 63)) - 1
        bxor, band = np.bitwise_xor, np.bitwise_and
        ops = []
        append = ops.append
        for node, a, b, c, fab, fbc in self.gate_program:
            row_b = vals[b]
            out = vals[node]
            append((bxor, row_b, vals[c], tmp))
            if fbc:
                append((bxor, tmp, full, tmp))
            append((bxor, vals[a], row_b, out))
            if fab:
                append((bxor, out, full, out))
            append((band, out, tmp, out))
            append((bxor, out, row_b, out))
        return _Exec(width, vals, ops, tmp, full)


class _BatchLevel:
    """One MIG level's gather/scatter metadata (width-independent).

    ``ai``/``bi``/``ci`` gather fanin rows into ``(gates, lanes)``
    matrices; the level's outputs occupy the contiguous row span
    ``[lo, hi)`` of the value matrix, so results are written in place
    with no scatter copy.  ``fab_col``/``fbc_col`` are ``(gates, 1)``
    all-ones/zero columns folding the surviving pair complement in as
    one broadcast XOR (``None`` when no gate in the level needs it).
    """

    __slots__ = ("lo", "hi", "ai", "bi", "ci", "fab_col", "fbc_col")

    def __init__(self, lo, hi, ai, bi, ci, fab_col, fbc_col) -> None:
        self.lo = lo
        self.hi = hi
        self.ai = ai
        self.bi = bi
        self.ci = ci
        self.fab_col = fab_col
        self.fbc_col = fbc_col


class _BatchExec:
    """Per-thread, per-width buffers for the level-batched engine."""

    __slots__ = ("width", "vals", "buf_b", "buf_t", "tmp", "full", "exh_width")

    def __init__(self, plan, num_lanes: int, width: int) -> None:
        np = _np
        self.width = width
        self.vals = np.empty((plan.num_rows, num_lanes), dtype=np.uint64)
        self.vals[0] = 0  # constant-false row
        self.buf_b = np.empty((plan.max_gates, num_lanes), dtype=np.uint64)
        self.buf_t = np.empty((plan.max_gates, num_lanes), dtype=np.uint64)
        self.tmp = np.empty(num_lanes, dtype=np.uint64)
        self.full = np.full(num_lanes, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        if width & 63:
            self.full[-1] = (1 << (width & 63)) - 1
        self.exh_width: Optional[int] = None

    def run(self, plan) -> None:
        """Replay the level program: ~8 large ufunc calls per level.

        The broadcast complement columns are *not* tail-masked (unlike
        ``full``): a flipped ``b^c`` term carries garbage above *width*
        in its last lane, but rotation guarantees at most one of the two
        pair complements per gate, so those bits always meet zeros in
        the ``&`` and the "high bits are zero" row invariant holds.
        """
        np = _np
        vals = self.vals
        take, bxor, band = np.take, np.bitwise_xor, np.bitwise_and
        for lv in plan.levels:
            g = lv.hi - lv.lo
            buf_b = self.buf_b[:g]
            buf_t = self.buf_t[:g]
            out = vals[lv.lo : lv.hi]
            # mode="clip" skips take's per-element bounds checks (~5x
            # on this path); the plan's indices are valid by
            # construction.
            take(vals, lv.bi, axis=0, out=buf_b, mode="clip")
            take(vals, lv.ci, axis=0, out=buf_t, mode="clip")
            bxor(buf_b, buf_t, out=buf_t)  # b ^ c
            if lv.fbc_col is not None:
                bxor(buf_t, lv.fbc_col, out=buf_t)
            take(vals, lv.ai, axis=0, out=out, mode="clip")
            bxor(out, buf_b, out=out)  # a ^ b
            if lv.fab_col is not None:
                bxor(out, lv.fab_col, out=out)
            band(out, buf_t, out=out)  # (a^b) & (b^c)
            bxor(out, buf_b, out=out)  # ^ b  ->  maj(a, b, c)


class _BatchPlan:
    """Per-graph compiled form for the level-batched numpy kernel.

    Node values live in a *packed* row order — constant, PIs, then gates
    grouped by level (topological within a level) — so each level's
    outputs are one contiguous matrix slice and the whole level runs as
    a few large ufunc calls (see :class:`_BatchExec.run`).  Compiled
    from the same polarity-propagated gate program as the per-gate plan,
    hence bit-identical by construction; cached in ``_derived`` like it.
    """

    __slots__ = (
        "num_rows",
        "pi_rows",
        "po_extract",
        "levels",
        "max_gates",
        "_tls",
    )

    def __init__(self, mig: Mig) -> None:
        np = _np
        program, po_extract = _compile_gate_program(mig)
        gate_levels = mig.flat_gate_levels()  # aligned with program
        row_of = [0] * mig.num_nodes
        self.pi_rows: List[int] = []
        row = 1
        for node in mig.pis():
            row_of[node] = row
            self.pi_rows.append(row)
            row += 1
        # Stable sort by level keeps the topological order within one.
        order = sorted(range(len(program)), key=gate_levels.__getitem__)
        for i in order:
            row_of[program[i][0]] = row
            row += 1
        self.num_rows = row
        self.levels: List[_BatchLevel] = []
        self.max_gates = 0
        lo = 1 + len(self.pi_rows)
        start = 0
        while start < len(order):
            level = gate_levels[order[start]]
            end = start
            while end < len(order) and gate_levels[order[end]] == level:
                end += 1
            entries = [program[i] for i in order[start:end]]
            g = len(entries)

            def _col(flags):
                if not any(flags):
                    return None
                col = np.zeros((g, 1), dtype=np.uint64)
                col[list(flags)] = np.uint64(0xFFFFFFFFFFFFFFFF)
                return col

            self.levels.append(
                _BatchLevel(
                    lo,
                    lo + g,
                    np.array([row_of[e[1]] for e in entries], dtype=np.intp),
                    np.array([row_of[e[2]] for e in entries], dtype=np.intp),
                    np.array([row_of[e[3]] for e in entries], dtype=np.intp),
                    _col([e[4] for e in entries]),
                    _col([e[5] for e in entries]),
                )
            )
            lo += g
            if g > self.max_gates:
                self.max_gates = g
            start = end
        self.po_extract = [(row_of[node], flip) for node, flip in po_extract]
        self._tls = threading.local()

    def executable(self, num_lanes: int, width: int) -> _BatchExec:
        return _tls_executable(self, num_lanes, width)

    def _build_executable(self, num_lanes: int, width: int) -> _BatchExec:
        return _BatchExec(self, num_lanes, width)


#: 64-pattern stimulus words for variables 0..5 (period <= one lane).
_P64 = (
    0xAAAAAAAAAAAAAAAA,
    0xCCCCCCCCCCCCCCCC,
    0xF0F0F0F0F0F0F0F0,
    0xFF00FF00FF00FF00,
    0xFFFF0000FFFF0000,
    0xFFFFFFFF00000000,
)


def _numpy_plan(mig: Mig) -> _NumpyPlan:
    # Benign race: concurrent first callers may compile twice; the plans
    # are identical and last-write wins.
    plan = mig._derived.get("numpy_plan")
    if plan is None:
        plan = _NumpyPlan(mig)
        mig._derived["numpy_plan"] = plan
    return plan


def _batch_plan(mig: Mig) -> _BatchPlan:
    plan = mig._derived.get("numpy_batch_plan")
    if plan is None:
        plan = _BatchPlan(mig)
        mig._derived["numpy_batch_plan"] = plan
    return plan


def _word_to_lanes(word: int, num_lanes: int):
    """Little-endian split of a Python-int word into uint64 lanes."""
    return _np.frombuffer(
        word.to_bytes(num_lanes * 8, "little"), dtype="<u8"
    )


def _lanes_to_word(lanes) -> int:
    """Inverse of :func:`_word_to_lanes`."""
    return int.from_bytes(
        _np.ascontiguousarray(lanes, dtype="<u8").tobytes(), "little"
    )


def _fill_exhaustive(plan, exe, base: int, width: int) -> None:
    """Synthesise the exhaustive window ``[base, base + width)`` stimulus.

    The structured stimulus goes directly into the lane rows — constant
    lane patterns for low variables, lane block patterns for middle
    ones, constant rows for high ones — so no Python bigints are built
    on the input side at all.  Low and middle variables do not depend on
    the window base and are filled once per width (``exe.exh_width``
    memo); callers guarantee *base* is a multiple of *width* and *width*
    is a multiple of 64.
    """
    np = _np
    vals = exe.vals
    num_lanes = width >> 6
    lane_bits = num_lanes.bit_length() - 1
    if exe.exh_width != width:
        lanes = np.arange(num_lanes, dtype=np.uint64)
        for i, row in enumerate(plan.pi_rows):
            if i < 6:
                vals[row] = np.uint64(_P64[i])
            elif i < 6 + lane_bits:
                np.negative(
                    (lanes >> np.uint64(i - 6)) & np.uint64(1),
                    out=vals[row],
                )
        exe.exh_width = width
    for i in range(6 + lane_bits, len(plan.pi_rows)):
        vals[plan.pi_rows[i]] = np.uint64(
            0xFFFFFFFFFFFFFFFF if (base >> i) & 1 else 0
        )


def _extract_words(plan, exe) -> List[int]:
    """PO rows as Python-int words (stored polarity folded back in)."""
    outputs = []
    for row_i, flip in plan.po_extract:
        row = exe.vals[row_i]
        if flip:
            _np.bitwise_xor(row, exe.full, out=exe.tmp)
            row = exe.tmp
        outputs.append(_lanes_to_word(row))
    return outputs


def _extract_bytes(plan, exe) -> List[bytes]:
    """PO rows as little-endian byte strings (threaded-sweep assembly)."""
    outputs = []
    for row_i, flip in plan.po_extract:
        row = exe.vals[row_i]
        if flip:
            _np.bitwise_xor(row, exe.full, out=exe.tmp)
            row = exe.tmp
        outputs.append(_np.ascontiguousarray(row, dtype="<u8").tobytes())
    return outputs


def _join_words(parts: List[List[bytes]], num_pos: int) -> List[int]:
    """Concatenate per-task PO byte strings back into int words."""
    return [
        int.from_bytes(b"".join(part[i] for part in parts), "little")
        for i in range(num_pos)
    ]


def _run_window(plan, base: int, width: int):
    """Fill + replay one exhaustive window on this thread's executable."""
    exe = plan.executable(width >> 6, width)
    _fill_exhaustive(plan, exe, base, width)
    exe.run(plan)
    return exe


def _windows_equal(plan_a, plan_b, base: int, width: int) -> bool:
    """Evaluate one window on both plans and compare PO rows lane-wise."""
    np = _np
    exe_a = _run_window(plan_a, base, width)
    exe_b = exe_a if plan_b is plan_a else _run_window(plan_b, base, width)
    for (ra, fa), (rb, fb) in zip(plan_a.po_extract, plan_b.po_extract):
        row_a = exe_a.vals[ra]
        if fa != fb:  # opposite stored polarity: compare flipped
            np.bitwise_xor(row_a, exe_a.full, out=exe_a.tmp)
            row_a = exe_a.tmp
        if not np.array_equal(row_a, exe_b.vals[rb]):
            return False
    return True


def _subwindow_width(width: int, threads: int) -> Optional[int]:
    """Power-of-two sub-window width splitting *width* over *threads*.

    ``None`` when splitting is not worthwhile (one thread, or the
    sub-windows would drop below :data:`_MIN_SUBWINDOW` patterns).
    """
    if threads <= 1 or width < (_MIN_SUBWINDOW << 1):
        return None
    pieces = 1
    while pieces < threads:
        pieces <<= 1
    sub = width // pieces
    while sub < _MIN_SUBWINDOW:
        sub <<= 1
        pieces >>= 1
    return sub if pieces > 1 else None


def _lane_cuts(num_lanes: int, threads: int) -> List[int]:
    """Near-equal lane-range boundaries for a threaded simulate call."""
    pieces = min(threads, num_lanes // _MIN_THREAD_LANES)
    step, extra = divmod(num_lanes, pieces)
    cuts = [0]
    for i in range(pieces):
        cuts.append(cuts[-1] + step + (1 if i < extra else 0))
    return cuts


class NumpyKernel:
    """uint64 lane-array engine replaying a precompiled row program."""

    name = "numpy"
    #: Randomized checks sweep 16 lanes per round.
    random_width = 1024

    def chunk_bits_for(self, mig: Mig) -> int:
        env = _env_chunk_bits()
        if env is not None:
            return env
        return _budget_chunk_bits(mig.num_nodes)

    def simulate(
        self, mig: Mig, pi_values: Sequence[int], mask: int
    ) -> List[int]:
        width = mask.bit_length()
        if width < _NUMPY_MIN_WIDTH or _demoted(self.name):
            return _bigint_simulate(mig, pi_values, mask)
        try:
            _res_faults.kernel_fault(_degrade_job())  # chaos hook
            return self._numpy_simulate(mig, pi_values, mask, width)
        except StageTimeoutError:
            raise  # a blown stage budget is not an engine failure
        except Exception as error:
            # Both engines are bit-identical, so recomputing on the
            # reference kernel preserves the artefact exactly.
            _demote(error, self.name, "bigint")
            return _bigint_simulate(mig, pi_values, mask)

    def _numpy_simulate(
        self, mig: Mig, pi_values: Sequence[int], mask: int, width: int
    ) -> List[int]:
        plan = _numpy_plan(mig)
        num_lanes = (width + 63) >> 6
        exe = plan.executable(num_lanes, width)
        exe.exh_width = None  # PI rows now hold arbitrary words
        for row, word in zip(plan.pi_rows, pi_values):
            exe.vals[row] = _word_to_lanes(word & mask, num_lanes)
        exe.run(plan)
        return _extract_words(plan, exe)

    def exhaustive_window(
        self, mig: Mig, base: int, width: int
    ) -> Optional[List[int]]:
        """Evaluate the exhaustive window ``[base, base + width)``.

        Fast path used by :func:`repro.mig.simulate.exhaustive_chunks`
        (see :func:`_fill_exhaustive` for the native stimulus).  Returns
        ``None`` when the window is too narrow for this kernel (the
        caller falls back to the generic path) — and when the engine is
        demoted or fails, for the same reason: the generic path
        re-dispatches through :meth:`simulate`, which lands on the
        reference engine.
        """
        if width < _NUMPY_MIN_WIDTH or _demoted(self.name):
            return None
        try:
            _res_faults.kernel_fault(_degrade_job())  # chaos hook
            plan = _numpy_plan(mig)
            return _extract_words(plan, _run_window(plan, base, width))
        except StageTimeoutError:
            raise
        except Exception as error:
            _demote(error, self.name, "bigint")
            return None

    def exhaustive_equivalent(
        self, a: Mig, b: Mig, chunk_bits: int
    ) -> Optional[bool]:
        """Exhaustively compare two same-interface MIGs window by window.

        Fast path used by :func:`repro.mig.simulate.equivalent`: both
        graphs are swept with :meth:`exhaustive_window`'s stimulus and
        their output *rows* are compared lane-wise, skipping the
        int-conversion boundary entirely — on output-heavy graphs that
        boundary dominates the sweep.  Early-exits on the first
        differing window.  Returns ``None`` (caller falls back to the
        generic chunk-zip) when the windows are too narrow.
        """
        num_patterns = 1 << a.num_pis
        width = min(num_patterns, 1 << chunk_bits)
        if width < _NUMPY_MIN_WIDTH or _demoted(self.name):
            return None
        try:
            _res_faults.kernel_fault(_degrade_job())  # chaos hook
            plan_a, plan_b = _numpy_plan(a), _numpy_plan(b)
            for base in range(0, num_patterns, width):
                if not _windows_equal(plan_a, plan_b, base, width):
                    return False
            return True
        except StageTimeoutError:
            raise
        except Exception as error:
            _demote(error, self.name, "bigint")
            return None


class NumpyBatchKernel:
    """Level-batched, multi-threaded uint64 lane-array engine.

    Independent gates of one MIG level execute together as a handful of
    large 2-D ufunc calls (:class:`_BatchExec.run`), amortising numpy
    dispatch overhead that the per-gate engine pays 4–6 times per gate;
    exhaustive sweeps additionally split their pattern windows across
    the simulation worker-thread pool (:func:`resolve_sim_threads`) —
    ufuncs release the GIL, so the chunks genuinely run on multiple
    cores, each thread binding its own executable buffers.  Runtime
    failures demote to the per-gate :class:`NumpyKernel` (which itself
    demotes to bigint), keeping results bit-identical through the chain.
    """

    name = "numpy-batch"
    #: Same randomized word width as the per-gate engine, so both draw
    #: identical random rounds (and hence identical counterexamples).
    random_width = 1024

    def chunk_bits_for(self, mig: Mig) -> int:
        """Cache-targeted chunk width, widened by the thread count.

        The gather passes read rows from across the whole value matrix,
        so a single thread wants the matrix near cache-resident — the
        budget is the machine's detected last-level cache size
        (:func:`_batch_mem_budget`, sysfs-derived with a static
        fallback); with a worker pool the window is widened by
        log2(threads) — the exhaustive paths split it back into
        per-thread sub-windows of the cache-friendly size, so the
        budget stays per-thread while the pool gets enough patterns to
        keep every core busy.
        """
        env = _env_chunk_bits()
        if env is not None:
            return env
        bits = _budget_chunk_bits(mig.num_nodes, _batch_mem_budget())
        threads = resolve_sim_threads()
        if threads > 1:
            bits = min(18, bits + (threads - 1).bit_length())
        return bits

    # -- simulate ------------------------------------------------------

    def simulate(
        self, mig: Mig, pi_values: Sequence[int], mask: int
    ) -> List[int]:
        width = mask.bit_length()
        if width < _NUMPY_MIN_WIDTH:
            return _bigint_simulate(mig, pi_values, mask)
        if _demoted(self.name):
            return _NUMPY.simulate(mig, pi_values, mask)
        try:
            _res_faults.kernel_fault(_degrade_job())  # chaos hook
            return self._batch_simulate(mig, pi_values, mask, width)
        except StageTimeoutError:
            raise
        except Exception as error:
            _demote(error, self.name, _NUMPY.name)
            return _NUMPY.simulate(mig, pi_values, mask)

    def _batch_simulate(
        self, mig: Mig, pi_values: Sequence[int], mask: int, width: int
    ) -> List[int]:
        plan = _batch_plan(mig)
        num_lanes = (width + 63) >> 6
        threads = resolve_sim_threads()
        if threads > 1 and num_lanes >= 2 * _MIN_THREAD_LANES:
            return self._threaded_simulate(
                plan, pi_values, mask, width, num_lanes, threads
            )
        exe = plan.executable(num_lanes, width)
        exe.exh_width = None
        for row, word in zip(plan.pi_rows, pi_values):
            exe.vals[row] = _word_to_lanes(word & mask, num_lanes)
        exe.run(plan)
        return _extract_words(plan, exe)

    def _threaded_simulate(
        self, plan, pi_values, mask: int, width: int, num_lanes: int,
        threads: int,
    ) -> List[int]:
        """Split arbitrary input words over lane blocks across the pool."""
        words = [
            (word & mask).to_bytes(num_lanes * 8, "little")
            for word in pi_values
        ]
        cuts = _lane_cuts(num_lanes, threads)

        def task(lo: int, hi: int):
            sub_width = min(width - (lo << 6), (hi - lo) << 6)
            exe = plan.executable(hi - lo, sub_width)
            exe.exh_width = None
            for row, data in zip(plan.pi_rows, words):
                exe.vals[row] = _np.frombuffer(
                    data[lo * 8 : hi * 8], dtype="<u8"
                )
            exe.run(plan)
            return _extract_bytes(plan, exe)

        parts = _run_tasks(
            [
                (lambda lo=lo, hi=hi: task(lo, hi))
                for lo, hi in zip(cuts, cuts[1:])
            ],
            threads,
        )
        return _join_words(parts, len(plan.po_extract))

    # -- exhaustive sweeps ---------------------------------------------

    def exhaustive_window(
        self, mig: Mig, base: int, width: int
    ) -> Optional[List[int]]:
        """Threaded exhaustive window (see :class:`NumpyKernel` docs).

        A single wide window — e.g. the whole 2^18-pattern sweep of an
        18-input multiplier — is split into per-thread sub-windows and
        reassembled bytewise, so even one-chunk exhaustive paths scale
        with cores.  On failure, demotes to the per-gate engine.
        """
        if width < _NUMPY_MIN_WIDTH:
            return None
        if _demoted(self.name):
            return _NUMPY.exhaustive_window(mig, base, width)
        try:
            _res_faults.kernel_fault(_degrade_job())  # chaos hook
            return self._batch_window(mig, base, width)
        except StageTimeoutError:
            raise
        except Exception as error:
            _demote(error, self.name, _NUMPY.name)
            return _NUMPY.exhaustive_window(mig, base, width)

    def _batch_window(self, mig: Mig, base: int, width: int) -> List[int]:
        plan = _batch_plan(mig)
        sub = _subwindow_width(width, resolve_sim_threads())
        if sub is None:
            return _extract_words(plan, _run_window(plan, base, width))

        def task(sub_base: int):
            return _extract_bytes(plan, _run_window(plan, sub_base, sub))

        parts = _run_tasks(
            [
                (lambda sb=base + i * sub: task(sb))
                for i in range(width // sub)
            ],
            resolve_sim_threads(),
        )
        return _join_words(parts, len(plan.po_extract))

    def exhaustive_equivalent(
        self, a: Mig, b: Mig, chunk_bits: int
    ) -> Optional[bool]:
        """Threaded exhaustive equivalence (see :class:`NumpyKernel` docs).

        The window sweep is striped across the worker pool; a mismatch
        in any thread early-exits the others at their next window.
        """
        num_patterns = 1 << a.num_pis
        width = min(num_patterns, 1 << chunk_bits)
        if width < _NUMPY_MIN_WIDTH:
            return None
        if _demoted(self.name):
            return _NUMPY.exhaustive_equivalent(a, b, chunk_bits)
        try:
            _res_faults.kernel_fault(_degrade_job())  # chaos hook
            return self._batch_equivalent(a, b, num_patterns, width)
        except StageTimeoutError:
            raise
        except Exception as error:
            _demote(error, self.name, _NUMPY.name)
            return _NUMPY.exhaustive_equivalent(a, b, chunk_bits)

    def _batch_equivalent(
        self, a: Mig, b: Mig, num_patterns: int, width: int
    ) -> bool:
        plan_a, plan_b = _batch_plan(a), _batch_plan(b)
        threads = resolve_sim_threads()
        n_windows = num_patterns // width
        if threads > 1 and n_windows < threads:
            # Not enough windows to keep the pool busy: shrink them.
            sub = _subwindow_width(
                width, (threads + n_windows - 1) // n_windows
            )
            if sub is not None:
                width = sub
                n_windows = num_patterns // width
        bases = range(0, num_patterns, width)
        stripes = min(threads, n_windows)
        if stripes <= 1:
            for base in bases:
                if not _windows_equal(plan_a, plan_b, base, width):
                    return False
            return True
        mismatch = threading.Event()

        def sweep(stripe: int) -> bool:
            for base in bases[stripe::stripes]:
                if mismatch.is_set():
                    return True  # another stripe already refuted
                if not _windows_equal(plan_a, plan_b, base, width):
                    mismatch.set()
                    return False
            return True

        verdicts = _run_tasks(
            [(lambda s=stripe: sweep(s)) for stripe in range(stripes)],
            stripes,
        )
        return all(verdicts)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

_BIGINT = BigintKernel()
_NUMPY = NumpyKernel() if _np is not None else None
_NUMPY_BATCH = NumpyBatchKernel() if _np is not None else None

#: Explicit override installed by :func:`set_backend`; beats the
#: environment variable.
_OVERRIDE: Optional[object] = None

#: Per-thread stack of :func:`backend_scope` overrides; beats everything.
#: Thread-local so concurrent sessions cannot clobber each other's
#: backend, and a stack so scopes nest and unwind correctly.
_SCOPE = threading.local()


def numpy_available() -> bool:
    """Whether the numpy backends can be used in this process."""
    return _NUMPY is not None


def available_backends() -> List[str]:
    """Names of the kernels importable in this process."""
    names = [_BIGINT.name]
    if _NUMPY is not None:
        names.append(_NUMPY.name)
    if _NUMPY_BATCH is not None:
        names.append(_NUMPY_BATCH.name)
    return names


def _resolve(name: str):
    if name in ("bigint", "python"):
        return _BIGINT
    if name in ("numpy", "numpy-batch", "batch"):
        kernel = _NUMPY if name == "numpy" else _NUMPY_BATCH
        if kernel is None:
            raise ImportError(
                f"{BACKEND_ENV_VAR}/set_backend requested the {name!r} "
                "simulation backend but numpy is not importable; install "
                "numpy or select the 'bigint' backend"
            )
        return kernel
    if name == "auto":
        return _NUMPY_BATCH if _NUMPY_BATCH is not None else _BIGINT
    raise ValueError(
        f"unknown simulation backend {name!r}; "
        f"choose one of: auto, bigint, numpy, numpy-batch"
    )


def resolve_backend(name: str):
    """Resolve a backend *name* to its kernel without installing it.

    Validates availability the same way :func:`set_backend` does —
    requesting a numpy engine without numpy raises ``ImportError``, an
    unknown name raises ``ValueError`` — so callers (e.g.
    :class:`repro.flow.Session`) can fail fast at construction time.
    """
    return _resolve(name)


@contextmanager
def backend_scope(name: Optional[str]):
    """Temporarily install *name* as the backend override.

    ``None`` is a no-op scope: the ambient selection (an existing
    override, then ``$REPRO_SIM_BACKEND``, then auto-detection) stays in
    effect.  The override lives on a thread-local stack, so scopes nest
    and concurrent sessions on different threads cannot clobber each
    other (threads spawned *inside* a scope start unscoped).  Yields the
    kernel active inside the scope.
    """
    if name is None:
        yield get_kernel()
        return
    kernel = _resolve(name)
    stack = getattr(_SCOPE, "stack", None)
    if stack is None:
        stack = _SCOPE.stack = []
    stack.append(kernel)
    try:
        yield kernel
    finally:
        stack.pop()


def set_backend(name: Optional[str]):
    """Install an explicit backend override (``None`` removes it).

    Returns the now-active kernel.  Mostly for tests and embedding code;
    command-line users set ``REPRO_SIM_BACKEND`` instead.
    """
    global _OVERRIDE
    _OVERRIDE = _resolve(name) if name is not None else None
    return get_kernel()


def get_kernel():
    """The active simulation kernel (scope > override > environment > auto)."""
    stack = getattr(_SCOPE, "stack", None)
    if stack:
        return stack[-1]
    if _OVERRIDE is not None:
        return _OVERRIDE
    return _resolve(os.environ.get(BACKEND_ENV_VAR, "auto") or "auto")
