"""Pluggable bit-parallel simulation kernels.

The harness evaluates every MIG function two ways — bit-parallel
simulation of the graph and execution of its compiled PLiM program — and
the graph side is a pure streaming computation over the memoized flat
gate records (:meth:`repro.mig.graph.Mig.flat_gates`).  This module
abstracts that computation behind a *kernel* so the engine is
interchangeable:

* :class:`BigintKernel` — the reference engine.  Simulation words are
  plain Python integers; every gate costs a handful of bigint boolean
  operations.  Always available, no dependencies.
* :class:`NumpyKernel` — packs the pattern window into ``uint64`` lane
  arrays (64 patterns per lane) and compiles each graph once into a flat
  program of whole-row numpy operations (4–6 per gate), so wide sweeps
  run at array speed with no per-pattern Python.

Both kernels consume the same flat gate records — complement attributes
pre-folded into XOR masks, so neither pays per-pattern complement
branches — and both speak Python-int words at the boundary: a kernel's
outputs are bit-identical to the reference engine's, which the
backend-parity tests assert over random graphs.

Selection
---------
:func:`get_kernel` resolves the active kernel: an explicit
:func:`set_backend` override wins, then the ``REPRO_SIM_BACKEND``
environment variable (``bigint``, ``numpy``, or ``auto``), then
auto-detection (numpy when importable, bigint otherwise).  Requesting
``numpy`` without numpy installed fails loudly rather than silently
degrading.

Degradation
-----------
Selection failures are loud, but *runtime* failures inside the numpy
engine degrade gracefully: both kernels are bit-identical, so a numpy
fault mid-job is recoverable by recomputing on the reference engine.
Every numpy dispatch is guarded — on failure the call falls back to
:class:`BigintKernel` semantics, a ``kernel_degraded`` event is recorded
(:mod:`repro.resilience.events`, surfaced in run manifests), and inside
a :func:`degradation_scope` the demotion is *sticky* for the rest of the
job, so a faulting engine is not re-tried gate-by-gate.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import List, Optional, Sequence, Tuple

from ..resilience import events as _res_events
from ..resilience import faults as _res_faults
from ..resilience.errors import StageTimeoutError
from .graph import Mig

#: Environment variable naming the simulation backend.
BACKEND_ENV_VAR = "REPRO_SIM_BACKEND"

try:  # numpy is optional: the bigint kernel needs nothing beyond CPython
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the without-numpy CI job
    _np = None


def _bigint_simulate(mig: Mig, pi_values: Sequence[int], mask: int) -> List[int]:
    """Reference engine: one Python-int word per node.

    The complement XOR masks from the flat gate records are ``0`` or
    ``-1``; ``xor & mask`` widens them to the pattern window, so the
    inner loop is branch-free.
    """
    values = [0] * mig.num_nodes
    for node, word in zip(mig.pis(), pi_values):
        values[node] = word & mask
    for node, na, xa, nb, xb, nc, xc in mig.flat_gates():
        a = values[na] ^ (xa & mask)
        b = values[nb] ^ (xb & mask)
        c = values[nc] ^ (xc & mask)
        # <a b c> = (a & b) | ((a | b) & c): 4 ops instead of the
        # textbook 5-op (a&b)|(a&c)|(b&c).
        values[node] = (a & b) | ((a | b) & c)
    outputs = []
    for s in mig.pos():
        word = values[s >> 1]
        if s & 1:
            word ^= mask
        outputs.append(word & mask)
    return outputs


class BigintKernel:
    """Pure-Python engine over arbitrary-precision integer words."""

    name = "bigint"
    #: Preferred word width (patterns per round) for randomized checks.
    random_width = 64

    def chunk_bits_for(self, mig: Mig) -> int:
        """log2 of the widest exhaustive simulation word (graph-independent).

        2^13-bit words keep every node value L1/L2-resident, where
        CPython's bigint boolean loops run near memory speed; wider words
        were measured slower in PR 1's chunking experiments.
        """
        return 13

    def simulate(
        self, mig: Mig, pi_values: Sequence[int], mask: int
    ) -> List[int]:
        return _bigint_simulate(mig, pi_values, mask)


# ----------------------------------------------------------------------
# Graceful degradation (numpy -> bigint)
# ----------------------------------------------------------------------

#: Per-thread stack of degradation frames; a frame marks a job boundary
#: within which a numpy failure demotes every later dispatch.
_DEGRADE = threading.local()


@contextmanager
def degradation_scope(job: Optional[str] = None):
    """Mark a job boundary for sticky numpy-kernel demotion.

    Inside the scope, the first runtime failure of the numpy engine
    demotes *this thread's* remaining dispatches to the bigint reference
    engine (recorded as a ``kernel_degraded`` event tagged with *job*);
    the demotion ends with the scope, so the next job tries numpy again.
    Outside any scope failures still fall back, but per call.  The job
    runner enters one scope per (benchmark, configurations) job — in
    worker processes and the serial path alike.  Yields the frame dict
    (``{"job": ..., "demoted": bool}``) so tests can observe demotion.
    """
    stack = getattr(_DEGRADE, "stack", None)
    if stack is None:
        stack = _DEGRADE.stack = []
    frame = {"job": job, "demoted": False}
    stack.append(frame)
    try:
        yield frame
    finally:
        stack.pop()


def _degrade_frame() -> Optional[dict]:
    stack = getattr(_DEGRADE, "stack", None)
    return stack[-1] if stack else None


def _degrade_job() -> Optional[str]:
    frame = _degrade_frame()
    return frame["job"] if frame else None


def _demoted() -> bool:
    frame = _degrade_frame()
    return bool(frame and frame["demoted"])


def _demote(error: BaseException) -> None:
    """Record a numpy failure and make the demotion scope-sticky."""
    frame = _degrade_frame()
    if frame is not None:
        frame["demoted"] = True
    _res_events.record(
        "kernel_degraded",
        job=frame["job"] if frame else None,
        backend="numpy",
        fallback="bigint",
        error=repr(error),
    )


# ----------------------------------------------------------------------
# numpy kernel
# ----------------------------------------------------------------------

#: Pattern windows at or below one uint64 lane stay on the bigint
#: engine: a 64-bit Python int operation beats numpy dispatch overhead.
_NUMPY_MIN_WIDTH = 65

#: Soft cap on the node-value matrix (bytes); exhaustive chunks shrink
#: until ``num_nodes * lanes * 8`` fits.
_NUMPY_MEM_BUDGET = 64 << 20


class _NumpyPlan:
    """Per-graph compiled form for the numpy kernel.

    Gates are compiled to the 4-op majority form

        maj(a, b, c) = b ^ ((a ^ b) & (b ^ c))

    with two algebraic rewrites applied per gate to minimise complement
    work:

    * *polarity propagation* — each node's value is stored in a chosen
      polarity (possibly inverted); since majority is self-dual
      (``maj(~a,~b,~c) = ~maj(a,b,c)``), the stored polarity is picked so
      the trailing output inversion is always free, and fanin edge
      complements are re-derived against the fanins' stored polarities;
    * *operand rotation* — majority is symmetric, so the middle operand
      ``b`` is chosen to minimise the two pair-complement terms.

    What remains is a flat list of binary ``(ufunc, x, y, out)`` row
    operations — 4 per gate plus one per surviving pair complement —
    bound to concrete array rows once per lane width and replayed for
    every chunk.  The compiled buffers live in the graph's ``_derived``
    memo, hence are invalidated by any mutation alongside ``flat_gates``.
    """

    __slots__ = (
        "num_nodes",
        "pi_nodes",
        "po_extract",
        "gate_program",
        "_lock",
        "_exec_cache",
        "_exh_width",
    )

    def __init__(self, mig: Mig) -> None:
        self.num_nodes = mig.num_nodes
        self.pi_nodes = mig.pis()
        # (node, a, b, c, flip_ab, flip_bc) per gate, polarity-propagated.
        program: List[Tuple[int, int, int, int, bool, bool]] = []
        pol = [False] * mig.num_nodes
        for node, na, xa, nb, xb, nc, xc in mig.flat_gates():
            operands = (
                (na, bool(xa) ^ pol[na]),
                (nb, bool(xb) ^ pol[nb]),
                (nc, bool(xc) ^ pol[nc]),
            )
            best = None
            for mid in range(3):
                (a, pa), (b, pb), (c, pc) = (
                    operands[mid - 2],
                    operands[mid],
                    operands[mid - 1],
                )
                cost = (pa ^ pb) + (pb ^ pc)
                if best is None or cost < best[0]:
                    best = (cost, a, b, c, pa ^ pb, pb ^ pc, pb)
            _, a, b, c, fab, fbc, pb = best
            # Store maj of the triple with all polarities flipped by pb:
            # self-duality makes the stored value maj ^ pb, for free.
            pol[node] = pb
            program.append((node, a, b, c, fab, fbc))
        self.gate_program = program
        # (node, flip) per PO, stored polarity folded in.
        self.po_extract = [
            (s >> 1, bool(s & 1) ^ pol[s >> 1]) for s in mig.pos()
        ]
        self._lock = threading.Lock()
        self._exec_cache: Optional[Tuple] = None
        # Width whose low-variable exhaustive stimulus currently fills
        # the PI rows (None when the rows hold arbitrary words).
        self._exh_width: Optional[int] = None

    def executable(self, num_lanes: int, width: int):
        """Row buffers + bound op list for *width*-pattern windows.

        One executable (the most recently used width) is cached;
        exhaustive sweeps reuse it across every chunk.  Callers must
        hold :attr:`_lock` while running it — the value matrix and the
        temporary row are shared state.

        The complement row ``full`` carries the window's tail mask in
        its last lane, so every value row keeps the invariant "bits at
        or above *width* are zero" and extraction never re-masks.
        """
        cached = self._exec_cache
        if cached is not None and cached[0] == width:
            return cached
        np = _np
        vals = np.empty((self.num_nodes, num_lanes), dtype=np.uint64)
        vals[0] = 0  # constant-false node; dead rows are never read
        tmp = np.empty(num_lanes, dtype=np.uint64)
        full = np.full(num_lanes, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        if width & 63:
            full[-1] = (1 << (width & 63)) - 1
        bxor, band = np.bitwise_xor, np.bitwise_and
        ops = []
        append = ops.append
        for node, a, b, c, fab, fbc in self.gate_program:
            row_b = vals[b]
            out = vals[node]
            append((bxor, row_b, vals[c], tmp))
            if fbc:
                append((bxor, tmp, full, tmp))
            append((bxor, vals[a], row_b, out))
            if fab:
                append((bxor, out, full, out))
            append((band, out, tmp, out))
            append((bxor, out, row_b, out))
        cached = (width, vals, ops, tmp, full)
        self._exec_cache = cached
        return cached


#: 64-pattern stimulus words for variables 0..5 (period <= one lane).
_P64 = (
    0xAAAAAAAAAAAAAAAA,
    0xCCCCCCCCCCCCCCCC,
    0xF0F0F0F0F0F0F0F0,
    0xFF00FF00FF00FF00,
    0xFFFF0000FFFF0000,
    0xFFFFFFFF00000000,
)


def _numpy_plan(mig: Mig) -> _NumpyPlan:
    plan = mig._derived.get("numpy_plan")
    if plan is None:
        plan = _NumpyPlan(mig)
        mig._derived["numpy_plan"] = plan
    return plan


def _word_to_lanes(word: int, num_lanes: int):
    """Little-endian split of a Python-int word into uint64 lanes."""
    return _np.frombuffer(
        word.to_bytes(num_lanes * 8, "little"), dtype="<u8"
    )


def _lanes_to_word(lanes) -> int:
    """Inverse of :func:`_word_to_lanes`."""
    return int.from_bytes(
        _np.ascontiguousarray(lanes, dtype="<u8").tobytes(), "little"
    )


class NumpyKernel:
    """uint64 lane-array engine replaying a precompiled row program."""

    name = "numpy"
    #: Randomized checks sweep 16 lanes per round.
    random_width = 1024

    def chunk_bits_for(self, mig: Mig) -> int:
        """Widest exhaustive chunk whose value matrix fits the budget.

        Wide rows amortise numpy dispatch overhead, so prefer 2^18
        patterns (32 KiB per node row) and shrink — never below the
        bigint kernel's 2^13 — for graphs whose node count would blow
        the memory budget.
        """
        bits = 18
        while bits > 13 and (mig.num_nodes << (bits - 6 + 3)) > _NUMPY_MEM_BUDGET:
            bits -= 1
        return bits

    def simulate(
        self, mig: Mig, pi_values: Sequence[int], mask: int
    ) -> List[int]:
        width = mask.bit_length()
        if width < _NUMPY_MIN_WIDTH or _demoted():
            return _bigint_simulate(mig, pi_values, mask)
        try:
            _res_faults.kernel_fault(_degrade_job())  # chaos hook
            return self._numpy_simulate(mig, pi_values, mask, width)
        except StageTimeoutError:
            raise  # a blown stage budget is not an engine failure
        except Exception as error:
            # Both engines are bit-identical, so recomputing on the
            # reference kernel preserves the artefact exactly.
            _demote(error)
            return _bigint_simulate(mig, pi_values, mask)

    def _numpy_simulate(
        self, mig: Mig, pi_values: Sequence[int], mask: int, width: int
    ) -> List[int]:
        plan = _numpy_plan(mig)
        num_lanes = (width + 63) >> 6
        with plan._lock:
            _, vals, ops, tmp, full = plan.executable(num_lanes, width)
            plan._exh_width = None  # PI rows now hold arbitrary words
            for node, word in zip(plan.pi_nodes, pi_values):
                vals[node] = _word_to_lanes(word & mask, num_lanes)
            for f, x, y, out in ops:
                f(x, y, out=out)
            outputs = []
            for node, flip in plan.po_extract:
                row = vals[node]
                if flip:
                    _np.bitwise_xor(row, full, out=tmp)
                    row = tmp
                outputs.append(_lanes_to_word(row))
            return outputs

    def exhaustive_window(
        self, mig: Mig, base: int, width: int
    ) -> Optional[List[int]]:
        """Evaluate the exhaustive window ``[base, base + width)``.

        Fast path used by :func:`repro.mig.simulate.exhaustive_chunks`:
        the structured exhaustive stimulus is synthesised directly into
        the lane rows (constant lane patterns for low variables, lane
        block patterns for middle ones, constant rows for high ones), so
        no Python bigints are built on the input side at all.  Low and
        middle variables do not depend on the window base and are filled
        once per width.  Returns ``None`` when the window is too narrow
        for this kernel (the caller falls back to the generic path) —
        and when the engine is demoted or fails, for the same reason:
        the generic path re-dispatches through :meth:`simulate`, which
        lands on the reference engine.
        """
        if width < _NUMPY_MIN_WIDTH or _demoted():
            return None
        try:
            _res_faults.kernel_fault(_degrade_job())  # chaos hook
            return self._numpy_exhaustive_window(mig, base, width)
        except StageTimeoutError:
            raise
        except Exception as error:
            _demote(error)
            return None

    def _numpy_exhaustive_window(
        self, mig: Mig, base: int, width: int
    ) -> List[int]:
        plan = _numpy_plan(mig)
        with plan._lock:
            _, vals, _, tmp, full = self._window_rows(plan, base, width)
            outputs = []
            for node, flip in plan.po_extract:
                row = vals[node]
                if flip:
                    _np.bitwise_xor(row, full, out=tmp)
                    row = tmp
                outputs.append(_lanes_to_word(row))
            return outputs

    def exhaustive_equivalent(
        self, a: Mig, b: Mig, chunk_bits: int
    ) -> Optional[bool]:
        """Exhaustively compare two same-interface MIGs window by window.

        Fast path used by :func:`repro.mig.simulate.equivalent`: both
        graphs are swept with :meth:`exhaustive_window`'s stimulus and
        their output *rows* are compared lane-wise, skipping the
        int-conversion boundary entirely — on output-heavy graphs that
        boundary dominates the sweep.  Early-exits on the first
        differing window.  Returns ``None`` (caller falls back to the
        generic chunk-zip) when the windows are too narrow.

        Both plan locks are held for the whole sweep (in a canonical
        order, so crossed ``equivalent(a, b)`` / ``equivalent(b, a)``
        callers cannot deadlock): the value matrices are shared state.
        """
        num_patterns = 1 << a.num_pis
        width = min(num_patterns, 1 << chunk_bits)
        if width < _NUMPY_MIN_WIDTH or _demoted():
            return None
        try:
            _res_faults.kernel_fault(_degrade_job())  # chaos hook
            return self._numpy_exhaustive_equivalent(a, b, num_patterns, width)
        except StageTimeoutError:
            raise
        except Exception as error:
            _demote(error)
            return None

    def _numpy_exhaustive_equivalent(
        self, a: Mig, b: Mig, num_patterns: int, width: int
    ) -> bool:
        np = _np
        plan_a, plan_b = _numpy_plan(a), _numpy_plan(b)
        if plan_a is plan_b:
            locks = [plan_a._lock]
        else:
            locks = sorted((plan_a._lock, plan_b._lock), key=id)
        for lock in locks:
            lock.acquire()
        try:
            for base in range(0, num_patterns, width):
                rows_a = self._window_rows(plan_a, base, width)
                rows_b = self._window_rows(plan_b, base, width)
                (_, vals_a, _, tmp_a, full_a) = rows_a
                (_, vals_b, _, _, _) = rows_b
                for (na, fa), (nb, fb) in zip(
                    plan_a.po_extract, plan_b.po_extract
                ):
                    row_a = vals_a[na]
                    if fa != fb:  # opposite stored polarity: compare flipped
                        np.bitwise_xor(row_a, full_a, out=tmp_a)
                        row_a = tmp_a
                    if not np.array_equal(row_a, vals_b[nb]):
                        return False
            return True
        finally:
            for lock in reversed(locks):
                lock.release()

    def _window_rows(self, plan: _NumpyPlan, base: int, width: int):
        """Fill + replay one exhaustive window; returns the executable.

        Callers must hold ``plan._lock``: the value matrix and the
        temporary row are shared state.
        """
        np = _np
        num_lanes = width >> 6
        lane_bits = num_lanes.bit_length() - 1
        exe = plan.executable(num_lanes, width)
        _, vals, ops, tmp, full = exe
        if plan._exh_width != width:
            lanes = np.arange(num_lanes, dtype=np.uint64)
            for i, node in enumerate(plan.pi_nodes):
                if i < 6:
                    vals[node] = np.uint64(_P64[i])
                elif i < 6 + lane_bits:
                    np.negative(
                        (lanes >> np.uint64(i - 6)) & np.uint64(1),
                        out=vals[node],
                    )
            plan._exh_width = width
        for i in range(6 + lane_bits, len(plan.pi_nodes)):
            vals[plan.pi_nodes[i]] = np.uint64(
                0xFFFFFFFFFFFFFFFF if (base >> i) & 1 else 0
            )
        for f, x, y, out in ops:
            f(x, y, out=out)
        return exe


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

_BIGINT = BigintKernel()
_NUMPY = NumpyKernel() if _np is not None else None

#: Explicit override installed by :func:`set_backend`; beats the
#: environment variable.
_OVERRIDE: Optional[object] = None

#: Per-thread stack of :func:`backend_scope` overrides; beats everything.
#: Thread-local so concurrent sessions cannot clobber each other's
#: backend, and a stack so scopes nest and unwind correctly.
_SCOPE = threading.local()


def numpy_available() -> bool:
    """Whether the numpy backend can be used in this process."""
    return _NUMPY is not None


def available_backends() -> List[str]:
    """Names of the kernels importable in this process."""
    names = [_BIGINT.name]
    if _NUMPY is not None:
        names.append(_NUMPY.name)
    return names


def _resolve(name: str):
    if name in ("bigint", "python"):
        return _BIGINT
    if name == "numpy":
        if _NUMPY is None:
            raise ImportError(
                f"{BACKEND_ENV_VAR}/set_backend requested the numpy "
                "simulation backend but numpy is not importable; install "
                "numpy or select the 'bigint' backend"
            )
        return _NUMPY
    if name == "auto":
        return _NUMPY if _NUMPY is not None else _BIGINT
    raise ValueError(
        f"unknown simulation backend {name!r}; "
        f"choose one of: auto, bigint, numpy"
    )


def resolve_backend(name: str):
    """Resolve a backend *name* to its kernel without installing it.

    Validates availability the same way :func:`set_backend` does —
    requesting ``numpy`` without numpy raises ``ImportError``, an unknown
    name raises ``ValueError`` — so callers (e.g.
    :class:`repro.flow.Session`) can fail fast at construction time.
    """
    return _resolve(name)


@contextmanager
def backend_scope(name: Optional[str]):
    """Temporarily install *name* as the backend override.

    ``None`` is a no-op scope: the ambient selection (an existing
    override, then ``$REPRO_SIM_BACKEND``, then auto-detection) stays in
    effect.  The override lives on a thread-local stack, so scopes nest
    and concurrent sessions on different threads cannot clobber each
    other (threads spawned *inside* a scope start unscoped).  Yields the
    kernel active inside the scope.
    """
    if name is None:
        yield get_kernel()
        return
    kernel = _resolve(name)
    stack = getattr(_SCOPE, "stack", None)
    if stack is None:
        stack = _SCOPE.stack = []
    stack.append(kernel)
    try:
        yield kernel
    finally:
        stack.pop()


def set_backend(name: Optional[str]):
    """Install an explicit backend override (``None`` removes it).

    Returns the now-active kernel.  Mostly for tests and embedding code;
    command-line users set ``REPRO_SIM_BACKEND`` instead.
    """
    global _OVERRIDE
    _OVERRIDE = _resolve(name) if name is not None else None
    return get_kernel()


def get_kernel():
    """The active simulation kernel (scope > override > environment > auto)."""
    stack = getattr(_SCOPE, "stack", None)
    if stack:
        return stack[-1]
    if _OVERRIDE is not None:
        return _OVERRIDE
    return _resolve(os.environ.get(BACKEND_ENV_VAR, "auto") or "auto")
