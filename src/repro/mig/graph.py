"""Majority-Inverter Graph (MIG) data structure.

A MIG is a directed acyclic graph whose internal nodes are 3-input majority
gates and whose edges may carry complement (inversion) attributes
[Amaru et al., DAC'14].  MIGs are the input language of the PLiM compiler:
each majority node maps onto the native ``RM3`` instruction of the PLiM
computer [Gaillardon et al., DATE'16].

Design notes
------------
* Nodes are stored in flat parallel lists indexed by node id; node ``0`` is
  the constant-false node and primary inputs are fanin-less nodes.  Children
  always have smaller ids than their parents, so ``range(n_nodes)`` is a
  topological order by construction.
* Node creation applies the trivial majority identities (axiom ``Omega.M``:
  two equal operands decide, two complementary operands forward the third)
  and structurally hashes the sorted fanin triple (axiom ``Omega.C``).
* Complement patterns are **not** canonicalised at creation beyond sorting:
  inverter propagation (``Omega.I``) is an explicit, cost-driven rewriting
  step in the endurance-management flow, so ``<x y z>`` and ``<~x ~y ~z>``
  may coexist as distinct nodes.
* The structure is append-only; rewriting builds new graphs (see
  :mod:`repro.mig.rewrite`), which keeps invariants trivial and avoids
  dangling-pointer style bugs at the price of copying — a good trade for a
  research-grade Python implementation.
* Derived traversal state (liveness, fanout counts, levels, the flat
  ``(node, fanin, fanin, fanin)`` gate list used by simulation and
  compilation) is memoized per graph and invalidated on any mutation, so
  the many passes that query the same finished graph pay for each
  traversal exactly once.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .signal import (
    CONST0,
    CONST1,
    apply_complement,
    are_complementary,
    complement,
    format_signal,
    is_complemented,
    is_constant,
    make_signal,
    node_of,
    sorted_fanins,
)


class Mig:
    """A majority-inverter graph with structural hashing.

    >>> mig = Mig()
    >>> a, b, c = mig.add_pi("a"), mig.add_pi("b"), mig.add_pi("c")
    >>> f = mig.add_maj(a, b, c)
    >>> mig.add_po(f, "f")
    0
    >>> mig.num_gates
    1
    """

    def __init__(self, name: str = "", use_strash: bool = True) -> None:
        self.name = name
        #: Structural hashing on node creation.  Disabled by the
        #: "elaborated" construction mode of :mod:`repro.synth.elaborate`,
        #: which models naive netlist translation (no sharing recovery);
        #: rewriting passes always rebuild with hashing enabled.
        self.use_strash = use_strash
        # Node 0 is the constant-false node (no fanins, not a PI).
        self._fanins: List[Optional[Tuple[int, int, int]]] = [None]
        self._pi_index: List[int] = [-1]  # -1 for non-PI nodes
        self._pis: List[int] = []  # node ids of primary inputs, in order
        self._pi_names: List[str] = []
        self._pos: List[int] = []  # output signals, in order
        self._po_names: List[str] = []
        self._strash: Dict[Tuple[int, int, int], int] = {}
        # Memoized derived state; cleared by any structural mutation.
        self._derived: Dict[object, object] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input and return its (non-complemented) signal."""
        node = len(self._fanins)
        self._fanins.append(None)
        self._pi_index.append(len(self._pis))
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        if self._derived:
            self._derived.clear()
        return make_signal(node)

    def add_pis(self, count: int, prefix: str = "pi") -> List[int]:
        """Create *count* primary inputs named ``{prefix}{i}``."""
        return [self.add_pi(f"{prefix}{i}") for i in range(count)]

    def add_po(self, signal: int, name: Optional[str] = None) -> int:
        """Register *signal* as a primary output; returns the output index."""
        self._check_signal(signal)
        self._pos.append(signal)
        self._po_names.append(name if name is not None else f"po{len(self._pos) - 1}")
        if self._derived:
            self._derived.clear()
        return len(self._pos) - 1

    def add_maj(self, a: int, b: int, c: int) -> int:
        """Create (or reuse) a majority node ``<a b c>``.

        Applies the trivial ``Omega.M`` identities before allocating:

        * ``<x x z> = x`` (two equal operands decide),
        * ``<x ~x z> = z`` (two complementary operands forward the third).

        Constant operands need no special casing: ``CONST1`` is the
        complement of ``CONST0``, so e.g. ``<0 1 z> = z`` follows from the
        second identity.
        """
        fanins = self._fanins
        limit = len(fanins) << 1
        if a < 0 or a >= limit or b < 0 or b >= limit or c < 0 or c >= limit:
            self._check_signal(a)
            self._check_signal(b)
            self._check_signal(c)

        # Omega.M: duplicate operand decides.
        if a == b or a == c:
            return a
        if b == c:
            return b
        # Omega.M: complementary pair forwards the remaining operand.
        if a ^ b == 1:
            return c
        if a ^ c == 1:
            return b
        if b ^ c == 1:
            return a

        # Inline sorted_fanins: must produce the same canonical key as
        # maj_would_allocate's sorted_fanins() probe or strash drifts.
        if a > b:
            a, b = b, a
        if b > c:
            b, c = c, b
        if a > b:
            a, b = b, a
        key = (a, b, c)
        if self.use_strash:
            existing = self._strash.get(key)
            if existing is not None:
                return existing << 1

        node = len(fanins)
        fanins.append(key)
        self._pi_index.append(-1)
        if self.use_strash:
            self._strash[key] = node
        if self._derived:
            self._derived.clear()
        return node << 1

    def maj_would_allocate(self, a: int, b: int, c: int) -> bool:
        """Would ``add_maj(a, b, c)`` create a new node?

        ``False`` when a creation identity (``Omega.M``) simplifies the
        call or when the structural hash already holds the node.  Rewriting
        passes use this probe to accept only size-non-increasing variants.
        """
        if a == b or a == c or b == c:
            return False
        if (
            are_complementary(a, b)
            or are_complementary(a, c)
            or are_complementary(b, c)
        ):
            return False
        # sorted_fanins must stay in lockstep with add_maj's inline sort:
        # both sides key the same strash table.
        return sorted_fanins(a, b, c) not in self._strash

    # Convenience gate constructors -------------------------------------

    def add_and(self, a: int, b: int) -> int:
        """``a AND b`` as ``<a b 0>``."""
        return self.add_maj(a, b, CONST0)

    def add_or(self, a: int, b: int) -> int:
        """``a OR b`` as ``<a b 1>``."""
        return self.add_maj(a, b, CONST1)

    def add_nand(self, a: int, b: int) -> int:
        """``NOT (a AND b)``."""
        return complement(self.add_and(a, b))

    def add_nor(self, a: int, b: int) -> int:
        """``NOT (a OR b)``."""
        return complement(self.add_or(a, b))

    def add_xor(self, a: int, b: int) -> int:
        """``a XOR b`` as ``(a OR b) AND (NOT a OR NOT b)``."""
        upper = self.add_or(a, b)
        lower = self.add_or(complement(a), complement(b))
        return self.add_and(upper, lower)

    def add_xnor(self, a: int, b: int) -> int:
        """``NOT (a XOR b)``."""
        return complement(self.add_xor(a, b))

    def add_mux(self, sel: int, t: int, e: int) -> int:
        """``sel ? t : e`` as ``(sel AND t) OR (NOT sel AND e)``."""
        then_part = self.add_and(sel, t)
        else_part = self.add_and(complement(sel), e)
        return self.add_or(then_part, else_part)

    def add_maj_n(self, signals: Sequence[int]) -> int:
        """Majority of an odd number of signals, built as a popcount compare.

        Used by the ``voter`` benchmark generator; for three signals this is
        a plain majority node.
        """
        if len(signals) % 2 == 0:
            raise ValueError("majority of an even number of inputs is ambiguous")
        if len(signals) == 1:
            return signals[0]
        if len(signals) == 3:
            return self.add_maj(*signals)
        # Reduce via sorting-network-free popcount: sum the bits with
        # full adders, then compare against half the count.
        from .bitvec import popcount_threshold  # local import to avoid cycle

        return popcount_threshold(self, list(signals), (len(signals) // 2) + 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_pis(self) -> int:
        """Number of primary inputs."""
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        """Number of primary outputs."""
        return len(self._pos)

    @property
    def num_nodes(self) -> int:
        """Total number of nodes including the constant and PIs."""
        return len(self._fanins)

    @property
    def num_gates(self) -> int:
        """Number of majority gates (excludes constant and PIs)."""
        return len(self._fanins) - 1 - len(self._pis)

    def is_pi(self, node: int) -> bool:
        """Return ``True`` if *node* is a primary input."""
        return self._pi_index[node] >= 0

    def is_constant(self, node: int) -> bool:
        """Return ``True`` if *node* is the constant-false node."""
        return node == 0

    def is_gate(self, node: int) -> bool:
        """Return ``True`` if *node* is a majority gate."""
        return self._fanins[node] is not None

    def pi_index(self, node: int) -> int:
        """Position of a PI node in the input list (``-1`` otherwise)."""
        return self._pi_index[node]

    def fanins(self, node: int) -> Tuple[int, int, int]:
        """The three fanin signals of a gate node."""
        fi = self._fanins[node]
        if fi is None:
            raise ValueError(f"node {node} is not a majority gate")
        return fi

    def pis(self) -> List[int]:
        """Node ids of the primary inputs, in declaration order."""
        return list(self._pis)

    def pi_signals(self) -> List[int]:
        """Signals of the primary inputs, in declaration order."""
        return [make_signal(n) for n in self._pis]

    def pos(self) -> List[int]:
        """Output signals, in declaration order."""
        return list(self._pos)

    def pi_name(self, index: int) -> str:
        """Name of the *index*-th primary input."""
        return self._pi_names[index]

    def po_name(self, index: int) -> str:
        """Name of the *index*-th primary output."""
        return self._po_names[index]

    def gates(self) -> Iterator[int]:
        """Iterate over gate node ids in topological order."""
        for node in range(1, len(self._fanins)):
            if self._fanins[node] is not None:
                yield node

    def nodes(self) -> Iterator[int]:
        """Iterate over all node ids (constant, PIs, gates) topologically."""
        return iter(range(len(self._fanins)))

    # ------------------------------------------------------------------
    # Liveness / traversal
    # ------------------------------------------------------------------

    def _live_mask(self) -> List[bool]:
        """Memoized liveness mask (the shared list — do not mutate)."""
        cached = self._derived.get("live_mask")
        if cached is not None:
            return cached
        fanins = self._fanins
        live = [False] * len(fanins)
        live[0] = True
        for node in self._pis:
            live[node] = True
        for s in self._pos:
            live[s >> 1] = True
        # Children always have smaller ids than their parents, so one
        # descending sweep propagates liveness without a worklist (the
        # rewriting engine computes this mask for every pass input, so
        # it is one of the hottest traversals in the harness).
        for node in range(len(fanins) - 1, 0, -1):
            if live[node]:
                fi = fanins[node]
                if fi is not None:
                    live[fi[0] >> 1] = True
                    live[fi[1] >> 1] = True
                    live[fi[2] >> 1] = True
        self._derived["live_mask"] = live
        return live

    def live_mask(self) -> List[bool]:
        """Boolean mask of nodes reachable from the outputs.

        The constant node and primary inputs are always considered live
        (PIs occupy RRAM devices regardless of use).
        """
        return list(self._live_mask())

    def _live_gates(self) -> List[int]:
        """Memoized live-gate list (the shared list — do not mutate)."""
        cached = self._derived.get("live_gates")
        if cached is None:
            live = self._live_mask()
            fanins = self._fanins
            cached = [
                node
                for node in range(1, len(fanins))
                if fanins[node] is not None and live[node]
            ]
            self._derived["live_gates"] = cached
        return cached

    def live_gates(self) -> List[int]:
        """Gate node ids reachable from the outputs, topological order."""
        return list(self._live_gates())

    def num_live_gates(self) -> int:
        """Number of gates reachable from the outputs."""
        return len(self._live_gates())

    def flat_gates(self) -> Tuple[Tuple[int, int, int, int, int, int, int], ...]:
        """Flat live-gate records for traversal-heavy inner loops.

        One memoized tuple ``(node, fa_node, fa_xor, fb_node, fb_xor,
        fc_node, fc_xor)`` per live gate, in topological order.  Fanin
        node ids and complement attributes are pre-split so simulation
        and compilation avoid per-visit signal decoding, and each
        complement attribute is folded into an XOR mask (``0`` for a
        plain edge, ``-1`` — all ones in two's complement — for a
        complemented one): simulation backends apply the complement
        branch-free as ``value ^ (xor & width_mask)`` at any word width,
        and the complement *bit* is recovered as ``xor & 1``.
        """
        cached = self._derived.get("flat_gates")
        if cached is None:
            fanins = self._fanins
            cached = tuple(
                (
                    node,
                    fa >> 1,
                    -(fa & 1),
                    fb >> 1,
                    -(fb & 1),
                    fc >> 1,
                    -(fc & 1),
                )
                for node in self._live_gates()
                for fa, fb, fc in (fanins[node],)
            )
            self._derived["flat_gates"] = cached
        return cached

    def _fanout_counts(self, include_pos: bool = True) -> List[int]:
        """Memoized fanout counts (the shared list — do not mutate)."""
        key = ("fanout_counts", include_pos)
        cached = self._derived.get(key)
        if cached is not None:
            return cached
        counts = [0] * len(self._fanins)
        for _, na, _, nb, _, nc, _ in self.flat_gates():
            counts[na] += 1
            counts[nb] += 1
            counts[nc] += 1
        if include_pos:
            for s in self._pos:
                counts[s >> 1] += 1
        self._derived[key] = counts
        return counts

    def fanout_counts(self, include_pos: bool = True) -> List[int]:
        """Number of references to each node from live gates (and POs).

        A node referenced twice by the same parent counts twice; this is the
        *use count* the PLiM compiler tracks to know when an RRAM device can
        be released.
        """
        return list(self._fanout_counts(include_pos))

    def flat_gate_levels(self) -> Tuple[int, ...]:
        """Memoized level per flat gate record, aligned with :meth:`flat_gates`.

        ``flat_gate_levels()[i]`` is the level of ``flat_gates()[i]``.
        Gates sharing a level have no data dependencies between them (a
        fanin's level is strictly lower), which is what lets level-batched
        simulation kernels evaluate a whole level as a handful of large
        array operations; cached in ``_derived`` so it is invalidated by
        any mutation alongside the flat records themselves.
        """
        cached = self._derived.get("flat_gate_levels")
        if cached is None:
            level = self._levels()
            cached = tuple(level[rec[0]] for rec in self.flat_gates())
            self._derived["flat_gate_levels"] = cached
        return cached

    def _levels(self) -> List[int]:
        """Memoized per-node levels (the shared list — do not mutate)."""
        cached = self._derived.get("levels")
        if cached is not None:
            return cached
        fanins = self._fanins
        level = [0] * len(fanins)
        for node in range(1, len(fanins)):
            fi = fanins[node]
            if fi is None:
                continue
            la = level[fi[0] >> 1]
            lb = level[fi[1] >> 1]
            lc = level[fi[2] >> 1]
            if lb > la:
                la = lb
            if lc > la:
                la = lc
            level[node] = la + 1
        self._derived["levels"] = level
        return level

    def levels(self) -> List[int]:
        """Level (depth from inputs) per node; constants and PIs are 0."""
        return list(self._levels())

    def depth(self) -> int:
        """Depth of the graph: maximum output level."""
        if not self._pos:
            return 0
        level = self._levels()
        return max(level[s >> 1] for s in self._pos)

    def structural_digest(self) -> int:
        """Process-local hash of the full structure (fanins, PIs, POs).

        Memoized like the other derived state; used by the experiment
        cache to tell apart graphs whose names and sizes coincide.  Not
        stable across processes (plain ``hash``) — never persist it.
        """
        cached = self._derived.get("digest")
        if cached is None:
            cached = hash(
                (tuple(self._pis), tuple(self._pos), tuple(self._fanins))
            )
            self._derived["digest"] = cached
        return cached

    def content_fingerprint(self) -> str:
        """Stable content-addressed identity of this graph (SHA-256 hex).

        Unlike :meth:`structural_digest` this digest is identical across
        processes and interpreter runs, so it can key persistent caches:
        two structurally equal graphs (same PIs/POs with names, same
        fanin lists, same hashing mode) share a fingerprint wherever they
        were built.  This is how user-supplied MIGs — file imports,
        frontend-compiled functions, hand-built graphs — gain the stable
        cross-process identity registry benchmarks get from their
        ``(name, preset)`` pair.
        """
        import hashlib  # deferred: graph stays dependency-light

        cached = self._derived.get("content_fingerprint")
        if cached is None:
            digest = hashlib.sha256()
            digest.update(self.name.encode())
            digest.update(b"\0strash%d" % int(self.use_strash))
            for name in self._pi_names:
                digest.update(b"\0i" + name.encode())
            for node, fi in enumerate(self._fanins):
                if fi is not None:
                    digest.update(b"\0n%d=%d,%d,%d" % (node, *fi))
            for idx, s in enumerate(self._pos):
                digest.update(
                    b"\0o%d=" % s + self._po_names[idx].encode()
                )
            cached = digest.hexdigest()
            self._derived["content_fingerprint"] = cached
        return cached

    def fanout_view(self):
        """Memoized :class:`repro.mig.views.FanoutView` of this graph.

        The view is rebuilt lazily after any mutation; sharing it lets
        every compiler configuration run on the same derived fanout and
        storage-duration state.
        """
        view = self._derived.get("fanout_view")
        if view is None:
            from .views import FanoutView  # local import to avoid cycle

            view = FanoutView(self)
            self._derived["fanout_view"] = view
        return view

    def complement_histogram(self) -> List[int]:
        """Histogram ``h[k]`` of live gates with ``k`` complemented fanins.

        The RM3 cost model makes ``h[1]`` the "ideal" bucket; rewriting
        scripts try to move mass into it.
        """
        hist = [0, 0, 0, 0]
        for _, _, xa, _, xb, _, xc in self.flat_gates():
            hist[-(xa + xb + xc)] += 1
        return hist

    def num_complemented_edges(self) -> int:
        """Total complemented fanin edges over live gates (plus POs)."""
        total = -sum(
            xa + xb + xc for _, _, xa, _, xb, _, xc in self.flat_gates()
        )
        total += sum(1 for s in self._pos if is_complemented(s))
        return total

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------

    def __getstate__(self):
        """Pickle without the memoized derived state.

        The memo can be several times the size of the bare graph (flat
        gate tuples, fanout lists, a whole :class:`FanoutView`) and its
        ``structural_digest`` entry is process-local — receivers must
        rebuild, not inherit, derived state.
        """
        state = self.__dict__.copy()
        state["_derived"] = {}
        return state

    def clone(self) -> "Mig":
        """Deep copy of the graph."""
        other = Mig(self.name, use_strash=self.use_strash)
        other._fanins = list(self._fanins)
        other._pi_index = list(self._pi_index)
        other._pis = list(self._pis)
        other._pi_names = list(self._pi_names)
        other._pos = list(self._pos)
        other._po_names = list(self._po_names)
        other._strash = dict(self._strash)
        return other

    def cleanup(self) -> "Mig":
        """Return a copy containing only nodes reachable from the outputs.

        PIs are preserved (with names and order) even when dead.  The
        structural-hashing mode is inherited, so cleaning an elaborated
        (redundant) graph does not silently optimise it.
        """
        live = self.live_mask()
        other = Mig(self.name, use_strash=self.use_strash)
        xlat = [0] * len(self._fanins)  # old node -> new signal of same polarity
        for idx, node in enumerate(self._pis):
            xlat[node] = other.add_pi(self._pi_names[idx])
        for node in range(1, len(self._fanins)):
            fi = self._fanins[node]
            if fi is None or not live[node]:
                continue
            children = tuple(
                apply_complement(xlat[node_of(s)], is_complemented(s)) for s in fi
            )
            xlat[node] = other.add_maj(*children)
        for out_idx, s in enumerate(self._pos):
            other.add_po(
                apply_complement(xlat[node_of(s)], is_complemented(s)),
                self._po_names[out_idx],
            )
        return other

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def _check_signal(self, signal: int) -> None:
        if signal < 0 or node_of(signal) >= len(self._fanins):
            raise ValueError(f"signal {signal} references an unknown node")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Mig(name={self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"gates={self.num_gates})"
        )

    def dump(self) -> str:
        """Readable multi-line description (small graphs only)."""
        lines = [f"mig {self.name or '<anonymous>'}"]
        for idx, node in enumerate(self._pis):
            lines.append(f"  n{node} = input {self._pi_names[idx]}")
        for node in self.gates():
            a, b, c = self._fanins[node]
            lines.append(
                f"  n{node} = <{format_signal(a)} {format_signal(b)} "
                f"{format_signal(c)}>"
            )
        for idx, s in enumerate(self._pos):
            lines.append(f"  output {self._po_names[idx]} = {format_signal(s)}")
        return "\n".join(lines)
