"""Signal encoding for Majority-Inverter Graphs.

A *signal* is an integer that packs a node index together with an optional
complement (inversion) attribute, mirroring the complemented edges of a MIG:

``signal = node_index * 2 + complement_bit``

Node ``0`` is reserved for the Boolean constant *false*, hence the two
distinguished signals :data:`CONST0` (``0``) and :data:`CONST1` (``1``, the
complemented constant-false node, i.e. *true*).

The encoding keeps signals hashable, orderable, and cheap, which matters
because rewriting and compilation traverse graphs with hundreds of thousands
of edges.
"""

from __future__ import annotations

from typing import Iterable, Tuple

#: Signal representing the Boolean constant 0 (node 0, non-complemented).
CONST0 = 0

#: Signal representing the Boolean constant 1 (node 0, complemented).
CONST1 = 1


def make_signal(node: int, complemented: bool = False) -> int:
    """Pack a node index and complement attribute into a signal.

    >>> make_signal(3)
    6
    >>> make_signal(3, True)
    7
    """
    if node < 0:
        raise ValueError(f"node index must be non-negative, got {node}")
    return node * 2 + (1 if complemented else 0)


def node_of(signal: int) -> int:
    """Return the node index referenced by *signal*.

    >>> node_of(7)
    3
    """
    return signal >> 1


def is_complemented(signal: int) -> bool:
    """Return ``True`` if *signal* carries a complement attribute.

    >>> is_complemented(6), is_complemented(7)
    (False, True)
    """
    return bool(signal & 1)


def complement(signal: int) -> int:
    """Return the complemented version of *signal*.

    >>> complement(6)
    7
    >>> complement(complement(6))
    6
    """
    return signal ^ 1


def apply_complement(signal: int, complemented: bool) -> int:
    """Complement *signal* iff *complemented* is true.

    Useful when propagating an edge attribute onto an existing signal.
    """
    return signal ^ 1 if complemented else signal


def regular(signal: int) -> int:
    """Return *signal* with the complement attribute stripped.

    >>> regular(7)
    6
    """
    return signal & ~1


def is_constant(signal: int) -> bool:
    """Return ``True`` for the constant-0/constant-1 signals."""
    return signal <= 1


def constant_value(signal: int) -> int:
    """Return the Boolean value (0/1) of a constant signal.

    Raises :class:`ValueError` when *signal* is not a constant.
    """
    if not is_constant(signal):
        raise ValueError(f"signal {signal} is not a constant")
    return signal & 1


def are_complementary(a: int, b: int) -> bool:
    """Return ``True`` when two signals reference the same node with
    opposite polarities (``a == NOT b``)."""
    return (a ^ b) == 1


def sorted_fanins(a: int, b: int, c: int) -> Tuple[int, int, int]:
    """Return the canonical (sorted) fanin triple of a majority node.

    The majority function is fully commutative (axiom Omega.C), so sorting
    by signal value gives a canonical key for structural hashing while
    keeping each complement attribute attached to its own operand.
    """
    if a > b:
        a, b = b, a
    if b > c:
        b, c = c, b
    if a > b:
        a, b = b, a
    return a, b, c


def complement_count(fanins: Iterable[int]) -> int:
    """Number of complemented signals in *fanins*.

    The RM3 cost model cares about this: a node with exactly one
    complemented fanin maps to a single RM3 instruction (the second operand
    of RM3 is inverted for free), while zero or two-plus complemented
    fanins require repair instructions.
    """
    return sum(1 for s in fanins if s & 1)


def format_signal(signal: int) -> str:
    """Human-readable form used by dumps and disassembly.

    >>> format_signal(7)
    "~n3"
    >>> format_signal(0), format_signal(1)
    ('0', '1')
    """
    if signal == CONST0:
        return "0"
    if signal == CONST1:
        return "1"
    prefix = "~" if is_complemented(signal) else ""
    return f"{prefix}n{node_of(signal)}"
