"""MIG Boolean algebra: the axioms used by the PLiM rewriting scripts.

The primitive axiom set ``Omega`` [Amaru et al., DAC'14] and the derived
rules referenced by the reproduced paper:

=====================  ==========================================================
``Omega.C``            ``<x y z> = <y x z> = <z y x>``  (built into hashing)
``Omega.M``            ``<x x z> = x``,  ``<x ~x z> = z``  (built into creation)
``Omega.A``            ``<x u <y u z>> = <z u <y u x>>``
``Omega.D`` (R->L)     ``<<x y u> <x y v> z> = <x y <u v z>>``
``Omega.I``            ``~<x y z> = <~x ~y ~z>``  (self-duality of majority)
``Psi.C``              ``<x u <y ~u z>> = <x u <y x z>>``
``Omega.I(R->L)(1-3)`` complement-count normalisation derived from ``Omega.I``:
                       a node with three (rule 1) or two (rules 2-3)
                       complemented fanins is replaced by its complement-free
                       or single-complement dual with a complemented output.
=====================  ==========================================================

Each function here is a *local, cost-aware* application: it receives the
already-translated fanin signals of one node during a rebuild pass
(:mod:`repro.mig.rewrite`) and either returns an improved signal or ``None``
when the pattern does not apply / does not pay off.  Logical correctness of
every rule is property-tested exhaustively in the test suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .graph import Mig
from .signal import complement

#: The six orderings of three operand positions, in the order
#: ``itertools.permutations`` yields them (rewrites are first-match, so
#: this order is semantics).
_PERMUTATIONS = (
    (0, 1, 2), (0, 2, 1), (1, 0, 2), (1, 2, 0), (2, 0, 1), (2, 1, 0),
)


def _variable_complements(fanins) -> int:
    """Complemented *non-constant* fanins — the RM3-relevant count."""
    return sum(1 for s in fanins if s > 1 and s & 1)


def _gate_fanins(mig: Mig, signal: int) -> Optional[Tuple[int, int, int]]:
    """Fanins of the gate referenced by a *non-complemented* signal.

    Complemented gate signals are not matched structurally: pushing the
    complement through first is exactly the job of ``Omega.I``, which the
    rewriting scripts schedule explicitly.

    This is the hottest probe of the rewriting engine (every candidate
    pass application of the optimiser calls it per node), so the signal
    decoding is inlined and the fanin table is read directly: the stored
    entry is ``None`` for exactly the non-gates (constant and PIs).
    """
    if signal & 1:
        return None
    return mig._fanins[signal >> 1]


# ----------------------------------------------------------------------
# Omega.D  (distributivity, right-to-left)
# ----------------------------------------------------------------------

def try_distributivity_rl(
    mig: Mig,
    a: int,
    b: int,
    c: int,
    *,
    fanout_of=None,
) -> Optional[int]:
    """Apply ``<<x y u> <x y v> z> -> <x y <u v z>>`` when it pays off.

    The rewrite replaces three majority nodes by two, which is profitable
    when the two inner nodes have no other fanout (they die) or when the
    rebuilt nodes already exist (structural-hash hit).  *fanout_of* maps a
    new-graph signal to its residual fanout estimate; when ``None`` the
    rule only fires on guaranteed hash hits.
    """
    # Position-permutation order matches permutations((a, b, c)) exactly
    # (results are order-sensitive); gate fanins are probed once per
    # operand instead of once per pair.
    operands = (a, b, c)
    fans = (
        _gate_fanins(mig, a),
        _gate_fanins(mig, b),
        _gate_fanins(mig, c),
    )
    for i, j, k in _PERMUTATIONS:
        first, second, z = operands[i], operands[j], operands[k]
        if first > second:
            continue  # each unordered pair once
        fi1 = fans[i]
        fi2 = fans[j]
        if fi1 is None or fi2 is None:
            continue
        # Stored fanin triples are sorted and duplicate-free, so the
        # membership scan yields the shared signals already ascending
        # (what sorted(set & set)[:2] produced before).
        shared = [s for s in fi1 if s in fi2]
        if len(shared) < 2:
            continue
        x, y = shared[0], shared[1]
        rest1 = [s for s in fi1 if s not in (x, y)]
        rest2 = [s for s in fi2 if s not in (x, y)]
        if len(rest1) != 1 or len(rest2) != 1:
            continue
        u, v = rest1[0], rest2[0]
        inner_free = not mig.maj_would_allocate(u, v, z)
        outer_probe_possible = inner_free
        dies1 = fanout_of is not None and fanout_of(first) <= 1
        dies2 = fanout_of is not None and fanout_of(second) <= 1
        # Profitability: 3 nodes -> 2 nodes when both inner operands die,
        # or fewer allocations when the rebuilt nodes hash-hit.
        if (dies1 and dies2) or outer_probe_possible:
            inner = mig.add_maj(u, v, z)
            return mig.add_maj(x, y, inner)
    return None


# ----------------------------------------------------------------------
# Omega.A  (associativity)
# ----------------------------------------------------------------------

def try_associativity(mig: Mig, a: int, b: int, c: int) -> Optional[int]:
    """Apply ``<x u <y u z>> = <z u <y u x>>`` when the swap simplifies.

    For every fanin that is a gate sharing a common operand ``u`` with the
    node under construction, try swapping the remaining outer operand with
    each non-shared inner operand.  The variant is kept only when the new
    inner node does not allocate (it simplifies through ``Omega.M`` or
    hash-hits), so the rewrite is monotonically non-increasing in size.
    """
    operands = (a, b, c)
    for w_pos in range(3):
        w = operands[w_pos]
        inner = _gate_fanins(mig, w)
        if inner is None:
            continue
        outer_rest = [operands[i] for i in range(3) if i != w_pos]
        for u in outer_rest:
            if u not in inner:
                continue
            x = outer_rest[0] if outer_rest[1] == u else outer_rest[1]
            inner_rest = [s for s in inner if s != u]
            if len(inner_rest) != 2:
                continue
            for swap_idx in range(2):
                z = inner_rest[swap_idx]
                y = inner_rest[1 - swap_idx]
                # <x u <y u z>>  ->  <z u <y u x>>
                if not mig.maj_would_allocate(y, u, x):
                    new_inner = mig.add_maj(y, u, x)
                    return mig.add_maj(z, u, new_inner)
    return None


# ----------------------------------------------------------------------
# Psi.C  (complementary associativity)
# ----------------------------------------------------------------------

def try_complementary_associativity(
    mig: Mig, a: int, b: int, c: int, *, fanout_of=None
) -> Optional[int]:
    """Apply ``<x u <y ~u z>> = <x u <y x z>>`` when it pays off.

    The inner occurrence of the complement of one outer operand is replaced
    by the *other* outer operand.  This removes one complemented edge and
    can expose sharing; it fires when the new inner node hash-hits, or
    when the replacement strictly reduces the inner complement count *and*
    the old inner node dies (single fanout) so the graph cannot grow.
    (That complement removal is the use [Soeken et al., DAC'16] makes of
    the rule — and the reason the endurance-aware script of the reproduced
    paper drops it: removing a *single* complemented edge destroys the
    RM3-ideal form.)
    """
    operands = (a, b, c)
    for w_pos in range(3):
        w = operands[w_pos]
        inner = _gate_fanins(mig, w)
        if inner is None:
            continue
        outer_rest = [operands[i] for i in range(3) if i != w_pos]
        for u_idx in range(2):
            u = outer_rest[u_idx]
            x = outer_rest[1 - u_idx]
            if u <= 1:
                # a "complement" of a constant operand is just the other
                # constant — not a complemented edge; matching it would
                # tear apart AND/OR nodes for no RM3 benefit.
                continue
            nu = complement(u)
            if nu not in inner:
                continue
            new_inner_ops = tuple(x if s == nu else s for s in inner)
            hash_hit = not mig.maj_would_allocate(*new_inner_ops)
            removes_complement = _variable_complements(
                new_inner_ops
            ) < _variable_complements(inner)
            inner_dies = fanout_of is not None and fanout_of(w) <= 1
            if hash_hit or (removes_complement and inner_dies):
                new_inner = mig.add_maj(*new_inner_ops)
                return mig.add_maj(x, u, new_inner)
    return None


# ----------------------------------------------------------------------
# Omega.I  (inverter propagation, right-to-left)
# ----------------------------------------------------------------------

def propagate_inverters(
    mig: Mig, a: int, b: int, c: int, *, handle_two: bool
) -> Optional[int]:
    """Normalise complemented fanins via the self-duality of majority.

    * three complemented fanins (``Omega.I(R->L)`` rule 1):
      ``<~x ~y ~z> = ~<x y z>`` — build the complement-free node and
      return its complemented signal;
    * exactly two complemented fanins (rules 2-3, enabled by
      *handle_two*): ``<~x ~y z> = ~<x y ~z>`` — leaves exactly one
      complemented fanin, the ideal shape for RM3's free inversion of the
      second operand.

    Constant fanins are ignored by the count: RM3 applies constants to
    the bit lines directly, either polarity, so a "complemented" constant
    edge costs nothing and must not trigger the rewrite.
    """
    # Inlined complement arithmetic: this runs twice per node per script
    # cycle (both inverter phases), so helper-call overhead is visible.
    count = (
        (1 if a > 1 and a & 1 else 0)
        + (1 if b > 1 and b & 1 else 0)
        + (1 if c > 1 and c & 1 else 0)
    )
    if count == 3 or (count == 2 and handle_two):
        return mig.add_maj(a ^ 1, b ^ 1, c ^ 1) ^ 1
    return None
