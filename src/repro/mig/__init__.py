"""Majority-Inverter Graph substrate.

The data structure, Boolean algebra, simulation, and rewriting engine that
the PLiM compiler and the endurance-management techniques operate on.
"""

from .graph import Mig
from .signal import (
    CONST0,
    CONST1,
    apply_complement,
    complement,
    complement_count,
    format_signal,
    is_complemented,
    is_constant,
    make_signal,
    node_of,
    regular,
)
from .simulate import (
    equivalent,
    find_counterexample,
    simulate,
    simulate_one,
    truth_tables,
)
from .rewrite import PASSES, apply_script
from .views import FanoutView
from .dot import to_dot, write_dot
from .io import (
    MigParseError,
    NETLIST_READERS,
    dumps_aiger,
    dumps_aiger_binary,
    dumps_mig,
    dumps_program,
    loads_aiger,
    loads_aiger_binary,
    loads_blif,
    loads_mig,
    read_aiger,
    read_aiger_binary,
    read_blif,
    read_mig,
    read_netlist,
    read_program,
    write_aiger,
    write_aiger_binary,
    write_mig,
    write_program,
)

__all__ = [
    "CONST0",
    "CONST1",
    "FanoutView",
    "Mig",
    "MigParseError",
    "NETLIST_READERS",
    "PASSES",
    "dumps_aiger",
    "dumps_aiger_binary",
    "dumps_mig",
    "dumps_program",
    "loads_aiger",
    "loads_aiger_binary",
    "loads_blif",
    "loads_mig",
    "read_aiger",
    "read_aiger_binary",
    "read_blif",
    "read_mig",
    "read_netlist",
    "read_program",
    "write_aiger",
    "write_aiger_binary",
    "write_mig",
    "write_program",
    "apply_complement",
    "apply_script",
    "complement",
    "complement_count",
    "equivalent",
    "find_counterexample",
    "format_signal",
    "is_complemented",
    "is_constant",
    "make_signal",
    "node_of",
    "regular",
    "simulate",
    "simulate_one",
    "to_dot",
    "truth_tables",
    "write_dot",
]
