"""Bit-parallel simulation of Majority-Inverter Graphs.

Values are plain Python integers used as bit vectors: position ``i`` of every
value is one independent simulation pattern, so a single sweep over the graph
evaluates arbitrarily many input patterns at once.  This is the reference
model against which compiled PLiM programs are verified
(:mod:`repro.plim.verify`) and the engine behind equivalence checking of
rewriting passes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from .graph import Mig
from .signal import is_complemented, node_of

#: Refuse exhaustive truth tables beyond this many inputs (2^20 patterns).
MAX_EXHAUSTIVE_PIS = 20


def simulate(mig: Mig, pi_values: Sequence[int], mask: int = 1) -> List[int]:
    """Evaluate *mig* on bit-parallel input words.

    Parameters
    ----------
    pi_values:
        One integer per primary input; bit ``i`` of each word is pattern
        ``i``.
    mask:
        All-ones mask covering the pattern width (e.g. ``(1 << 64) - 1``
        for 64 parallel patterns).

    Returns
    -------
    One integer per primary output.
    """
    if len(pi_values) != mig.num_pis:
        raise ValueError(
            f"expected {mig.num_pis} input words, got {len(pi_values)}"
        )
    values = [0] * mig.num_nodes
    for node, word in zip(mig.pis(), pi_values):
        values[node] = word & mask
    for node in mig.gates():
        fa, fb, fc = mig.fanins(node)
        a = values[node_of(fa)] ^ (mask if fa & 1 else 0)
        b = values[node_of(fb)] ^ (mask if fb & 1 else 0)
        c = values[node_of(fc)] ^ (mask if fc & 1 else 0)
        values[node] = (a & b) | (a & c) | (b & c)
    outputs = []
    for s in mig.pos():
        word = values[node_of(s)]
        if s & 1:
            word ^= mask
        outputs.append(word & mask)
    return outputs


def simulate_one(mig: Mig, assignment: Dict[str, int]) -> Dict[str, int]:
    """Evaluate a single pattern given by PI name.

    >>> mig = Mig()
    >>> a, b = mig.add_pi("a"), mig.add_pi("b")
    >>> _ = mig.add_po(mig.add_and(a, b), "f")
    >>> simulate_one(mig, {"a": 1, "b": 1})
    {'f': 1}
    """
    words = []
    for i in range(mig.num_pis):
        name = mig.pi_name(i)
        if name not in assignment:
            raise KeyError(f"missing assignment for input {name!r}")
        words.append(1 if assignment[name] else 0)
    outs = simulate(mig, words, mask=1)
    return {mig.po_name(i): outs[i] for i in range(mig.num_pos)}


def truth_tables(mig: Mig) -> List[int]:
    """Exhaustive truth table per output, as ``2**num_pis``-bit integers.

    Bit ``m`` of each table is the output value under minterm ``m`` (input
    ``i`` takes bit ``i`` of ``m``).  Only feasible for small input counts.
    """
    n = mig.num_pis
    if n > MAX_EXHAUSTIVE_PIS:
        raise ValueError(f"too many inputs for exhaustive simulation: {n}")
    num_patterns = 1 << n
    mask = (1 << num_patterns) - 1
    pi_words = []
    for i in range(n):
        # Standard variable pattern: blocks of 2^i ones/zeros.
        block = (1 << (1 << i)) - 1  # 2^i ones
        period = 1 << (i + 1)
        word = 0
        for start in range(1 << i, num_patterns, period):
            word |= block << start
        pi_words.append(word)
    return simulate(mig, pi_words, mask=mask)


def random_words(num_inputs: int, width: int, rng: random.Random) -> List[int]:
    """Draw *num_inputs* random bit-words of *width* patterns."""
    return [rng.getrandbits(width) for _ in range(num_inputs)]


def equivalent(
    a: Mig,
    b: Mig,
    *,
    exhaustive_limit: int = 14,
    samples: int = 1024,
    seed: int = 0xC0FFEE,
) -> bool:
    """Check functional equivalence of two MIGs.

    Uses exhaustive truth tables when the input count is small enough,
    otherwise randomized bit-parallel simulation with *samples* patterns.
    Random simulation is sound for inequivalence and probabilistic for
    equivalence, which is the standard trade-off for large circuits.
    """
    if a.num_pis != b.num_pis or a.num_pos != b.num_pos:
        return False
    if a.num_pis <= exhaustive_limit:
        return truth_tables(a) == truth_tables(b)
    rng = random.Random(seed)
    width = 64
    rounds = max(1, (samples + width - 1) // width)
    mask = (1 << width) - 1
    for _ in range(rounds):
        words = random_words(a.num_pis, width, rng)
        if simulate(a, words, mask) != simulate(b, words, mask):
            return False
    return True


def find_counterexample(
    a: Mig,
    b: Mig,
    *,
    samples: int = 1024,
    seed: int = 0xC0FFEE,
) -> Optional[Dict[str, int]]:
    """Return an input assignment on which the two MIGs differ, if found."""
    if a.num_pis != b.num_pis or a.num_pos != b.num_pos:
        raise ValueError("interface mismatch")
    rng = random.Random(seed)
    width = 64
    mask = (1 << width) - 1
    for _ in range(max(1, (samples + width - 1) // width)):
        words = random_words(a.num_pis, width, rng)
        out_a = simulate(a, words, mask)
        out_b = simulate(b, words, mask)
        diff = 0
        for wa, wb in zip(out_a, out_b):
            diff |= wa ^ wb
        if diff:
            bit = (diff & -diff).bit_length() - 1
            return {
                a.pi_name(i): (words[i] >> bit) & 1 for i in range(a.num_pis)
            }
    return None
