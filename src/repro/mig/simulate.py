"""Bit-parallel simulation of Majority-Inverter Graphs.

Values are plain Python integers used as bit vectors: position ``i`` of every
value is one independent simulation pattern, so a single sweep over the graph
evaluates arbitrarily many input patterns at once.  This is the reference
model against which compiled PLiM programs are verified
(:mod:`repro.plim.verify`) and the engine behind equivalence checking of
rewriting passes.

The inner loop iterates over the graph's memoized flat gate records
(:meth:`repro.mig.graph.Mig.flat_gates`), so repeated simulations of the
same graph pay for the traversal derivation once.  Exhaustive runs past
:data:`CHUNK_BITS` patterns are evaluated in fixed-width chunks: the cost
of a chunked sweep grows linearly with the pattern count instead of the
quadratic blow-up of building multi-megabit input words incrementally.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .graph import Mig

#: Refuse exhaustive truth tables beyond this many inputs (2^20 patterns).
MAX_EXHAUSTIVE_PIS = 20

#: log2 of the widest single simulation word used by exhaustive sweeps;
#: beyond 2^CHUNK_BITS patterns the sweep runs chunk by chunk.
CHUNK_BITS = 13


def input_word(var: int, num_patterns: int, base: int = 0) -> int:
    """Bit-parallel stimulus for variable *var* over a pattern window.

    Bit ``j`` of the result is bit *var* of minterm ``base + j``.  The
    periodic pattern is built by doubling (O(log num_patterns) bigint
    operations), not by setting blocks one at a time.
    """
    half = 1 << var
    period = half << 1
    offset = base % period
    # Window inside one half-period: the variable is constant across it.
    if offset + num_patterns <= half:
        return 0
    if half <= offset and offset + num_patterns <= period:
        return (1 << num_patterns) - 1
    # One period (2^var zeros then 2^var ones), phase-shifted to base.
    word = ((1 << half) - 1) << half
    if offset:
        word = ((word | (word << period)) >> offset) & ((1 << period) - 1)
    width = period
    while width < num_patterns:
        word |= word << width
        width <<= 1
    return word & ((1 << num_patterns) - 1)


def exhaustive_words(
    num_inputs: int, num_patterns: int, base: int = 0
) -> List[int]:
    """One stimulus word per input covering minterms ``[base, base+n)``."""
    return [input_word(i, num_patterns, base) for i in range(num_inputs)]


def simulate(mig: Mig, pi_values: Sequence[int], mask: int = 1) -> List[int]:
    """Evaluate *mig* on bit-parallel input words.

    Parameters
    ----------
    pi_values:
        One integer per primary input; bit ``i`` of each word is pattern
        ``i``.
    mask:
        All-ones mask covering the pattern width (e.g. ``(1 << 64) - 1``
        for 64 parallel patterns).

    Returns
    -------
    One integer per primary output.
    """
    if len(pi_values) != mig.num_pis:
        raise ValueError(
            f"expected {mig.num_pis} input words, got {len(pi_values)}"
        )
    values = [0] * mig.num_nodes
    for node, word in zip(mig.pis(), pi_values):
        values[node] = word & mask
    for node, na, ca, nb, cb, nc, cc in mig.flat_gates():
        a = values[na]
        if ca:
            a ^= mask
        b = values[nb]
        if cb:
            b ^= mask
        c = values[nc]
        if cc:
            c ^= mask
        values[node] = (a & b) | (a & c) | (b & c)
    outputs = []
    for s in mig.pos():
        word = values[s >> 1]
        if s & 1:
            word ^= mask
        outputs.append(word & mask)
    return outputs


def simulate_one(mig: Mig, assignment: Dict[str, int]) -> Dict[str, int]:
    """Evaluate a single pattern given by PI name.

    >>> mig = Mig()
    >>> a, b = mig.add_pi("a"), mig.add_pi("b")
    >>> _ = mig.add_po(mig.add_and(a, b), "f")
    >>> simulate_one(mig, {"a": 1, "b": 1})
    {'f': 1}
    """
    words = []
    for i in range(mig.num_pis):
        name = mig.pi_name(i)
        if name not in assignment:
            raise KeyError(f"missing assignment for input {name!r}")
        words.append(1 if assignment[name] else 0)
    outs = simulate(mig, words, mask=1)
    return {mig.po_name(i): outs[i] for i in range(mig.num_pos)}


def exhaustive_chunks(
    mig: Mig, chunk_bits: int = CHUNK_BITS
) -> Iterator[Tuple[int, int, List[int]]]:
    """Exhaustively simulate *mig* in chunks of ``2**chunk_bits`` patterns.

    Yields ``(base, width, outputs)`` triples covering minterms
    ``[base, base + width)`` in ascending order.  Keeping each chunk to a
    fixed word width makes the total exhaustive cost linear in the number
    of patterns, where one monolithic ``2**num_pis``-bit sweep pays
    bigint arithmetic proportional to the full table per gate.
    """
    n = mig.num_pis
    if n > MAX_EXHAUSTIVE_PIS:
        raise ValueError(f"too many inputs for exhaustive simulation: {n}")
    num_patterns = 1 << n
    width = min(num_patterns, 1 << chunk_bits)
    mask = (1 << width) - 1
    # Low variables (period <= chunk width) repeat identically per chunk.
    shared = [
        input_word(i, width) for i in range(n) if (1 << (i + 1)) <= width
    ]
    for base in range(0, num_patterns, width):
        words = list(shared)
        for i in range(len(shared), n):
            words.append(mask if (base >> i) & 1 else 0)
        yield base, width, simulate(mig, words, mask=mask)


def truth_tables(mig: Mig, chunk_bits: int = CHUNK_BITS) -> List[int]:
    """Exhaustive truth table per output, as ``2**num_pis``-bit integers.

    Bit ``m`` of each table is the output value under minterm ``m`` (input
    ``i`` takes bit ``i`` of ``m``).  Only feasible for input counts up to
    :data:`MAX_EXHAUSTIVE_PIS`; wide tables are swept chunk by chunk.
    """
    n = mig.num_pis
    if n > MAX_EXHAUSTIVE_PIS:
        raise ValueError(f"too many inputs for exhaustive simulation: {n}")
    tables = [0] * mig.num_pos
    for base, _, outputs in exhaustive_chunks(mig, chunk_bits):
        for idx, word in enumerate(outputs):
            tables[idx] |= word << base
    return tables


def random_words(num_inputs: int, width: int, rng: random.Random) -> List[int]:
    """Draw *num_inputs* random bit-words of *width* patterns."""
    return [rng.getrandbits(width) for _ in range(num_inputs)]


def equivalent(
    a: Mig,
    b: Mig,
    *,
    exhaustive_limit: Optional[int] = None,
    samples: int = 1024,
    seed: int = 0xC0FFEE,
) -> bool:
    """Check functional equivalence of two MIGs.

    Up to ``exhaustive_limit`` inputs (default: :data:`MAX_EXHAUSTIVE_PIS`,
    the same ceiling :func:`truth_tables` enforces) the check is exhaustive
    and therefore exact, evaluated chunk-wise with early exit on the first
    differing window.

    Beyond the limit an exhaustive check is infeasible, and the function
    *refuses* rather than silently degrading: randomized bit-parallel
    checking (sound for inequivalence, probabilistic for equivalence) must
    be requested explicitly by passing ``exhaustive_limit`` — callers that
    opt in acknowledge the random fallback above their chosen cutoff.
    """
    if a.num_pis != b.num_pis or a.num_pos != b.num_pos:
        return False
    explicit = exhaustive_limit is not None
    limit = exhaustive_limit if explicit else MAX_EXHAUSTIVE_PIS
    if limit > MAX_EXHAUSTIVE_PIS:
        raise ValueError(
            f"exhaustive_limit {limit} exceeds MAX_EXHAUSTIVE_PIS "
            f"({MAX_EXHAUSTIVE_PIS}); exhaustive simulation past 2^"
            f"{MAX_EXHAUSTIVE_PIS} patterns is not supported"
        )
    if a.num_pis <= limit:
        for (_, _, out_a), (_, _, out_b) in zip(
            exhaustive_chunks(a), exhaustive_chunks(b)
        ):
            if out_a != out_b:
                return False
        return True
    if not explicit:
        raise ValueError(
            f"{a.num_pis} inputs exceed the exhaustive-check ceiling of "
            f"{MAX_EXHAUSTIVE_PIS}; pass exhaustive_limit= explicitly to "
            "opt in to randomized (probabilistic) equivalence checking, "
            "or use find_counterexample() for a refutation-only search"
        )
    rng = random.Random(seed)
    width = 64
    rounds = max(1, (samples + width - 1) // width)
    mask = (1 << width) - 1
    for _ in range(rounds):
        words = random_words(a.num_pis, width, rng)
        if simulate(a, words, mask) != simulate(b, words, mask):
            return False
    return True


def find_counterexample(
    a: Mig,
    b: Mig,
    *,
    samples: int = 1024,
    seed: int = 0xC0FFEE,
) -> Optional[Dict[str, int]]:
    """Return an input assignment on which the two MIGs differ, if found."""
    if a.num_pis != b.num_pis or a.num_pos != b.num_pos:
        raise ValueError("interface mismatch")
    rng = random.Random(seed)
    width = 64
    mask = (1 << width) - 1
    for _ in range(max(1, (samples + width - 1) // width)):
        words = random_words(a.num_pis, width, rng)
        out_a = simulate(a, words, mask)
        out_b = simulate(b, words, mask)
        diff = 0
        for wa, wb in zip(out_a, out_b):
            diff |= wa ^ wb
        if diff:
            bit = (diff & -diff).bit_length() - 1
            return {
                a.pi_name(i): (words[i] >> bit) & 1 for i in range(a.num_pis)
            }
    return None
