"""Bit-parallel simulation of Majority-Inverter Graphs.

Values are plain Python integers used as bit vectors: position ``i`` of
every value is one independent simulation pattern, so a single sweep over
the graph evaluates arbitrarily many input patterns at once.  This is the
reference model against which compiled PLiM programs are verified
(:mod:`repro.plim.verify`) and the engine behind equivalence checking of
rewriting passes.

The gate-evaluation engine is pluggable (:mod:`repro.mig.kernel`): the
pure-Python bigint kernel is always available, and the optional numpy
kernels evaluate the same flat gate records (complement attributes
pre-folded into XOR masks) as whole-array ``uint64`` operations — per
gate (``numpy``) or a whole MIG level at a time across a worker-thread
pool (``numpy-batch``).  Every function here speaks Python-int words
regardless of the active kernel, and all kernels are bit-identical
(asserted by the parity tests).

Exhaustive runs past the kernel's chunk width are evaluated in
fixed-width chunks: the cost of a chunked sweep grows linearly with the
pattern count instead of the quadratic blow-up of building multi-megabit
input words incrementally.  Randomized checks draw one word per input
per round; the round count and word width come from one shared helper
(:func:`randomized_rounds`), so the numpy kernel's wider sweeps apply to
``equivalent`` and ``find_counterexample`` alike.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .graph import Mig
from .kernel import get_kernel

#: Refuse exhaustive truth tables beyond this many inputs (2^20 patterns).
MAX_EXHAUSTIVE_PIS = 20

#: log2 of the widest single simulation word used by exhaustive sweeps
#: under the *bigint* kernel; kept as the module-level default for
#: callers that pin chunking explicitly.  The active kernel may prefer
#: wider chunks (see :func:`exhaustive_chunks`).
CHUNK_BITS = 13


def input_word(var: int, num_patterns: int, base: int = 0) -> int:
    """Bit-parallel stimulus for variable *var* over a pattern window.

    Bit ``j`` of the result is bit *var* of minterm ``base + j``.  The
    periodic pattern is built by doubling (O(log num_patterns) bigint
    operations), not by setting blocks one at a time.
    """
    half = 1 << var
    period = half << 1
    offset = base % period
    # Window inside one half-period: the variable is constant across it.
    if offset + num_patterns <= half:
        return 0
    if half <= offset and offset + num_patterns <= period:
        return (1 << num_patterns) - 1
    # One period (2^var zeros then 2^var ones), phase-shifted to base.
    word = ((1 << half) - 1) << half
    if offset:
        word = ((word | (word << period)) >> offset) & ((1 << period) - 1)
    width = period
    while width < num_patterns:
        word |= word << width
        width <<= 1
    return word & ((1 << num_patterns) - 1)


def exhaustive_words(
    num_inputs: int, num_patterns: int, base: int = 0
) -> List[int]:
    """One stimulus word per input covering minterms ``[base, base+n)``."""
    return [input_word(i, num_patterns, base) for i in range(num_inputs)]


def simulate(
    mig: Mig, pi_values: Sequence[int], mask: int = 1, *, kernel=None
) -> List[int]:
    """Evaluate *mig* on bit-parallel input words.

    Parameters
    ----------
    pi_values:
        One integer per primary input; bit ``i`` of each word is pattern
        ``i``.
    mask:
        All-ones mask covering the pattern width (e.g. ``(1 << 64) - 1``
        for 64 parallel patterns).
    kernel:
        Simulation kernel override; defaults to the active backend
        (:func:`repro.mig.kernel.get_kernel`).

    Returns
    -------
    One integer per primary output.
    """
    if len(pi_values) != mig.num_pis:
        raise ValueError(
            f"expected {mig.num_pis} input words, got {len(pi_values)}"
        )
    return (kernel or get_kernel()).simulate(mig, pi_values, mask)


def simulate_one(mig: Mig, assignment: Dict[str, int]) -> Dict[str, int]:
    """Evaluate a single pattern given by PI name.

    >>> mig = Mig()
    >>> a, b = mig.add_pi("a"), mig.add_pi("b")
    >>> _ = mig.add_po(mig.add_and(a, b), "f")
    >>> simulate_one(mig, {"a": 1, "b": 1})
    {'f': 1}
    """
    words = []
    for i in range(mig.num_pis):
        name = mig.pi_name(i)
        if name not in assignment:
            raise KeyError(f"missing assignment for input {name!r}")
        words.append(1 if assignment[name] else 0)
    outs = simulate(mig, words, mask=1)
    return {mig.po_name(i): outs[i] for i in range(mig.num_pos)}


def exhaustive_chunks(
    mig: Mig, chunk_bits: Optional[int] = None, *, kernel=None
) -> Iterator[Tuple[int, int, List[int]]]:
    """Exhaustively simulate *mig* in chunks of ``2**chunk_bits`` patterns.

    Yields ``(base, width, outputs)`` triples covering minterms
    ``[base, base + width)`` in ascending order.  Keeping each chunk to a
    fixed word width makes the total exhaustive cost linear in the number
    of patterns, where one monolithic ``2**num_pis``-bit sweep pays
    bigint arithmetic proportional to the full table per gate.  The
    default chunk width is the active kernel's preference (13 bits for
    bigint, wider for numpy); pass *chunk_bits* to pin it.
    """
    n = mig.num_pis
    if n > MAX_EXHAUSTIVE_PIS:
        raise ValueError(f"too many inputs for exhaustive simulation: {n}")
    kernel = kernel or get_kernel()
    if chunk_bits is None:
        chunk_bits = kernel.chunk_bits_for(mig)
    num_patterns = 1 << n
    width = min(num_patterns, 1 << chunk_bits)
    mask = (1 << width) - 1
    # Kernels may synthesise the structured exhaustive stimulus
    # natively (numpy fills lane rows without building bigint words);
    # a declined window (None) falls back to the generic path below.
    fast_window = getattr(kernel, "exhaustive_window", None)
    # Low variables (period <= chunk width) repeat identically per
    # chunk; built lazily since the fast path never needs them.
    shared: Optional[List[int]] = None
    for base in range(0, num_patterns, width):
        outputs = None
        if fast_window is not None:
            outputs = fast_window(mig, base, width)
        if outputs is None:
            if shared is None:
                shared = [
                    input_word(i, width)
                    for i in range(n)
                    if (1 << (i + 1)) <= width
                ]
            words = list(shared)
            for i in range(len(shared), n):
                words.append(mask if (base >> i) & 1 else 0)
            outputs = kernel.simulate(mig, words, mask)
        yield base, width, outputs


def truth_tables(
    mig: Mig, chunk_bits: Optional[int] = None, *, kernel=None
) -> List[int]:
    """Exhaustive truth table per output, as ``2**num_pis``-bit integers.

    Bit ``m`` of each table is the output value under minterm ``m`` (input
    ``i`` takes bit ``i`` of ``m``).  Only feasible for input counts up to
    :data:`MAX_EXHAUSTIVE_PIS`; wide tables are swept chunk by chunk.
    The result is independent of the chunking and of the active kernel.
    """
    n = mig.num_pis
    if n > MAX_EXHAUSTIVE_PIS:
        raise ValueError(f"too many inputs for exhaustive simulation: {n}")
    # Chunk outputs are assembled bytewise: appending fixed-size byte
    # blocks and joining once is linear in the table size, where
    # ``table |= word << base`` would copy the growing table per chunk.
    parts: Optional[List[List[bytes]]] = None
    chunk_bytes = 0
    for base, width, outputs in exhaustive_chunks(mig, chunk_bits, kernel=kernel):
        if base == 0:
            if width >= (1 << n):  # single chunk: nothing to assemble
                return outputs
            if width & 7:  # sub-byte chunks (tiny explicit chunk_bits)
                tables = [0] * mig.num_pos
                for base, _, outputs in exhaustive_chunks(
                    mig, chunk_bits, kernel=kernel
                ):
                    for idx, word in enumerate(outputs):
                        tables[idx] |= word << base
                return tables
            parts = [[] for _ in outputs]
            chunk_bytes = width >> 3
        for idx, word in enumerate(outputs):
            parts[idx].append(word.to_bytes(chunk_bytes, "little"))
    if parts is None:  # zero POs or a pathological empty sweep
        return [0] * mig.num_pos
    return [int.from_bytes(b"".join(p), "little") for p in parts]


def random_words(num_inputs: int, width: int, rng: random.Random) -> List[int]:
    """Draw *num_inputs* random bit-words of *width* patterns."""
    return [rng.getrandbits(width) for _ in range(num_inputs)]


def randomized_rounds(
    samples: int, width: Optional[int] = None, *, kernel=None
) -> Tuple[int, int, int]:
    """Round count, word width, and mask for a randomized sweep.

    At least *samples* patterns are covered in rounds of *width*
    patterns each; the default width is the active kernel's preference
    (64 for bigint, wider for numpy), capped at *samples* so narrow
    requests are not silently over-simulated.  Shared by
    :func:`equivalent`, :func:`find_counterexample`, and
    :func:`repro.plim.verify.verify_program`.
    """
    if width is None:
        width = min((kernel or get_kernel()).random_width, max(1, samples))
    rounds = max(1, (samples + width - 1) // width)
    return rounds, width, (1 << width) - 1


def equivalent(
    a: Mig,
    b: Mig,
    *,
    exhaustive_limit: Optional[int] = None,
    samples: int = 1024,
    width: Optional[int] = None,
    seed: int = 0xC0FFEE,
) -> bool:
    """Check functional equivalence of two MIGs.

    Up to ``exhaustive_limit`` inputs (default: :data:`MAX_EXHAUSTIVE_PIS`,
    the same ceiling :func:`truth_tables` enforces) the check is exhaustive
    and therefore exact, evaluated chunk-wise with early exit on the first
    differing window.

    Beyond the limit an exhaustive check is infeasible, and the function
    *refuses* rather than silently degrading: randomized bit-parallel
    checking (sound for inequivalence, probabilistic for equivalence) must
    be requested explicitly by passing ``exhaustive_limit`` — callers that
    opt in acknowledge the random fallback above their chosen cutoff.
    The randomized path draws rounds of *width* patterns (default: the
    active kernel's preferred word width) until *samples* are covered.
    """
    if a.num_pis != b.num_pis or a.num_pos != b.num_pos:
        return False
    explicit = exhaustive_limit is not None
    limit = exhaustive_limit if explicit else MAX_EXHAUSTIVE_PIS
    if limit > MAX_EXHAUSTIVE_PIS:
        raise ValueError(
            f"exhaustive_limit {limit} exceeds MAX_EXHAUSTIVE_PIS "
            f"({MAX_EXHAUSTIVE_PIS}); exhaustive simulation past 2^"
            f"{MAX_EXHAUSTIVE_PIS} patterns is not supported"
        )
    kernel = get_kernel()
    if a.num_pis <= limit:
        # Both graphs must be swept with identical chunking or the
        # zipped windows would not line up (the kernel may size chunks
        # per graph); take the smaller of the two preferences.
        chunk_bits = min(kernel.chunk_bits_for(a), kernel.chunk_bits_for(b))
        # Kernels may compare whole windows natively (numpy compares
        # output lane rows, skipping the int-conversion boundary).
        fast = getattr(kernel, "exhaustive_equivalent", None)
        if fast is not None:
            verdict = fast(a, b, chunk_bits)
            if verdict is not None:
                return verdict
        for (_, _, out_a), (_, _, out_b) in zip(
            exhaustive_chunks(a, chunk_bits, kernel=kernel),
            exhaustive_chunks(b, chunk_bits, kernel=kernel),
        ):
            if out_a != out_b:
                return False
        return True
    if not explicit:
        raise ValueError(
            f"{a.num_pis} inputs exceed the exhaustive-check ceiling of "
            f"{MAX_EXHAUSTIVE_PIS}; pass exhaustive_limit= explicitly to "
            "opt in to randomized (probabilistic) equivalence checking, "
            "or use find_counterexample() for a refutation-only search"
        )
    rng = random.Random(seed)
    rounds, width, mask = randomized_rounds(samples, width, kernel=kernel)
    for _ in range(rounds):
        words = random_words(a.num_pis, width, rng)
        if kernel.simulate(a, words, mask) != kernel.simulate(b, words, mask):
            return False
    return True


def find_counterexample(
    a: Mig,
    b: Mig,
    *,
    samples: int = 1024,
    width: Optional[int] = None,
    seed: int = 0xC0FFEE,
) -> Optional[Dict[str, int]]:
    """Return an input assignment on which the two MIGs differ, if found.

    Draws the same randomized rounds as :func:`equivalent`'s fallback
    path (*samples* patterns in rounds of *width*, default the kernel's
    preferred word width).
    """
    if a.num_pis != b.num_pis or a.num_pos != b.num_pos:
        raise ValueError("interface mismatch")
    kernel = get_kernel()
    rng = random.Random(seed)
    rounds, width, mask = randomized_rounds(samples, width, kernel=kernel)
    for _ in range(rounds):
        words = random_words(a.num_pis, width, rng)
        out_a = kernel.simulate(a, words, mask)
        out_b = kernel.simulate(b, words, mask)
        diff = 0
        for wa, wb in zip(out_a, out_b):
            diff |= wa ^ wb
        if diff:
            bit = (diff & -diff).bit_length() - 1
            return {
                a.pi_name(i): (words[i] >> bit) & 1 for i in range(a.num_pis)
            }
    return None
