"""Rebuild-style rewriting engine for MIGs.

Every rewriting *pass* reconstructs the live part of a graph into a fresh,
structurally hashed MIG, applying one local axiom at each node while the
translation map is built bottom-up.  The approach (popular in modern logic
synthesis libraries) trades a copy per pass for trivially maintained
invariants: the input graph is never mutated, dead nodes vanish
automatically, and node-creation identities (``Omega.M``) apply everywhere
for free.

The rewriting *scripts* of the reproduced paper (Algorithm 1, the PLiM
compiler script of [Soeken et al., DAC'16], and Algorithm 2, the
endurance-aware script) are sequences of these passes; they live in
:mod:`repro.core.rewriting`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from . import algebra
from .graph import Mig
from .signal import complement


class RebuildContext:
    """Read-only facts about the source graph available to a transform.

    ``xlat`` maps old node ids to new-graph signals; it is a flat list
    indexed by node id (``-1`` for not-yet-translated nodes) so the
    per-edge translation in the rebuild inner loop is a plain index.

    ``refs`` and ``levels`` are *lazy*: most passes (``Omega.M``,
    ``Omega.A``, the inverter propagations, polarity) never consult
    them, and a rebuild is cheap enough that an unconditional fanout /
    level traversal of the source graph would dominate its cost — the
    optimiser's search strategies apply thousands of candidate passes
    per run, so only the passes that actually price fanouts
    (``Omega.D``, ``Psi.C``) pay for them.
    """

    __slots__ = ("old", "xlat", "_refs")

    def __init__(self, old: Mig) -> None:
        self.old = old
        self.xlat: List[int] = []
        self._refs: Optional[List[int]] = None

    @property
    def refs(self) -> List[int]:
        """Fanout counts of the source graph (the graph's shared
        memoized list — do not mutate)."""
        if self._refs is None:
            self._refs = self.old._fanout_counts()
        return self._refs

    @property
    def levels(self) -> List[int]:
        """Per-node levels of the source graph."""
        return self.old.levels()

    def translated(self, old_signal: int) -> int:
        """New-graph signal corresponding to *old_signal*.

        Raises :class:`KeyError` for nodes with no translation yet (dead,
        not yet visited, or out of range), like the dict-backed map it
        replaced.
        """
        node = old_signal >> 1
        if not 0 <= node < len(self.xlat) or self.xlat[node] < 0:
            raise KeyError(f"node {node} has not been translated")
        return self.xlat[node] ^ (old_signal & 1)


#: A transform maps (new_mig, ctx, old_node, translated_children) -> signal.
Transform = Callable[[Mig, RebuildContext, int, Sequence[int]], int]


def rebuild(mig: Mig, transform: Optional[Transform] = None) -> Mig:
    """Reconstruct the live part of *mig*, applying *transform* per gate.

    With ``transform=None`` this is a cleanup + ``Omega.M`` +
    structural-hashing pass (the paper's plain ``Omega.M`` step).
    """
    new = Mig(mig.name)
    ctx = RebuildContext(mig)
    xlat = ctx.xlat
    xlat.extend([-1] * mig.num_nodes)
    xlat[0] = 0
    for idx, node in enumerate(mig.pis()):
        xlat[node] = new.add_pi(mig.pi_name(idx))
    add_maj = new.add_maj
    # flat_gates carries complement attributes as XOR masks (0 / -1);
    # `& 1` recovers the signal-level complement bit.
    if transform is None:
        for node, na, xa, nb, xb, nc, xc in mig.flat_gates():
            xlat[node] = add_maj(
                xlat[na] ^ (xa & 1), xlat[nb] ^ (xb & 1), xlat[nc] ^ (xc & 1)
            )
    else:
        for node, na, xa, nb, xb, nc, xc in mig.flat_gates():
            xlat[node] = transform(
                new,
                ctx,
                node,
                (
                    xlat[na] ^ (xa & 1),
                    xlat[nb] ^ (xb & 1),
                    xlat[nc] ^ (xc & 1),
                ),
            )
    for idx, s in enumerate(mig.pos()):
        new.add_po(xlat[s >> 1] ^ (s & 1), mig.po_name(idx))
    return new


# ----------------------------------------------------------------------
# Concrete passes
# ----------------------------------------------------------------------

def majority_pass(mig: Mig) -> Mig:
    """``Omega.M``: node-creation identities plus structural hashing."""
    return rebuild(mig)


def distributivity_rl_pass(mig: Mig) -> Mig:
    """``Omega.D(R->L)``: factor shared operand pairs out of fanin nodes."""

    def transform(new: Mig, ctx: RebuildContext, node: int, children) -> int:
        # children[i] is exactly the translation of the i-th old fanin,
        # so the residual-fanout map needs no further signal decoding.
        refs = ctx.refs
        old_children = ctx.old._fanins[node]
        residual = {
            children[0]: refs[old_children[0] >> 1],
            children[1]: refs[old_children[1] >> 1],
            children[2]: refs[old_children[2] >> 1],
        }

        def fanout_of(sig: int) -> int:
            return residual.get(sig, 2)

        result = algebra.try_distributivity_rl(
            new, children[0], children[1], children[2], fanout_of=fanout_of
        )
        if result is not None:
            return result
        return new.add_maj(*children)

    return rebuild(mig, transform)


def associativity_pass(mig: Mig) -> Mig:
    """``Omega.A``: swap through shared operands when sharing is exposed."""

    def transform(new: Mig, ctx: RebuildContext, node: int, children) -> int:
        result = algebra.try_associativity(new, *children)
        if result is not None:
            return result
        return new.add_maj(*children)

    return rebuild(mig, transform)


def complementary_associativity_pass(mig: Mig) -> Mig:
    """``Psi.C``: replace an inner complement of an outer operand."""

    def transform(new: Mig, ctx: RebuildContext, node: int, children) -> int:
        refs = ctx.refs
        old_children = ctx.old._fanins[node]
        residual = {
            children[0]: refs[old_children[0] >> 1],
            children[1]: refs[old_children[1] >> 1],
            children[2]: refs[old_children[2] >> 1],
        }
        result = algebra.try_complementary_associativity(
            new, *children, fanout_of=lambda sig: residual.get(sig, 2)
        )
        if result is not None:
            return result
        return new.add_maj(*children)

    return rebuild(mig, transform)


def inverter_propagation_pass(mig: Mig, *, handle_two: bool) -> Mig:
    """``Omega.I(R->L)``: normalise nodes with 2 (optional) or 3
    complemented fanins toward the RM3-ideal single-complement form."""

    def transform(new: Mig, ctx: RebuildContext, node: int, children) -> int:
        result = algebra.propagate_inverters(
            new, *children, handle_two=handle_two
        )
        if result is not None:
            return result
        return new.add_maj(*children)

    return rebuild(mig, transform)


def inverter_pairs_pass(mig: Mig) -> Mig:
    """``Omega.I(R->L)(1-3)``: full normalisation (2- and 3-complement)."""
    return inverter_propagation_pass(mig, handle_two=True)


def inverter_triples_pass(mig: Mig) -> Mig:
    """``Omega.I(R->L)`` rule 1 only: remove triple-complemented nodes."""
    return inverter_propagation_pass(mig, handle_two=False)


def rm3_gate_cost(
    fanin_bits,
    refs,
    is_gate,
    *,
    q_invert: int = 2,
    p_invert: int = 2,
    z_copy: int = 2,
    z_const: int = 1,
) -> int:
    """Estimated RM3 instructions to realise one majority gate.

    A static replay of the compiler's role pricing
    (:meth:`repro.plim.compiler.PlimCompiler._translate`): one RM3 plus
    repair bills.  *fanin_bits* is a sequence of ``(node, complement)``
    pairs; *refs* the graph's fanout counts; *is_gate* the gate
    predicate.  Constant fanins follow the machine semantics exactly —
    a constant edge of either polarity is never a complement violation,
    serves as the intrinsically inverted ``Q`` for free, and can
    constant-initialise the destination at *z_const* (cheaper than a
    *z_copy*).  The default weights mirror the default RM3 cost table;
    :func:`repro.opt.estimated_write_cost` re-prices through a target
    architecture's :class:`~repro.arch.CostModel`.

    This is the single pricing implementation shared by the
    write-cost objective and :func:`polarity_pass` — keep it that way,
    or the search layers drift apart.
    """
    complements = 0
    constants = 0
    bill = 1
    for node, bit in fanin_bits:
        if node == 0:
            constants += 1
        elif bit:
            complements += 1
    if complements == 0:
        if constants:
            constants -= 1  # one constant serves as the free Q
        else:
            bill += q_invert
    else:
        bill += (complements - 1) * p_invert
    for node, bit in fanin_bits:
        if node and not bit and refs[node] == 1 and is_gate(node):
            break
    else:
        bill += z_const if constants else z_copy
    return bill


def polarity_pass(
    mig: Mig,
    *,
    q_invert: int = 2,
    p_invert: int = 2,
    z_copy: int = 2,
    z_const: int = 1,
    sweeps: int = 4,
) -> Mig:
    """Polarity local search: re-choose each gate's stored phase.

    ``MAJ(~a, ~b, ~c) = ~MAJ(a, b, c)`` (the self-duality underlying
    ``Omega.I``) means every gate may be *stored* in either phase — with
    all fanin complements flipped and every reference complemented —
    without changing any output.  Which phase is cheaper on a PLiM
    machine is priced by :func:`rm3_gate_cost` (the shared static
    replay of the compiler's role assignment — see its docstring for
    the violation semantics, including the constant-fanin rules).

    The search sweeps nodes in topological order, flipping a gate's
    stored phase whenever the *exact* cost delta over the gate and its
    consumers is strictly negative, until a sweep makes no flip (or
    *sweeps* sweeps ran).  Flips change only edge attributes — the
    graph structure, fanout counts, and every output function are
    untouched, so the pass composes freely with the structural axioms.
    The default costs mirror the default RM3 cost table; the optimiser
    layer's objectives re-price candidate results under the actual
    target architecture either way.
    """
    gates = mig.flat_gates()
    refs = mig.fanout_counts()
    is_gate = mig.is_gate
    # Mutable per-gate fanin attributes: [child, complement-bit] triples,
    # plus the reverse map (consumer gate, slot) per child.
    fanin_bits: Dict[int, List[List[int]]] = {}
    consumers: Dict[int, List[tuple]] = {}
    for node, na, xa, nb, xb, nc, xc in gates:
        fanin_bits[node] = [[na, xa & 1], [nb, xb & 1], [nc, xc & 1]]
        for slot, child in enumerate((na, nb, nc)):
            consumers.setdefault(child, []).append((node, slot))

    def gate_cost(node: int) -> int:
        return rm3_gate_cost(
            fanin_bits[node], refs, is_gate,
            q_invert=q_invert, p_invert=p_invert,
            z_copy=z_copy, z_const=z_const,
        )

    def toggle(node: int) -> None:
        for entry in fanin_bits[node]:
            entry[1] ^= 1
        for consumer, slot in consumers.get(node, ()):
            fanin_bits[consumer][slot][1] ^= 1

    flipped: Dict[int, int] = {}
    order = [record[0] for record in gates]
    for _ in range(max(1, sweeps)):
        changed = False
        for node in order:
            affected = {node}
            affected.update(c for c, _ in consumers.get(node, ()))
            before = sum(gate_cost(g) for g in affected)
            toggle(node)
            if sum(gate_cost(g) for g in affected) < before:
                flipped[node] = flipped.get(node, 0) ^ 1
                changed = True
            else:
                toggle(node)
        if not changed:
            break
    if not any(flipped.values()):
        return rebuild(mig)

    def transform(new: Mig, ctx: RebuildContext, node: int, children) -> int:
        if flipped.get(node):
            return complement(
                new.add_maj(*(complement(s) for s in children))
            )
        return new.add_maj(*children)

    return rebuild(mig, transform)


#: Registry used by scripts, the CLI, and the ablation benchmarks.
#: ``P`` (polarity re-phasing) is not part of the paper's scripts; the
#: cost-guided strategies of :mod:`repro.opt` use it as an extra
#: candidate.
PASSES: Dict[str, Callable[[Mig], Mig]] = {
    "M": majority_pass,
    "D_rl": distributivity_rl_pass,
    "A": associativity_pass,
    "Psi_C": complementary_associativity_pass,
    "I_rl_1_3": inverter_pairs_pass,
    "I_rl": inverter_triples_pass,
    "P": polarity_pass,
}


def _same_structure(a: Mig, b: Mig) -> bool:
    """Structural identity of two rebuild results (same ids, edges, POs)."""
    return (
        a._fanins == b._fanins
        and a._pis == b._pis
        and a._pos == b._pos
    )


def apply_script(mig: Mig, steps: Sequence[str], cycles: int = 1) -> Mig:
    """Run the named passes *cycles* times in order and clean up.

    *steps* is a sequence of keys into :data:`PASSES`; unknown names raise
    ``KeyError`` immediately (before any work is done).  Scripts converge
    quickly in practice, so cycling stops early once a full cycle leaves
    the graph structurally unchanged (every later cycle of the same
    deterministic passes would reproduce it bit for bit).
    """
    for name in steps:
        if name not in PASSES:
            raise KeyError(f"unknown rewriting pass {name!r}")
    result = mig
    for _ in range(cycles):
        before = result
        for name in steps:
            result = PASSES[name](result)
        if _same_structure(before, result):
            break
    return result.cleanup()
