"""Rebuild-style rewriting engine for MIGs.

Every rewriting *pass* reconstructs the live part of a graph into a fresh,
structurally hashed MIG, applying one local axiom at each node while the
translation map is built bottom-up.  The approach (popular in modern logic
synthesis libraries) trades a copy per pass for trivially maintained
invariants: the input graph is never mutated, dead nodes vanish
automatically, and node-creation identities (``Omega.M``) apply everywhere
for free.

The rewriting *scripts* of the reproduced paper (Algorithm 1, the PLiM
compiler script of [Soeken et al., DAC'16], and Algorithm 2, the
endurance-aware script) are sequences of these passes; they live in
:mod:`repro.core.rewriting`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from . import algebra
from .graph import Mig
from .signal import node_of


@dataclass
class RebuildContext:
    """Read-only facts about the source graph available to a transform.

    ``xlat`` maps old node ids to new-graph signals; it is a flat list
    indexed by node id (``-1`` for not-yet-translated nodes) so the
    per-edge translation in the rebuild inner loop is a plain index.
    """

    old: Mig
    refs: List[int]
    levels: List[int]
    xlat: List[int] = field(default_factory=list)

    def translated(self, old_signal: int) -> int:
        """New-graph signal corresponding to *old_signal*.

        Raises :class:`KeyError` for nodes with no translation yet (dead,
        not yet visited, or out of range), like the dict-backed map it
        replaced.
        """
        node = old_signal >> 1
        if not 0 <= node < len(self.xlat) or self.xlat[node] < 0:
            raise KeyError(f"node {node} has not been translated")
        return self.xlat[node] ^ (old_signal & 1)


#: A transform maps (new_mig, ctx, old_node, translated_children) -> signal.
Transform = Callable[[Mig, RebuildContext, int, Sequence[int]], int]


def rebuild(mig: Mig, transform: Optional[Transform] = None) -> Mig:
    """Reconstruct the live part of *mig*, applying *transform* per gate.

    With ``transform=None`` this is a cleanup + ``Omega.M`` +
    structural-hashing pass (the paper's plain ``Omega.M`` step).
    """
    new = Mig(mig.name)
    ctx = RebuildContext(old=mig, refs=mig.fanout_counts(), levels=mig.levels())
    xlat = ctx.xlat
    xlat.extend([-1] * mig.num_nodes)
    xlat[0] = 0
    for idx, node in enumerate(mig.pis()):
        xlat[node] = new.add_pi(mig.pi_name(idx))
    add_maj = new.add_maj
    # flat_gates carries complement attributes as XOR masks (0 / -1);
    # `& 1` recovers the signal-level complement bit.
    if transform is None:
        for node, na, xa, nb, xb, nc, xc in mig.flat_gates():
            xlat[node] = add_maj(
                xlat[na] ^ (xa & 1), xlat[nb] ^ (xb & 1), xlat[nc] ^ (xc & 1)
            )
    else:
        for node, na, xa, nb, xb, nc, xc in mig.flat_gates():
            xlat[node] = transform(
                new,
                ctx,
                node,
                (
                    xlat[na] ^ (xa & 1),
                    xlat[nb] ^ (xb & 1),
                    xlat[nc] ^ (xc & 1),
                ),
            )
    for idx, s in enumerate(mig.pos()):
        new.add_po(xlat[s >> 1] ^ (s & 1), mig.po_name(idx))
    return new


# ----------------------------------------------------------------------
# Concrete passes
# ----------------------------------------------------------------------

def majority_pass(mig: Mig) -> Mig:
    """``Omega.M``: node-creation identities plus structural hashing."""
    return rebuild(mig)


def distributivity_rl_pass(mig: Mig) -> Mig:
    """``Omega.D(R->L)``: factor shared operand pairs out of fanin nodes."""

    def transform(new: Mig, ctx: RebuildContext, node: int, children) -> int:
        old_children = ctx.old.fanins(node)
        residual = {
            ctx.translated(s): ctx.refs[node_of(s)] for s in old_children
        }

        def fanout_of(sig: int) -> int:
            return residual.get(sig, 2)

        result = algebra.try_distributivity_rl(
            new, children[0], children[1], children[2], fanout_of=fanout_of
        )
        if result is not None:
            return result
        return new.add_maj(*children)

    return rebuild(mig, transform)


def associativity_pass(mig: Mig) -> Mig:
    """``Omega.A``: swap through shared operands when sharing is exposed."""

    def transform(new: Mig, ctx: RebuildContext, node: int, children) -> int:
        result = algebra.try_associativity(new, *children)
        if result is not None:
            return result
        return new.add_maj(*children)

    return rebuild(mig, transform)


def complementary_associativity_pass(mig: Mig) -> Mig:
    """``Psi.C``: replace an inner complement of an outer operand."""

    def transform(new: Mig, ctx: RebuildContext, node: int, children) -> int:
        old_children = ctx.old.fanins(node)
        residual = {
            ctx.translated(s): ctx.refs[node_of(s)] for s in old_children
        }
        result = algebra.try_complementary_associativity(
            new, *children, fanout_of=lambda sig: residual.get(sig, 2)
        )
        if result is not None:
            return result
        return new.add_maj(*children)

    return rebuild(mig, transform)


def inverter_propagation_pass(mig: Mig, *, handle_two: bool) -> Mig:
    """``Omega.I(R->L)``: normalise nodes with 2 (optional) or 3
    complemented fanins toward the RM3-ideal single-complement form."""

    def transform(new: Mig, ctx: RebuildContext, node: int, children) -> int:
        result = algebra.propagate_inverters(
            new, *children, handle_two=handle_two
        )
        if result is not None:
            return result
        return new.add_maj(*children)

    return rebuild(mig, transform)


def inverter_pairs_pass(mig: Mig) -> Mig:
    """``Omega.I(R->L)(1-3)``: full normalisation (2- and 3-complement)."""
    return inverter_propagation_pass(mig, handle_two=True)


def inverter_triples_pass(mig: Mig) -> Mig:
    """``Omega.I(R->L)`` rule 1 only: remove triple-complemented nodes."""
    return inverter_propagation_pass(mig, handle_two=False)


#: Registry used by scripts, the CLI, and the ablation benchmarks.
PASSES: Dict[str, Callable[[Mig], Mig]] = {
    "M": majority_pass,
    "D_rl": distributivity_rl_pass,
    "A": associativity_pass,
    "Psi_C": complementary_associativity_pass,
    "I_rl_1_3": inverter_pairs_pass,
    "I_rl": inverter_triples_pass,
}


def _same_structure(a: Mig, b: Mig) -> bool:
    """Structural identity of two rebuild results (same ids, edges, POs)."""
    return (
        a._fanins == b._fanins
        and a._pis == b._pis
        and a._pos == b._pos
    )


def apply_script(mig: Mig, steps: Sequence[str], cycles: int = 1) -> Mig:
    """Run the named passes *cycles* times in order and clean up.

    *steps* is a sequence of keys into :data:`PASSES`; unknown names raise
    ``KeyError`` immediately (before any work is done).  Scripts converge
    quickly in practice, so cycling stops early once a full cycle leaves
    the graph structurally unchanged (every later cycle of the same
    deterministic passes would reproduce it bit for bit).
    """
    for name in steps:
        if name not in PASSES:
            raise KeyError(f"unknown rewriting pass {name!r}")
    result = mig
    for _ in range(cycles):
        before = result
        for name in steps:
            result = PASSES[name](result)
        if _same_structure(before, result):
            break
    return result.cleanup()
