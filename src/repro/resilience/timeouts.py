"""Per-stage wall-clock timeouts: spec, resolution, and enforcement.

A wedged compile must fail fast, not eat a CI job's six-hour default.
This module gives every pipeline stage a wall-clock budget:

* :class:`Timeouts` — the parsed budget: a default limit plus per-stage
  overrides, from a spec string like ``"30"`` (every stage) or
  ``"compile=120,verify=30,job=600"``.
* :func:`resolve_timeouts` — the uniform **flag > environment >
  default** precedence against ``$REPRO_TIMEOUT``, mirroring
  ``resolve_cache_dir`` / ``resolve_architecture``.
* :func:`time_limit` — the enforcement context: ``SIGALRM``-based, so a
  stage stuck in a C extension or a tight loop is still interrupted.
  Raises :class:`~repro.resilience.errors.StageTimeoutError` (permanent:
  the stages are deterministic, so a blown budget would blow again).

Enforcement is best-effort by construction: ``SIGALRM`` exists only on
Unix and only fires on the main thread, so :func:`time_limit` degrades
to a no-op elsewhere — worker *processes* run jobs on their main thread,
which is exactly where hangs need interrupting, and the parallel
supervisor additionally enforces the ``job`` budget from the parent side
(which needs no signals at all).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Tuple

from .errors import StageTimeoutError

#: Environment variable holding the ambient timeout spec.
TIMEOUT_ENV_VAR = "REPRO_TIMEOUT"

#: Budget names a spec may address: the four pipeline stages plus the
#: whole-job budget the parallel supervisor enforces per worker job.
STAGE_KEYS: Tuple[str, ...] = ("source", "rewrite", "compile", "verify", "job")


@dataclass(frozen=True)
class Timeouts:
    """A wall-clock budget per pipeline stage.

    ``default`` applies to any stage without an explicit entry (``None``
    = unlimited); ``stages`` holds ``(name, seconds)`` overrides.  The
    ``job`` budget is only ever explicit — a bare-number spec bounds
    each *stage*, not the whole job, so ``"30"`` cannot silently kill a
    five-config job that legitimately needs five compiles.
    """

    default: Optional[float] = None
    stages: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def parse(cls, spec: "str | float | Timeouts | None") -> "Timeouts":
        """Parse a timeout spec.

        Grammar: ``SPEC := ENTRY ("," ENTRY)*``, ``ENTRY :=
        [STAGE "="] SECONDS`` — a bare number sets the per-stage
        default, named entries override one budget.  Numbers are
        seconds; zero or negative means "unlimited" for that entry.
        """
        if spec is None:
            return cls()
        if isinstance(spec, Timeouts):
            return spec
        if isinstance(spec, (int, float)):
            return cls(default=float(spec) if spec > 0 else None)
        default: Optional[float] = None
        stages = {}
        for entry in str(spec).split(","):
            entry = entry.strip()
            if not entry:
                continue
            name, eq, value = entry.partition("=")
            try:
                seconds = float(value if eq else name)
            except ValueError:
                raise ValueError(
                    f"bad timeout entry {entry!r}: expected "
                    "[STAGE=]SECONDS (e.g. '30' or 'compile=120')"
                ) from None
            if eq:
                key = name.strip()
                if key not in STAGE_KEYS:
                    raise ValueError(
                        f"unknown timeout stage {key!r}; "
                        f"choose one of: {', '.join(STAGE_KEYS)}"
                    )
                stages[key] = seconds
            else:
                default = seconds
        if default is not None and default <= 0:
            default = None
        return cls(
            default=default,
            stages=tuple(sorted((k, v) for k, v in stages.items())),
        )

    def limit(self, stage: str) -> Optional[float]:
        """The budget for *stage* in seconds, or ``None`` (unlimited).

        The ``job`` budget never inherits the default (see class doc).
        """
        for name, seconds in self.stages:
            if name == stage:
                return seconds if seconds > 0 else None
        if stage == "job":
            return None
        return self.default

    def spec(self) -> Optional[str]:
        """The canonical spec string (``None`` when unlimited) — what
        :class:`repro.flow.SessionSpec` ships to worker processes."""
        parts = []
        if self.default is not None:
            parts.append(f"{self.default:g}")
        parts.extend(f"{name}={seconds:g}" for name, seconds in self.stages)
        return ",".join(parts) if parts else None

    def __bool__(self) -> bool:
        return self.default is not None or bool(self.stages)


def timeouts_from_env() -> Optional[str]:
    """The ambient ``$REPRO_TIMEOUT`` spec string, if set."""
    value = os.environ.get(TIMEOUT_ENV_VAR, "").strip()
    return value or None


def resolve_timeouts(
    explicit: "str | float | Timeouts | None" = None,
) -> Timeouts:
    """Uniform budget resolution: explicit > ``$REPRO_TIMEOUT`` > none."""
    if explicit is not None:
        return Timeouts.parse(explicit)
    return Timeouts.parse(timeouts_from_env())


def alarm_capable() -> bool:
    """Whether :func:`time_limit` can actually arm a timer here:
    ``SIGALRM`` exists and we are on the process's main thread."""
    return hasattr(signal, "SIGALRM") and (
        threading.current_thread() is threading.main_thread()
    )


@contextmanager
def time_limit(
    seconds: Optional[float], *, stage: str = "stage", job: str = ""
):
    """Bound the block to *seconds* of wall-clock time.

    On expiry a :class:`~repro.resilience.errors.StageTimeoutError` is
    raised *inside* the block.  ``None``/non-positive budgets and
    alarm-incapable contexts (non-main thread, non-Unix) are no-op
    scopes.  Nested limits cooperate: the outer timer is suspended and
    re-armed with its remaining budget when the inner scope exits.
    """
    if not seconds or seconds <= 0 or not alarm_capable():
        yield
        return

    def _expire(signum, frame):
        raise StageTimeoutError(stage, seconds, job)

    previous_handler = signal.getsignal(signal.SIGALRM)
    start = time.monotonic()
    prev_remaining, _ = signal.setitimer(signal.ITIMER_REAL, seconds)
    signal.signal(signal.SIGALRM, _expire)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous_handler)
        if prev_remaining:
            elapsed = time.monotonic() - start
            signal.setitimer(
                signal.ITIMER_REAL, max(1e-3, prev_remaining - elapsed)
            )
