"""Deterministic retry policy: exponential backoff with keyed jitter.

The supervisor (:func:`repro.analysis.runner.run_matrix`) retries
transiently-failed jobs through one :class:`RetryPolicy`.  Two design
constraints shape it:

* **Determinism** — the harness's artefacts are byte-identical across
  runs, and its resilience layer should be too: jitter is derived from a
  SHA-256 over ``(key, attempt)`` instead of a random source, so the
  same job retried in the same run sleeps the same amount every time
  (and tests can assert exact delays).
* **Boundedness** — delays grow exponentially but saturate at
  :attr:`RetryPolicy.max_delay`, and the attempt budget converts the
  final transient failure into a permanent
  :class:`~repro.resilience.errors.RetriesExhaustedError`.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple, Union

from .errors import RetriesExhaustedError, classify_transient


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transiently-failing job, and how fast.

    ``delay(attempt)`` for attempts ``1, 2, 3, …`` follows
    ``base * factor**(attempt-1)`` capped at ``max_delay``, stretched by
    a deterministic jitter in ``[0, jitter]`` (a fraction of the base
    delay) keyed on ``(key, attempt)`` — so concurrent retries of
    different jobs decorrelate without randomness.
    """

    attempts: int = 3
    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25

    def delay(self, attempt: int, key: Tuple = ()) -> float:
        """Seconds to wait before retry number *attempt* (1-based)."""
        raw = self.base * self.factor ** max(0, attempt - 1)
        raw = min(raw, self.max_delay)
        if not self.jitter:
            return raw
        digest = hashlib.sha256(repr((key, attempt)).encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return raw * (1.0 + self.jitter * unit)


#: The supervisor's default: three attempts, 50 ms first backoff.
DEFAULT_POLICY = RetryPolicy()

#: Environment override for the retry attempt budget.
RETRY_ENV_VAR = "REPRO_RETRIES"


def resolve_retry(
    attempts: Union[int, str, None] = None,
) -> RetryPolicy:
    """Resolve the retry budget: flag > ``$REPRO_RETRIES`` > default.

    Same precedence contract as every other session knob (backend,
    cache dir, timeouts): an explicit *attempts* wins, else the
    environment variable, else :data:`DEFAULT_POLICY`.  The value is
    the attempt budget; backoff shape stays the default's.  Malformed
    or non-positive values raise :class:`ValueError` (fail fast, like
    ``Timeouts.parse``).
    """
    if attempts is None:
        raw = os.environ.get(RETRY_ENV_VAR, "").strip()
        if not raw:
            return DEFAULT_POLICY
        attempts = raw
    try:
        count = int(attempts)
    except (TypeError, ValueError):
        raise ValueError(
            f"invalid retry budget {attempts!r} (expected an integer "
            f"number of attempts)"
        ) from None
    if count < 1:
        raise ValueError(f"retry budget must be >= 1, got {count}")
    if count == DEFAULT_POLICY.attempts:
        return DEFAULT_POLICY
    return replace(DEFAULT_POLICY, attempts=count)


def call_with_retry(
    fn: Callable,
    *,
    policy: RetryPolicy = DEFAULT_POLICY,
    key: Tuple = (),
    job: str = "",
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Run ``fn()`` under *policy*, retrying transient failures.

    Permanent failures propagate on first occurrence; transient ones are
    retried after ``policy.delay(attempt, key)`` seconds, with
    *on_retry* (if given) observing each ``(attempt, error)`` before the
    backoff sleep.  When the budget is exhausted the last transient
    error is wrapped in a permanent
    :class:`~repro.resilience.errors.RetriesExhaustedError`.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except BaseException as error:
            if not classify_transient(error):
                raise
            if attempt >= policy.attempts:
                raise RetriesExhaustedError(job or repr(key), attempt, error)
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(policy.delay(attempt, key))
