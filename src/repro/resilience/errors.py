"""The :class:`ReproError` taxonomy: transient versus permanent failures.

Every recovery decision in the execution stack — retry or give up,
respawn or abort, degrade or fail — reduces to one question: *could the
same work succeed if tried again?*  This module answers it uniformly:

* :class:`TransientFault` — the failure is environmental (a crashed
  worker process, a torn cache entry, a filesystem hiccup, an injected
  chaos fault).  The supervisor retries these with exponential backoff.
* :class:`PermanentFault` — the failure is deterministic (bad input, a
  verification mismatch, an exceeded stage timeout).  Retrying would
  reproduce it; the supervisor surfaces these immediately.

Exceptions raised by third-party code are classified by
:func:`classify_transient`; ``repro``'s own code raises subclasses of
:class:`ReproError`, whose :attr:`~ReproError.transient` attribute is
authoritative.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool


class ReproError(Exception):
    """Base of every harness-raised failure.

    :attr:`transient` drives the supervisor's retry decision; subclasses
    pin it, and :func:`classify_transient` consults it first.
    """

    #: Whether retrying the failed work could plausibly succeed.
    transient = False


class TransientFault(ReproError):
    """An environmental failure worth retrying (crash, I/O, chaos)."""

    transient = True


class PermanentFault(ReproError):
    """A deterministic failure; retrying would reproduce it."""

    transient = False


class WorkerCrashError(TransientFault):
    """A worker process died mid-job (signal, ``os._exit``, OOM kill).

    Raised by the supervisor when a :class:`BrokenProcessPool` takes a
    job down; the pool is respawned and the job retried.
    """

    def __init__(self, job: str, attempt: int, detail: str = "") -> None:
        self.job = job
        self.attempt = attempt
        super().__init__(
            f"worker running {job!r} died (attempt {attempt})"
            + (f": {detail}" if detail else "")
        )


class StageTimeoutError(PermanentFault):
    """A pipeline stage exceeded its wall-clock budget.

    Permanent by design: the stages are deterministic computations, so a
    stage that blows its budget once will blow it again — the point of
    the timeout is to fail fast instead of wedging the sweep.
    """

    def __init__(self, stage: str, seconds: float, job: str = "") -> None:
        self.stage = stage
        self.seconds = seconds
        self.job = job
        where = f" while running {job!r}" if job else ""
        super().__init__(
            f"stage {stage!r} exceeded its {seconds:g}s timeout{where}"
        )


class RetriesExhaustedError(PermanentFault):
    """A job kept failing transiently until the retry budget ran out.

    Carries the final underlying failure as ``__cause__``; once the
    budget is spent the failure is treated as permanent.
    """

    def __init__(self, job: str, attempts: int, last: BaseException) -> None:
        self.job = job
        self.attempts = attempts
        super().__init__(
            f"job {job!r} failed {attempts} time(s); giving up "
            f"(last error: {type(last).__name__}: {last})"
        )
        self.__cause__ = last


class KernelDegradedError(TransientFault):
    """A simulation-kernel backend failed on a job.

    Normally never surfaces: :mod:`repro.mig.kernel` catches the backend
    failure itself and demotes the job to the bigint reference kernel,
    recording a degradation event.  The class exists so injected kernel
    faults have a typed identity in event logs and tests.
    """


class FaultInjected(TransientFault):
    """Raised (or acted on) by the deterministic fault-injection harness.

    See :mod:`repro.resilience.faults`; real recovery paths are
    exercised by these in tests and the CI chaos lane.
    """

    def __init__(self, point: str, job: str = "") -> None:
        self.point = point
        self.job = job
        where = f" on job {job!r}" if job else ""
        super().__init__(f"injected fault at {point!r}{where}")


#: Exception types from outside the taxonomy that are worth retrying:
#: process-boundary and I/O failures whose cause is environmental.
_TRANSIENT_TYPES = (
    BrokenProcessPool,
    ConnectionError,
    EOFError,
    InterruptedError,
    OSError,
)

#: Never retried, whatever raised them: interpreter-level resource
#: exhaustion and user interrupts are not environmental hiccups.
_FATAL_TYPES = (KeyboardInterrupt, MemoryError, SystemExit)


def classify_transient(error: BaseException) -> bool:
    """Whether *error* is worth retrying.

    :class:`ReproError` subclasses are authoritative via their
    :attr:`~ReproError.transient` flag; foreign exceptions are
    classified structurally — process/I-O failures are transient,
    interrupts and resource exhaustion are fatal, and everything else
    (``ValueError`` and friends: deterministic bugs or bad input) is
    permanent.
    """
    if isinstance(error, ReproError):
        return error.transient
    if isinstance(error, _FATAL_TYPES):
        return False
    return isinstance(error, _TRANSIENT_TYPES)
