"""Deterministic fault injection: ``$REPRO_FAULTS``.

Recovery code that is only exercised by mocks is recovery code that does
not work.  This module plants *real* faults — a worker process calling
``os._exit`` mid-job, a torn cache entry, a numpy kernel blowing up — at
fixed injection points, driven by a declarative spec:

    REPRO_FAULTS="worker_crash:job=mult4:count=1,cache_corrupt:count=1"

Grammar
-------
``SPEC := DIRECTIVE ("," DIRECTIVE)*`` and
``DIRECTIVE := POINT (":" KEY "=" VALUE)*`` with points

========================  =====================================================
``worker_crash``          worker entry: ``os._exit(13)`` — kills the process,
                          breaking the pool (no Python cleanup runs)
``worker_hang``           worker entry: sleep ``seconds`` (default 3600) —
                          exercises stage/job timeouts
``job_fail``              worker entry: raise a transient (default) or
                          permanent fault, per ``mode=`` — exercises the
                          retry taxonomy without killing anything
``cache_corrupt``         disk-cache load: the stored blob is garbled before
                          decoding — must degrade to a miss, never to data
``cache_io``              cache I/O: an ``OSError`` in the disk-cache store
                          (the entry must simply not persist) or in a
                          remote-cache request (the client must degrade
                          to direct disk access)
``kernel_fail``           numpy-kernel dispatch: raise inside ``simulate`` —
                          must demote the job one step down the
                          numpy-batch → numpy → bigint chain (each
                          engine's dispatch checks the hook, so
                          ``count=2`` walks the whole chain)
========================  =====================================================

Keys: ``job=NAME`` restricts a directive to one benchmark/source;
``count=N`` caps total fires (default 1); ``seconds=``/``mode=`` as
above.

Determinism across processes
----------------------------
A fault budget must hold globally, not per process: a crashed worker's
*retry* runs in a fresh process that re-reads ``$REPRO_FAULTS``, and
with a per-process counter it would crash again, forever.  Fires are
therefore claimed through a filesystem **ledger**: one ``O_EXCL``-created
slot file per fire under ``$REPRO_FAULTS_LEDGER`` (auto-created and
exported when unset, so pool workers inherit it).  Exactly one process
wins each slot — ``count=1`` means one fire per ledger, whoever gets
there first, and a retried job sails through.
"""

from __future__ import annotations

import os
import re
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from . import events
from .errors import FaultInjected, PermanentFault

#: Environment variable holding the fault spec.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Environment variable naming the shared fire ledger directory.
LEDGER_ENV_VAR = "REPRO_FAULTS_LEDGER"

#: The valid injection points (see module doc).
POINTS: Tuple[str, ...] = (
    "worker_crash",
    "worker_hang",
    "job_fail",
    "cache_corrupt",
    "cache_io",
    "kernel_fail",
)

#: Exit status of an injected worker crash (visible in supervisor logs).
CRASH_EXIT_CODE = 13


@dataclass(frozen=True)
class FaultDirective:
    """One parsed directive of a ``$REPRO_FAULTS`` spec."""

    point: str
    job: Optional[str] = None
    count: int = 1
    seconds: float = 3600.0
    mode: str = "transient"
    #: Position in the spec — distinguishes two otherwise-identical
    #: directives in the ledger.
    index: int = 0

    def matches(self, job: Optional[str]) -> bool:
        return self.job is None or self.job == job

    def ledger_id(self) -> str:
        tag = f"{self.index}-{self.point}"
        if self.job is not None:
            tag += "-" + re.sub(r"[^A-Za-z0-9_.-]", "_", self.job)[:48]
        return tag


def parse_faults(spec: str) -> List[FaultDirective]:
    """Parse a spec string into directives (see module doc for grammar)."""
    directives: List[FaultDirective] = []
    for index, chunk in enumerate(spec.split(",")):
        chunk = chunk.strip()
        if not chunk:
            continue
        fields = chunk.split(":")
        point = fields[0].strip()
        if point not in POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; "
                f"choose one of: {', '.join(POINTS)}"
            )
        kwargs = {}
        for field in fields[1:]:
            key, eq, value = field.partition("=")
            key = key.strip()
            if not eq or key not in ("job", "count", "seconds", "mode"):
                raise ValueError(
                    f"bad fault field {field!r} in {chunk!r}; expected "
                    "job=NAME, count=N, seconds=S, or mode=MODE"
                )
            if key == "count":
                kwargs["count"] = int(value)
            elif key == "seconds":
                kwargs["seconds"] = float(value)
            elif key == "mode":
                if value not in ("transient", "permanent"):
                    raise ValueError(
                        f"bad fault mode {value!r}; expected "
                        "'transient' or 'permanent'"
                    )
                kwargs["mode"] = value
            else:
                kwargs["job"] = value
        directives.append(FaultDirective(point=point, index=index, **kwargs))
    return directives


class FaultPlan:
    """A parsed spec plus the shared fire ledger claiming its budget."""

    def __init__(
        self,
        directives: List[FaultDirective],
        ledger: Optional[str] = None,
    ) -> None:
        self.directives = directives
        if ledger is not None:
            # A missing ledger directory must not silently demote the
            # budget to per-process counters — that re-fires a spent
            # count=1 crash in every retried worker, forever.
            try:
                os.makedirs(ledger, exist_ok=True)
            except OSError:
                ledger = None
        self.ledger = ledger
        self._lock = threading.Lock()
        # In-memory fallback when no ledger directory is usable: the
        # budget then only holds within this process.
        self._local_fires: dict = {}

    @classmethod
    def parse(cls, spec: str, ledger: Optional[str] = None) -> "FaultPlan":
        return cls(parse_faults(spec), ledger=ledger)

    def _claim(self, directive: FaultDirective) -> bool:
        """Atomically claim one of the directive's fire slots.

        Exactly one process system-wide wins each slot file; a spent
        budget (every slot claimed) returns ``False``.
        """
        if self.ledger is not None:
            tag = directive.ledger_id()
            usable = True
            for slot in range(directive.count):
                path = os.path.join(self.ledger, f"{tag}.{slot}")
                try:
                    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                    os.close(fd)
                    return True
                except FileExistsError:
                    continue
                except OSError:
                    usable = False  # fall through to the local budget
                    break
            if usable:
                # Every slot is claimed: the budget is globally spent.
                # Falling through to the per-process counter here would
                # re-fire the fault in every retried worker, forever.
                return False
        with self._lock:
            fired = self._local_fires.get(directive.index, 0)
            if fired >= directive.count:
                return False
            self._local_fires[directive.index] = fired + 1
            return True

    def fire(
        self, point: str, job: Optional[str] = None
    ) -> Optional[FaultDirective]:
        """Claim and return a directive due at *point* for *job*, if any.

        Every fire is recorded as a ``fault_injected`` event before the
        site acts on it (so even a crash leaves a parent-side trace when
        the parent shares the event log, and tests can assert fires).
        """
        for directive in self.directives:
            if directive.point != point or not directive.matches(job):
                continue
            if self._claim(directive):
                events.record(
                    "fault_injected",
                    job=job,
                    point=point,
                    directive=directive.ledger_id(),
                )
                return directive
        return None


# -- ambient plan ------------------------------------------------------

_CACHE_LOCK = threading.Lock()
_CACHED: Optional[Tuple[Tuple[str, Optional[str]], FaultPlan]] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan described by ``$REPRO_FAULTS``, or ``None``.

    The parsed plan is cached per ``(spec, ledger)`` environment value.
    When a spec is active but no ledger is configured, a fresh ledger
    directory is created and **exported** through ``$REPRO_FAULTS_LEDGER``
    so worker processes spawned afterwards share this process's fire
    budget — the runner touches this before building any pool.
    """
    global _CACHED
    spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
    if not spec:
        return None
    ledger = os.environ.get(LEDGER_ENV_VAR, "").strip() or None
    with _CACHE_LOCK:
        if _CACHED is not None and _CACHED[0] == (spec, ledger):
            return _CACHED[1]
        if ledger is None:
            try:
                ledger = tempfile.mkdtemp(prefix="repro-faults-")
                os.environ[LEDGER_ENV_VAR] = ledger
            except OSError:
                ledger = None  # in-memory budget only
        plan = FaultPlan.parse(spec, ledger=ledger)
        _CACHED = ((spec, ledger), plan)
        return plan


def inject(point: str, job: Optional[str] = None) -> Optional[FaultDirective]:
    """Fire-or-pass at an injection point (cheap no-op without a spec).

    Returns the claimed directive for the *site* to act on — this module
    never raises or exits by itself except through the dedicated helpers
    below.
    """
    plan = active_plan()
    if plan is None:
        return None
    return plan.fire(point, job)


def worker_entry(job: Optional[str]) -> None:
    """The worker-entrypoint injection site (crash, hang, job failure).

    Called at the top of every job execution — in pool workers *and* in
    the serial path, so ``job_fail`` directives exercise the retry
    taxonomy identically in both.  ``worker_crash`` uses ``os._exit``:
    no exception, no cleanup, exactly what a segfault or OOM kill looks
    like to the pool.
    """
    if inject("worker_crash", job) is not None:
        os._exit(CRASH_EXIT_CODE)
    directive = inject("worker_hang", job)
    if directive is not None:
        time.sleep(directive.seconds)
    _job_fail(job)


def serial_entry(job: Optional[str]) -> None:
    """The serial-path injection site: job failures only.

    ``worker_crash``/``worker_hang`` target *worker processes*, where a
    supervisor survives them; fired in the driving process they would
    kill or wedge the whole run — a catastrophe, not a recovery path —
    so the serial entry only exercises the retry taxonomy.
    """
    _job_fail(job)


def _job_fail(job: Optional[str]) -> None:
    directive = inject("job_fail", job)
    if directive is not None:
        if directive.mode == "permanent":
            raise PermanentFault(
                f"injected permanent fault on job {job!r}"
            )
        raise FaultInjected("job_fail", job or "")


def corrupt_blob(blob: bytes, job: Optional[str]) -> bytes:
    """The disk-cache *load* injection site: maybe garble *blob*.

    Flips bytes in the middle of the payload so the entry's integrity
    digest no longer matches — the loader must treat it as a miss.
    """
    if inject("cache_corrupt", job) is None:
        return blob
    middle = len(blob) // 2
    return blob[:middle] + bytes(b ^ 0xFF for b in blob[middle:middle + 8]) + blob[middle + 8:]


def store_io_fault(job: Optional[str]) -> None:
    """The disk-cache *store* injection site: maybe raise ``OSError``."""
    if inject("cache_io", job) is not None:
        raise OSError("injected cache I/O fault")


def remote_io_fault(job: Optional[str]) -> None:
    """The remote-cache *request* injection site: maybe raise ``OSError``.

    Shares the ``cache_io`` point with the disk store — both are "the
    cache's I/O path failed" — but fires in the
    :class:`repro.cachesvc.RemoteCache` client before the socket, so
    the client must degrade to direct disk access exactly as it would
    for a dead server.
    """
    if inject("cache_io", job) is not None:
        raise OSError("injected remote-cache I/O fault")


def kernel_fault(job: Optional[str] = None) -> None:
    """The kernel-dispatch injection site: maybe raise inside simulate."""
    if inject("kernel_fail", job) is not None:
        raise FaultInjected("kernel_fail", job or "")
