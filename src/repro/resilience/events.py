"""Process-local log of resilience events (retries, degradations, …).

Recovery actions must leave a trace: the run manifest's audit log, the
worker counters in ``BENCH_suite.json``, and the fault-injection tests
all need to observe *that* a retry happened, *which* job degraded its
kernel, and *why*.  This module is that trace: a tiny, thread-safe,
process-global recorder.

Events are plain dicts — ``{"kind": ..., "job": ..., **detail}`` — so
they serialise into ``run_manifest.json`` untouched.  Worker processes
accumulate their own log and ship a snapshot back to the parent with
their results; :func:`capture` scopes collection around one unit of work
(one experiment compile, one job) so events land in the right manifest.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

_LOCK = threading.Lock()
_LOG: List[Dict] = []
#: Active capture sinks; every recorded event is appended to each.
_SINKS: List[List[Dict]] = []


def record(kind: str, *, job: Optional[str] = None, **detail) -> Dict:
    """Record one resilience event; returns the event dict.

    *kind* is a short verb phrase (``"retry"``, ``"degradation"``,
    ``"pool_respawn"``, ``"timeout"``, ``"fault_injected"``); *job*
    names the benchmark/source the event pertains to, when known.
    """
    event: Dict = {"kind": kind, "time": time.time()}
    if job is not None:
        event["job"] = job
    event.update(detail)
    with _LOCK:
        _LOG.append(event)
        for sink in _SINKS:
            sink.append(event)
    return event


def snapshot(
    *, kind: Optional[str] = None, job: Optional[str] = None
) -> List[Dict]:
    """A copy of the process log, optionally filtered by kind/job."""
    with _LOCK:
        events = list(_LOG)
    if kind is not None:
        events = [e for e in events if e["kind"] == kind]
    if job is not None:
        events = [e for e in events if e.get("job") == job]
    return events


def clear() -> None:
    """Drop the process log (worker entry points and tests)."""
    with _LOCK:
        _LOG.clear()


class capture:
    """Context manager collecting the events recorded while active.

    ``with capture() as events: ...`` — *events* is a plain list that
    receives every event recorded (by any thread) inside the block, in
    addition to the process log.  Captures nest; each sink sees the
    events of its own span.
    """

    def __init__(self) -> None:
        self.events: List[Dict] = []

    def __enter__(self) -> List[Dict]:
        with _LOCK:
            _SINKS.append(self.events)
        return self.events

    def __exit__(self, *exc) -> None:
        with _LOCK:
            _SINKS.remove(self.events)
