"""repro.resilience — fault-tolerant experiment execution.

The reliability substrate under the execution stack: the
transient-vs-permanent :class:`ReproError` taxonomy, deterministic
retry with exponential backoff (:class:`RetryPolicy`), per-stage
wall-clock timeouts (:class:`Timeouts` / :func:`time_limit`,
``$REPRO_TIMEOUT``), the process-local resilience event log
(:mod:`repro.resilience.events`), per-experiment ``run_manifest.json``
provenance (:mod:`repro.resilience.manifest`), and the deterministic
fault-injection harness (:mod:`repro.resilience.faults`,
``$REPRO_FAULTS``) that exercises every recovery path with real faults.

The supervised job runner lives where the jobs do
(:func:`repro.analysis.runner.run_matrix`); kernel degradation lives
with the kernels (:mod:`repro.mig.kernel`).  This package holds the
policies and mechanisms they share.
"""

from . import events
from .errors import (
    FaultInjected,
    KernelDegradedError,
    PermanentFault,
    ReproError,
    RetriesExhaustedError,
    StageTimeoutError,
    TransientFault,
    WorkerCrashError,
    classify_transient,
)
from .faults import (
    FAULTS_ENV_VAR,
    FaultDirective,
    FaultPlan,
    active_plan,
    inject,
    parse_faults,
)
from .manifest import (
    MANIFEST_SCHEMA,
    append_manifest_events,
    iter_manifests,
    load_manifest,
    manifest_path,
    verify_manifest,
    write_manifest,
)
from .retry import (
    DEFAULT_POLICY,
    RETRY_ENV_VAR,
    RetryPolicy,
    call_with_retry,
    resolve_retry,
)
from .timeouts import (
    TIMEOUT_ENV_VAR,
    Timeouts,
    resolve_timeouts,
    time_limit,
    timeouts_from_env,
)

__all__ = [
    "DEFAULT_POLICY",
    "FAULTS_ENV_VAR",
    "FaultDirective",
    "FaultInjected",
    "FaultPlan",
    "KernelDegradedError",
    "MANIFEST_SCHEMA",
    "PermanentFault",
    "RETRY_ENV_VAR",
    "ReproError",
    "RetriesExhaustedError",
    "RetryPolicy",
    "StageTimeoutError",
    "TIMEOUT_ENV_VAR",
    "Timeouts",
    "TransientFault",
    "WorkerCrashError",
    "active_plan",
    "append_manifest_events",
    "call_with_retry",
    "classify_transient",
    "events",
    "inject",
    "iter_manifests",
    "load_manifest",
    "manifest_path",
    "parse_faults",
    "resolve_retry",
    "resolve_timeouts",
    "time_limit",
    "timeouts_from_env",
    "verify_manifest",
    "write_manifest",
]
