"""Run manifests: auditable provenance for persisted experiment artefacts.

A cached artefact with no provenance is a liability: nobody can say
which code produced it, whether it was verified, or what faults its run
survived.  Every persisted *experiment result* therefore gets a
``run_manifest.json`` sidecar next to its disk-cache entry::

    <root>/<fingerprint>/<sha256(key)>.pkl
    <root>/<fingerprint>/<sha256(key)>.manifest.json

holding the code fingerprint, the source identity, the semantic
configuration/architecture/optimizer keys, the SHA-256 of the artefact
bytes, the verification-certificate width, and the retry/degradation
event log of the run that produced it.  ``repro manifest show`` renders
them; ``repro manifest verify`` re-derives every checkable claim
(artefact digest, key addressing, shard fingerprint) and fails loudly on
drift — the trust anchor the shared-cache/compile-farm direction builds
on.

Manifests are written by :meth:`repro.analysis.diskcache.DiskCache.store`
*inside* the entry's writer lock, so the sidecar always describes the
bytes actually on disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from typing import Dict, Iterator, List, Optional, Tuple

#: Manifest format version; bump on breaking layout changes.
MANIFEST_SCHEMA = 1

#: Sidecar suffix next to the ``.pkl`` entry.
MANIFEST_SUFFIX = ".manifest.json"


def manifest_path(entry_path: "str | os.PathLike[str]") -> pathlib.Path:
    """The sidecar path for a cache entry path."""
    entry = pathlib.Path(entry_path)
    return entry.with_name(entry.stem + MANIFEST_SUFFIX)


def build_manifest(
    entry_path: pathlib.Path,
    *,
    key_repr: str,
    blob: Optional[bytes] = None,
    meta: Optional[Dict] = None,
    events: Optional[List[Dict]] = None,
) -> Dict:
    """Assemble a manifest for the entry at *entry_path*.

    *blob* is the entry's current on-disk content (read from disk when
    not supplied) — the artefact digest always describes real bytes,
    not what a writer hoped it wrote.  *meta* carries the experiment
    identity fields (source, config, arch, opt, verified_patterns);
    *events* the retry/degradation log of the producing run.
    """
    if blob is None:
        blob = pathlib.Path(entry_path).read_bytes()
    manifest: Dict = {
        "schema": MANIFEST_SCHEMA,
        "key": key_repr,
        "code_fingerprint": pathlib.Path(entry_path).parent.name,
        "artefact": {
            "file": pathlib.Path(entry_path).name,
            "sha256": hashlib.sha256(blob).hexdigest(),
            "bytes": len(blob),
        },
        "written_at": time.time(),
        "writer_pid": os.getpid(),
        "events": list(events or ()),
    }
    if meta:
        manifest.update(meta)
    return manifest


def load_manifest(path: "str | os.PathLike[str]") -> Optional[Dict]:
    """Load a manifest (sidecar or entry path); ``None`` if absent/torn."""
    path = pathlib.Path(path)
    if path.suffix == ".pkl":
        path = manifest_path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
    except (OSError, ValueError):
        return None
    return loaded if isinstance(loaded, dict) else None


def write_manifest(
    entry_path: "str | os.PathLike[str]", manifest: Dict
) -> bool:
    """Atomically write the sidecar, merging the existing event log.

    Events already recorded by earlier writers of this entry are
    preserved (a certificate upgrade must not erase the original run's
    retry history).  Returns ``False`` on filesystem failure — manifests
    are provenance, not control flow, and must never take a run down.
    """
    path = manifest_path(entry_path)
    existing = load_manifest(path)
    if existing is not None:
        manifest = dict(manifest)
        manifest["events"] = merge_events(
            existing.get("events", []), manifest.get("events", [])
        )
    try:
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=1, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except Exception:
        return False
    return True


def merge_events(existing: List[Dict], new: List[Dict]) -> List[Dict]:
    """Union of two event logs, existing first, exact duplicates dropped."""
    merged = list(existing)
    for event in new:
        if event not in merged:
            merged.append(event)
    return merged


def append_manifest_events(
    entry_path: "str | os.PathLike[str]", events: List[Dict]
) -> bool:
    """Fold *events* into an existing sidecar (no-op without one).

    This is how the parallel supervisor attaches *parent-side* recovery
    events — worker crashes, pool respawns, retries — to the manifests
    of the experiments the retried worker produced.
    """
    if not events:
        return True
    existing = load_manifest(entry_path)
    if existing is None:
        return False
    existing["events"] = merge_events(existing.get("events", []), events)
    return write_manifest(entry_path, existing)


def iter_manifests(
    root: "str | os.PathLike[str]",
    fingerprint: Optional[str] = None,
) -> Iterator[Tuple[pathlib.Path, Dict]]:
    """Yield ``(sidecar_path, manifest)`` under a cache root.

    *fingerprint* (full or 16-hex prefix) restricts to one code-version
    shard; default is every shard.  Unreadable sidecars yield
    ``(path, {})`` so verification can flag them instead of skipping.
    """
    root = pathlib.Path(root)
    if not root.is_dir():
        return
    for shard in sorted(p for p in root.iterdir() if p.is_dir()):
        if fingerprint is not None and shard.name != fingerprint[:16]:
            continue
        for path in sorted(shard.glob(f"*{MANIFEST_SUFFIX}")):
            yield path, (load_manifest(path) or {})


def verify_manifest(
    sidecar: "str | os.PathLike[str]", manifest: Optional[Dict] = None
) -> List[str]:
    """Re-derive every checkable claim; returns the problems found.

    An empty list means the manifest validates: the sidecar parses, the
    artefact exists with the recorded SHA-256 and size, the entry
    filename matches the recorded key (content addressing holds), and
    the shard directory matches the recorded code fingerprint.
    """
    sidecar = pathlib.Path(sidecar)
    problems: List[str] = []
    if manifest is None:
        manifest = load_manifest(sidecar)
    if not manifest:
        return ["manifest unreadable or not valid JSON"]
    if manifest.get("schema") != MANIFEST_SCHEMA:
        problems.append(
            f"unknown schema {manifest.get('schema')!r} "
            f"(expected {MANIFEST_SCHEMA})"
        )
    artefact = manifest.get("artefact") or {}
    entry = sidecar.parent / str(artefact.get("file", ""))
    try:
        blob = entry.read_bytes()
    except OSError:
        return problems + [f"artefact {artefact.get('file')!r} missing"]
    digest = hashlib.sha256(blob).hexdigest()
    if digest != artefact.get("sha256"):
        problems.append(
            f"artefact digest mismatch: manifest says "
            f"{str(artefact.get('sha256'))[:16]}…, file is {digest[:16]}…"
        )
    if len(blob) != artefact.get("bytes"):
        problems.append(
            f"artefact size mismatch: manifest says "
            f"{artefact.get('bytes')}, file is {len(blob)}"
        )
    key_repr = manifest.get("key")
    if key_repr is not None:
        addressed = hashlib.sha256(str(key_repr).encode()).hexdigest()
        if entry.stem != addressed:
            problems.append("entry filename does not address the stored key")
    shard = manifest.get("code_fingerprint")
    if shard is not None and sidecar.parent.name != str(shard)[:16]:
        problems.append(
            f"shard mismatch: manifest written for code version "
            f"{str(shard)[:16]}, lives in {sidecar.parent.name}"
        )
    return problems
