"""repro.serve — compilation-as-a-service over Session/Flow.

The batch pipeline, exposed as a dependency-free REST service on the
stdlib ``http.server``:

* ``POST /jobs`` submits a (source|netlist|frontend, config, arch, opt)
  job; identical in-flight submissions coalesce to one compile;
* ``GET /jobs/<id>`` polls status, ``GET /jobs/<id>/events`` streams
  the pipeline's :class:`~repro.flow.StageEvent` feed as an NDJSON
  long-poll;
* ``GET /jobs/<id>/artifact`` and ``…/manifest`` fetch the compiled
  program listing and its provenance sidecar;
* ``GET /stats`` reports queue depth, job tallies, and both cache
  tiers' counters.

Jobs run behind a background queue in front of one long-lived warm
:class:`~repro.flow.Session` — isolated in supervised worker processes
(crash respawn, deadlines, retry; the ``run_matrix`` machinery) or
inline on executor threads.  Start it from the CLI (``repro serve``)
or embed it with :func:`create_server`.
"""

from .app import ReproServer, create_server
from .jobstore import Job, JobStore
from .queue import JobQueue
from .routes import Response, handle, job_payload, stats_payload
from .schemas import JobSpec, SchemaError, parse_job, summarize_compilation

__all__ = [
    "Job",
    "JobQueue",
    "JobSpec",
    "JobStore",
    "ReproServer",
    "Response",
    "SchemaError",
    "create_server",
    "handle",
    "job_payload",
    "parse_job",
    "stats_payload",
    "summarize_compilation",
]
