"""HTTP front of :mod:`repro.serve`: stdlib ThreadingHTTPServer glue.

No framework, no dependencies — :class:`ReproServer` is a
``ThreadingHTTPServer`` whose handler parses the request, hands it to
:func:`repro.serve.routes.handle`, and writes the returned
:class:`~repro.serve.routes.Response` back out (JSON bodies with
``Content-Length``; NDJSON event streams written incrementally and
terminated by connection close).

Concurrent jobs simulating the same warm graph no longer serialize in
the kernel: the simulation kernels bind executable buffers per thread
(see :mod:`repro.mig.kernel`), so each handler thread sweeps
lock-free and the level-batched backend can additionally fan pattern
chunks over its own worker pool.

::

    from repro.flow import Session
    from repro.serve import create_server

    server = create_server("127.0.0.1", 8321,
                           session=Session(cache_dir=".repro_cache"))
    server.serve_forever()          # Ctrl-C to stop
    server.close()
"""

from __future__ import annotations

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from ..resilience import RetryPolicy
from .queue import JobQueue
from . import routes


class _Handler(BaseHTTPRequestHandler):
    """Thin translation layer between HTTP and the route table."""

    server: "ReproServer"
    protocol_version = "HTTP/1.0"  # streams end by connection close

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            sys.stderr.write(
                "repro.serve %s - %s\n" % (self.address_string(),
                                           format % args)
            )

    def _read_body(self) -> Optional[object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        raw = self.rfile.read(length)
        return json.loads(raw.decode("utf-8"))

    def _respond(self, response: routes.Response) -> None:
        if response.stream is not None:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            for key, value in response.headers.items():
                self.send_header(key, value)
            self.end_headers()
            try:
                for chunk in response.stream:
                    self.wfile.write(chunk)
                    self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-stream; nothing to clean up
            return
        if response.text is not None:
            body = response.text.encode("utf-8")
        else:
            body = json.dumps(
                response.payload, indent=2, default=str
            ).encode("utf-8") + b"\n"
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in response.headers.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    # -- dispatch ------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        url = urlsplit(self.path)
        try:
            payload = self._read_body()
        except (ValueError, UnicodeDecodeError):
            self._respond(routes._error(400, "request body is not JSON"))
            return
        try:
            response = routes.handle(
                self.server, method, url.path, parse_qs(url.query), payload
            )
        except Exception as error:  # noqa: BLE001 — server boundary
            response = routes._error(
                500, f"internal error: {type(error).__name__}: {error}"
            )
        self._respond(response)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("POST")


class ReproServer(ThreadingHTTPServer):
    """The compilation service: HTTP threads over one shared Session.

    Handler threads only read the store and enqueue jobs; all
    compilation happens on the queue's executors, so a slow compile
    never blocks polling clients.
    """

    daemon_threads = True

    def __init__(
        self,
        address,
        *,
        session=None,
        workers: int = 2,
        isolate: bool = True,
        retry: Optional[RetryPolicy] = None,
        allow_frontend: bool = False,
        allow_shutdown: bool = False,
        verbose: bool = False,
    ) -> None:
        from ..flow.session import Session  # deferred: flow imports runner

        self.session = session if session is not None else Session()
        self.queue = JobQueue(
            self.session, workers=workers, isolate=isolate, retry=retry
        )
        self.allow_frontend = bool(allow_frontend)
        self.allow_shutdown = bool(allow_shutdown)
        self.verbose = bool(verbose)
        self.started_at = time.time()
        super().__init__(address, _Handler)
        self.queue.start()

    @property
    def store(self):
        return self.queue.store

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def request_shutdown(self) -> None:
        """Stop accepting requests, from a handler thread.

        ``shutdown()`` deadlocks when called from the serving thread,
        so the stop runs on a helper thread after the response flushes.
        """
        threading.Thread(target=self.shutdown, daemon=True).start()

    def close(self) -> None:
        """Full teardown: stop executors, release waiters, free the
        socket.  Idempotent."""
        self.queue.stop()
        self.server_close()


def create_server(
    host: str = "127.0.0.1",
    port: int = 8321,
    *,
    session=None,
    workers: int = 2,
    isolate: bool = True,
    retry: Optional[RetryPolicy] = None,
    allow_frontend: bool = False,
    allow_shutdown: bool = False,
    verbose: bool = False,
) -> ReproServer:
    """Build a ready :class:`ReproServer` (executors already running).

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` (tests and the example do).
    """
    return ReproServer(
        (host, port),
        session=session,
        workers=workers,
        isolate=isolate,
        retry=retry,
        allow_frontend=allow_frontend,
        allow_shutdown=allow_shutdown,
        verbose=verbose,
    )
