"""Job-request parsing and JSON payload shaping for :mod:`repro.serve`.

One job request is a JSON object selecting a circuit source, an
endurance configuration, and the machine/optimizer pair to compile for:

.. code-block:: json

    {"source": "adder", "config": "ea-full", "arch": "blocked",
     "opt": "greedy:write_cost", "verify": 64}

Sources come in three shapes, mirroring :mod:`repro.source`:

* ``"source"`` — a registry benchmark name or a netlist path readable
  by the server (``.mig``/``.blif``/``.aag``/``.aig``);
* ``"netlist"`` — an inline text netlist,
  ``{"format": ".aag", "text": "aag 0 0 0 0 0\\n"}``, parsed on submit
  and keyed by its content fingerprint;
* ``"frontend"`` — inline Python source using
  :func:`~repro.synth.frontend.mig_function`, only honoured when the
  server was started with ``--allow-frontend`` (it executes submitted
  code).

Validation errors raise :class:`SchemaError`, which the routing layer
maps to HTTP 400 — the request never reaches the queue.
"""

from __future__ import annotations

import hashlib
import linecache
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..arch import Architecture, available_architectures, resolve_architecture
from ..core.manager import EnduranceConfig, PRESETS, full_management
from ..mig.io import MigParseError, loads_aiger, loads_blif, loads_mig
from ..opt import OptimizerSpec, resolve_optimizer
from ..source import MigSource, Source, resolve_source
from ..synth.frontend import FrontendFunction, mig_function
from ..analysis.runner import experiment_key

#: Inline netlist formats accepted by ``POST /jobs`` (text flavours
#: only — binary ``.aig`` payloads travel as files, not JSON strings).
INLINE_NETLIST_FORMATS = {
    ".mig": loads_mig,
    ".blif": loads_blif,
    ".aag": loads_aiger,
}

#: Benchmark width presets a job may select (mirrors the CLI choices).
PRESET_CHOICES = ("tiny", "default", "paper")

#: Default verification width applied when a job does not choose one —
#: matches the harness default, so served artefacts carry certificates.
DEFAULT_VERIFY_PATTERNS = 64

_KNOWN_KEYS = frozenset(
    {"source", "netlist", "frontend", "preset", "config", "wmax",
     "effort", "arch", "opt", "verify"}
)


class SchemaError(ValueError):
    """Malformed or unacceptable job request (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """A validated, fully-resolved job: everything the queue needs.

    ``request`` is the sanitised echo shown back in job payloads;
    ``signature`` is the coalescing identity — two in-flight jobs with
    equal signatures compile the same artefact, so only one runs.
    """

    source: Source
    preset: str
    config: EnduranceConfig
    arch: Architecture
    opt: OptimizerSpec
    #: Verification width; 0 skips the verify stage.
    verify: int
    request: Dict[str, object]

    @property
    def signature(self) -> Tuple:
        return (
            tuple(self.source.identity(self.preset)),
            experiment_key(self.config, self.arch, self.opt),
            self.verify,
        )

    def identity(self) -> Tuple:
        """The cache identity results persist under (see
        :meth:`repro.analysis.runner.ExperimentCache.adopt`)."""
        return tuple(self.source.identity(self.preset))


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _parse_inline_netlist(body: object) -> Source:
    _require(
        isinstance(body, dict),
        "'netlist' must be an object {format, text}",
    )
    fmt = body.get("format", ".aag")
    _require(isinstance(fmt, str), "'netlist.format' must be a string")
    if not fmt.startswith("."):
        fmt = "." + fmt
    loader = INLINE_NETLIST_FORMATS.get(fmt.lower())
    _require(
        loader is not None,
        f"unsupported inline netlist format {fmt!r} "
        f"(expected one of: {', '.join(sorted(INLINE_NETLIST_FORMATS))})",
    )
    text = body.get("text")
    _require(
        isinstance(text, str) and text.strip() != "",
        "'netlist.text' must be a non-empty string",
    )
    try:
        mig = loader(text)
    except MigParseError as error:
        raise SchemaError(f"netlist does not parse: {error}") from None
    name = body.get("name")
    if name is not None:
        _require(isinstance(name, str), "'netlist.name' must be a string")
        mig.name = name
    elif not mig.name:
        mig.name = "netlist"
    return MigSource(mig)


def _parse_frontend(body: object) -> Source:
    """Execute inline frontend source and resolve its decorated function.

    The text is compiled under a synthetic filename registered with
    :mod:`linecache`, so :func:`inspect.getsource` — which the frontend
    decorator uses to lift the AST — works without a temp file.
    """
    _require(isinstance(body, dict), "'frontend' must be an object {text}")
    text = body.get("text")
    _require(
        isinstance(text, str) and text.strip() != "",
        "'frontend.text' must be a non-empty string",
    )
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]
    filename = f"<frontend:{digest}>"
    try:
        code = compile(text, filename, "exec")
    except SyntaxError as error:
        raise SchemaError(f"frontend does not compile: {error}") from None
    linecache.cache[filename] = (
        len(text), None, text.splitlines(True), filename
    )
    namespace: Dict[str, object] = {"mig_function": mig_function}
    try:
        exec(code, namespace)  # noqa: S102 — gated behind --allow-frontend
    except Exception as error:
        raise SchemaError(f"frontend raised at import: {error!r}") from None
    functions = [
        value for value in namespace.values()
        if isinstance(value, FrontendFunction)
    ]
    _require(
        len(functions) == 1,
        "frontend text must define exactly one @mig_function "
        f"(found {len(functions)})",
    )
    try:
        return resolve_source(functions[0])
    except (ValueError, MigParseError) as error:
        raise SchemaError(f"frontend does not elaborate: {error}") from None


def _parse_source(
    payload: Dict[str, object], *, allow_frontend: bool
) -> Tuple[Source, Dict[str, object]]:
    declared = [k for k in ("source", "netlist", "frontend") if k in payload]
    _require(
        len(declared) == 1,
        "declare exactly one of 'source', 'netlist', or 'frontend'",
    )
    kind = declared[0]
    if kind == "source":
        name = payload["source"]
        _require(
            isinstance(name, str) and name != "",
            "'source' must be a benchmark name or netlist path",
        )
        try:
            source = resolve_source(name)
        except (ValueError, OSError, MigParseError) as error:
            raise SchemaError(f"unresolvable source {name!r}: {error}") from None
        return source, {"source": name}
    if kind == "netlist":
        source = _parse_inline_netlist(payload["netlist"])
        return source, {"netlist": source.name}
    if not allow_frontend:
        raise SchemaError(
            "inline frontends are disabled on this server "
            "(start it with --allow-frontend)"
        )
    source = _parse_frontend(payload["frontend"])
    return source, {"frontend": source.name}


def _parse_config(payload: Dict[str, object]) -> EnduranceConfig:
    name = payload.get("config", "ea-full")
    wmax = payload.get("wmax")
    if wmax is not None:
        _require(
            "config" not in payload,
            "'config' and 'wmax' are mutually exclusive",
        )
        _require(
            isinstance(wmax, int) and not isinstance(wmax, bool) and wmax > 0,
            "'wmax' must be a positive integer",
        )
        config = full_management(wmax)
    else:
        _require(isinstance(name, str), "'config' must be a preset name")
        try:
            config = PRESETS[name]
        except KeyError:
            raise SchemaError(
                f"unknown configuration preset {name!r}; "
                f"choose one of: {', '.join(PRESETS)}"
            ) from None
    effort = payload.get("effort")
    if effort is not None:
        _require(
            isinstance(effort, int) and not isinstance(effort, bool)
            and effort > 0,
            "'effort' must be a positive integer",
        )
        config = replace(config, effort=effort)
    return config


def parse_job(
    payload: object,
    session,
    *,
    allow_frontend: bool = False,
) -> JobSpec:
    """Validate one ``POST /jobs`` body into a :class:`JobSpec`.

    *session* supplies the defaults a request may omit: its width
    preset, architecture, and optimizer — so a bare
    ``{"source": "adder"}`` compiles exactly like the CLI would with
    the server's flags.
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    unknown = sorted(set(payload) - _KNOWN_KEYS)
    _require(not unknown, f"unknown request keys: {', '.join(unknown)}")

    source, echo = _parse_source(payload, allow_frontend=allow_frontend)

    preset = payload.get("preset", session.preset)
    _require(
        isinstance(preset, str) and preset in PRESET_CHOICES,
        f"'preset' must be one of: {', '.join(PRESET_CHOICES)}",
    )

    config = _parse_config(payload)

    arch_name = payload.get("arch")
    if arch_name is None:
        arch = session.architecture
    else:
        _require(isinstance(arch_name, str), "'arch' must be a string")
        try:
            arch = resolve_architecture(arch_name)
        except ValueError:
            raise SchemaError(
                f"unknown architecture {arch_name!r}; choose one of: "
                f"{', '.join(available_architectures())}"
            ) from None

    opt_name = payload.get("opt")
    if opt_name is None:
        opt = session.optimizer
    else:
        _require(isinstance(opt_name, str), "'opt' must be a string")
        try:
            opt = resolve_optimizer(opt_name)
        except ValueError as error:
            raise SchemaError(f"bad optimizer spec: {error}") from None

    verify = payload.get("verify", DEFAULT_VERIFY_PATTERNS)
    if verify is False or verify is None:
        verify = 0
    _require(
        isinstance(verify, int) and not isinstance(verify, bool)
        and verify >= 0,
        "'verify' must be a non-negative pattern count (or false)",
    )

    echo.update(
        preset=preset,
        config=config.name,
        arch=arch.name,
        opt=opt.label(),
        verify=verify,
    )
    return JobSpec(
        source=source,
        preset=preset,
        config=config,
        arch=arch,
        opt=opt,
        verify=verify,
        request=echo,
    )


def summarize_compilation(
    compilation, spec: JobSpec, *, verified: Optional[int] = None
) -> Dict[str, object]:
    """The JSON result summary of a finished job."""
    stats = compilation.stats
    return {
        "benchmark": compilation.program.name or spec.source.name,
        "preset": spec.preset,
        "config": spec.config.name,
        "arch": spec.arch.name,
        "opt": spec.opt.label(),
        "verified_patterns": (
            spec.verify if verified is None else verified
        ),
        "gates_before": compilation.mig_gates_before,
        "gates_after": compilation.mig_gates_after,
        "instructions": compilation.num_instructions,
        "rrams": compilation.num_rrams,
        "stats": {
            "num_devices": stats.num_devices,
            "total_writes": stats.total_writes,
            "min_writes": stats.min_writes,
            "max_writes": stats.max_writes,
            "mean": stats.mean,
            "stdev": stats.stdev,
        },
    }
