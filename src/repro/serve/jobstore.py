"""In-memory job registry: lifecycle, coalescing, and event long-polls.

One :class:`JobStore` instance backs the whole server.  It is the only
mutable state the HTTP handlers and queue workers share, so every
transition happens under one condition variable — which doubles as the
wake-up signal for ``GET /jobs/<id>/events`` long-polls and for
followers waiting on the primary of a coalesced pair.

Coalescing: :meth:`submit` keys each job by its
:attr:`~repro.serve.schemas.JobSpec.signature`.  While a job with a
given signature is in flight, later submissions of the same signature
record it as their ``coalesced_with`` primary; the queue makes them
wait for the primary and then assemble from the warm cache instead of
compiling again.  The in-flight index entry is released when its owner
reaches a terminal state.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .schemas import JobSpec

#: Job lifecycle states, in order.
STATUSES: Tuple[str, ...] = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submitted compilation job and everything it produced."""

    id: str
    spec: JobSpec
    status: str = "queued"
    #: Primary job id when this submission coalesced onto an identical
    #: in-flight job; ``None`` when this job compiles for itself.
    coalesced_with: Optional[str] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: Append-only event log: lifecycle + stage events, each a dict with
    #: monotonically increasing ``seq``.
    events: List[Dict] = field(default_factory=list)
    #: JSON result summary (see schemas.summarize_compilation).
    result: Optional[Dict] = None
    #: The compiled program listing (the ``/artifact`` body).
    artifact: Optional[str] = None
    #: Disk-cache entry path whose ``.manifest.json`` sidecar documents
    #: this job's artefact; ``None`` without a persistent cache.
    manifest_entry: Optional[str] = None
    #: Per-job cache-counter deltas (approximate under concurrency —
    #: concurrent jobs share the session cache and its counters).
    counters: Optional[Dict[str, int]] = None

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed")


class JobStore:
    """Thread-safe registry of every job the server has seen."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._inflight: Dict[Tuple, str] = {}
        self._ids = itertools.count(1)
        self._closed = False

    # -- submission ----------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Register a new job, coalescing onto an in-flight twin."""
        with self._cond:
            job_id = f"j{next(self._ids):06d}"
            primary = self._inflight.get(spec.signature)
            job = Job(
                id=job_id,
                spec=spec,
                coalesced_with=primary,
                submitted_at=time.time(),
            )
            if primary is None:
                self._inflight[spec.signature] = job_id
            self._jobs[job_id] = job
            self._order.append(job_id)
            event = {"kind": "job", "status": "queued"}
            if primary is not None:
                event["coalesced_with"] = primary
            self._append(job, event)
            self._cond.notify_all()
            return job

    # -- lookup --------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        """Submission-ordered snapshot."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self) -> Dict[str, int]:
        """Job tallies for ``/stats``."""
        with self._lock:
            tally = {status: 0 for status in STATUSES}
            coalesced = 0
            for job in self._jobs.values():
                tally[job.status] += 1
                if job.coalesced_with is not None:
                    coalesced += 1
            tally["total"] = len(self._jobs)
            tally["coalesced"] = coalesced
            return tally

    # -- transitions ---------------------------------------------------

    def mark_running(self, job_id: str) -> None:
        with self._cond:
            job = self._jobs[job_id]
            job.status = "running"
            job.started_at = time.time()
            self._append(job, {"kind": "job", "status": "running"})
            self._cond.notify_all()

    def finish(
        self,
        job_id: str,
        *,
        result: Dict,
        artifact: str,
        manifest_entry: Optional[str],
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        with self._cond:
            job = self._jobs[job_id]
            job.status = "done"
            job.finished_at = time.time()
            job.result = result
            job.artifact = artifact
            job.manifest_entry = manifest_entry
            job.counters = counters
            self._release_inflight(job)
            self._append(job, {"kind": "job", "status": "done"})
            self._cond.notify_all()

    def fail(self, job_id: str, error: str) -> None:
        with self._cond:
            job = self._jobs[job_id]
            job.status = "failed"
            job.finished_at = time.time()
            job.error = error
            self._release_inflight(job)
            self._append(job, {"kind": "job", "status": "failed",
                               "error": error})
            self._cond.notify_all()

    def append_event(self, job_id: str, event: Dict) -> None:
        """Append one event (stage notification, retry, dispatch …)."""
        with self._cond:
            self._append(self._jobs[job_id], dict(event))
            self._cond.notify_all()

    def _append(self, job: Job, event: Dict) -> None:
        event.setdefault("time", time.time())
        event["seq"] = len(job.events)
        job.events.append(event)

    def _release_inflight(self, job: Job) -> None:
        if self._inflight.get(job.spec.signature) == job.id:
            del self._inflight[job.spec.signature]

    # -- waiting -------------------------------------------------------

    def wait_events(
        self, job_id: str, start: int, timeout: float
    ) -> Tuple[List[Dict], bool]:
        """Block until the job has events past *start*, is terminal, or
        *timeout* elapses.  Returns ``(new events, terminal)``."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._cond:
            job = self._jobs[job_id]
            while True:
                if len(job.events) > start or job.terminal or self._closed:
                    return [dict(e) for e in job.events[start:]], job.terminal
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return [], job.terminal
                self._cond.wait(remaining)

    def wait_terminal(
        self, job_id: str, timeout: Optional[float] = None
    ) -> bool:
        """Block until the job reaches a terminal state (or the store
        closes).  Returns whether it is terminal."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            job = self._jobs[job_id]
            while not job.terminal and not self._closed:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._cond.wait(remaining)
            return job.terminal

    def close(self) -> None:
        """Release every waiter (server shutdown)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
