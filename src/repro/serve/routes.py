"""Request routing: method + path → JSON/stream :class:`Response`.

Pure functions over the server facade (queue, store, session, policy
flags) — no socket code here, so every route is unit-testable without
binding a port.  The HTTP glue in :mod:`repro.serve.app` translates the
returned :class:`Response` into status line, headers, and body.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..resilience.manifest import (
    load_manifest,
    manifest_path,
    verify_manifest,
)
from .jobstore import Job
from .schemas import SchemaError, parse_job

#: Long-poll bounds for ``GET /jobs/<id>/events`` (seconds).
DEFAULT_EVENT_TIMEOUT = 30.0
MAX_EVENT_TIMEOUT = 120.0

ENDPOINTS = (
    "GET /healthz",
    "GET /stats",
    "POST /jobs",
    "GET /jobs",
    "GET /jobs/<id>",
    "GET /jobs/<id>/events",
    "GET /jobs/<id>/artifact",
    "GET /jobs/<id>/manifest",
    "POST /shutdown",
)


@dataclass
class Response:
    """What one route produced, transport-agnostic."""

    status: int
    payload: Optional[object] = None
    stream: Optional[Iterator[bytes]] = None
    text: Optional[str] = None
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)


def _error(status: int, message: str) -> Response:
    return Response(status, payload={"error": message})


def job_payload(job: Job, *, brief: bool = False) -> Dict[str, object]:
    """The JSON view of one job (``GET /jobs[/<id>]``)."""
    payload: Dict[str, object] = {
        "id": job.id,
        "status": job.status,
        "request": dict(job.spec.request),
        "coalesced_with": job.coalesced_with,
        "submitted_at": job.submitted_at,
        "started_at": job.started_at,
        "finished_at": job.finished_at,
        "events": len(job.events),
    }
    if job.error is not None:
        payload["error"] = job.error
    if brief:
        return payload
    payload["result"] = job.result
    payload["counters"] = job.counters
    if job.status == "done":
        payload["urls"] = {
            "events": f"/jobs/{job.id}/events",
            "artifact": f"/jobs/{job.id}/artifact",
            "manifest": f"/jobs/{job.id}/manifest",
        }
    return payload


def stats_payload(server) -> Dict[str, object]:
    """The ``GET /stats`` body: queue, jobs, and cache health."""
    cache = server.session.cache
    disk = server.session.disk
    return {
        "service": "repro.serve",
        "uptime_seconds": time.time() - server.started_at,
        "jobs": server.store.counts(),
        "queue": server.queue.stats(),
        "cache": {
            **cache.counters(),
            "workers": dict(cache.worker_counters),
        },
        "disk": disk.stats() if disk is not None else None,
    }


def _query_float(
    query: Dict[str, List[str]], key: str, default: float
) -> Optional[float]:
    raw = query.get(key, [None])[0]
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        return None


def _query_int(
    query: Dict[str, List[str]], key: str, default: int
) -> Optional[int]:
    raw = query.get(key, [None])[0]
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return None


def _event_stream(server, job_id: str, since: int, timeout: float):
    """NDJSON generator: replay events from *since*, then long-poll
    until the job is terminal or the window closes."""
    deadline = time.monotonic() + timeout
    position = since
    while True:
        remaining = deadline - time.monotonic()
        events, terminal = server.store.wait_events(
            job_id, position, max(0.0, remaining)
        )
        for event in events:
            yield (json.dumps(event, default=str) + "\n").encode("utf-8")
        position += len(events)
        if terminal or time.monotonic() >= deadline:
            return


def handle(
    server,
    method: str,
    path: str,
    query: Dict[str, List[str]],
    payload: Optional[object],
) -> Response:
    """Route one parsed request.  Never raises for client errors —
    schema and lookup problems map to 4xx responses."""
    parts = [p for p in path.split("/") if p]

    if not parts:
        if method != "GET":
            return _error(405, "method not allowed")
        return Response(200, payload={
            "service": "repro.serve",
            "endpoints": list(ENDPOINTS),
        })

    if parts[0] == "healthz" and len(parts) == 1:
        if method != "GET":
            return _error(405, "method not allowed")
        return Response(200, payload={"status": "ok"})

    if parts[0] == "stats" and len(parts) == 1:
        if method != "GET":
            return _error(405, "method not allowed")
        return Response(200, payload=stats_payload(server))

    if parts[0] == "shutdown" and len(parts) == 1:
        if method != "POST":
            return _error(405, "method not allowed")
        if not server.allow_shutdown:
            return _error(
                403,
                "shutdown over HTTP is disabled "
                "(start the server with --allow-shutdown)",
            )
        server.request_shutdown()
        return Response(200, payload={"status": "shutting down"})

    if parts[0] != "jobs":
        return _error(404, f"no such endpoint: /{parts[0]}")

    # -- /jobs ---------------------------------------------------------

    if len(parts) == 1:
        if method == "POST":
            try:
                spec = parse_job(
                    payload,
                    server.session,
                    allow_frontend=server.allow_frontend,
                )
            except SchemaError as error:
                return _error(400, str(error))
            job = server.queue.submit(spec)
            body = {
                "id": job.id,
                "status": job.status,
                "coalesced_with": job.coalesced_with,
                "url": f"/jobs/{job.id}",
            }
            return Response(202, payload=body)
        if method == "GET":
            return Response(200, payload={
                "jobs": [
                    job_payload(job, brief=True)
                    for job in server.store.jobs()
                ],
            })
        return _error(405, "method not allowed")

    # -- /jobs/<id>[/...] ----------------------------------------------

    job_id = parts[1]
    try:
        job = server.store.get(job_id)
    except KeyError:
        return _error(404, f"no such job: {job_id}")

    if len(parts) == 2:
        if method != "GET":
            return _error(405, "method not allowed")
        return Response(200, payload=job_payload(job))

    if len(parts) != 3 or method != "GET":
        return _error(
            405 if len(parts) == 3 else 404, "no such job endpoint"
        )
    leaf = parts[2]

    if leaf == "events":
        since = _query_int(query, "since", 0)
        timeout = _query_float(query, "timeout", DEFAULT_EVENT_TIMEOUT)
        if since is None or since < 0 or timeout is None or timeout < 0:
            return _error(400, "bad 'since' or 'timeout' query parameter")
        timeout = min(timeout, MAX_EVENT_TIMEOUT)
        return Response(
            200,
            stream=_event_stream(server, job_id, since, timeout),
            content_type="application/x-ndjson",
        )

    if leaf == "artifact":
        if job.status != "done":
            return _error(
                409, f"job {job_id} is {job.status}, artifact unavailable"
            )
        digest = hashlib.sha256(job.artifact.encode("utf-8")).hexdigest()
        return Response(
            200,
            text=job.artifact,
            content_type="text/plain; charset=utf-8",
            headers={"X-Artifact-SHA256": digest},
        )

    if leaf == "manifest":
        if job.status != "done":
            return _error(
                409, f"job {job_id} is {job.status}, manifest unavailable"
            )
        if job.manifest_entry is None:
            return _error(
                404,
                "no manifest: the server runs without a persistent "
                "cache (--cache-dir)",
            )
        sidecar = manifest_path(job.manifest_entry)
        manifest = load_manifest(sidecar)
        if manifest is None:
            return _error(404, f"manifest sidecar missing: {sidecar}")
        return Response(200, payload={
            "path": str(sidecar),
            "manifest": manifest,
            "problems": verify_manifest(sidecar, manifest),
        })

    return _error(404, f"no such job endpoint: {leaf}")
