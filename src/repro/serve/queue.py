"""The background job queue: N executors in front of one warm Session.

Two execution modes per job, chosen when the server starts:

* **isolated** (``workers`` processes, the default under ``repro
  serve``) — each cold job ships to a worker process through the same
  supervised pool as ``run_matrix(parallel=N)``: picklable
  :class:`~repro.flow.SessionSpec`, crash respawn, per-job deadline
  from the session's ``job`` timeout budget, deterministic retry.  The
  worker's results are adopted into the shared warm cache, then the
  job's summary/artefact assemble from it.
* **inline** — the job runs a :class:`~repro.flow.Flow` directly on an
  executor thread under :func:`~repro.resilience.call_with_retry`.
  Cheap and test-friendly; stage deadlines are best-effort here because
  ``SIGALRM`` enforcement only works on a main thread.

Either way, repeat and duplicate submissions are near-free: identical
in-flight jobs coalesce in the :class:`~repro.serve.jobstore.JobStore`
(the follower waits for the primary, then assembles from the warm
cache), and anything the cache tiers already hold short-circuits the
process dispatch entirely.
"""

from __future__ import annotations

import queue as _queue
import threading
from dataclasses import asdict
from typing import Dict, List, Optional

from ..analysis.runner import (
    _importable_in_workers,
    _supervised_pool_map,
    _worker_spec,
    experiment_key,
    result_label,
)
from ..mig.io import dumps_program
from ..resilience import DEFAULT_POLICY, RetryPolicy, call_with_retry
from .jobstore import Job, JobStore
from .schemas import JobSpec, summarize_compilation

#: Keys of the per-job cache-counter delta attached to finished jobs.
COUNTER_KEYS = ("hits", "misses", "disk_hits", "disk_misses",
                "disk_lock_skips", "remote_memory_hits",
                "remote_disk_hits", "remote_waits", "remote_fallbacks")


class JobQueue:
    """Dispatches submitted jobs onto executor threads."""

    def __init__(
        self,
        session,
        *,
        workers: int = 2,
        isolate: bool = False,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.session = session
        self.store = JobStore()
        self.workers = max(1, int(workers))
        self.isolate = bool(isolate)
        self.retry = retry if retry is not None else DEFAULT_POLICY
        self._tasks: "_queue.SimpleQueue[Optional[str]]" = _queue.SimpleQueue()
        self._threads: List[threading.Thread] = []
        self._pending = 0
        self._pending_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._run,
                name=f"repro-serve-executor-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, *, wait: bool = True) -> None:
        """Stop the executors and release every store waiter.

        A job currently executing finishes its work; queued jobs behind
        the sentinels are abandoned (their submitters see the store
        close).
        """
        for _ in self._threads:
            self._tasks.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=30)
        self._threads = []
        self.store.close()

    @property
    def depth(self) -> int:
        """Jobs submitted but not yet picked up by an executor."""
        with self._pending_lock:
            return self._pending

    # -- submission ----------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        job = self.store.submit(spec)
        with self._pending_lock:
            self._pending += 1
        self._tasks.put(job.id)
        return job

    # -- execution -----------------------------------------------------

    def _run(self) -> None:
        while True:
            job_id = self._tasks.get()
            if job_id is None:
                return
            with self._pending_lock:
                self._pending -= 1
            try:
                self._execute(job_id)
            except BaseException as error:  # noqa: BLE001 — job boundary
                self.store.fail(
                    job_id, f"{type(error).__name__}: {error}"
                )

    def _execute(self, job_id: str) -> None:
        store = self.store
        job = store.get(job_id)
        spec = job.spec
        store.mark_running(job_id)

        if job.coalesced_with is not None:
            # Ride the primary's compile: wait until it lands, then
            # assemble from the warm cache.  If the primary failed, fall
            # through and compile for ourselves.
            store.append_event(
                job_id,
                {"kind": "coalesce_wait", "primary": job.coalesced_with},
            )
            store.wait_terminal(job.coalesced_with)

        before = self.session.cache.counters()
        if self.isolate and not self._satisfied(spec):
            compilation = self._dispatch_worker(job)
        else:
            compilation = self._assemble(job)
        after = self.session.cache.counters()
        delta = {key: after[key] - before[key] for key in COUNTER_KEYS}

        store.finish(
            job_id,
            result=summarize_compilation(compilation, spec),
            artifact=dumps_program(compilation.program),
            manifest_entry=self._manifest_entry(spec),
            counters=delta,
        )

    def _satisfied(self, spec: JobSpec) -> bool:
        """Whether the warm cache already holds this job's artefact
        (memory or disk), certificate included."""
        cache = self.session.cache
        mig = cache.cached_source_mig(spec.source, spec.preset)
        if mig is None:
            return False
        return cache.has(
            mig,
            spec.config,
            verified_patterns=spec.verify,
            arch=spec.arch,
            optimizer=spec.opt,
        )

    def _manifest_entry(self, spec: JobSpec) -> Optional[str]:
        disk = self.session.disk
        if disk is None:
            return None
        semantic = experiment_key(spec.config, spec.arch, spec.opt)
        return str(disk.entry_path(("result", *spec.identity(), semantic)))

    def _dispatch_worker(self, job: Job):
        """Compile in a worker process through the supervised pool,
        then adopt the results into the warm session cache."""
        spec = job.spec
        session = self.session
        store = self.store
        entry = (
            spec.source.name
            if spec.source.kind == "registry"
            else spec.source
        )
        worker_spec = _worker_spec(
            session, session.cache, spec.preset,
            spec.arch.name, spec.opt.label(),
        )
        work = [(
            entry,
            spec.preset,
            [spec.config],
            spec.verify > 0,
            spec.verify,
            worker_spec,
        )]
        store.append_event(
            job.id, {"kind": "dispatch", "mode": "process"}
        )
        with _importable_in_workers():
            payloads, recoveries = _supervised_pool_map(
                work,
                1,
                policy=self.retry,
                job_timeout=session.timeouts.limit("job"),
            )
        mig, evaluation, counters, _worker_log = payloads[0]
        cache = session.cache
        identity = spec.identity()
        cache.adopt(
            identity,
            spec.preset,
            mig,
            [spec.config],
            evaluation,
            verified_patterns=spec.verify,
            arch=spec.arch,
            optimizer=spec.opt,
        )
        cache.absorb_worker_counters(counters)
        # Worker-side events are already in the manifests the worker
        # wrote; crashes/respawns/retries are only observable here.
        cache.annotate_manifests(
            identity, [spec.config], recoveries[0],
            arch=spec.arch, optimizer=spec.opt,
        )
        for event in recoveries[0]:
            store.append_event(job.id, {"kind": "recovery", **event})
        return evaluation.results[result_label(spec.config)]

    def _assemble(self, job: Job):
        """Run the job's Flow inline on this executor thread.

        Cold jobs in inline mode do the actual work here; warm repeats
        and coalesced followers are pure cache hits whose stage events
        report ``cached=True``.
        """
        from ..flow.pipeline import Flow  # deferred: flow imports runner

        spec = job.spec
        store = self.store

        flow = Flow.for_job(
            spec.source,
            spec.config,
            preset=spec.preset,
            arch=spec.arch,
            opt=spec.opt,
            verify=spec.verify or None,
            session=self.session,
        )
        flow.on_stage_start(
            lambda event: store.append_event(
                job.id, {"kind": "stage_start", **asdict(event)}
            )
        )
        flow.on_stage_end(
            lambda event: store.append_event(
                job.id, {"kind": "stage_end", **asdict(event)}
            )
        )

        def on_retry(attempt: int, error: BaseException) -> None:
            store.append_event(
                job.id,
                {"kind": "retry", "attempt": attempt, "error": repr(error)},
            )

        result = call_with_retry(
            flow.run,
            policy=self.retry,
            key=(job.id,),
            job=job.id,
            on_retry=on_retry,
        )
        return result.compilation

    # -- stats ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Queue half of the ``/stats`` payload."""
        return {
            "workers": self.workers,
            "isolate": self.isolate,
            "depth": self.depth,
            "retry_attempts": self.retry.attempts,
        }
