"""One source layer: registry benchmarks, netlists, frontend functions.

See :mod:`repro.source.base` for the :class:`Source` abstraction and
:mod:`repro.source.registry` for named registration and the
``explicit > $REPRO_SOURCE`` resolution everything routes through.
"""

from .base import (
    FileSource,
    FrontendSource,
    MigSource,
    RegistrySource,
    Source,
)
from .registry import (
    SOURCE_ENV_VAR,
    SourceLike,
    available_sources,
    get_source,
    register_source,
    resolve_source,
    source_from_env,
)

__all__ = [
    "FileSource",
    "FrontendSource",
    "MigSource",
    "RegistrySource",
    "SOURCE_ENV_VAR",
    "Source",
    "SourceLike",
    "available_sources",
    "get_source",
    "register_source",
    "resolve_source",
    "source_from_env",
]
