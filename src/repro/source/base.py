"""The :class:`Source` abstraction: where a circuit comes from.

Every pipeline in the harness begins with a graph, and before this
layer existed the only first-class origin was a registry benchmark
name.  A :class:`Source` generalises the origin while keeping the
cache discipline registry benchmarks always had: each source carries a
**stable, content-addressed identity** (see :meth:`Source.identity`)
under which its built graph — and every rewrite/compile/verify
artefact derived from it — persists in the
:class:`~repro.analysis.diskcache.DiskCache` and ships across
``run_matrix`` worker processes.

Four kinds ship built in:

``registry``  (:class:`RegistrySource`)
    One of the 18 paper benchmarks.  Identity is the classic
    ``(name, preset)`` pair, so cache entries are byte-identical to the
    pre-source-layer layout.
``file``  (:class:`FileSource`)
    A netlist on disk — the native exchange format, BLIF, or ASCII
    AIGER (see :func:`repro.mig.io.read_netlist`).  Identity hashes the
    file *bytes*, so editing the file changes the identity and a moved
    or copied file keeps its cached artefacts.
``frontend``  (:class:`FrontendSource`)
    A Python function decorated with
    :func:`repro.synth.frontend.mig_function`.  Identity hashes the
    function's source text and bit widths, available before the
    circuit is ever elaborated.
``graph``  (:class:`MigSource`)
    An explicit, already-built :class:`~repro.mig.graph.Mig`.  Identity
    is the graph's :meth:`~repro.mig.graph.Mig.content_fingerprint`.

Width presets only affect registry sources; the other kinds describe a
fixed circuit and ignore the preset (their identity says so, keeping
cache keys preset-independent).
"""

from __future__ import annotations

import hashlib
import os
from abc import ABC, abstractmethod
from typing import Tuple

from ..mig.graph import Mig
from ..mig.io import NETLIST_READERS, read_netlist
from ..synth.frontend import FrontendFunction
from ..synth.registry import BENCHMARKS, build_benchmark


class Source(ABC):
    """One circuit origin with a stable, cache-addressable identity."""

    #: Discriminator string (``registry`` / ``file`` / ``frontend`` /
    #: ``graph``) — the cache layer special-cases ``registry`` to keep
    #: its legacy key layout.
    kind: str = "abstract"

    #: Display name (benchmark name, file stem, function name, ...).
    name: str = ""

    @abstractmethod
    def fingerprint(self) -> str:
        """Stable content hash of this source (SHA-256 hex)."""

    @abstractmethod
    def build(self, preset: str) -> Mig:
        """Materialise the circuit (registry sources honour *preset*)."""

    def identity(self, preset: str) -> Tuple[str, ...]:
        """Persistent cache identity; equal identities may share every
        cached artefact.  Non-registry sources are preset-independent."""
        return (self.kind, self.fingerprint())

    def label(self, preset: str) -> str:
        """Human-readable head of flow labels (``name@origin``)."""
        return f"{self.name}@{self.kind}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class RegistrySource(Source):
    """A paper benchmark from :mod:`repro.synth.registry`."""

    kind = "registry"

    def __init__(self, name: str) -> None:
        if name not in BENCHMARKS:
            raise ValueError(
                f"unknown registry benchmark {name!r}; expected one of "
                f"{list(BENCHMARKS)}"
            )
        self.name = name

    def fingerprint(self) -> str:
        # Registry identity is nominal, not structural: the builders are
        # deterministic, so the name pins the content per preset.
        return hashlib.sha256(f"registry:{self.name}".encode()).hexdigest()

    def identity(self, preset: str) -> Tuple[str, ...]:
        # The exact pre-source-layer cache identity — keeps every disk
        # entry ever written for registry benchmarks addressable.
        return (self.name, preset)

    def build(self, preset: str) -> Mig:
        return build_benchmark(self.name, preset)

    def label(self, preset: str) -> str:
        return f"{self.name}@{preset}"


class FileSource(Source):
    """A netlist file: exchange format, BLIF, or ASCII AIGER."""

    kind = "file"

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = os.fspath(path)
        extension = os.path.splitext(self.path)[1].lower()
        if extension not in NETLIST_READERS:
            raise ValueError(
                f"unrecognised netlist extension {extension!r} for "
                f"{self.path!r} (expected one of: "
                f"{', '.join(sorted(NETLIST_READERS))})"
            )
        self.name = os.path.splitext(os.path.basename(self.path))[0]
        # Hash the bytes eagerly: the identity must pin the content the
        # run actually read, even if the file is edited mid-session.
        digest = hashlib.sha256()
        digest.update(extension.encode())
        with open(self.path, "rb") as handle:
            digest.update(handle.read())
        self._fingerprint = digest.hexdigest()

    def fingerprint(self) -> str:
        return self._fingerprint

    def build(self, preset: str) -> Mig:
        return read_netlist(self.path)


class FrontendSource(Source):
    """A :func:`~repro.synth.frontend.mig_function` decorated function."""

    kind = "frontend"

    def __init__(self, fn: FrontendFunction) -> None:
        self.fn = fn
        self.name = fn.name

    def fingerprint(self) -> str:
        return self.fn.fingerprint

    def build(self, preset: str) -> Mig:
        return self.fn.build()


class MigSource(Source):
    """An explicit, already-built graph."""

    kind = "graph"

    def __init__(self, mig: Mig) -> None:
        self.mig = mig
        self.name = mig.name or "mig"

    def fingerprint(self) -> str:
        return self.mig.content_fingerprint()

    def build(self, preset: str) -> Mig:
        return self.mig

    def label(self, preset: str) -> str:
        # source_mig() flows historically labelled by bare graph name.
        return self.name
