"""Named sources and how a run picks one.

The source registry mirrors :mod:`repro.arch.registry` /
:mod:`repro.opt`: names resolve through the harness-wide precedence
**explicit > environment > default**, and the registry ships
pre-populated with the 18 paper benchmarks (kind ``registry``), so
every name that worked before the source layer still works.

:func:`resolve_source` is the single entry point everything routes
through — ``Flow.source(...)``, ``Session(source=...)``, the CLI — and
accepts every spelling of a circuit origin:

* a registered name (``"adder"``),
* a netlist path (``"circuits/alu.blif"``; anything with a recognised
  netlist extension or an existing file),
* an explicit :class:`~repro.source.base.Source`,
* a bare :class:`~repro.mig.graph.Mig`,
* a :func:`~repro.synth.frontend.mig_function` decorated function.

Registering a custom source
---------------------------
Build any :class:`Source` (or wrap a graph/function) and register it
before constructing sessions::

    from repro.source import FileSource, register_source

    register_source(FileSource("circuits/alu.blif"))

The file's stem then works everywhere a benchmark name does —
``Flow.source("alu")``, ``$REPRO_SOURCE=alu``, ``run_matrix(["alu"])``
— and its artefacts persist under the file's content fingerprint.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

from ..mig.graph import Mig
from ..mig.io import NETLIST_READERS
from ..synth.frontend import FrontendFunction
from ..synth.registry import BENCHMARK_ORDER
from .base import (
    FileSource,
    FrontendSource,
    MigSource,
    RegistrySource,
    Source,
)

#: Environment variable selecting the default source (overridden by an
#: explicit ``.source(...)`` declaration / ``Session(source=...)``).
SOURCE_ENV_VAR = "REPRO_SOURCE"

#: Everything :func:`resolve_source` accepts.
SourceLike = Union[str, Source, Mig, FrontendFunction, None]

_REGISTRY: Dict[str, Source] = {}


def register_source(source: Source, *, overwrite: bool = False) -> Source:
    """Add *source* to the registry under ``source.name``; returns it.

    Registering an existing name is an error unless ``overwrite=True`` —
    silently replacing a circuit mid-run would poison cache keys.
    """
    if not overwrite and source.name in _REGISTRY:
        raise ValueError(
            f"source {source.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[source.name] = source
    return source


def get_source(name: str) -> Source:
    """Look a source up by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown source {name!r}; expected one of "
            f"{available_sources()} or a netlist path"
        ) from None


def available_sources() -> List[str]:
    """Registered source names, registration order."""
    return list(_REGISTRY)


def _looks_like_path(value: str) -> bool:
    extension = os.path.splitext(value)[1].lower()
    return extension in NETLIST_READERS or os.sep in value


def resolve_source(source: SourceLike = None) -> Source:
    """Uniform source resolution: explicit > ``$REPRO_SOURCE``.

    Strings resolve through the registry first, then as netlist paths
    (a recognised extension or a path separator marks a path even when
    the file is missing, so the error names the file rather than the
    registry).  Unlike architectures there is no final default — a run
    has to say *which* circuit it evaluates — so ``None`` without
    ``$REPRO_SOURCE`` raises.
    """
    if source is None:
        env = os.environ.get(SOURCE_ENV_VAR, "").strip()
        if not env:
            raise ValueError(
                "no source selected; declare one explicitly or set "
                f"${SOURCE_ENV_VAR}"
            )
        source = env
    if isinstance(source, Source):
        return source
    if isinstance(source, Mig):
        return MigSource(source)
    if isinstance(source, FrontendFunction):
        return FrontendSource(source)
    if isinstance(source, str):
        if source in _REGISTRY:
            return _REGISTRY[source]
        if _looks_like_path(source):
            return FileSource(source)
        raise ValueError(
            f"unknown source {source!r}; expected one of "
            f"{available_sources()} or a netlist path "
            f"({', '.join(sorted(NETLIST_READERS))})"
        )
    raise TypeError(
        f"cannot interpret {type(source).__name__} as a source; expected "
        "a name, a netlist path, a Source, a Mig, or a @mig_function"
    )


def source_from_env() -> Optional[str]:
    """The ``$REPRO_SOURCE`` selection, if any (validated)."""
    env = os.environ.get(SOURCE_ENV_VAR, "").strip()
    if not env:
        return None
    resolve_source(env)
    return env


# -- built-in sources: the 18 paper benchmarks ---------------------------

for _name in BENCHMARK_ORDER:
    register_source(RegistrySource(_name))
del _name
