"""The PLiM *machine model*: what the compiler targets.

The reproduced paper evaluates one machine — an unbounded RRAM crossbar
executing RM3, with per-cell wear counters feeding the minimum/maximum
write count strategies.  That machine used to be hard-coded across
:mod:`repro.plim.compiler`, :mod:`repro.plim.allocator`,
:mod:`repro.plim.memory`, and :mod:`repro.plim.startgap`; this module
lifts it into an explicit, immutable :class:`Architecture` value the
compiler *consumes*, so new RRAM scenarios (different cost tables, array
geometries, endurance assumptions) are data, not compiler edits.

An architecture is four orthogonal pieces:

* :class:`CostModel` — the instruction/device overhead of each
  translation violation (Section III's cost table).  The compiler's role
  enumeration ranks assignments by these numbers, so a machine whose
  copy or invert primitives cost differently changes the chosen roles
  without any compiler change.
* :class:`Geometry` — array shape: unbounded crossbar
  (``block_size=None``), or word-addressed arrays of ``block_size``
  devices provisioned a whole block at a time; optional hard
  ``capacity``; the Start-Gap rotation interval the runtime
  wear-levelling baseline consumes.
* :class:`EnduranceModel` — what the machine's controller can observe
  and enforce: per-cell wear counters (without them the minimum write
  count strategy is unimplementable), write-cap retirement, the physical
  per-cell endurance budget used for lifetime estimates.
* the **device-request semantics** — :meth:`Architecture.make_allocator`
  builds the free-pool machinery matching the geometry: a flat
  :class:`~repro.plim.allocator.RramAllocator` for crossbars, a
  per-block :class:`~repro.plim.blocked.BlockedAllocator` for
  word-addressed arrays.

Architectures are registered by name (see :mod:`repro.arch.registry`)
and selected per :class:`repro.flow.Session` via ``--arch`` /
``$REPRO_ARCH``; cached artefacts are keyed by :meth:`Architecture.key`
so one experiment cache serves every machine without cross-talk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..plim.memory import TYPICAL_ENDURANCE_LOW


class ArchitectureError(ValueError):
    """A configuration asks for something the target machine cannot do."""


@dataclass(frozen=True)
class CostModel:
    """Instruction/device overhead per translation violation.

    The paper's Section III cost table: realising one majority node costs
    a single RM3 when one fanin serves as the intrinsically-inverted
    second operand ``Q`` for free and another can be overwritten as the
    destination ``Z``; each violation is repaired with helper
    instructions and (possibly) a helper device.  The numbers below are
    the repair bills the compiler's role enumeration minimises.
    """

    #: Extra instructions to invert a plain fanin into a helper ``Q``.
    q_invert_instructions: int = 2
    #: Extra instructions to initialise a requested ``Z`` with a constant.
    z_const_instructions: int = 1
    #: Extra instructions to copy/copy-invert a fanin into a fresh ``Z``.
    z_copy_instructions: int = 2
    #: Extra instructions to invert a complemented fanin for ``P``.
    p_invert_instructions: int = 2
    #: Extra devices for a ``Q`` helper inversion.
    q_invert_cells: int = 1
    #: Extra devices for a copied/constant destination.
    z_request_cells: int = 1
    #: Extra devices for a ``P`` helper inversion.
    p_invert_cells: int = 1

    def key(self) -> Tuple[int, ...]:
        return (
            self.q_invert_instructions,
            self.z_const_instructions,
            self.z_copy_instructions,
            self.p_invert_instructions,
            self.q_invert_cells,
            self.z_request_cells,
            self.p_invert_cells,
        )


@dataclass(frozen=True)
class Geometry:
    """Array shape and the wear-levelling constants tied to it."""

    #: Devices per word line.  ``None`` — unbounded crossbar, devices are
    #: individually addressable and provisioned one at a time.  An
    #: integer — word-addressed arrays: capacity is provisioned (and
    #: reported as ``#R``) a whole block at a time, and the free pool is
    #: searched block-first (see :class:`repro.plim.blocked.BlockedAllocator`).
    block_size: Optional[int] = None
    #: Hard device limit; allocation past it raises
    #: :class:`~repro.plim.allocator.CapacityExceededError`.  ``None``
    #: models the paper's unbounded arrays.  Word-addressed geometries
    #: require a whole number of lines.
    capacity: Optional[int] = None
    #: Writes between Start-Gap rotations (Qureshi et al. use 100).
    gap_interval: int = 100

    def key(self) -> Tuple:
        return (
            self.block_size,
            self.capacity,
            self.gap_interval,
        )

    def provisioned(self, cells: int) -> int:
        """Devices physically provisioned to hold *cells* values.

        Word-addressed geometries round up to whole blocks — the
        machine cannot manufacture a fraction of a word line.
        """
        if self.block_size is None or cells == 0:
            return cells
        blocks = -(-cells // self.block_size)  # ceil division
        return blocks * self.block_size


@dataclass(frozen=True)
class EnduranceModel:
    """What the machine can observe and enforce about wear."""

    #: Whether the controller exposes per-cell write counters.  Without
    #: them the minimum write count strategy has nothing to minimise —
    #: requesting it raises :class:`ArchitectureError`.
    wear_tracking: bool = True
    #: Whether the machine can retire devices at a write cap (the
    #: maximum write count strategy).  Requires wear tracking.
    supports_retirement: bool = True
    #: Physical per-cell write budget used by lifetime estimates
    #: (defaults to the best published RRAM endurance the paper cites).
    cell_endurance: int = TYPICAL_ENDURANCE_LOW

    def key(self) -> Tuple:
        return (
            self.wear_tracking,
            self.supports_retirement,
            self.cell_endurance,
        )


@dataclass(frozen=True)
class Architecture:
    """One PLiM machine model: ISA costs, geometry, endurance semantics.

    Immutable and hashable; two architectures with equal :meth:`key`
    compile any MIG to the identical program, so cached artefacts may be
    shared between them.  Instances are usually obtained from the
    registry (:func:`repro.arch.get_architecture`) rather than built by
    hand; see :mod:`repro.arch.registry` for how to register a custom
    machine.
    """

    name: str
    cost: CostModel = field(default_factory=CostModel)
    geometry: Geometry = field(default_factory=Geometry)
    endurance: EnduranceModel = field(default_factory=EnduranceModel)
    description: str = ""

    # -- identity ------------------------------------------------------

    def key(self) -> Tuple:
        """Semantic identity for cache keying (description excluded)."""
        return (
            self.name,
            self.cost.key(),
            self.geometry.key(),
            self.endurance.key(),
        )

    # -- capability checks ---------------------------------------------

    def validate_allocation(
        self, strategy: str, w_max: Optional[int]
    ) -> None:
        """Refuse allocation requests the machine cannot implement."""
        if strategy == "min_write" and not self.endurance.wear_tracking:
            raise ArchitectureError(
                f"architecture {self.name!r} has no per-cell wear counters; "
                "the minimum write count strategy needs them (pick the "
                "'endurance' architecture or strategy='naive')"
            )
        if w_max is not None:
            if not self.endurance.supports_retirement:
                raise ArchitectureError(
                    f"architecture {self.name!r} cannot retire devices; "
                    "a w_max write cap needs retirement support"
                )

    def validate_config(self, config) -> None:
        """Refuse an :class:`~repro.core.manager.EnduranceConfig` the
        machine cannot run (wrapper over :meth:`validate_allocation`)."""
        self.validate_allocation(
            config.allocation.strategy, config.allocation.w_max
        )

    def supports_config(self, config) -> bool:
        """Whether :meth:`validate_config` would accept *config*."""
        try:
            self.validate_config(config)
        except ArchitectureError:
            return False
        return True

    # -- machinery factories -------------------------------------------

    def make_allocator(self, strategy: str, w_max: Optional[int]):
        """Device-request machinery matching this machine's geometry.

        Crossbars get the flat :class:`~repro.plim.allocator.RramAllocator`;
        word-addressed geometries get the per-block
        :class:`~repro.plim.blocked.BlockedAllocator`.  The allocation
        request is validated against the endurance model first.
        """
        self.validate_allocation(strategy, w_max)
        from ..plim.allocator import RramAllocator

        if self.geometry.block_size is None:
            return RramAllocator(
                strategy, w_max, capacity=self.geometry.capacity
            )
        from ..plim.blocked import BlockedAllocator

        return BlockedAllocator(
            self.geometry.block_size,
            strategy,
            w_max,
            capacity=self.geometry.capacity,
        )

    def make_array(self, num_cells: int, *, wear_out: bool = False):
        """A behavioural :class:`~repro.plim.memory.RramArray` of this
        machine; ``wear_out=True`` arms the physical endurance budget."""
        from ..plim.memory import RramArray

        return RramArray(
            num_cells,
            endurance=self.endurance.cell_endurance if wear_out else None,
        )

    def estimate_lifetime(self, write_counts):
        """Program executions until the first cell dies on this machine."""
        from ..plim.memory import estimate_lifetime

        return estimate_lifetime(
            write_counts, endurance=self.endurance.cell_endurance
        )
