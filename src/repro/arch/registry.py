"""Named machine models and how a run picks one.

Three architectures ship built in:

``dac16``
    The machine the DAC'16 PLiM compiler assumes: an unbounded RM3
    crossbar whose controller exposes **no** wear counters — it cannot
    run the minimum write count strategy or retire devices, only the
    endurance-oblivious configurations.
``endurance`` (default)
    The reproduced paper's machine: the same crossbar with per-cell
    wear counters and device retirement, enabling the minimum/maximum
    write count strategies.  This is byte-identical to the behaviour
    before architectures existed.
``blocked``
    Word-addressed RRAM: devices come in word lines of eight, capacity
    is provisioned (and billed as ``#R``) a whole word at a time, and
    the free pool is searched block-first — the compile-time analogue of
    the row locality Start-Gap style schemes exploit at runtime.

Selection follows the harness-wide precedence **flag > environment >
default**: an explicit ``--arch``/``Session(arch=...)`` wins, else
``$REPRO_ARCH``, else ``endurance``.

Registering a custom machine
----------------------------
Build an :class:`~repro.arch.Architecture` and register it before
constructing sessions::

    from repro.arch import Architecture, Geometry, register_architecture

    register_architecture(Architecture(
        name="wide-word",
        geometry=Geometry(block_size=32, capacity=4096),
        description="32-cell word lines, 4k devices",
    ))

The name then works everywhere a built-in does: ``Session(arch=...)``,
``Flow.arch(...)``, ``--arch`` (if registered before the parser is
built), ``$REPRO_ARCH``, and the cache keys artefacts are stored under.
Worker processes resolve architectures by name, so custom machines must
be registered (e.g. at module import) in the workers too.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

from .model import Architecture, EnduranceModel, Geometry

#: Environment variable selecting the architecture (overridden by an
#: explicit ``--arch`` flag / ``Session(arch=...)`` argument).
ARCH_ENV_VAR = "REPRO_ARCH"

#: Registry name of the architecture used when nothing is selected.
DEFAULT_ARCHITECTURE = "endurance"

_REGISTRY: Dict[str, Architecture] = {}


def register_architecture(
    arch: Architecture, *, overwrite: bool = False
) -> Architecture:
    """Add *arch* to the registry under ``arch.name``; returns it.

    Registering an existing name is an error unless ``overwrite=True`` —
    silently replacing a machine mid-run would poison cache keys.
    """
    if not overwrite and arch.name in _REGISTRY:
        raise ValueError(
            f"architecture {arch.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[arch.name] = arch
    return arch


def get_architecture(name: str) -> Architecture:
    """Look an architecture up by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown architecture {name!r}; expected one of "
            f"{available_architectures()}"
        ) from None


def available_architectures() -> List[str]:
    """Registered architecture names, registration order."""
    return list(_REGISTRY)


def resolve_architecture(
    arch: Union[str, Architecture, None] = None,
) -> Architecture:
    """Uniform architecture resolution: explicit > ``$REPRO_ARCH`` > default.

    Mirrors :func:`repro.analysis.diskcache.resolve_cache_dir` so the
    precedence can never drift between the session knobs.  *arch* may be
    a registry name or an already-built :class:`Architecture` (returned
    as-is, registered or not).
    """
    if arch is not None:
        if isinstance(arch, Architecture):
            return arch
        return get_architecture(arch)
    env = os.environ.get(ARCH_ENV_VAR, "").strip()
    if env:
        return get_architecture(env)
    return get_architecture(DEFAULT_ARCHITECTURE)


def arch_from_env() -> Optional[str]:
    """The ``$REPRO_ARCH`` selection, if any (validated)."""
    env = os.environ.get(ARCH_ENV_VAR, "").strip()
    if not env:
        return None
    return get_architecture(env).name


# -- built-in machines ---------------------------------------------------

register_architecture(
    Architecture(
        name="dac16",
        endurance=EnduranceModel(
            wear_tracking=False, supports_retirement=False
        ),
        description=(
            "DAC'16 PLiM machine: unbounded crossbar, no wear counters "
            "(endurance-oblivious configurations only)"
        ),
    )
)

register_architecture(
    Architecture(
        name="endurance",
        description=(
            "the paper's machine: unbounded crossbar with per-cell wear "
            "counters and write-cap retirement (default)"
        ),
    )
)

register_architecture(
    Architecture(
        name="blocked",
        geometry=Geometry(block_size=8),
        description=(
            "word-addressed RRAM: 8-cell word lines, block-granular "
            "provisioning, block-first free-pool search"
        ),
    )
)
