"""repro.arch — the pluggable PLiM machine-model layer.

The compiler (:mod:`repro.plim`) targets an :class:`Architecture`: an
immutable description of the machine's RM3 cost table, array geometry,
and endurance semantics, plus factories for the matching device
allocator and behavioural array.  Named variants live in a registry —
``dac16`` (the DAC'16 compiler's endurance-oblivious crossbar),
``endurance`` (the paper's machine; the default), ``blocked``
(word-addressed arrays with per-block allocation) — and a run selects
one with the uniform precedence **flag > environment > default**
(``--arch`` / ``Session(arch=...)`` > ``$REPRO_ARCH`` > ``endurance``).

See :mod:`repro.arch.registry` for how to register a custom machine.
"""

from .model import (
    Architecture,
    ArchitectureError,
    CostModel,
    EnduranceModel,
    Geometry,
)
from .registry import (
    ARCH_ENV_VAR,
    DEFAULT_ARCHITECTURE,
    arch_from_env,
    available_architectures,
    get_architecture,
    register_architecture,
    resolve_architecture,
)

__all__ = [
    "ARCH_ENV_VAR",
    "Architecture",
    "ArchitectureError",
    "CostModel",
    "DEFAULT_ARCHITECTURE",
    "EnduranceModel",
    "Geometry",
    "arch_from_env",
    "available_architectures",
    "get_architecture",
    "register_architecture",
    "resolve_architecture",
]
