"""The :class:`RewritePass` registry: structural passes as first-class values.

The rewriting engine (:mod:`repro.mig.rewrite`) exposes its passes as
bare ``Mig -> Mig`` callables keyed by the paper's shorthand (``"M"``,
``"D_rl"``, …).  The optimiser layer needs more than a callable: a
strategy choosing between candidate passes wants to know what a pass
*is* (a human-readable description for reports and ``repro opt list``)
and what it *guarantees* (every built-in pass is an equivalence-
preserving axiom application — asserted wholesale by the per-pass
equivalence sweeps in the test suite).  This module wraps each pass in
an immutable :class:`RewritePass` carrying that metadata, plus the two
fixed script *cycles* as composite candidates, so cost-guided
strategies can weigh "one more endurance cycle" against an individual
axiom on equal footing.

Custom passes register like architectures and objectives do::

    from repro.opt import RewritePass, register_pass

    register_pass(RewritePass(
        name="my_pass",
        fn=my_mig_to_mig_function,
        description="what it rewrites",
    ))

Registered passes are visible to the ``greedy``/``budget`` strategies
(via :func:`candidate_passes`) and to ``repro opt list``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..mig.graph import Mig
from ..mig.rewrite import PASSES
from .scripts import ALGORITHM1_STEPS, ALGORITHM2_STEPS


@dataclass(frozen=True)
class RewritePass:
    """One rewriting step a strategy may apply, with metadata.

    ``kind`` distinguishes single axiom applications (``"atomic"``) from
    whole fixed-script cycles wrapped as one candidate (``"cycle"``).
    ``preserves_equivalence`` documents (and the test suite's randomized
    sweeps enforce, for built-ins) that applying the pass never changes
    the function computed at the primary outputs — the property that
    lets every strategy freely compose registered passes.
    """

    name: str
    fn: Callable[[Mig], Mig] = field(repr=False)
    description: str = ""
    kind: str = "atomic"
    preserves_equivalence: bool = True

    def apply(self, mig: Mig) -> Mig:
        """Run the pass (never mutates *mig*; returns a rebuilt graph)."""
        return self.fn(mig)


def _cycle(steps) -> Callable[[Mig], Mig]:
    """One full script cycle as a single composite transformation."""

    def run(mig: Mig) -> Mig:
        result = mig
        for name in steps:
            result = PASSES[name](result)
        return result

    return run


#: Registered passes, registration order (the tie-break order used by
#: the greedy/budget strategies).
_REGISTRY: Dict[str, RewritePass] = {}


def register_pass(
    rewrite_pass: RewritePass, *, overwrite: bool = False
) -> RewritePass:
    """Add a pass to the registry under ``rewrite_pass.name``; returns it."""
    if not overwrite and rewrite_pass.name in _REGISTRY:
        raise ValueError(
            f"rewrite pass {rewrite_pass.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[rewrite_pass.name] = rewrite_pass
    return rewrite_pass


def get_pass(name: str) -> RewritePass:
    """Look a pass up by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown rewrite pass {name!r}; expected one of "
            f"{available_passes()}"
        ) from None


def available_passes() -> List[str]:
    """Registered pass names, registration order."""
    return list(_REGISTRY)


def candidate_passes() -> List[RewritePass]:
    """The candidate set the search strategies choose from (all
    registered passes, registration order)."""
    return list(_REGISTRY.values())


def atomic_passes() -> List[RewritePass]:
    """Only the single-axiom passes (the equivalence-sweep surface)."""
    return [p for p in _REGISTRY.values() if p.kind == "atomic"]


# -- built-in passes -----------------------------------------------------

_DESCRIPTIONS = {
    "M": "Omega.M: node-creation identities + structural hashing",
    "D_rl": "Omega.D(R->L): factor shared operand pairs out of fanins",
    "A": "Omega.A: associativity swap through shared operands",
    "Psi_C": "Psi.C: replace an inner complement of an outer operand",
    "I_rl_1_3": "Omega.I(R->L)(1-3): normalise 2/3-complement nodes",
    "I_rl": "Omega.I(R->L): remove triple-complemented nodes",
    "P": "polarity local search: re-choose each gate's stored phase",
}

for _name, _fn in PASSES.items():
    register_pass(
        RewritePass(name=_name, fn=_fn, description=_DESCRIPTIONS[_name])
    )

register_pass(
    RewritePass(
        name="cycle:dac16",
        fn=_cycle(ALGORITHM1_STEPS),
        description="one full Algorithm 1 (DAC'16) script cycle",
        kind="cycle",
    )
)
register_pass(
    RewritePass(
        name="cycle:endurance",
        fn=_cycle(ALGORITHM2_STEPS),
        description="one full Algorithm 2 (endurance-aware) script cycle",
        kind="cycle",
    )
)
