"""The pass manager: optimizer specs, strategies, and resolution.

A run's rewriting behaviour is one :class:`OptimizerSpec` — *which
strategy* walks the pass space, *which objective* it minimises, and how
much look-ahead it may spend — resolved with the harness-wide
precedence **flag > environment > default**: an explicit
``--opt``/``Session(opt=...)`` wins, else ``$REPRO_OPT``, else the
``script`` strategy (the paper's fixed pipelines, byte-identical to the
pre-optimizer behaviour).

Three strategies ship built in:

``script`` (default)
    The legacy fixed pipelines: the configuration's rewriting script
    (``none``/``dac16``/``endurance``) replayed exactly as
    :mod:`repro.opt.scripts` defines it.  Parity-tested byte-identical
    to the historic :mod:`repro.core.rewriting` path.
``greedy``
    Cost-guided hill climbing: each round applies every candidate pass
    (the atomic axioms *and* the two script cycles as composite
    candidates) to the current graph, scores the results under the
    objective, and keeps the strictly best one; stops when no candidate
    improves.  With the architecture-aware ``write_cost`` objective
    this is rewriting steered by the target machine's cost model.
``budget``
    Bounded look-ahead search over the atomic axioms: each round
    explores every pass sequence up to ``lookahead`` deep and commits
    to the best strictly improving one — it can cross plateaus a
    single-step greedy cannot (apply a pass that pays off only after a
    second pass).  The effort knob bounds the number of rounds.

Specs parse from compact strings (``"greedy"``,
``"greedy:node_count"``, ``"budget:write_cost@3"``); the same strings
work for ``--opt``, ``$REPRO_OPT``, ``Session(opt=...)``,
``Flow.optimize(...)``, and ship across ``run_matrix`` worker
boundaries inside a :class:`repro.flow.SessionSpec`.

Strategies are registered like architectures and objectives
(:func:`register_strategy`), so a custom search is a class away.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..arch import Architecture
from ..mig.graph import Mig
from .objectives import DEFAULT_OBJECTIVE, Objective, get_objective
from .passes import atomic_passes, candidate_passes
from .scripts import DEFAULT_EFFORT, rewrite

#: Environment variable selecting the optimizer (overridden by an
#: explicit ``--opt`` flag / ``Session(opt=...)`` argument).
OPT_ENV_VAR = "REPRO_OPT"

#: Spec string used when nothing is selected (the legacy pipelines).
DEFAULT_OPTIMIZER = "script"

#: Default look-ahead depth of the ``budget`` strategy.
DEFAULT_LOOKAHEAD = 2


class Strategy:
    """How the pass manager walks the rewriting space.

    Subclasses implement :meth:`run`; *script* and *effort* come from
    the endurance configuration (the fixed pipelines consume both, the
    search strategies use *effort* as their round budget), *objective*
    and *lookahead* from the :class:`OptimizerSpec`.
    """

    name: str = ""
    #: Whether the strategy consumes the spec's look-ahead depth.  The
    #: canonical spec label and the cache key carry ``@lookahead`` only
    #: for strategies that declare it — a custom registered strategy
    #: that uses the knob must set this, or two depths would collide in
    #: the caches and lose the depth across worker boundaries.
    uses_lookahead: bool = False

    def run(
        self,
        mig: Mig,
        *,
        script: str,
        effort: int,
        objective: Objective,
        arch: Architecture,
        lookahead: int,
    ) -> Mig:
        raise NotImplementedError


class ScriptStrategy(Strategy):
    """The paper's fixed pipelines, exactly as published (default)."""

    name = "script"

    def run(self, mig, *, script, effort, objective, arch, lookahead):
        return rewrite(mig, script, effort=effort)


class GreedyStrategy(Strategy):
    """Per-round best-of-candidate-passes under the objective.

    Ties break toward the earlier registered candidate, and a round
    only commits on a *strict* score improvement, so runs are
    deterministic and terminate (scores are non-negative integers).
    """

    name = "greedy"

    #: Safety valve: rounds per unit of effort.  Strict integer descent
    #: terminates on its own long before this in practice.
    ROUNDS_PER_EFFORT = 8

    def run(self, mig, *, script, effort, objective, arch, lookahead):
        if script == "none":
            return mig.cleanup()
        current = mig.cleanup()
        score = objective.score(current, arch)
        for _ in range(max(1, effort) * self.ROUNDS_PER_EFFORT):
            best = None
            best_score = score
            for candidate in candidate_passes():
                result = candidate.apply(current)
                result_score = objective.score(result, arch)
                if result_score < best_score:
                    best, best_score = result, result_score
            if best is None:
                break
            current, score = best, best_score
        return current.cleanup()


class BudgetStrategy(Strategy):
    """Bounded look-ahead search over the atomic axiom passes.

    Each round explores every pass sequence up to *lookahead* deep from
    the current graph and commits to the end point of the best strictly
    improving one.  Unlike :class:`GreedyStrategy` it can cross score
    plateaus — a pass that does not pay off until a follow-up pass runs
    is visible within the horizon.  The effort knob bounds the rounds,
    so the total work is ``O(effort * |passes| ** lookahead)`` pass
    applications.
    """

    name = "budget"
    uses_lookahead = True

    ROUNDS_PER_EFFORT = 4

    def run(self, mig, *, script, effort, objective, arch, lookahead):
        if script == "none":
            return mig.cleanup()
        passes = atomic_passes()
        current = mig.cleanup()
        score = objective.score(current, arch)
        for _ in range(max(1, effort) * self.ROUNDS_PER_EFFORT):
            best = None
            best_score = score
            # Depth-first over pass sequences; the best end point wins
            # regardless of depth (a shorter improving sequence beats a
            # longer sequence reaching the same score — it is found
            # first, and only strict improvements replace the best).
            stack = [(current, 0)]
            while stack:
                graph, depth = stack.pop()
                for candidate in passes:
                    result = candidate.apply(graph)
                    result_score = objective.score(result, arch)
                    if result_score < best_score:
                        best, best_score = result, result_score
                    if depth + 1 < lookahead:
                        stack.append((result, depth + 1))
            if best is None:
                break
            current, score = best, best_score
        return current.cleanup()


#: Registered strategies, registration order.
_STRATEGIES: Dict[str, Strategy] = {}


def register_strategy(
    strategy: Strategy, *, overwrite: bool = False
) -> Strategy:
    """Add *strategy* to the registry under ``strategy.name``."""
    if not strategy.name:
        raise ValueError("strategy needs a non-empty name")
    if not overwrite and strategy.name in _STRATEGIES:
        raise ValueError(
            f"strategy {strategy.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _STRATEGIES[strategy.name] = strategy
    return strategy


def get_strategy(name: str) -> Strategy:
    """Look a strategy up by registry name."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown optimizer strategy {name!r}; expected one of "
            f"{available_strategies()}"
        ) from None


def available_strategies() -> List[str]:
    """Registered strategy names, registration order."""
    return list(_STRATEGIES)


register_strategy(ScriptStrategy())
register_strategy(GreedyStrategy())
register_strategy(BudgetStrategy())


@dataclass(frozen=True)
class OptimizerSpec:
    """One optimizer selection: strategy x objective x look-ahead.

    Immutable and hashable; :meth:`parse` and :meth:`label` round-trip
    through the compact string form used by ``--opt`` / ``$REPRO_OPT``
    and shipped across process boundaries in a
    :class:`repro.flow.SessionSpec`.
    """

    strategy: str = DEFAULT_OPTIMIZER
    objective: str = DEFAULT_OBJECTIVE
    lookahead: int = DEFAULT_LOOKAHEAD

    def __post_init__(self) -> None:
        get_strategy(self.strategy)  # fail fast on unknown names
        get_objective(self.objective)
        if self.lookahead < 1:
            raise ValueError(
                f"look-ahead must be at least 1, got {self.lookahead}"
            )

    @classmethod
    def parse(cls, text: Union[str, "OptimizerSpec"]) -> "OptimizerSpec":
        """Spec from its compact string form.

        ``STRATEGY[:OBJECTIVE][@LOOKAHEAD]`` — e.g. ``"script"``,
        ``"greedy"``, ``"greedy:node_count"``, ``"budget:write_cost@3"``.
        Omitted parts take the defaults (``write_cost``, look-ahead 2).
        """
        if isinstance(text, cls):
            return text
        body = text.strip()
        lookahead = DEFAULT_LOOKAHEAD
        if "@" in body:
            body, _, depth = body.partition("@")
            try:
                lookahead = int(depth)
            except ValueError:
                raise ValueError(
                    f"invalid optimizer look-ahead {depth!r} in {text!r}"
                ) from None
        strategy, _, objective = body.partition(":")
        if not strategy:
            raise ValueError(f"empty optimizer spec {text!r}")
        return cls(
            strategy=strategy,
            objective=objective or DEFAULT_OBJECTIVE,
            lookahead=lookahead,
        )

    def label(self) -> str:
        """Canonical compact string form (round-trips through parse)."""
        if self.strategy == "script":
            return "script"
        text = f"{self.strategy}:{self.objective}"
        if get_strategy(self.strategy).uses_lookahead:
            text += f"@{self.lookahead}"
        return text

    def __str__(self) -> str:
        return self.label()

    def key(self) -> Tuple:
        """Semantic identity for compiled-artefact cache keying.

        The ``script`` strategy collapses to a constant: its result is
        fully determined by the configuration's script and effort, which
        the configuration key already carries.  Look-ahead is part of
        the identity exactly for strategies that consume it.
        """
        if self.strategy == "script":
            return ("script",)
        if get_strategy(self.strategy).uses_lookahead:
            return (self.strategy, self.objective, self.lookahead)
        return (self.strategy, self.objective)


#: An optimizer request: a spec string, an :class:`OptimizerSpec`, or
#: ``None`` for the ambient (``$REPRO_OPT``, else default) selection.
OptLike = Union[str, OptimizerSpec, None]


def resolve_optimizer(opt: OptLike = None) -> OptimizerSpec:
    """Uniform optimizer resolution: explicit > ``$REPRO_OPT`` > default.

    Mirrors :func:`repro.arch.resolve_architecture` so the precedence
    can never drift between the session knobs.
    """
    if opt is not None:
        return OptimizerSpec.parse(opt)
    env = os.environ.get(OPT_ENV_VAR, "").strip()
    if env:
        return OptimizerSpec.parse(env)
    return OptimizerSpec()


def opt_from_env() -> Optional[str]:
    """The ``$REPRO_OPT`` selection, if any (validated, canonical)."""
    env = os.environ.get(OPT_ENV_VAR, "").strip()
    if not env:
        return None
    return OptimizerSpec.parse(env).label()


class Optimizer:
    """An :class:`OptimizerSpec` bound to a target machine: the object
    the rewrite stage runs and the caches key rewriting artefacts by.

    The bound architecture matters exactly when the objective is
    architecture-sensitive (the machine's cost model steers the
    search); :meth:`rewrite_key` reflects that, so rewriting results
    are shared across machines whenever they legitimately can be.
    """

    def __init__(self, spec: OptLike, arch: Architecture) -> None:
        self.spec = resolve_optimizer(spec)
        self.arch = arch
        self.strategy = get_strategy(self.spec.strategy)
        self.objective = get_objective(self.spec.objective)

    def run(
        self, mig: Mig, script: str, effort: int = DEFAULT_EFFORT
    ) -> Mig:
        """Optimise *mig*.

        *script* and *effort* come from the endurance configuration:
        the ``script`` strategy replays the named pipeline, the search
        strategies use *effort* as their round budget — and ``"none"``
        keeps meaning *no rewriting* under every strategy, so baseline
        configurations stay baselines in optimizer sweeps.
        """
        return self.strategy.run(
            mig,
            script=script,
            effort=effort,
            objective=self.objective,
            arch=self.arch,
            lookahead=self.spec.lookahead,
        )

    def rewrite_key(self, script: str, effort: int) -> Tuple:
        """Cache identity of this optimizer's rewriting result.

        Script-driven results are keyed by (script, effort) exactly as
        the legacy cache was; search results drop the script (the
        search never consults it) and gain the strategy, objective,
        look-ahead, and — for architecture-sensitive objectives — the
        machine key.
        """
        if self.spec.strategy == "script" or script == "none":
            return ("script", script, effort)
        key = (*self.spec.key(), effort)
        if self.objective.arch_sensitive:
            key += (self.arch.key(),)
        return key

    def key(self) -> Tuple:
        """Spec identity for compiled-artefact keys (see
        :meth:`OptimizerSpec.key`)."""
        return self.spec.key()

    def score(self, mig: Mig) -> int:
        """This optimizer's objective score of *mig* on its machine."""
        return self.objective.score(mig, self.arch)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Optimizer({self.spec.label()!r}, arch={self.arch.name!r})"
