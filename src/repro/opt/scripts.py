"""The two fixed MIG rewriting scripts of the reproduced paper.

**Algorithm 1** — the rewriting used inside the PLiM compiler of
[Soeken et al., DAC'16]; node minimisation first, complemented-edge
control at the end of each cycle::

    for (cycles = 0; cycles < effort; cycles++):
        Omega.M ; Omega.D(R->L)
        Omega.A ; Psi.C
        Omega.M ; Omega.D(R->L)
        Omega.I(R->L)(1-3)
        Omega.I(R->L)

**Algorithm 2** — the endurance-aware rewriting proposed by the paper.
``Psi.C`` is dropped (it destroys single-complemented-edge nodes, the
ideal RM3 shape) and ``Omega.A`` is sandwiched between two
inverter-propagation phases so reshaping happens on complement-normalised
structure; a final ``Omega.I(R->L)`` removes triple-complemented nodes::

    for (cycles = 0; cycles < effort; cycles++):
        Omega.M ; Omega.D(R->L)
        Omega.I(R->L)(1-3)
        Omega.I(R->L)
        Omega.A
        Omega.I(R->L)(1-3)
        Omega.I(R->L)
        Omega.M ; Omega.D(R->L)
        Omega.I(R->L)

The paper sets ``effort = 5`` for all experiments; so do the defaults
here.  These fixed pipelines are the ``script`` strategy of the
cost-guided optimisation layer (:mod:`repro.opt.engine`); the historic
module :mod:`repro.core.rewriting` survives as a deprecated shim over
this one.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..mig.graph import Mig
from ..mig.rewrite import apply_script

#: The paper's rewriting effort (number of script cycles).
DEFAULT_EFFORT = 5

#: Algorithm 1 — rewriting script of the DAC'16 PLiM compiler.
ALGORITHM1_STEPS: List[str] = [
    "M",
    "D_rl",
    "A",
    "Psi_C",
    "M",
    "D_rl",
    "I_rl_1_3",
    "I_rl",
]

#: Algorithm 2 — the paper's endurance-aware rewriting script.
ALGORITHM2_STEPS: List[str] = [
    "M",
    "D_rl",
    "I_rl_1_3",
    "I_rl",
    "A",
    "I_rl_1_3",
    "I_rl",
    "M",
    "D_rl",
    "I_rl",
]

#: Script registry: configuration name -> pass sequence (``None`` = no
#: rewriting, the naive baseline).
SCRIPTS: Dict[str, Optional[List[str]]] = {
    "none": None,
    "dac16": ALGORITHM1_STEPS,
    "endurance": ALGORITHM2_STEPS,
}


def rewrite_dac16(mig: Mig, effort: int = DEFAULT_EFFORT) -> Mig:
    """Run Algorithm 1 for *effort* cycles."""
    return apply_script(mig, ALGORITHM1_STEPS, cycles=effort)


def rewrite_endurance_aware(mig: Mig, effort: int = DEFAULT_EFFORT) -> Mig:
    """Run Algorithm 2 (the paper's endurance-aware script)."""
    return apply_script(mig, ALGORITHM2_STEPS, cycles=effort)


def rewrite(mig: Mig, script: str, effort: int = DEFAULT_EFFORT) -> Mig:
    """Run a registered script by name (``"none"`` returns a cleanup copy)."""
    if script not in SCRIPTS:
        raise ValueError(
            f"unknown rewriting script {script!r}; expected one of "
            f"{sorted(SCRIPTS)}"
        )
    steps = SCRIPTS[script]
    if steps is None:
        return mig.cleanup()
    return apply_script(mig, steps, cycles=effort)
