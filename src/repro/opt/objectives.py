"""Pluggable cost :class:`Objective`\\ s the rewriting strategies minimise.

The paper's central argument is that MIG rewriting for PLiM should be
driven by the *target cost* — RM3 instruction count and RRAM write
pressure — rather than generic size/depth heuristics.  An objective is
a cheap, compile-free scoring function ``score(mig, arch) -> int``
(lower is better) a search strategy can evaluate once per candidate
pass; three ship built in:

``node_count``
    Live majority gates — the classic logic-synthesis size objective.
    Architecture-oblivious.
``depth``
    Longest PI-to-PO path — the classic delay objective.
    Architecture-oblivious.
``write_cost`` (default)
    Architecture-aware estimated write pressure: every node is priced
    through the target machine's :class:`~repro.arch.CostModel` by
    replaying the compiler's Section III violation analysis *statically*
    (no selection, no allocation, no program emission).  A machine whose
    inversion or copy repairs cost differently re-prices the same graph,
    so the optimiser steers toward structures that machine compiles
    cheaply.

The write-cost estimate per majority node mirrors the compiler's role
assignment: one RM3 (one device write) when one complemented fanin can
serve as the intrinsically inverted operand ``Q`` and a non-complemented
single-fanout gate fanin can be overwritten as the destination ``Z``;
each violation adds the cost model's repair instructions (a missing
complement needs a ``Q`` helper inversion, each surplus complement a
``P`` inversion, a missing overwritable destination a copy/constant
initialisation).  It is an *estimate* — selection order and allocation
can still shift the exact bill — but it is monotone in the violations
the paper's Algorithm 2 targets, and it needs one linear scan.

Custom objectives register like architectures do::

    from repro.opt import Objective, register_objective

    register_objective(Objective(
        name="complement_edges",
        fn=lambda mig, arch: mig.num_complemented_edges(),
        description="total complemented edges",
    ))

and then work everywhere a built-in does: ``--opt greedy:complement_edges``,
``OptimizerSpec(objective="complement_edges")``, and the cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..arch import Architecture
from ..mig.graph import Mig
from ..mig.rewrite import rm3_gate_cost


@dataclass(frozen=True)
class Objective:
    """A named cost function strategies minimise (lower is better).

    ``fn`` maps ``(mig, arch)`` to an integer score; architecture-
    oblivious objectives simply ignore the second argument.
    ``arch_sensitive`` tells the cache layer whether rewriting results
    under this objective must be keyed by the target machine.
    """

    name: str
    fn: Callable[[Mig, Architecture], int] = field(repr=False)
    description: str = ""
    arch_sensitive: bool = False

    def score(self, mig: Mig, arch: Architecture) -> int:
        return self.fn(mig, arch)


def estimated_write_cost(mig: Mig, arch: Architecture) -> int:
    """Estimated RM3 instructions (~device writes) to realise *mig* on
    *arch* — the static replay of the compiler's violation pricing.

    Per-gate pricing lives in :func:`repro.mig.rewrite.rm3_gate_cost`
    (one implementation, shared with the polarity pass); this objective
    feeds it the target machine's repair bills, so a different cost
    table re-prices the same graph.  Constant fanins follow the machine
    semantics: either polarity of a constant edge is violation-free, a
    constant serves as the free ``Q``, and a constant destination is a
    *z_const* rather than a *z_copy*.
    """
    cost = arch.cost
    refs = mig._fanout_counts()
    is_gate = mig.is_gate
    q = cost.q_invert_instructions
    p = cost.p_invert_instructions
    z_copy = cost.z_copy_instructions
    z_const = cost.z_const_instructions
    total = 0
    # flat_gates carries complement attributes as XOR masks (0 / -1);
    # `& 1` recovers the complement bit.
    for _node, na, xa, nb, xb, nc, xc in mig.flat_gates():
        total += rm3_gate_cost(
            ((na, xa & 1), (nb, xb & 1), (nc, xc & 1)),
            refs,
            is_gate,
            q_invert=q, p_invert=p, z_copy=z_copy, z_const=z_const,
        )
    return total


#: Registered objectives, registration order.
_REGISTRY: Dict[str, Objective] = {}


def register_objective(
    objective: Objective, *, overwrite: bool = False
) -> Objective:
    """Add *objective* to the registry under ``objective.name``."""
    if not overwrite and objective.name in _REGISTRY:
        raise ValueError(
            f"objective {objective.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[objective.name] = objective
    return objective


def get_objective(name: str) -> Objective:
    """Look an objective up by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown objective {name!r}; expected one of "
            f"{available_objectives()}"
        ) from None


def available_objectives() -> List[str]:
    """Registered objective names, registration order."""
    return list(_REGISTRY)


#: Default objective of the cost-guided strategies.
DEFAULT_OBJECTIVE = "write_cost"


register_objective(
    Objective(
        name="node_count",
        fn=lambda mig, arch: mig.num_live_gates(),
        description="live majority gates (classic size objective)",
    )
)
register_objective(
    Objective(
        name="depth",
        fn=lambda mig, arch: mig.depth(),
        description="longest PI-to-PO path (classic delay objective)",
    )
)
register_objective(
    Objective(
        name="write_cost",
        fn=estimated_write_cost,
        description=(
            "estimated RM3 instructions / device writes, priced through "
            "the target architecture's cost model (default)"
        ),
        arch_sensitive=True,
    )
)
