"""repro.opt — cost-guided, architecture-aware MIG rewriting.

The optimisation layer the compile pipelines route their rewrite stage
through.  Three orthogonal registries compose into an optimizer:

* :class:`RewritePass` (:mod:`repro.opt.passes`) — the structural
  passes, each an equivalence-preserving ``Mig -> Mig`` axiom
  application with metadata; the paper's fixed script cycles are also
  wrapped as composite passes.
* :class:`Objective` (:mod:`repro.opt.objectives`) — compile-free cost
  functions (node count, depth, and the architecture-aware estimated
  write cost priced through the target machine's
  :class:`~repro.arch.CostModel`).
* :class:`Strategy` (:mod:`repro.opt.engine`) — how the pass manager
  walks the space: ``script`` (the paper's fixed pipelines,
  byte-identical to the legacy behaviour), ``greedy`` (per-round
  best-of-candidates), ``budget`` (bounded look-ahead search).

One :class:`OptimizerSpec` names a (strategy, objective, look-ahead)
triple; :func:`resolve_optimizer` applies the harness-wide **flag >
environment > default** precedence (``--opt`` / ``$REPRO_OPT`` /
``script``), and an :class:`Optimizer` binds a spec to a target
:class:`~repro.arch.Architecture` for execution and cache keying.

The historic script entry points live on in :mod:`repro.opt.scripts`;
:mod:`repro.core.rewriting` is a deprecated shim over them.
"""

from .engine import (
    DEFAULT_LOOKAHEAD,
    DEFAULT_OPTIMIZER,
    OPT_ENV_VAR,
    OptLike,
    Optimizer,
    OptimizerSpec,
    Strategy,
    available_strategies,
    get_strategy,
    opt_from_env,
    register_strategy,
    resolve_optimizer,
)
from .objectives import (
    DEFAULT_OBJECTIVE,
    Objective,
    available_objectives,
    estimated_write_cost,
    get_objective,
    register_objective,
)
from .passes import (
    RewritePass,
    atomic_passes,
    available_passes,
    candidate_passes,
    get_pass,
    register_pass,
)
from .scripts import (
    ALGORITHM1_STEPS,
    ALGORITHM2_STEPS,
    DEFAULT_EFFORT,
    SCRIPTS,
    rewrite,
    rewrite_dac16,
    rewrite_endurance_aware,
)

__all__ = [
    "ALGORITHM1_STEPS",
    "ALGORITHM2_STEPS",
    "DEFAULT_EFFORT",
    "DEFAULT_LOOKAHEAD",
    "DEFAULT_OBJECTIVE",
    "DEFAULT_OPTIMIZER",
    "OPT_ENV_VAR",
    "Objective",
    "OptLike",
    "Optimizer",
    "OptimizerSpec",
    "RewritePass",
    "SCRIPTS",
    "Strategy",
    "atomic_passes",
    "available_objectives",
    "available_passes",
    "available_strategies",
    "candidate_passes",
    "estimated_write_cost",
    "get_objective",
    "get_pass",
    "get_strategy",
    "opt_from_env",
    "register_objective",
    "register_pass",
    "register_strategy",
    "resolve_optimizer",
    "rewrite",
    "rewrite_dac16",
    "rewrite_endurance_aware",
]
