"""Node-selection strategies for the PLiM compiler.

The compiler repeatedly picks the next *computable* MIG node (all children
already computed) from a candidate set.  The order decides how long values
sit in RRAM devices and therefore how writes distribute:

* :class:`TopoSelection` — plain topological (creation) order; the "naive"
  baseline of the paper;
* :class:`Dac16Selection` — the area/latency-driven order of
  [Soeken et al., DAC'16]: maximise the number of devices *released* by
  the pick, break ties by the smaller fanout level index;
* :class:`EnduranceAwareSelection` — **Algorithm 3** of the reproduced
  paper: reverse the priorities — pick the candidate with the *smallest
  fanout level index* first (shortest storage duration, avoiding "blocked
  RRAMs" as in the paper's Fig. 2), break ties by most released devices.

A strategy computes an orderable key per candidate.  Keys that depend on
the live reference counts (the "releasing" component) are *dynamic*: they
can change while a node waits in the candidate set, so the compiler
revalidates them lazily on pop.
"""

from __future__ import annotations

from typing import List, Protocol, Tuple


class CompilerStateView(Protocol):
    """The slice of compiler state a selection strategy may inspect."""

    refs: List[int]
    fanout_level_index: List[int]

    def releasing_count(self, node: int) -> int:
        """Devices that would be freed by computing *node* now."""
        ...


class SelectionStrategy:
    """Base class: topological order, static keys."""

    #: Whether keys depend on mutable compiler state (lazy revalidation).
    dynamic = False
    name = "topo"

    def key(self, state: CompilerStateView, node: int) -> Tuple[int, ...]:
        """Orderable priority key; *smaller* keys are selected first."""
        return (node,)


class TopoSelection(SelectionStrategy):
    """Compute nodes in topological creation order (naive baseline)."""


class Dac16Selection(SelectionStrategy):
    """Selection of the PLiM compiler [Soeken et al., DAC'16].

    Primary: maximum number of releasing RRAMs (frees devices for reuse,
    minimising ``#R``).  Tie-break: smaller fanout level index (the value
    is consumed sooner, so its device is blocked for less time).
    """

    dynamic = True
    name = "dac16"

    def key(self, state: CompilerStateView, node: int) -> Tuple[int, ...]:
        return (
            -state.releasing_count(node),
            state.fanout_level_index[node],
            node,
        )


class EnduranceAwareSelection(SelectionStrategy):
    """Algorithm 3: endurance-aware node selection.

    Primary: smallest fanout level index — candidates whose values are
    consumed soonest are computed first, so no device is produced long
    before its last consumer ("blocked RRAM" mitigation).  Tie-break:
    maximum number of releasing RRAMs.
    """

    dynamic = True
    name = "endurance"

    def key(self, state: CompilerStateView, node: int) -> Tuple[int, ...]:
        return (
            state.fanout_level_index[node],
            -state.releasing_count(node),
            node,
        )


class ReleasingOnlySelection(SelectionStrategy):
    """Ablation: releasing-count key alone (no level tie-break)."""

    dynamic = True
    name = "releasing-only"

    def key(self, state: CompilerStateView, node: int) -> Tuple[int, ...]:
        return (-state.releasing_count(node), node)


class LevelOnlySelection(SelectionStrategy):
    """Ablation: fanout-level key alone (no releasing tie-break)."""

    name = "level-only"

    def key(self, state: CompilerStateView, node: int) -> Tuple[int, ...]:
        return (state.fanout_level_index[node], node)


#: Strategy registry used by configuration presets and the CLI.
SELECTIONS = {
    cls.name: cls
    for cls in (
        TopoSelection,
        Dac16Selection,
        EnduranceAwareSelection,
        ReleasingOnlySelection,
        LevelOnlySelection,
    )
}


def make_selection(name: str) -> SelectionStrategy:
    """Instantiate a selection strategy by registry name."""
    try:
        return SELECTIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown selection strategy {name!r}; expected one of "
            f"{sorted(SELECTIONS)}"
        ) from None
