"""Endurance management for PLiM — the paper's primary contribution.

Four techniques, applied jointly:

1. minimum write count strategy (:mod:`repro.core.policies`),
2. maximum write count strategy (:mod:`repro.core.policies`),
3. endurance-aware MIG rewriting, Algorithm 2 (now part of the
   cost-guided optimizer layer, :mod:`repro.opt`;
   :mod:`repro.core.rewriting` is a deprecated shim),
4. endurance-aware node selection, Algorithm 3
   (:mod:`repro.core.selection`),

wired together by :mod:`repro.core.manager` and measured by
:mod:`repro.core.stats`.
"""

from .manager import (
    CompilationResult,
    EnduranceConfig,
    PRESETS,
    compile_with_management,
    full_management,
)
from .policies import (
    AllocationPolicy,
    MIN_WRITE_ALLOCATION,
    NAIVE_ALLOCATION,
    capped_allocation,
)
# Historic re-exports; the real home is the optimizer layer now (the
# repro.core.rewriting shim warns on call, these do not).
from ..opt.scripts import (
    ALGORITHM1_STEPS,
    ALGORITHM2_STEPS,
    DEFAULT_EFFORT,
    SCRIPTS,
    rewrite,
    rewrite_dac16,
    rewrite_endurance_aware,
)
from .selection import (
    Dac16Selection,
    EnduranceAwareSelection,
    SELECTIONS,
    SelectionStrategy,
    TopoSelection,
    make_selection,
)
from .stats import (
    WriteTrafficStats,
    average_improvement,
    gini_coefficient,
    improvement_percent,
    normalized_stdev,
    write_histogram,
)

__all__ = [
    "ALGORITHM1_STEPS",
    "ALGORITHM2_STEPS",
    "AllocationPolicy",
    "CompilationResult",
    "DEFAULT_EFFORT",
    "Dac16Selection",
    "EnduranceAwareSelection",
    "EnduranceConfig",
    "MIN_WRITE_ALLOCATION",
    "NAIVE_ALLOCATION",
    "PRESETS",
    "SCRIPTS",
    "SELECTIONS",
    "SelectionStrategy",
    "TopoSelection",
    "WriteTrafficStats",
    "average_improvement",
    "capped_allocation",
    "compile_with_management",
    "full_management",
    "gini_coefficient",
    "improvement_percent",
    "make_selection",
    "normalized_stdev",
    "rewrite",
    "rewrite_dac16",
    "rewrite_endurance_aware",
    "write_histogram",
]
