"""Deprecated shim over :mod:`repro.opt.scripts`.

The paper's two fixed rewriting scripts (Algorithm 1, the DAC'16 PLiM
compiler pipeline, and Algorithm 2, the endurance-aware pipeline) used
to live here as the *only* rewriting entry point.  They moved into the
cost-guided optimisation layer — :mod:`repro.opt.scripts` holds the
pipelines, :mod:`repro.opt.engine` the strategies that generalise them
— and this module survives only so existing imports keep working.

The constants re-export silently (they are the same objects); the
callables warn: new code should run scripts through the optimizer layer
(``Flow.optimize("script")`` is the default everywhere) or call
:func:`repro.opt.rewrite` directly.  The ``script`` strategy is
parity-tested byte-identical to these entry points.
"""

from __future__ import annotations

import warnings

from ..mig.graph import Mig
from ..opt.scripts import (
    ALGORITHM1_STEPS,
    ALGORITHM2_STEPS,
    DEFAULT_EFFORT,
    SCRIPTS,
)
from ..opt import scripts as _scripts

#: Everything here is a compatibility re-export or a warning wrapper.
__all__ = [
    "ALGORITHM1_STEPS",
    "ALGORITHM2_STEPS",
    "DEFAULT_EFFORT",
    "SCRIPTS",
    "rewrite",
    "rewrite_dac16",
    "rewrite_endurance_aware",
]


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.core.rewriting.{name}() is deprecated; use "
        f"repro.opt.{name} (or route rewriting through repro.flow, "
        "whose default 'script' strategy is byte-identical)",
        DeprecationWarning,
        stacklevel=3,
    )


def rewrite_dac16(mig: Mig, effort: int = DEFAULT_EFFORT) -> Mig:
    """Deprecated alias of :func:`repro.opt.rewrite_dac16`."""
    _deprecated("rewrite_dac16")
    return _scripts.rewrite_dac16(mig, effort=effort)


def rewrite_endurance_aware(mig: Mig, effort: int = DEFAULT_EFFORT) -> Mig:
    """Deprecated alias of :func:`repro.opt.rewrite_endurance_aware`."""
    _deprecated("rewrite_endurance_aware")
    return _scripts.rewrite_endurance_aware(mig, effort=effort)


def rewrite(mig: Mig, script: str, effort: int = DEFAULT_EFFORT) -> Mig:
    """Deprecated alias of :func:`repro.opt.rewrite`."""
    _deprecated("rewrite")
    return _scripts.rewrite(mig, script, effort=effort)
