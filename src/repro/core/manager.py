"""Endurance-managed compilation: configurations, presets, pipeline.

Ties the pieces together exactly the way the paper's evaluation does: a
*configuration* is a choice of

1. MIG rewriting script (none / Algorithm 1 / Algorithm 2),
2. node-selection strategy (topological / DAC'16 / Algorithm 3),
3. device-allocation policy (naive / min-write, optional write cap),

and :func:`compile_with_management` runs rewriting, compilation, and
statistics in one call.  The named presets in :data:`PRESETS` are the five
incremental columns of Table I plus the capped full-management
configurations of Table III.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..mig.graph import Mig
from ..opt.scripts import DEFAULT_EFFORT
from ..plim.compiler import PlimCompiler
from ..plim.isa import Program
from .policies import AllocationPolicy
from .selection import make_selection
from .stats import WriteTrafficStats


@dataclass(frozen=True)
class EnduranceConfig:
    """One endurance-management configuration (one table column).

    Attributes
    ----------
    name:
        Label used in reports.
    rewriting:
        ``"none"``, ``"dac16"`` (Algorithm 1), or ``"endurance"``
        (Algorithm 2).
    selection:
        ``"topo"``, ``"dac16"``, or ``"endurance"`` (Algorithm 3); the
        ablation strategies of :mod:`repro.core.selection` also work.
    allocation:
        The device-allocation policy (strategies 1-2 of the paper).
    effort:
        Rewriting cycles; the paper uses 5 everywhere.
    allow_pi_overwrite:
        Whether input devices may be reclaimed (see compiler docs).
    """

    name: str
    rewriting: str = "none"
    selection: str = "topo"
    allocation: AllocationPolicy = field(default_factory=AllocationPolicy)
    effort: int = DEFAULT_EFFORT
    allow_pi_overwrite: bool = True

    def with_cap(self, w_max: Optional[int]) -> "EnduranceConfig":
        """Same configuration with a different maximum write count."""
        suffix = f"+wmax{w_max}" if w_max is not None else ""
        return replace(
            self,
            name=f"{self.name}{suffix}",
            allocation=AllocationPolicy(self.allocation.strategy, w_max),
        )


@dataclass
class CompilationResult:
    """Everything the experiments need from one compilation."""

    config: EnduranceConfig
    program: Program
    stats: WriteTrafficStats
    mig_gates_before: int
    mig_gates_after: int

    @property
    def num_instructions(self) -> int:
        """``#I`` of the paper's tables."""
        return self.program.num_instructions

    @property
    def num_rrams(self) -> int:
        """``#R`` of the paper's tables."""
        return self.program.num_rrams


#: The five incremental configurations of Table I (left to right), plus
#: aliases used by Tables II/III and the examples.
PRESETS: Dict[str, EnduranceConfig] = {
    # Column 1: node translation only — no rewriting, no selection, LIFO.
    "naive": EnduranceConfig(name="naive"),
    # Column 2: the DAC'16 PLiM compiler (Algorithm 1 + its selection).
    "dac16": EnduranceConfig(
        name="dac16", rewriting="dac16", selection="dac16"
    ),
    # Column 3: + minimum write count strategy.
    "min-write": EnduranceConfig(
        name="min-write",
        rewriting="dac16",
        selection="dac16",
        allocation=AllocationPolicy("min_write"),
    ),
    # Column 4: + endurance-aware MIG rewriting (Algorithm 2).
    "ea-rewrite": EnduranceConfig(
        name="ea-rewrite",
        rewriting="endurance",
        selection="dac16",
        allocation=AllocationPolicy("min_write"),
    ),
    # Column 5: + endurance-aware compilation (Algorithm 3).
    "ea-full": EnduranceConfig(
        name="ea-full",
        rewriting="endurance",
        selection="endurance",
        allocation=AllocationPolicy("min_write"),
    ),
}


def full_management(w_max: int) -> EnduranceConfig:
    """Full endurance management as in Table III: minimum + maximum write
    strategies, Algorithm 2 rewriting, Algorithm 3 selection."""
    return PRESETS["ea-full"].with_cap(w_max)


def compile_pipeline(
    mig: Mig,
    config: EnduranceConfig,
    *,
    rewritten: Optional[Mig] = None,
    arch=None,
    optimizer=None,
) -> CompilationResult:
    """Rewrite, compile, and summarise *mig* under *config*.

    *rewritten* short-circuits the rewriting stage with a precomputed
    optimisation result — the hook
    :class:`repro.analysis.runner.ExperimentCache` uses to share one
    rewriting run between every configuration with the same script (or
    optimizer).

    *arch* selects the target machine model (a
    :class:`repro.arch.Architecture`, a registry name, or ``None`` for
    the ambient ``$REPRO_ARCH``/default selection); the machine is
    validated against the configuration before any work happens, so a
    policy the architecture cannot implement fails fast.  *optimizer*
    selects the rewriting optimizer (an
    :class:`repro.opt.OptimizerSpec`, a spec string, or ``None`` for
    the ambient ``$REPRO_OPT``/default selection — the configuration's
    fixed script); it is ignored when *rewritten* is supplied.

    This is the raw, uncached pipeline body.  Application code should go
    through :class:`repro.flow.Flow` (or an
    :class:`~repro.analysis.runner.ExperimentCache`), which add stage
    caching, observers, and verification on top.
    """
    from ..arch import resolve_architecture
    from ..opt import Optimizer

    machine = resolve_architecture(arch)
    machine.validate_config(config)
    gates_before = mig.num_live_gates()
    if rewritten is None:
        rewritten = Optimizer(optimizer, machine).run(
            mig, config.rewriting, effort=config.effort
        )
    selection = None
    if config.selection != "topo":
        selection = make_selection(config.selection)
    compiler = PlimCompiler(
        selection=selection,
        allocation=config.allocation.strategy,
        w_max=config.allocation.w_max,
        allow_pi_overwrite=config.allow_pi_overwrite,
        arch=machine,
    )
    program = compiler.compile(rewritten)
    stats = WriteTrafficStats.from_counts(program.write_counts())
    return CompilationResult(
        config=config,
        program=program,
        stats=stats,
        mig_gates_before=gates_before,
        mig_gates_after=rewritten.num_live_gates(),
    )


def compile_with_management(
    mig: Mig, config: EnduranceConfig, *, rewritten: Optional[Mig] = None
) -> CompilationResult:
    """Deprecated entry point; use :class:`repro.flow.Flow` instead.

    Kept as a thin shim over :func:`compile_pipeline` so existing code
    and notebooks keep working — it produces byte-identical results (the
    flow parity tests assert this), but new code should route through
    ``Flow.for_config(config, session=...)`` to get stage caching,
    backend selection, and observer hooks.
    """
    warnings.warn(
        "compile_with_management() is deprecated; route compilations "
        "through repro.flow (Flow.for_config(config, session=session))",
        DeprecationWarning,
        stacklevel=2,
    )
    return compile_pipeline(mig, config, rewritten=rewritten)
