"""Allocation-policy descriptions for endurance management.

The mechanics live in :class:`repro.plim.allocator.RramAllocator` (and
its word-addressed sibling :class:`repro.plim.blocked.BlockedAllocator`);
this module names and documents the policies the paper proposes and
provides small value objects the configuration layer
(:mod:`repro.core.manager`) and the ablation benchmarks compose.

Policies are *requests*: whether the target machine can implement one is
decided by its :class:`repro.arch.Architecture` — e.g. the ``dac16``
machine has no wear counters, so it refuses ``min_write`` and any
``w_max`` cap with an :class:`~repro.arch.ArchitectureError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AllocationPolicy:
    """A device-allocation policy: strategy name plus optional write cap.

    Attributes
    ----------
    strategy:
        ``"naive"``  — LIFO free list: the endurance-oblivious baseline;
        the most recently freed device is reused first, concentrating
        writes.
        ``"min_write"`` — the paper's **minimum write count strategy**:
        every request returns the free device with the smallest write
        count.  Affects only the write distribution, never ``#I``/``#R``.
    w_max:
        The paper's **maximum write count strategy**: devices reaching
        this many writes are retired from the pool and refused as RM3
        destinations.  ``None`` disables the cap.  Tightening the cap
        trades instructions and devices for near-uniform write traffic
        (the paper's Table III sweeps 10/20/50/100).
    """

    strategy: str = "naive"
    w_max: Optional[int] = None

    def __post_init__(self) -> None:
        if self.strategy not in ("naive", "min_write"):
            raise ValueError(f"unknown allocation strategy {self.strategy!r}")
        if self.w_max is not None and self.w_max < 3:
            raise ValueError("w_max below 3 cannot host a copy destination")

    @property
    def label(self) -> str:
        """Short human-readable policy name for table headers."""
        cap = f", w_max={self.w_max}" if self.w_max is not None else ""
        return f"{self.strategy}{cap}"


#: The endurance-oblivious baseline (DAC'16 compiler behaviour).
NAIVE_ALLOCATION = AllocationPolicy("naive", None)

#: Minimum write count strategy (Section III-B, technique 1).
MIN_WRITE_ALLOCATION = AllocationPolicy("min_write", None)


def capped_allocation(w_max: int) -> AllocationPolicy:
    """Minimum + maximum write count strategies combined
    (Section III-B, techniques 1-2; swept in Table III)."""
    return AllocationPolicy("min_write", w_max)
