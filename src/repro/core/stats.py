"""Write-traffic statistics — the paper's evaluation metrics.

Table I of the paper characterises each compiled program by the standard
deviation, minimum, and maximum of the per-device write counts; Tables II
and III add instruction (``#I``) and device (``#R``) counts.  This module
computes those numbers plus the derived quantities used in the prose
(improvement over a baseline, lifetime gain).

The paper calls the standard deviation "a robust statistical metric"
without specifying the estimator; we use the *population* standard
deviation (every allocated device is observed, there is no sampling), and
expose the sample variant for sensitivity checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class WriteTrafficStats:
    """Summary of a per-device write-count distribution."""

    num_devices: int
    total_writes: int
    min_writes: int
    max_writes: int
    mean: float
    stdev: float
    sample_stdev: float

    @classmethod
    def from_counts(cls, counts: Sequence[int]) -> "WriteTrafficStats":
        """Build the summary from raw per-device counts."""
        n = len(counts)
        if n == 0:
            return cls(0, 0, 0, 0, 0.0, 0.0, 0.0)
        total = sum(counts)
        mean = total / n
        var = sum((c - mean) ** 2 for c in counts) / n
        sample_var = var * n / (n - 1) if n > 1 else 0.0
        return cls(
            num_devices=n,
            total_writes=total,
            min_writes=min(counts),
            max_writes=max(counts),
            mean=mean,
            stdev=math.sqrt(var),
            sample_stdev=math.sqrt(sample_var),
        )

    def improvement_over(self, baseline: "WriteTrafficStats") -> float:
        """Relative stdev reduction vs *baseline*, in percent.

        Matches the paper's ``impr.`` columns: positive is better,
        negative means the technique *worsened* the balance (the paper
        reports such cases too, e.g. ``div`` and ``dec``).
        """
        if baseline.stdev == 0:
            return 0.0
        return (1.0 - self.stdev / baseline.stdev) * 100.0

    def lifetime_gain_over(self, baseline: "WriteTrafficStats") -> float:
        """Array-lifetime multiplier vs *baseline*.

        Lifetime is inversely proportional to the *maximum* per-device
        write count (the most-worn cell dies first), so balancing writes
        multiplies the usable lifetime by ``baseline.max / new.max``.
        """
        if self.max_writes == 0:
            return float("inf") if baseline.max_writes else 1.0
        return baseline.max_writes / self.max_writes

    def describe(self) -> str:
        """One-line summary in the paper's ``min/max STDEV`` format."""
        return (
            f"{self.min_writes}/{self.max_writes} writes, "
            f"stdev {self.stdev:.2f} over {self.num_devices} devices"
        )


def improvement_percent(baseline_stdev: float, new_stdev: float) -> float:
    """Stdev improvement in percent (paper's ``impr.`` definition)."""
    if baseline_stdev == 0:
        return 0.0
    return (1.0 - new_stdev / baseline_stdev) * 100.0


def average_improvement(
    baseline: Sequence[float], new: Sequence[float]
) -> float:
    """Arithmetic mean of per-benchmark improvements (the paper's ``AVG``).

    The paper averages the per-benchmark percentages rather than the
    deviations themselves; zero baselines contribute zero.
    """
    if len(baseline) != len(new):
        raise ValueError("series length mismatch")
    if not baseline:
        return 0.0
    return sum(
        improvement_percent(b, n) for b, n in zip(baseline, new)
    ) / len(baseline)


def gini_coefficient(counts: Sequence[int]) -> float:
    """Gini coefficient of the write distribution (extension metric).

    0 = perfectly balanced, 1 = all writes on one device.  Not in the
    paper; used by the extended analyses and the ablation benchmarks as a
    scale-free alternative to the standard deviation.
    """
    n = len(counts)
    total = sum(counts)
    if n == 0 or total == 0:
        return 0.0
    ordered = sorted(counts)
    cum = 0.0
    weighted = 0.0
    for i, c in enumerate(ordered, start=1):
        cum += c
        weighted += i * c
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def normalized_stdev(counts: Sequence[int]) -> Optional[float]:
    """Coefficient of variation (stdev / mean); ``None`` for zero mean."""
    stats = WriteTrafficStats.from_counts(list(counts))
    if stats.mean == 0:
        return None
    return stats.stdev / stats.mean


def write_histogram(counts: Sequence[int], bins: int = 10) -> List[int]:
    """Fixed-width histogram of write counts (for reports/examples)."""
    if not counts:
        return [0] * bins
    top = max(counts)
    if top == 0:
        hist = [0] * bins
        hist[0] = len(counts)
        return hist
    hist = [0] * bins
    for c in counts:
        idx = min(bins - 1, c * bins // (top + 1))
        hist[idx] += 1
    return hist
