"""repro — Endurance management for resistive Logic-in-Memory computing.

A from-scratch Python reproduction of

    S. Shirinzadeh, M. Soeken, P.-E. Gaillardon, G. De Micheli,
    R. Drechsler, "Endurance Management for Resistive Logic-In-Memory
    Computing Architectures", DATE 2017.

The package provides:

* :mod:`repro.mig` — Majority-Inverter Graphs: data structure, Boolean
  algebra, rewriting engine, bit-parallel simulation;
* :mod:`repro.plim` — the PLiM computer: RM3 ISA, behavioural RRAM array
  with endurance tracking, controller, MIG-to-RM3 compiler, verifier;
* :mod:`repro.core` — the paper's contribution: endurance-management
  policies, endurance-aware rewriting (Algorithm 2) and node selection
  (Algorithm 3), configuration presets, write-traffic statistics;
* :mod:`repro.synth` — benchmark circuit generators standing in for the
  EPFL suite used by the paper;
* :mod:`repro.imp` — material-implication (IMPLY) baseline from the
  paper's Section II;
* :mod:`repro.arch` — the pluggable PLiM machine-model layer: named
  :class:`~repro.arch.Architecture` variants (``dac16``, ``endurance``,
  ``blocked``) describing the cost table, array geometry, and endurance
  semantics the compiler targets, selected per run via ``--arch`` /
  ``$REPRO_ARCH``;
* :mod:`repro.opt` — the cost-guided rewriting optimizer: registries of
  :class:`~repro.opt.RewritePass` transformations, compile-free
  :class:`~repro.opt.Objective` cost functions (including the
  architecture-aware estimated write cost), and search strategies
  (``script``, ``greedy``, ``budget``) selected per run via ``--opt`` /
  ``$REPRO_OPT``;
* :mod:`repro.source` — the circuit-source layer: one
  :class:`~repro.source.Source` abstraction spanning registry
  benchmarks, imported netlists (``.mig``/``.blif``/``.aag``), Python
  functions compiled by :func:`~repro.synth.mig_function`, and bare
  graphs — each with a stable content fingerprint keying the caches,
  selected per run via ``--source`` / ``$REPRO_SOURCE``;
* :mod:`repro.analysis` — table/figure harnesses regenerating the paper's
  experimental evaluation;
* :mod:`repro.resilience` — fault-tolerant experiment execution: the
  transient/permanent :class:`~repro.resilience.ReproError` taxonomy,
  deterministic retry (:class:`~repro.resilience.RetryPolicy`),
  per-stage wall-clock timeouts (``--timeout`` / ``$REPRO_TIMEOUT``),
  ``run_manifest.json`` provenance sidecars, and the deterministic
  fault-injection harness (``$REPRO_FAULTS``);
* :mod:`repro.flow` — the Session + pass-pipeline API every harness entry
  point routes through: :class:`~repro.flow.Session` resolves backend,
  cache, parallelism, and preset once; :class:`~repro.flow.Flow` runs the
  source → rewrite → compile → verify pipeline with per-stage caching and
  observer hooks;
* :mod:`repro.serve` — compilation-as-a-service: a dependency-free REST
  front (``repro serve`` / :func:`~repro.serve.create_server`) that
  queues (source, config, arch, opt) jobs behind one warm Session,
  coalesces duplicate in-flight submissions, streams per-stage events,
  and serves artefacts with verifiable provenance manifests;
* :mod:`repro.cachesvc` — the shared compile-cache service: a
  cache-manager daemon (``repro cachesvc serve`` /
  :func:`~repro.cachesvc.create_cache_server`) owning a warm in-memory
  LRU tier and cross-process single-flight leases over a
  ``DiskCache`` root, with the :class:`~repro.cachesvc.RemoteCache`
  client selected via ``Session(cache_url=...)`` / ``--cache-url`` /
  ``$REPRO_CACHE_URL``.
"""

from .mig import Mig, equivalent, simulate, truth_tables
from .arch import (
    Architecture,
    available_architectures,
    get_architecture,
    register_architecture,
)
from .core.manager import (
    CompilationResult,
    EnduranceConfig,
    PRESETS,
    compile_with_management,
    full_management,
)
from .core.stats import WriteTrafficStats
from .opt import (
    Optimizer,
    OptimizerSpec,
    available_objectives,
    available_strategies,
    register_objective,
    resolve_optimizer,
)
from .plim.isa import Program
from .plim.memory import RramArray
from .plim.controller import PlimController
from .plim.verify import verify_program
from .synth.registry import BENCHMARKS, build_benchmark
from .synth.frontend import mig_function
from .source import (
    Source,
    available_sources,
    register_source,
    resolve_source,
)
from .flow import Flow, FlowResult, Session
from .serve import ReproServer, create_server
from .cachesvc import RemoteCache, create_cache_server, resolve_cache_url
from .resilience import (
    PermanentFault,
    ReproError,
    RetryPolicy,
    Timeouts,
    TransientFault,
    iter_manifests,
    parse_faults,
    verify_manifest,
)

__version__ = "1.4.0"

__all__ = [
    "Architecture",
    "BENCHMARKS",
    "CompilationResult",
    "EnduranceConfig",
    "Flow",
    "FlowResult",
    "Mig",
    "Optimizer",
    "OptimizerSpec",
    "PRESETS",
    "PermanentFault",
    "PlimController",
    "Program",
    "RemoteCache",
    "ReproError",
    "ReproServer",
    "RetryPolicy",
    "RramArray",
    "Session",
    "Source",
    "Timeouts",
    "TransientFault",
    "WriteTrafficStats",
    "available_architectures",
    "available_objectives",
    "available_sources",
    "available_strategies",
    "build_benchmark",
    "compile_with_management",
    "create_cache_server",
    "create_server",
    "equivalent",
    "full_management",
    "get_architecture",
    "iter_manifests",
    "mig_function",
    "parse_faults",
    "register_architecture",
    "register_objective",
    "register_source",
    "resolve_cache_url",
    "resolve_optimizer",
    "resolve_source",
    "simulate",
    "truth_tables",
    "verify_manifest",
    "verify_program",
]
