"""Word-level combinational building blocks over MIG signals.

All functions take a :class:`~repro.mig.graph.Mig` under construction plus
*words* — lists of signals, least-significant bit first — and return new
words/signals.  The benchmark generators in :mod:`repro.synth.arithmetic`,
:mod:`repro.synth.cordic`, and :mod:`repro.synth.control` are built
entirely from these primitives, and every primitive is unit-tested
bit-exactly against Python integer arithmetic.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..mig.bitvec import full_adder, half_adder, popcount
from ..mig.graph import Mig
from ..mig.signal import CONST0, CONST1, complement

Word = List[int]


# ----------------------------------------------------------------------
# Constants, shaping
# ----------------------------------------------------------------------

def constant_word(value: int, width: int) -> Word:
    """Constant *value* as a *width*-bit word."""
    return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]


def zero_extend(word: Sequence[int], width: int) -> Word:
    """Pad *word* with constant zeros up to *width* bits."""
    if len(word) > width:
        raise ValueError("word longer than target width")
    return list(word) + [CONST0] * (width - len(word))


def truncate(word: Sequence[int], width: int) -> Word:
    """Keep the low *width* bits."""
    return list(word[:width])


def not_word(word: Sequence[int]) -> Word:
    """Bitwise complement."""
    return [complement(b) for b in word]


# ----------------------------------------------------------------------
# Bitwise words
# ----------------------------------------------------------------------

def and_word(mig: Mig, a: Sequence[int], b: Sequence[int]) -> Word:
    """Bitwise AND of equal-width words."""
    _check_same_width(a, b)
    return [mig.add_and(x, y) for x, y in zip(a, b)]


def or_word(mig: Mig, a: Sequence[int], b: Sequence[int]) -> Word:
    """Bitwise OR of equal-width words."""
    _check_same_width(a, b)
    return [mig.add_or(x, y) for x, y in zip(a, b)]


def xor_word(mig: Mig, a: Sequence[int], b: Sequence[int]) -> Word:
    """Bitwise XOR of equal-width words."""
    _check_same_width(a, b)
    return [mig.add_xor(x, y) for x, y in zip(a, b)]


def mux_word(mig: Mig, sel: int, t: Sequence[int], e: Sequence[int]) -> Word:
    """Per-bit multiplexer: ``sel ? t : e``."""
    _check_same_width(t, e)
    return [mig.add_mux(sel, x, y) for x, y in zip(t, e)]


def reduce_or(mig: Mig, word: Sequence[int]) -> int:
    """OR of all bits (balanced tree)."""
    return _reduce_tree(mig.add_or, list(word), CONST0)


def reduce_and(mig: Mig, word: Sequence[int]) -> int:
    """AND of all bits (balanced tree)."""
    return _reduce_tree(mig.add_and, list(word), CONST1)


def reduce_xor(mig: Mig, word: Sequence[int]) -> int:
    """XOR of all bits (balanced tree)."""
    return _reduce_tree(mig.add_xor, list(word), CONST0)


def _reduce_tree(op, bits: List[int], identity: int) -> int:
    if not bits:
        return identity
    while len(bits) > 1:
        nxt = []
        for i in range(0, len(bits) - 1, 2):
            nxt.append(op(bits[i], bits[i + 1]))
        if len(bits) % 2:
            nxt.append(bits[-1])
        bits = nxt
    return bits[0]


# ----------------------------------------------------------------------
# Addition / subtraction / comparison
# ----------------------------------------------------------------------

def ripple_add(
    mig: Mig, a: Sequence[int], b: Sequence[int], carry_in: int = CONST0
) -> Tuple[Word, int]:
    """Ripple-carry addition; returns ``(sum_word, carry_out)``.

    The majority-native full adder makes this the canonical PLiM workload:
    each bit contributes one carry majority plus two sum majorities.
    """
    _check_same_width(a, b)
    carry = carry_in
    total: Word = []
    for x, y in zip(a, b):
        s, carry = full_adder(mig, x, y, carry)
        total.append(s)
    return total, carry


def ripple_sub(
    mig: Mig, a: Sequence[int], b: Sequence[int]
) -> Tuple[Word, int]:
    """``a - b`` (two's complement); returns ``(difference, borrow)``.

    ``borrow`` is 1 when ``a < b`` (unsigned).
    """
    diff, carry = ripple_add(mig, a, not_word(b), CONST1)
    return diff, complement(carry)


def increment(mig: Mig, a: Sequence[int]) -> Tuple[Word, int]:
    """``a + 1``; returns ``(sum, carry_out)``."""
    carry = CONST1
    out: Word = []
    for x in a:
        s, carry = half_adder(mig, x, carry)
        out.append(s)
    return out, carry


def negate(mig: Mig, a: Sequence[int]) -> Word:
    """Two's-complement negation (``-a``), same width."""
    out, _ = increment(mig, not_word(a))
    return out


def equals_word(mig: Mig, a: Sequence[int], b: Sequence[int]) -> int:
    """1 iff the two words are equal."""
    _check_same_width(a, b)
    return reduce_and(mig, [mig.add_xnor(x, y) for x, y in zip(a, b)])


def less_than(mig: Mig, a: Sequence[int], b: Sequence[int]) -> int:
    """Unsigned ``a < b`` (the subtraction borrow)."""
    _, borrow = ripple_sub(mig, a, b)
    return borrow


def greater_equal(mig: Mig, a: Sequence[int], b: Sequence[int]) -> int:
    """Unsigned ``a >= b``."""
    return complement(less_than(mig, a, b))


def add_signed_overflowless(
    mig: Mig, a: Sequence[int], b: Sequence[int]
) -> Word:
    """Two's-complement addition discarding the carry (same width)."""
    total, _ = ripple_add(mig, a, b)
    return total


# ----------------------------------------------------------------------
# Shifts
# ----------------------------------------------------------------------

def shift_left_const(word: Sequence[int], amount: int) -> Word:
    """Logical left shift by a constant, same width."""
    if amount <= 0:
        return list(word)
    return ([CONST0] * amount + list(word))[: len(word)]


def shift_right_const(word: Sequence[int], amount: int) -> Word:
    """Logical right shift by a constant, same width."""
    if amount <= 0:
        return list(word)
    return list(word[amount:]) + [CONST0] * min(amount, len(word))


def barrel_shift_left(
    mig: Mig, word: Sequence[int], amount: Sequence[int], rotate: bool = False
) -> Word:
    """Logical (or rotating) left shift by a variable amount.

    Classic logarithmic barrel shifter: one mux stage per amount bit.
    """
    current = list(word)
    width = len(word)
    for stage, sel in enumerate(amount):
        k = 1 << stage
        if rotate:
            shifted = [current[(i - k) % width] for i in range(width)]
        else:
            shifted = shift_left_const(current, k)
        current = mux_word(mig, sel, shifted, current)
    return current


def barrel_shift_right(
    mig: Mig, word: Sequence[int], amount: Sequence[int], rotate: bool = False
) -> Word:
    """Logical (or rotating) right shift by a variable amount."""
    current = list(word)
    width = len(word)
    for stage, sel in enumerate(amount):
        k = 1 << stage
        if rotate:
            shifted = [current[(i + k) % width] for i in range(width)]
        else:
            shifted = shift_right_const(current, k)
        current = mux_word(mig, sel, shifted, current)
    return current


# ----------------------------------------------------------------------
# Multiplication
# ----------------------------------------------------------------------

def _reduce_columns(mig: Mig, columns: List[List[int]], width: int) -> Word:
    """Wallace-style carry-save reduction of a partial-product matrix.

    All columns are compressed 3:2 *simultaneously* per level (the tree
    stays wide and shallow, like the EPFL ``multiplier``); a final ripple
    adder resolves the remaining two rows.
    """
    while any(len(col) > 2 for col in columns):
        next_columns: List[List[int]] = [[] for _ in range(width + 1)]
        for weight, col in enumerate(columns):
            pending = list(col)
            while len(pending) >= 3:
                x, y, z = pending.pop(), pending.pop(), pending.pop()
                s, cy = full_adder(mig, x, y, z)
                next_columns[weight].append(s)
                next_columns[weight + 1].append(cy)
            next_columns[weight].extend(pending)
        columns = [col for col in next_columns[:width]]
    row_a = [col[0] if len(col) >= 1 else CONST0 for col in columns]
    row_b = [col[1] if len(col) >= 2 else CONST0 for col in columns]
    total, _carry = ripple_add(mig, row_a, row_b)
    return total[:width]


def multiply(mig: Mig, a: Sequence[int], b: Sequence[int]) -> Word:
    """Unsigned multiplication; result has ``len(a) + len(b)`` bits.

    Partial products are reduced with parallel 3:2 compressors
    (carry-save / Wallace reduction) and a final ripple adder — the
    wide-and-shallow structure the EPFL ``multiplier`` benchmark exhibits.
    """
    wa, wb = len(a), len(b)
    if wa == 0 or wb == 0:
        return []
    width = wa + wb
    columns: List[List[int]] = [[] for _ in range(width)]
    for i, x in enumerate(a):
        for j, y in enumerate(b):
            columns[i + j].append(mig.add_and(x, y))
    return _reduce_columns(mig, columns, width)


def square(mig: Mig, a: Sequence[int]) -> Word:
    """Unsigned squaring with the folded partial-product optimisation.

    ``a_i & a_i = a_i`` on the diagonal and symmetric cross terms are
    shared (``a_i a_j`` appears twice → shifted once), roughly halving the
    partial products relative to a general multiplication.
    """
    w = len(a)
    if w == 0:
        return []
    width = 2 * w
    columns: List[List[int]] = [[] for _ in range(width)]
    for i in range(w):
        columns[2 * i].append(a[i])  # diagonal: a_i * a_i = a_i
        for j in range(i + 1, w):
            prod = mig.add_and(a[i], a[j])
            columns[i + j + 1].append(prod)  # doubled cross term
    return _reduce_columns(mig, columns, width)


# ----------------------------------------------------------------------
# Encoders / decoders
# ----------------------------------------------------------------------

def decoder(mig: Mig, sel: Sequence[int]) -> Word:
    """Full ``n -> 2^n`` decoder (one-hot outputs, index order)."""
    outputs = [CONST1]
    for bit in sel:
        expanded: Word = []
        for term in outputs:
            expanded.append(mig.add_and(term, complement(bit)))
        for term in outputs:
            expanded.append(mig.add_and(term, bit))
        outputs = expanded
    return outputs


def priority_encoder(
    mig: Mig, requests: Sequence[int]
) -> Tuple[Word, int]:
    """Highest-index-wins priority encoder.

    Returns ``(index_word, valid)`` where ``index_word`` has
    ``ceil(log2(len(requests)))`` bits and ``valid`` is 1 when any request
    is asserted.
    """
    n = len(requests)
    bits = max(1, (n - 1).bit_length())
    index = constant_word(0, bits)
    for i in range(n):  # low to high: later (higher) indices override
        here = constant_word(i, bits)
        index = mux_word(mig, requests[i], here, index)
    valid = reduce_or(mig, requests)
    return index, valid


def leading_one_position(mig: Mig, word: Sequence[int]) -> Tuple[Word, int]:
    """Position of the most significant set bit (a priority encode)."""
    return priority_encoder(mig, word)


# ----------------------------------------------------------------------
# Misc
# ----------------------------------------------------------------------

def max_word(
    mig: Mig, a: Sequence[int], b: Sequence[int]
) -> Tuple[Word, int]:
    """Unsigned maximum; returns ``(max, b_wins)``."""
    b_wins = less_than(mig, a, b)
    return mux_word(mig, b_wins, b, a), b_wins


def _check_same_width(a: Sequence[int], b: Sequence[int]) -> None:
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")


__all__ = [
    "Word",
    "and_word",
    "add_signed_overflowless",
    "barrel_shift_left",
    "barrel_shift_right",
    "constant_word",
    "decoder",
    "equals_word",
    "greater_equal",
    "increment",
    "leading_one_position",
    "less_than",
    "max_word",
    "multiply",
    "mux_word",
    "negate",
    "not_word",
    "or_word",
    "popcount",
    "priority_encoder",
    "reduce_and",
    "reduce_or",
    "reduce_xor",
    "ripple_add",
    "ripple_sub",
    "shift_left_const",
    "shift_right_const",
    "square",
    "truncate",
    "xor_word",
    "zero_extend",
]
