"""A Python-AST frontend: decorated functions compiled into MIGs.

The registry benchmarks and netlist importers cover circuits that
already exist as graphs; this module covers circuits that exist as
*programs*.  Decorating a small Python function elaborates its body —
bitvector arithmetic, comparisons, mux/if-expressions — into a MIG
through the :mod:`repro.synth.blocks` word-level builders, the same
primitives the registry benchmarks are built from::

    from repro.synth.frontend import mig_function

    @mig_function(width=4)
    def clamped_diff(a, b):
        big = a if a >= b else b
        small = b if a >= b else a
        return big - small

    mig = clamped_diff.build()        # a Mig, ready for any Flow
    clamped_diff(9, 3)                # still a plain Python call: 6

The decorated function stays callable, so the compiled circuit can be
checked against the Python semantics directly (the frontend tests do
exactly this, exhaustively).  Bit-width discipline follows hardware
convention, not Python's unbounded integers:

* ``+`` grows one carry bit, ``*`` produces ``wa + wb`` bits;
* ``-`` and unary ``-`` wrap two's-complement at the operand width —
  mask with ``& ((1 << w) - 1)`` where Python-identical behaviour on
  negative intermediates is wanted;
* ``&``, ``|``, ``^`` zero-extend to the wider operand;
* ``<< k`` / ``>> k`` shift by a *constant* amount, keeping the width;
* comparisons are unsigned and yield one bit; ``x if cond else y``
  becomes a word-level mux; ``and`` / ``or`` / ``not`` operate on
  single-bit values.

Everything the translator does not understand raises
:class:`FrontendError` naming the offending source line — the supported
subset is deliberately small and explicit, in the style of the artiq
``ASTCompiler``.
"""

from __future__ import annotations

import ast
import hashlib
import inspect
import textwrap
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..mig.graph import Mig
from ..mig.signal import CONST0, CONST1, complement
from . import blocks
from .elaborate import new_mig

Word = List[int]


class FrontendError(ValueError):
    """Unsupported or malformed construct in a decorated function."""


def _error(node: ast.AST, message: str) -> FrontendError:
    line = getattr(node, "lineno", "?")
    return FrontendError(f"line {line}: {message}")


class _Translator:
    """One function body -> words of MIG signals."""

    def __init__(self, mig: Mig, env: Dict[str, Word]) -> None:
        self.mig = mig
        self.env = env

    # -- statements ----------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> List[Tuple[str, Word]]:
        """Execute the statement list; returns named output words."""
        for index, stmt in enumerate(body):
            if isinstance(stmt, ast.Return):
                if index != len(body) - 1:
                    raise _error(stmt, "return must be the last statement")
                return self._outputs(stmt)
            self._statement(stmt)
        raise FrontendError("function never returns a value")

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1 or not isinstance(
                stmt.targets[0], ast.Name
            ):
                raise _error(stmt, "only single-name assignments supported")
            self.env[stmt.targets[0].id] = self.expr(stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            if not isinstance(stmt.target, ast.Name):
                raise _error(stmt, "only name targets supported")
            desugared = ast.BinOp(
                left=ast.copy_location(
                    ast.Name(id=stmt.target.id, ctx=ast.Load()), stmt
                ),
                op=stmt.op,
                right=stmt.value,
            )
            self.env[stmt.target.id] = self.expr(
                ast.copy_location(desugared, stmt)
            )
        elif isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            pass  # docstring
        else:
            raise _error(
                stmt,
                f"unsupported statement {type(stmt).__name__}; use "
                "assignments, if-expressions, and a final return",
            )

    def _outputs(self, stmt: ast.Return) -> List[Tuple[str, Word]]:
        if stmt.value is None:
            raise _error(stmt, "function must return a value")
        elements = (
            list(stmt.value.elts)
            if isinstance(stmt.value, ast.Tuple)
            else [stmt.value]
        )
        outputs: List[Tuple[str, Word]] = []
        taken = set()
        for index, element in enumerate(elements):
            name = (
                element.id
                if isinstance(element, ast.Name)
                else f"out{index}"
            )
            if name in taken:
                name = f"out{index}"
            taken.add(name)
            outputs.append((name, self.expr(element)))
        return outputs

    # -- expressions ---------------------------------------------------

    def expr(self, node: ast.expr) -> Word:
        if isinstance(node, ast.Name):
            try:
                return list(self.env[node.id])
            except KeyError:
                raise _error(node, f"unknown name {node.id!r}") from None
        if isinstance(node, ast.Constant):
            return self._constant(node)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._unaryop(node)
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.IfExp):
            return self._ifexp(node)
        if isinstance(node, ast.BoolOp):
            return self._boolop(node)
        raise _error(
            node, f"unsupported expression {type(node).__name__}"
        )

    def _constant(self, node: ast.Constant) -> Word:
        value = node.value
        if isinstance(value, bool):
            return [CONST1 if value else CONST0]
        if not isinstance(value, int) or value < 0:
            raise _error(
                node, "only non-negative integer constants supported"
            )
        return blocks.constant_word(value, max(1, value.bit_length()))

    def _widened(self, node: ast.expr) -> Tuple[Word, Word]:
        a = self.expr(node.left)
        b = self.expr(node.right)
        width = max(len(a), len(b))
        return blocks.zero_extend(a, width), blocks.zero_extend(b, width)

    def _binop(self, node: ast.BinOp) -> Word:
        op = node.op
        if isinstance(op, (ast.LShift, ast.RShift)):
            word = self.expr(node.left)
            amount = node.right
            if not (
                isinstance(amount, ast.Constant)
                and isinstance(amount.value, int)
            ):
                raise _error(
                    node, "shift amounts must be integer constants"
                )
            shift = (
                blocks.shift_left_const
                if isinstance(op, ast.LShift)
                else blocks.shift_right_const
            )
            return shift(word, amount.value)
        if isinstance(op, ast.Mult):
            a, b = self.expr(node.left), self.expr(node.right)
            return blocks.multiply(self.mig, a, b)
        a, b = self._widened(node)
        if isinstance(op, ast.Add):
            total, carry = blocks.ripple_add(self.mig, a, b)
            return total + [carry]
        if isinstance(op, ast.Sub):
            difference, _ = blocks.ripple_sub(self.mig, a, b)
            return difference
        if isinstance(op, ast.BitAnd):
            return blocks.and_word(self.mig, a, b)
        if isinstance(op, ast.BitOr):
            return blocks.or_word(self.mig, a, b)
        if isinstance(op, ast.BitXor):
            return blocks.xor_word(self.mig, a, b)
        raise _error(
            node, f"unsupported operator {type(op).__name__}"
        )

    def _unaryop(self, node: ast.UnaryOp) -> Word:
        operand = self.expr(node.operand)
        if isinstance(node.op, ast.Invert):
            return blocks.not_word(operand)
        if isinstance(node.op, ast.USub):
            return blocks.negate(self.mig, operand)
        if isinstance(node.op, ast.Not):
            return [complement(self._bit(operand, node))]
        raise _error(
            node, f"unsupported unary operator {type(node.op).__name__}"
        )

    def _compare(self, node: ast.Compare) -> Word:
        if len(node.ops) != 1:
            raise _error(node, "chained comparisons not supported")
        a = self.expr(node.left)
        b = self.expr(node.comparators[0])
        width = max(len(a), len(b))
        a = blocks.zero_extend(a, width)
        b = blocks.zero_extend(b, width)
        op = node.ops[0]
        if isinstance(op, ast.Lt):
            bit = blocks.less_than(self.mig, a, b)
        elif isinstance(op, ast.GtE):
            bit = blocks.greater_equal(self.mig, a, b)
        elif isinstance(op, ast.Gt):
            bit = blocks.less_than(self.mig, b, a)
        elif isinstance(op, ast.LtE):
            bit = blocks.greater_equal(self.mig, b, a)
        elif isinstance(op, ast.Eq):
            bit = blocks.equals_word(self.mig, a, b)
        elif isinstance(op, ast.NotEq):
            bit = complement(blocks.equals_word(self.mig, a, b))
        else:
            raise _error(
                node, f"unsupported comparison {type(op).__name__}"
            )
        return [bit]

    def _ifexp(self, node: ast.IfExp) -> Word:
        condition = self._bit(self.expr(node.test), node)
        then = self.expr(node.body)
        other = self.expr(node.orelse)
        width = max(len(then), len(other))
        return blocks.mux_word(
            self.mig,
            condition,
            blocks.zero_extend(then, width),
            blocks.zero_extend(other, width),
        )

    def _boolop(self, node: ast.BoolOp) -> Word:
        combine = (
            self.mig.add_and
            if isinstance(node.op, ast.And)
            else self.mig.add_or
        )
        bit = self._bit(self.expr(node.values[0]), node)
        for value in node.values[1:]:
            bit = combine(bit, self._bit(self.expr(value), node))
        return [bit]

    @staticmethod
    def _bit(word: Word, node: ast.AST) -> int:
        if len(word) != 1:
            raise _error(
                node,
                f"expected a 1-bit condition, got a {len(word)}-bit word "
                "(use a comparison)",
            )
        return word[0]


class FrontendFunction:
    """A decorated Python function and its compiled-circuit identity.

    Calling the object calls the original Python function unchanged;
    :meth:`build` compiles it into a :class:`~repro.mig.graph.Mig`, and
    :attr:`fingerprint` is a stable content hash of the *source* (text,
    widths, elaboration mode), so the compiled circuit keys into
    persistent caches before it is ever built.

    Pickling (for ``run_matrix`` worker fan-out) forces a build and
    ships the compiled graph; the Python callable itself does not cross
    the process boundary.
    """

    def __init__(
        self,
        fn: Callable,
        input_widths: Dict[str, int],
        *,
        name: Optional[str] = None,
        elaborated: bool = True,
    ) -> None:
        self.fn = fn
        self.name = name or fn.__name__
        self.input_widths = dict(input_widths)
        self.elaborated = elaborated
        self.source = textwrap.dedent(inspect.getsource(fn))
        self._built: Optional[Mig] = None
        self.output_widths: Optional[List[int]] = None

    def __call__(self, *args, **kwargs):
        if self.fn is None:
            raise FrontendError(
                f"{self.name!r} was unpickled without its Python callable; "
                "only the compiled circuit crosses process boundaries"
            )
        return self.fn(*args, **kwargs)

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha256()
        digest.update(self.source.encode())
        digest.update(repr(sorted(self.input_widths.items())).encode())
        digest.update(b"elaborated%d" % int(self.elaborated))
        return digest.hexdigest()

    def build(self) -> Mig:
        """Compile the function body into a MIG (memoized)."""
        if self._built is not None:
            return self._built
        tree = ast.parse(self.source)
        fn_def = tree.body[0]
        if not isinstance(fn_def, (ast.FunctionDef, ast.AsyncFunctionDef)):
            raise FrontendError(
                f"{self.name!r}: expected a function definition"
            )
        params = [arg.arg for arg in fn_def.args.args]
        missing = [p for p in params if p not in self.input_widths]
        if missing:
            raise FrontendError(
                f"{self.name!r}: no width declared for parameter(s) "
                f"{', '.join(missing)}"
            )
        extra = [w for w in self.input_widths if w not in params]
        if extra:
            raise FrontendError(
                f"{self.name!r}: widths declared for unknown parameter(s) "
                f"{', '.join(extra)}"
            )
        mig = new_mig(self.name, self.elaborated)
        env: Dict[str, Word] = {}
        for param in params:
            env[param] = [
                mig.add_pi(f"{param}{i}")
                for i in range(self.input_widths[param])
            ]
        outputs = _Translator(mig, env).run(fn_def.body)
        self.output_widths = [len(word) for _, word in outputs]
        for po_name, word in outputs:
            for i, signal in enumerate(word):
                mig.add_po(signal, f"{po_name}{i}")
        self._built = mig
        return mig

    def reference(self, *args: int):
        """The Python result masked to the circuit's output widths.

        Outputs wider than the returned Python value truncate exactly
        like the hardware does (two's complement wrap); booleans map to
        one bit.  Builds the circuit on first use to learn the widths.
        """
        self.build()
        raw = self(*args)
        values = raw if isinstance(raw, tuple) else (raw,)
        if len(values) != len(self.output_widths):
            raise FrontendError(
                f"{self.name!r} returned {len(values)} values; circuit "
                f"has {len(self.output_widths)} outputs"
            )
        masked = tuple(
            int(v) & ((1 << w) - 1)
            for v, w in zip(values, self.output_widths)
        )
        return masked if isinstance(raw, tuple) else masked[0]

    def __getstate__(self):
        self.build()
        state = dict(self.__dict__)
        state["fn"] = None  # callables don't cross process boundaries
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        widths = ", ".join(
            f"{k}:{v}" for k, v in self.input_widths.items()
        )
        return f"FrontendFunction({self.name!r}, {widths})"


def mig_function(
    width: Optional[int] = None,
    *,
    name: Optional[str] = None,
    elaborated: bool = True,
    **arg_widths: int,
) -> Callable[[Callable], FrontendFunction]:
    """Decorator compiling a Python function into a MIG.

    ``@mig_function(width=8)`` gives every parameter eight bits;
    keyword widths (``@mig_function(a=8, b=4)``) set them per parameter
    and override the uniform *width*.  ``elaborated`` selects the same
    AIG-style naive translation the registry benchmarks use (the
    rewriting stages expect translation-grade graphs); pass ``False``
    for majority-native construction.
    """

    def decorate(fn: Callable) -> FrontendFunction:
        params = list(inspect.signature(fn).parameters)
        widths: Dict[str, int] = {}
        for param in params:
            if param in arg_widths:
                widths[param] = arg_widths[param]
            elif width is not None:
                widths[param] = width
        for param, w in widths.items():
            if not isinstance(w, int) or w <= 0:
                raise FrontendError(
                    f"{fn.__name__!r}: width of {param!r} must be a "
                    f"positive integer, got {w!r}"
                )
        unknown = set(arg_widths) - set(params)
        if unknown:
            raise FrontendError(
                f"{fn.__name__!r}: widths declared for unknown "
                f"parameter(s) {', '.join(sorted(unknown))}"
            )
        return FrontendFunction(
            fn, widths, name=name, elaborated=elaborated
        )

    return decorate


__all__ = [
    "FrontendError",
    "FrontendFunction",
    "mig_function",
]
