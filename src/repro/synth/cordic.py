"""CORDIC-style generators for the ``sin`` and ``log2`` benchmarks.

The EPFL ``sin`` (24/25) and ``log2`` (32/32) circuits are fixed-point
function evaluators.  We reproduce them with the textbook hardware
algorithms — CORDIC rotation for sine, leading-one normalisation plus
squaring digit-recurrence for the base-2 logarithm — parameterised by
width so tests can run scaled-down instances.

Both builders come with bit-exact integer models (``sin_model``,
``log2_model``) replicating every truncation of the datapath; tests check
circuit-vs-model exactly and model-vs-``math`` within an approximation
tolerance.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..mig.graph import Mig
from ..mig.signal import complement
from . import blocks
from .blocks import Word
from .elaborate import new_mig


# ----------------------------------------------------------------------
# sin — CORDIC rotation mode
# ----------------------------------------------------------------------

def _cordic_parameters(width: int, guard: int = 2) -> Tuple[int, int, List[int], int]:
    """Shared fixed-point parameters for the circuit and the model.

    Returns ``(internal_width, frac_bits, angle_table, x0)``:

    * amplitudes (x, y) are signed, ``internal_width`` bits with
      ``frac_bits`` fractional bits;
    * the residual angle z is kept in *quarter-circle units*: the input
      word itself (no multiplication by pi/2 needed), extended by a sign
      bit; the table holds ``atan(2^-i)`` in the same units;
    * ``x0`` is the CORDIC gain correction ``K = prod(1/sqrt(1+2^-2i))``.
    """
    iterations = width
    frac_bits = width
    internal = width + 2 + guard
    quarter = math.pi / 2
    table = [
        round(math.atan(2.0 ** -i) / quarter * (1 << width))
        for i in range(iterations)
    ]
    gain = 1.0
    for i in range(iterations):
        gain *= math.sqrt(1.0 + 2.0 ** (-2 * i))
    x0 = round((1.0 / gain) * (1 << frac_bits))
    return internal, frac_bits, table, x0


def _shift_right_arith(word: Word, amount: int) -> Word:
    """Arithmetic right shift by a constant (sign extension)."""
    if amount <= 0:
        return list(word)
    sign = word[-1]
    return list(word[amount:]) + [sign] * min(amount, len(word))


def _add_or_sub(mig: Mig, a: Word, b: Word, sub: int) -> Word:
    """``a + b`` when ``sub = 0``; ``a - b`` when ``sub = 1`` (same width)."""
    b_adj = [mig.add_xor(bit, sub) for bit in b]
    total, _ = blocks.ripple_add(mig, a, b_adj, carry_in=sub)
    return total


def build_sin(width: int = 24, elaborated: bool = True) -> Mig:
    """CORDIC sine: ``width`` inputs, ``width + 1`` outputs
    (24/25 at the EPFL shape ``width=24``).

    The input word is an angle in ``[0, pi/2)`` expressed as a fraction of
    the quarter circle (``theta = in / 2^width * pi/2``); the output is
    ``sin(theta)`` with ``width`` fractional bits (so ``width + 1`` bits
    total — ``sin`` can reach exactly 1).
    """
    internal, frac_bits, table, x0 = _cordic_parameters(width)
    mig = new_mig(f"sin{width}", elaborated)
    angle = [mig.add_pi(f"a{i}") for i in range(width)]

    # z in quarter-circle units, sign-extended into the internal width.
    z: Word = blocks.zero_extend(angle, internal)
    x: Word = blocks.constant_word(x0, internal)
    y: Word = blocks.constant_word(0, internal)

    for i, alpha in enumerate(table):
        alpha_word = blocks.constant_word(alpha, internal)
        neg = z[-1]  # z < 0: rotate the other way
        pos = complement(neg)
        x_shift = _shift_right_arith(x, i)
        y_shift = _shift_right_arith(y, i)
        # d = +1 when z >= 0:  z -= alpha, x -= y>>i, y += x>>i
        # d = -1 when z <  0:  z += alpha, x += y>>i, y -= x>>i
        z = _add_or_sub(mig, z, alpha_word, pos)
        new_x = _add_or_sub(mig, x, y_shift, pos)
        new_y = _add_or_sub(mig, y, x_shift, neg)
        x, y = new_x, new_y

    for i in range(frac_bits + 1):
        mig.add_po(y[i], f"s{i}")
    return mig


def sin_model(angle: int, width: int) -> int:
    """Bit-exact integer model of :func:`build_sin`."""
    internal, frac_bits, table, x0 = _cordic_parameters(width)
    mask = (1 << internal) - 1
    sign_bit = 1 << (internal - 1)

    def to_signed(v: int) -> int:
        return v - (1 << internal) if v & sign_bit else v

    z = angle
    x = x0
    y = 0
    for i, alpha in enumerate(table):
        if to_signed(z & mask) >= 0:
            z, dx, dy = z - alpha, -(to_signed(y & mask) >> i), to_signed(
                x & mask
            ) >> i
        else:
            z, dx, dy = z + alpha, to_signed(y & mask) >> i, -(
                to_signed(x & mask) >> i
            )
        x = (x + dx) & mask
        y = (y + dy) & mask
        z &= mask
    return y & ((1 << (frac_bits + 1)) - 1)


# ----------------------------------------------------------------------
# log2 — normalisation + squaring digit recurrence
# ----------------------------------------------------------------------

def log2_output_bits(width: int, frac_bits: int) -> int:
    """Number of outputs: integer part (priority encode) + fraction."""
    return max(1, (width - 1).bit_length()) + frac_bits


def build_log2(width: int = 32, frac_bits: int = 16, elaborated: bool = True) -> Mig:
    """Fixed-point base-2 logarithm (32/21 at ``width=32, frac_bits=16``;
    use ``frac_bits = 27`` for the EPFL 32/32 shape).

    Integer part: position of the leading one (priority encoder).
    Fraction: normalise the input to ``[1, 2)`` with a barrel shifter,
    then extract one fraction bit per squaring step — ``m <- m^2``; if
    ``m >= 2`` the next bit is 1 and ``m`` is renormalised.  For a zero
    input every output is zero (the hardware convention here).
    """
    mig = new_mig(f"log2_{width}", elaborated)
    x = [mig.add_pi(f"x{i}") for i in range(width)]

    msb, _valid = blocks.priority_encoder(mig, x)
    exp_bits = len(msb)

    # Normalise: m = x << (width - 1 - msb); implemented as a right
    # rotation... simplest correct form: shift left by (width-1) - msb.
    shift_amount, _ = blocks.ripple_sub(
        mig, blocks.constant_word(width - 1, exp_bits), msb
    )
    mantissa = blocks.barrel_shift_left(mig, x, shift_amount)

    digits: List[int] = []
    m: Word = mantissa  # width bits, implicit binary point after the MSB
    for _ in range(frac_bits):
        sq = blocks.square(mig, m)  # 2*width bits
        digit = sq[2 * width - 1]  # m^2 >= 2 ?
        digits.append(digit)
        top = sq[width:]  # renormalised (divided by 2)
        low = sq[width - 1 : 2 * width - 1]
        m = blocks.mux_word(mig, digit, top, low)

    for i in range(exp_bits):
        mig.add_po(msb[i], f"e{i}")
    for k, digit in enumerate(digits):
        mig.add_po(digit, f"f{k}")  # f0 is the 1/2-weight bit
    return mig


def log2_model(x: int, width: int, frac_bits: int) -> Tuple[int, List[int]]:
    """Bit-exact model of :func:`build_log2`: ``(exponent, digits)``."""
    if x == 0:
        return 0, [0] * frac_bits
    msb = x.bit_length() - 1
    m = (x << (width - 1 - msb)) & ((1 << width) - 1)
    digits: List[int] = []
    for _ in range(frac_bits):
        sq = m * m
        if sq >> (2 * width - 1):
            digits.append(1)
            m = sq >> width
        else:
            digits.append(0)
            m = (sq >> (width - 1)) & ((1 << width) - 1)
    return msb, digits


__all__ = [
    "build_log2",
    "build_sin",
    "log2_model",
    "log2_output_bits",
    "sin_model",
]
