"""Benchmark circuit generators (EPFL-suite stand-ins), word-level
building blocks, and the Python-AST frontend."""

from . import arithmetic, blocks, control, cordic
from .frontend import FrontendError, FrontendFunction, mig_function
from .registry import (
    BENCHMARKS,
    BENCHMARK_ORDER,
    BenchmarkSpec,
    build_benchmark,
    build_suite,
)

__all__ = [
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "BenchmarkSpec",
    "FrontendError",
    "FrontendFunction",
    "arithmetic",
    "blocks",
    "build_benchmark",
    "build_suite",
    "control",
    "cordic",
    "mig_function",
]
