"""Benchmark circuit generators (EPFL-suite stand-ins) and word-level
building blocks."""

from . import arithmetic, blocks, control, cordic
from .registry import (
    BENCHMARKS,
    BENCHMARK_ORDER,
    BenchmarkSpec,
    build_benchmark,
    build_suite,
)

__all__ = [
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "BenchmarkSpec",
    "arithmetic",
    "blocks",
    "build_benchmark",
    "build_suite",
    "control",
    "cordic",
]
