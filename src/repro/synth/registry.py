"""Benchmark registry: the 18 functions of the paper's evaluation.

Each entry names a generator plus three width presets:

* ``tiny``    — seconds-scale, used by the unit/integration tests;
* ``default`` — minutes-scale for the full 18x5 table harness on a laptop;
* ``paper``   — the widths of the EPFL circuits the paper used (large
  arithmetic instances take a while in pure Python).

``PI/PO`` of the *paper* presets match Table I of the paper; scaled
presets keep the structural character (see DESIGN.md §4 on the
benchmark substitution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..mig.graph import Mig
from . import arithmetic, control, cordic


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark: generator, category, and per-preset parameters."""

    name: str
    builder: Callable[..., Mig]
    category: str  # "arithmetic" | "control"
    presets: Dict[str, dict]
    paper_pi: int
    paper_po: int

    def build(self, preset: str = "default", **overrides) -> Mig:
        """Instantiate the benchmark MIG."""
        if preset not in self.presets:
            raise ValueError(
                f"benchmark {self.name!r} has no preset {preset!r}; "
                f"choose from {sorted(self.presets)}"
            )
        params = dict(self.presets[preset])
        params.update(overrides)
        mig = self.builder(**params)
        mig.name = self.name
        return mig


def _spec(name, builder, category, tiny, default, paper, pi, po):
    return BenchmarkSpec(
        name=name,
        builder=builder,
        category=category,
        presets={"tiny": tiny, "default": default, "paper": paper},
        paper_pi=pi,
        paper_po=po,
    )


#: The 18 benchmarks of the paper's Table I, in table order.
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        _spec(
            "adder", arithmetic.build_adder, "arithmetic",
            {"width": 8}, {"width": 32}, {"width": 128}, 256, 129,
        ),
        _spec(
            "bar", arithmetic.build_bar, "arithmetic",
            {"width": 8, "shift_bits": 3},
            {"width": 32, "shift_bits": 5},
            {"width": 128, "shift_bits": 7}, 135, 128,
        ),
        _spec(
            "div", arithmetic.build_div, "arithmetic",
            {"width": 4}, {"width": 12}, {"width": 64}, 128, 128,
        ),
        _spec(
            "log2", cordic.build_log2, "arithmetic",
            {"width": 8, "frac_bits": 3},
            {"width": 16, "frac_bits": 8},
            {"width": 32, "frac_bits": 27}, 32, 32,
        ),
        _spec(
            "max", arithmetic.build_max, "arithmetic",
            {"width": 8}, {"width": 32}, {"width": 128}, 512, 130,
        ),
        _spec(
            "multiplier", arithmetic.build_multiplier, "arithmetic",
            {"width": 6}, {"width": 16}, {"width": 64}, 128, 128,
        ),
        _spec(
            "sin", cordic.build_sin, "arithmetic",
            {"width": 8}, {"width": 14}, {"width": 24}, 24, 25,
        ),
        _spec(
            "sqrt", arithmetic.build_sqrt, "arithmetic",
            {"width": 8}, {"width": 24}, {"width": 128}, 128, 64,
        ),
        _spec(
            "square", arithmetic.build_square, "arithmetic",
            {"width": 8}, {"width": 16}, {"width": 64}, 64, 128,
        ),
        _spec(
            "cavlc", control.build_cavlc, "control",
            {"num_gates": 80}, {"num_gates": 650}, {"num_gates": 650},
            10, 11,
        ),
        _spec(
            "ctrl", control.build_ctrl, "control",
            {"num_gates": 50}, {"num_gates": 150}, {"num_gates": 150},
            7, 26,
        ),
        _spec(
            "dec", control.build_dec, "control",
            {"sel_bits": 4}, {"sel_bits": 8}, {"sel_bits": 8}, 8, 256,
        ),
        _spec(
            "i2c", control.build_i2c, "control",
            {"num_pis": 24, "num_pos": 22, "num_gates": 160},
            {"num_pis": 48, "num_pos": 44, "num_gates": 420},
            {"num_pis": 147, "num_pos": 142, "num_gates": 1200}, 147, 142,
        ),
        _spec(
            "int2float", control.build_int2float, "control",
            {}, {}, {}, 11, 7,
        ),
        _spec(
            "mem_ctrl", control.build_mem_ctrl, "control",
            {"num_pis": 40, "num_pos": 44, "num_gates": 320},
            {"num_pis": 160, "num_pos": 170, "num_gates": 2400},
            {"num_pis": 1204, "num_pos": 1231, "num_gates": 9000},
            1204, 1231,
        ),
        _spec(
            "priority", control.build_priority, "control",
            {"width": 16}, {"width": 64}, {"width": 128}, 128, 8,
        ),
        _spec(
            "router", control.build_router, "control",
            {"num_pis": 20, "num_pos": 10, "num_gates": 80},
            {"num_pis": 60, "num_pos": 30, "num_gates": 260},
            {"num_pis": 60, "num_pos": 30, "num_gates": 260}, 60, 30,
        ),
        _spec(
            "voter", control.build_voter, "control",
            {"inputs": 31}, {"inputs": 201}, {"inputs": 1001}, 1001, 1,
        ),
    ]
}

#: Table-order names (matches the paper's Table I row order).
BENCHMARK_ORDER: List[str] = list(BENCHMARKS)


def build_benchmark(name: str, preset: str = "default", **overrides) -> Mig:
    """Build one of the 18 paper benchmarks by name."""
    if name not in BENCHMARKS:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_ORDER}"
        )
    return BENCHMARKS[name].build(preset, **overrides)


def build_suite(
    preset: str = "default", names: Optional[List[str]] = None
) -> List[Tuple[str, Mig]]:
    """Build (name, mig) pairs for a benchmark subset in table order."""
    selected = names if names is not None else BENCHMARK_ORDER
    return [(name, build_benchmark(name, preset)) for name in selected]


__all__ = ["BENCHMARKS", "BENCHMARK_ORDER", "BenchmarkSpec", "build_benchmark", "build_suite"]
