"""Arithmetic benchmark generators (EPFL-suite stand-ins).

Each function builds a complete MIG for one of the arithmetic benchmarks
in the paper's Table I: ``adder``, ``bar``, ``div``, ``max``,
``multiplier``, ``sqrt``, ``square`` (``log2`` and ``sin`` live in
:mod:`repro.synth.cordic`).  Widths are parameters so the same generator
produces the paper-scale circuit and tractable test/bench versions; the
registry (:mod:`repro.synth.registry`) holds the presets.

Every generator has a bit-exact Python *model* function next to it
(``*_model``) describing the implemented register-transfer behaviour;
the test suite checks circuit-vs-model on random vectors and, where a
natural mathematical spec exists (``divmod``, ``math.isqrt``, ...),
model-vs-spec as well.
"""

from __future__ import annotations

from typing import List, Tuple

from ..mig.graph import Mig
from ..mig.signal import CONST0, CONST1, complement
from . import blocks
from .blocks import Word
from .elaborate import new_mig


# ----------------------------------------------------------------------
# adder
# ----------------------------------------------------------------------

def build_adder(width: int = 128, elaborated: bool = True) -> Mig:
    """Ripple-carry adder: ``2*width`` inputs, ``width + 1`` outputs.

    Matches the EPFL ``adder`` interface (256/129 at ``width=128``).
    """
    mig = new_mig(f"adder{width}", elaborated)
    a = [mig.add_pi(f"a{i}") for i in range(width)]
    b = [mig.add_pi(f"b{i}") for i in range(width)]
    total, carry = blocks.ripple_add(mig, a, b)
    for i, bit in enumerate(total):
        mig.add_po(bit, f"s{i}")
    mig.add_po(carry, f"s{width}")
    return mig


def adder_model(a: int, b: int, width: int) -> int:
    """Reference: ``(a + b)`` over ``width + 1`` output bits."""
    return (a + b) & ((1 << (width + 1)) - 1)


# ----------------------------------------------------------------------
# bar (barrel shifter)
# ----------------------------------------------------------------------

def build_bar(width: int = 128, shift_bits: int = 7, elaborated: bool = True) -> Mig:
    """Rotating barrel shifter: ``width + shift_bits`` inputs, ``width``
    outputs (135/128 at the EPFL shape ``width=128, shift_bits=7``)."""
    mig = new_mig(f"bar{width}", elaborated)
    data = [mig.add_pi(f"d{i}") for i in range(width)]
    amount = [mig.add_pi(f"s{i}") for i in range(shift_bits)]
    rotated = blocks.barrel_shift_left(mig, data, amount, rotate=True)
    for i, bit in enumerate(rotated):
        mig.add_po(bit, f"q{i}")
    return mig


def bar_model(data: int, amount: int, width: int) -> int:
    """Reference: rotate-left of *data* by *amount* modulo *width*."""
    amount %= width
    mask = (1 << width) - 1
    return ((data << amount) | (data >> (width - amount))) & mask


# ----------------------------------------------------------------------
# div (restoring array divider)
# ----------------------------------------------------------------------

def build_div(width: int = 64, elaborated: bool = True) -> Mig:
    """Restoring divider: quotient and remainder of ``width``-bit operands.

    ``2*width`` inputs, ``2*width`` outputs (128/128 at ``width=64``),
    matching the EPFL ``div`` interface.  One subtract-compare-mux row per
    quotient bit gives the deep, strongly serial structure that makes
    ``div`` the hardest endurance case in the paper's Table I.
    """
    mig = new_mig(f"div{width}", elaborated)
    dividend = [mig.add_pi(f"n{i}") for i in range(width)]
    divisor = [mig.add_pi(f"d{i}") for i in range(width)]

    w = width + 1  # remainder register: one guard bit
    divisor_ext = blocks.zero_extend(divisor, w)
    remainder: Word = blocks.constant_word(0, w)
    quotient: List[int] = [CONST0] * width

    for step in range(width - 1, -1, -1):
        shifted = [dividend[step]] + remainder[:-1]  # (R << 1) | n_step
        diff, borrow = blocks.ripple_sub(mig, shifted, divisor_ext)
        quotient[step] = complement(borrow)  # 1 iff shifted >= divisor
        remainder = blocks.mux_word(mig, borrow, shifted, diff)

    for i in range(width):
        mig.add_po(quotient[i], f"q{i}")
    for i in range(width):
        mig.add_po(remainder[i], f"r{i}")
    return mig


def div_model(dividend: int, divisor: int, width: int) -> Tuple[int, int]:
    """Bit-exact register model of :func:`build_div`.

    Equals ``divmod`` for nonzero divisors; for a zero divisor the
    hardware yields an all-ones quotient and a remainder equal to the
    shifted-in dividend bits (the natural restoring-divider behaviour).
    """
    w = width + 1
    mask = (1 << w) - 1
    remainder = 0
    quotient = 0
    for step in range(width - 1, -1, -1):
        shifted = ((remainder << 1) | ((dividend >> step) & 1)) & mask
        if shifted >= divisor:
            quotient |= 1 << step
            remainder = (shifted - divisor) & mask
        else:
            remainder = shifted
    return quotient, remainder & ((1 << width) - 1)


# ----------------------------------------------------------------------
# max (4-operand maximum with index)
# ----------------------------------------------------------------------

def build_max(width: int = 128, operands: int = 4, elaborated: bool = True) -> Mig:
    """Maximum of *operands* unsigned words plus the argmax index.

    ``operands * width`` inputs, ``width + log2(operands)`` outputs
    (512/130 at the EPFL shape ``width=128, operands=4``).  Ties resolve
    to the lowest operand index.
    """
    if operands != 4:
        raise ValueError("the EPFL max benchmark shape uses 4 operands")
    mig = new_mig(f"max{width}", elaborated)
    words = [
        [mig.add_pi(f"x{k}_{i}") for i in range(width)] for k in range(operands)
    ]
    m01, s01 = blocks.max_word(mig, words[0], words[1])
    m23, s23 = blocks.max_word(mig, words[2], words[3])
    best, s_final = blocks.max_word(mig, m01, m23)
    idx0 = mig.add_mux(s_final, s23, s01)
    for i, bit in enumerate(best):
        mig.add_po(bit, f"m{i}")
    mig.add_po(idx0, "idx0")
    mig.add_po(s_final, "idx1")
    return mig


def max_model(values: List[int]) -> Tuple[int, int]:
    """Reference: ``(max, lowest argmax index)`` of four values."""
    best = max(values)
    return best, values.index(best)


# ----------------------------------------------------------------------
# multiplier / square
# ----------------------------------------------------------------------

def build_multiplier(width: int = 64, elaborated: bool = True) -> Mig:
    """Array multiplier: ``2*width`` inputs, ``2*width`` outputs
    (128/128 at the EPFL shape ``width=64``)."""
    mig = new_mig(f"multiplier{width}", elaborated)
    a = [mig.add_pi(f"a{i}") for i in range(width)]
    b = [mig.add_pi(f"b{i}") for i in range(width)]
    product = blocks.multiply(mig, a, b)
    for i, bit in enumerate(product):
        mig.add_po(bit, f"p{i}")
    return mig


def multiplier_model(a: int, b: int) -> int:
    """Reference: plain integer product."""
    return a * b


def build_square(width: int = 64, elaborated: bool = True) -> Mig:
    """Squarer: ``width`` inputs, ``2*width`` outputs
    (64/128 at the EPFL shape ``width=64``)."""
    mig = new_mig(f"square{width}", elaborated)
    a = [mig.add_pi(f"a{i}") for i in range(width)]
    product = blocks.square(mig, a)
    for i, bit in enumerate(product):
        mig.add_po(bit, f"p{i}")
    return mig


def square_model(a: int) -> int:
    """Reference: ``a * a``."""
    return a * a


# ----------------------------------------------------------------------
# sqrt (restoring square root)
# ----------------------------------------------------------------------

def build_sqrt(width: int = 128, elaborated: bool = True) -> Mig:
    """Restoring integer square root: ``width`` inputs, ``width // 2``
    outputs (128/64 at the EPFL shape ``width=128``).

    Digit-recurrence: per output bit, shift in two radicand bits, try
    ``rem - (4*root + 1)``, keep on success.
    """
    if width % 2:
        raise ValueError("sqrt width must be even")
    mig = new_mig(f"sqrt{width}", elaborated)
    x = [mig.add_pi(f"x{i}") for i in range(width)]
    out_w = width // 2
    w = width + 2  # working register width (rem and trial)

    remainder: Word = blocks.constant_word(0, w)
    root: Word = blocks.constant_word(0, w)

    for step in range(out_w - 1, -1, -1):
        shifted = [x[2 * step], x[2 * step + 1]] + remainder[:-2]  # rem<<2|bits
        trial = [CONST1, CONST0] + root[:-2]  # (root << 2) | 1
        diff, borrow = blocks.ripple_sub(mig, shifted, trial)
        keep = complement(borrow)  # shifted >= trial
        remainder = blocks.mux_word(mig, borrow, shifted, diff)
        root = [keep] + root[:-1]  # root = (root << 1) | keep

    for i in range(out_w):
        mig.add_po(root[i], f"r{i}")
    return mig


def sqrt_model(x: int, width: int) -> int:
    """Reference: ``math.isqrt`` (the register model is exact for all
    inputs — no overflow is possible at ``width + 2`` working bits)."""
    import math

    return math.isqrt(x)


__all__ = [
    "adder_model",
    "bar_model",
    "build_adder",
    "build_bar",
    "build_div",
    "build_max",
    "build_multiplier",
    "build_sqrt",
    "build_square",
    "div_model",
    "max_model",
    "multiplier_model",
    "sqrt_model",
    "square_model",
]
