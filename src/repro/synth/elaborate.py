"""Elaborated (naive-translation) MIG construction.

The paper's "naive" baseline compiles MIGs obtained by *translating* the
EPFL benchmarks without any optimisation.  The EPFL suite is distributed
as and-inverter graphs (AIGs), so a naive MIG translation maps every AND
onto ``<a b 0>`` and every OR onto a complemented AND of complements —
producing graphs full of multi-complemented nodes and no recovered
majority structure.  That redundancy is precisely what the rewriting
scripts (Algorithms 1 and 2) then remove.

:class:`ElaboratingMig` reproduces this translation style:

* structural hashing is **off** (naive translation does not share
  recovered subexpressions; rewriting passes re-enable hashing when they
  rebuild);
* ``<a b 1>`` (OR) is built as ``~<~a ~b 0>`` (NAND of complements,
  the AIG idiom);
* full three-variable majorities are decomposed into AND/OR logic
  (``maj(a,b,c) = ab + (a+b)c``), as a gate-level netlist would arrive.

Builders in :mod:`repro.synth` construct benchmarks through this class by
default, so "naive" compilations see translation-grade MIGs while the
rewriting configurations measure realistic optimisation gains.  Pass
``elaborated=False`` to any builder for the hand-optimised
majority-native form instead.
"""

from __future__ import annotations

from ..mig.graph import Mig
from ..mig.signal import CONST0, complement


class ElaboratingMig(Mig):
    """MIG builder that mimics naive AIG-to-MIG benchmark translation."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name, use_strash=False)

    def add_maj(self, a: int, b: int, c: int) -> int:
        """Create a majority in AIG style.

        Trivial identities still simplify (they never allocate);
        AND-shaped calls stay ``<x y 0>``; OR-shaped calls become
        complemented NANDs; full majorities decompose into four
        AND-level nodes.
        """
        if not self.maj_would_allocate(a, b, c):
            return super().add_maj(a, b, c)
        operands = sorted((a, b, c))
        if operands[0] == CONST0:
            return super().add_maj(a, b, c)  # AND: the AIG primitive
        if operands[0] == 1:  # OR(x, y) = ~(~x AND ~y)
            x, y = operands[1], operands[2]
            return complement(
                super().add_maj(complement(x), complement(y), CONST0)
            )
        # Full majority: ab + (a + b)c, all through the AIG-style ops.
        ab = self.add_maj(a, b, CONST0)
        a_or_b = self.add_maj(a, b, 1)
        bc = self.add_maj(a_or_b, c, CONST0)
        return self.add_maj(ab, bc, 1)


def new_mig(name: str, elaborated: bool) -> Mig:
    """Factory used by the benchmark builders."""
    return ElaboratingMig(name) if elaborated else Mig(name)
