"""Control-logic benchmark generators (EPFL-suite stand-ins).

The paper's control benchmarks split into two groups:

* circuits whose function is fully determined by their name —
  ``dec`` (decoder), ``priority`` (priority encoder), ``voter``
  (n-way majority), ``int2float`` (integer-to-float converter) — are
  implemented *exactly*;
* "random control functions" extracted from real designs —
  ``cavlc``, ``ctrl``, ``i2c``, ``mem_ctrl``, ``router`` — for which we
  have no netlists offline.  These are substituted by deterministic,
  seeded control-logic networks (:func:`random_control_network`) with
  the same PI/PO shape and a comparable gate mix: cascaded muxes,
  comparators, and and-or decision logic with random complemented edges.
  The endurance techniques act on structural properties (fanout and
  complement distributions, level spread), which the generator's
  locality and mix knobs reproduce; DESIGN.md §4 documents the
  substitution.
"""

from __future__ import annotations

import random
from typing import List

from ..mig.bitvec import popcount_threshold
from ..mig.graph import Mig
from ..mig.signal import complement
from . import blocks
from .elaborate import new_mig


# ----------------------------------------------------------------------
# Exact circuits
# ----------------------------------------------------------------------

def build_dec(sel_bits: int = 8, elaborated: bool = True) -> Mig:
    """Full decoder: ``sel_bits`` inputs, ``2**sel_bits`` one-hot outputs
    (8/256 at the EPFL shape)."""
    mig = new_mig(f"dec{sel_bits}", elaborated)
    sel = [mig.add_pi(f"s{i}") for i in range(sel_bits)]
    for i, line in enumerate(blocks.decoder(mig, sel)):
        mig.add_po(line, f"d{i}")
    return mig


def dec_model(sel: int, sel_bits: int) -> int:
    """Reference: one-hot word with bit *sel* set."""
    return 1 << sel


def build_priority(width: int = 128, elaborated: bool = True) -> Mig:
    """Priority encoder: ``width`` inputs, ``log2(width) + 1`` outputs
    (128/8 at the EPFL shape).  Highest asserted index wins."""
    mig = new_mig(f"priority{width}", elaborated)
    requests = [mig.add_pi(f"r{i}") for i in range(width)]
    index, valid = blocks.priority_encoder(mig, requests)
    for i, bit in enumerate(index):
        mig.add_po(bit, f"i{i}")
    mig.add_po(valid, "valid")
    return mig


def priority_model(requests: int, width: int) -> tuple:
    """Reference: ``(highest set index or 0, any set)``."""
    if requests == 0:
        return 0, 0
    return requests.bit_length() - 1, 1


def build_voter(inputs: int = 1001, elaborated: bool = True) -> Mig:
    """n-way majority voter: *inputs* inputs, 1 output
    (1001/1 at the EPFL shape).  Popcount tree plus threshold compare."""
    if inputs % 2 == 0:
        raise ValueError("voter needs an odd number of inputs")
    mig = new_mig(f"voter{inputs}", elaborated)
    votes = [mig.add_pi(f"v{i}") for i in range(inputs)]
    mig.add_po(popcount_threshold(mig, votes, inputs // 2 + 1), "maj")
    return mig


def voter_model(votes: int, inputs: int) -> int:
    """Reference: 1 iff more than half the vote bits are set."""
    return 1 if bin(votes).count("1") > inputs // 2 else 0


def build_int2float(
    int_bits: int = 11, exp_bits: int = 4, man_bits: int = 3,
    elaborated: bool = True,
) -> Mig:
    """Unsigned integer to tiny float: 11 inputs, 7 outputs at the EPFL
    ``int2float`` shape (4-bit exponent + 3-bit mantissa).

    ``value = mantissa_with_hidden_one * 2^(exp - 1)``; zero maps to
    all-zero output; mantissa bits below the window are truncated.
    """
    if exp_bits + man_bits != 7 and int_bits == 11:
        raise ValueError("EPFL int2float shape is 4+3 output bits")
    mig = new_mig(f"int2float{int_bits}", elaborated)
    x = [mig.add_pi(f"x{i}") for i in range(int_bits)]

    msb, valid = blocks.priority_encoder(mig, x)
    # exponent = msb + 1 when valid else 0
    exp_raw, _ = blocks.increment(mig, blocks.zero_extend(msb, exp_bits))
    exponent = [mig.add_and(b, valid) for b in exp_raw[:exp_bits]]

    # mantissa: the man_bits bits right below the leading one —
    # left-normalise then take the window under the MSB position.
    shift_amount, _ = blocks.ripple_sub(
        mig, blocks.constant_word(int_bits - 1, len(msb)), msb
    )
    normalised = blocks.barrel_shift_left(mig, x, shift_amount)
    window = normalised[int_bits - 1 - man_bits : int_bits - 1]
    mantissa = [mig.add_and(b, valid) for b in window]

    for i, bit in enumerate(exponent):
        mig.add_po(bit, f"e{i}")
    for i, bit in enumerate(mantissa):
        mig.add_po(bit, f"m{i}")
    return mig


def int2float_model(x: int, int_bits: int = 11, man_bits: int = 3) -> tuple:
    """Reference: ``(exponent, mantissa)`` of :func:`build_int2float`."""
    if x == 0:
        return 0, 0
    msb = x.bit_length() - 1
    exponent = msb + 1
    normalised = x << (int_bits - 1 - msb)
    mantissa = (normalised >> (int_bits - 1 - man_bits)) & ((1 << man_bits) - 1)
    return exponent, mantissa


# ----------------------------------------------------------------------
# Seeded control networks (cavlc / ctrl / i2c / mem_ctrl / router)
# ----------------------------------------------------------------------

#: Gate mix of the seeded generator: (kind, weight).  Mux-heavy with
#: and-or decision logic, resembling extracted controller cones.
_GATE_MIX = (
    ("and", 4),
    ("or", 4),
    ("xor", 2),
    ("maj", 2),
    ("mux", 4),
)


def random_control_network(
    name: str,
    num_pis: int,
    num_pos: int,
    num_gates: int,
    seed: int,
    locality: int = 48,
    complement_prob: float = 0.25,
    elaborated: bool = True,
) -> Mig:
    """Deterministic, seeded control-logic network.

    Gates draw operands preferentially from recently created signals
    (*locality* controls the window), producing the layered, cone-like
    structure of real controller logic; edges are complemented with
    probability *complement_prob* (real control netlists are inverter
    rich).  Outputs are drawn from the deepest part of the network so
    every output cone is non-trivial.
    """
    rng = random.Random(seed)
    mig = new_mig(name, elaborated)
    pool: List[int] = [mig.add_pi(f"x{i}") for i in range(num_pis)]

    kinds = [k for k, w in _GATE_MIX for _ in range(w)]

    def pick_operand() -> int:
        if len(pool) > locality and rng.random() < 0.7:
            sig = pool[rng.randrange(len(pool) - locality, len(pool))]
        else:
            sig = pool[rng.randrange(len(pool))]
        if rng.random() < complement_prob:
            sig = complement(sig)
        return sig

    created = 0
    guard = 0
    while created < num_gates and guard < num_gates * 20:
        guard += 1
        kind = kinds[rng.randrange(len(kinds))]
        a, b = pick_operand(), pick_operand()
        if kind == "and":
            sig = mig.add_and(a, b)
        elif kind == "or":
            sig = mig.add_or(a, b)
        elif kind == "xor":
            sig = mig.add_xor(a, b)
        elif kind == "maj":
            sig = mig.add_maj(a, b, pick_operand())
        else:  # mux
            sig = mig.add_mux(pick_operand(), a, b)
        if sig in pool or sig <= 1:
            continue  # simplified away; try again
        pool.append(sig)
        created += 1

    # Outputs: sample without replacement from the deepest half.
    deep_start = max(num_pis, len(pool) - max(num_pos * 2, len(pool) // 2))
    candidates = pool[deep_start:]
    rng.shuffle(candidates)
    while len(candidates) < num_pos:  # tiny networks: allow reuse
        candidates.append(pool[rng.randrange(num_pis, len(pool))])
    for i in range(num_pos):
        sig = candidates[i]
        if rng.random() < complement_prob:
            sig = complement(sig)
        mig.add_po(sig, f"y{i}")
    return mig


def build_cavlc(num_gates: int = 650, seed: int = 0xCA71C) -> Mig:
    """CAVLC coefficient-token controller stand-in (10/11)."""
    return random_control_network("cavlc", 10, 11, num_gates, seed, locality=24)


def build_ctrl(num_gates: int = 150, seed: int = 0xC791) -> Mig:
    """ALU control unit stand-in (7/26)."""
    return random_control_network("ctrl", 7, 26, num_gates, seed, locality=16)


def build_i2c(
    num_pis: int = 147, num_pos: int = 142, num_gates: int = 1200,
    seed: int = 0x12C,
) -> Mig:
    """I2C controller stand-in (147/142 at the paper shape)."""
    return random_control_network(
        "i2c", num_pis, num_pos, num_gates, seed, locality=64
    )


def build_mem_ctrl(
    num_pis: int = 1204, num_pos: int = 1231, num_gates: int = 9000,
    seed: int = 0x3E3C,
) -> Mig:
    """DRAM memory-controller stand-in (1204/1231 at the paper shape)."""
    return random_control_network(
        "mem_ctrl", num_pis, num_pos, num_gates, seed, locality=128
    )


def build_router(
    num_pis: int = 60, num_pos: int = 30, num_gates: int = 260,
    seed: int = 0x40073,
) -> Mig:
    """Lookup-table router stand-in (60/30)."""
    return random_control_network(
        "router", num_pis, num_pos, num_gates, seed, locality=32
    )


__all__ = [
    "build_cavlc",
    "build_ctrl",
    "build_dec",
    "build_i2c",
    "build_int2float",
    "build_mem_ctrl",
    "build_priority",
    "build_router",
    "build_voter",
    "dec_model",
    "int2float_model",
    "priority_model",
    "random_control_network",
    "voter_model",
]
