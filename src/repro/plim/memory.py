"""Behavioural model of a resistive (RRAM) memory array.

The array stores one Boolean value per cell — bit-parallel: each "value" is
a Python integer whose bit *i* belongs to simulation pattern *i* — and
tracks a write counter per cell.  An optional endurance budget models the
physical wear-out that motivates the paper: RRAM cells endure on the order
of ``1e10``–``1e11`` writes, after which they hard-fail.  Executing a
program on an array whose budget is exhausted raises
:class:`EnduranceExhaustedError`, and :func:`estimate_lifetime` converts a
compiled program's write profile into the number of times it can run before
the first cell dies — the lifetime metric the endurance-management
techniques are designed to maximise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

#: Endurance of the best published RRAM cells cited by the paper
#: (Lee et al., IEDM'10: ~1e10; Kim et al., VLSI'11: ~1e11).
TYPICAL_ENDURANCE_LOW = 10**10
TYPICAL_ENDURANCE_HIGH = 10**11


class EnduranceExhaustedError(RuntimeError):
    """A cell was written past its endurance budget."""

    def __init__(self, cell: int, writes: int, endurance: int) -> None:
        super().__init__(
            f"cell {cell} exceeded its endurance budget "
            f"({writes} writes > {endurance})"
        )
        self.cell = cell
        self.writes = writes
        self.endurance = endurance


class RramArray:
    """A crossbar of bipolar resistive switches with write counting.

    Parameters
    ----------
    num_cells:
        Array capacity.
    endurance:
        Optional per-cell write budget; ``None`` disables wear-out.
    """

    def __init__(self, num_cells: int, endurance: Optional[int] = None) -> None:
        if num_cells < 0:
            raise ValueError("array size must be non-negative")
        self.num_cells = num_cells
        self.endurance = endurance
        self.values: List[int] = [0] * num_cells
        self.writes: List[int] = [0] * num_cells

    # -- data path -----------------------------------------------------

    def read(self, cell: int) -> int:
        """Current (bit-parallel) value of *cell*."""
        return self.values[cell]

    def write(self, cell: int, value: int) -> None:
        """Write *value* into *cell*, charging one write cycle.

        Write counting is per *operation*, not per changed bit: the PLiM
        controller pulses the cell on every RM3 regardless of whether the
        stored state flips, which is also how the paper counts writes.
        """
        self.writes[cell] += 1
        if self.endurance is not None and self.writes[cell] > self.endurance:
            raise EnduranceExhaustedError(
                cell, self.writes[cell], self.endurance
            )
        self.values[cell] = value

    def preload(self, cell: int, value: int) -> None:
        """Deposit input data without charging a write cycle.

        Models operands already resident in memory when the computation
        starts (the paper does not bill input loading to the program).
        """
        self.values[cell] = value

    # -- wear bookkeeping ------------------------------------------------

    def reset_wear(self) -> None:
        """Zero all write counters (fresh array)."""
        self.writes = [0] * self.num_cells

    def reset_values(self) -> None:
        """Zero the stored data, keeping wear state."""
        self.values = [0] * self.num_cells

    def max_writes(self) -> int:
        """Highest write count over the array."""
        return max(self.writes, default=0)

    def total_writes(self) -> int:
        """Sum of all write counters."""
        return sum(self.writes)

    def remaining_endurance(self) -> Optional[int]:
        """Writes left on the most-worn cell (``None`` when unbounded)."""
        if self.endurance is None:
            return None
        return self.endurance - self.max_writes()


@dataclass(frozen=True)
class LifetimeEstimate:
    """How long an array survives running one program repeatedly."""

    #: Program executions until the most-written cell exhausts its budget.
    executions: int
    #: Index of the first cell to fail.
    first_failing_cell: int
    #: Writes that cell takes per execution.
    writes_per_execution: int


def estimate_lifetime(
    write_counts: Sequence[int],
    endurance: Optional[int] = None,
    *,
    arch=None,
) -> LifetimeEstimate:
    """Lifetime of an array executing a program with *write_counts* forever.

    The array dies when its most-written cell exceeds *endurance*; with a
    static per-execution profile that is simply
    ``endurance // max(write_counts)`` runs.  Balancing writes (reducing the
    max) therefore directly multiplies the usable lifetime — the paper's
    core argument.

    The budget comes from, in order: an explicit *endurance*, the target
    machine model's :attr:`~repro.arch.EnduranceModel.cell_endurance`
    (pass *arch*), or the paper's cited low-end figure.
    """
    if endurance is None:
        endurance = (
            arch.endurance.cell_endurance
            if arch is not None
            else TYPICAL_ENDURANCE_LOW
        )
    peak = max(write_counts, default=0)
    if peak == 0:
        return LifetimeEstimate(
            executions=endurance, first_failing_cell=-1, writes_per_execution=0
        )
    cell = max(range(len(write_counts)), key=write_counts.__getitem__)
    return LifetimeEstimate(
        executions=endurance // peak,
        first_failing_cell=cell,
        writes_per_execution=peak,
    )
