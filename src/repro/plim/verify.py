"""End-to-end verification of compiled PLiM programs.

A compiled RM3 stream is executed on the behavioural RRAM array and its
outputs are compared against bit-parallel simulation of the source MIG —
for every compiler configuration this must match on every pattern.  This
is the safety net under all experiments: statistics of a miscompiled
program would be meaningless.
"""

from __future__ import annotations

import random
from typing import Optional

from ..mig.graph import Mig
from ..mig.simulate import (
    exhaustive_words,
    randomized_rounds,
    simulate,
    truth_tables,
)
from .controller import PlimController
from .isa import Program
from .memory import RramArray


class VerificationError(AssertionError):
    """A compiled program disagrees with its source MIG."""


def verify_program(
    program: Program,
    mig: Mig,
    *,
    patterns: int = 256,
    seed: int = 0x5EED,
    exhaustive_limit: int = 10,
    raise_on_mismatch: bool = True,
) -> bool:
    """Check that *program* computes the same function as *mig*.

    Small functions (``num_pis <= exhaustive_limit``) are checked
    exhaustively; larger ones with *patterns* random bit-parallel
    patterns drawn in rounds sized by the active simulation kernel
    (:func:`repro.mig.simulate.randomized_rounds`).  The MIG side runs
    through that kernel; the program side always executes on the
    behavioural array.  Returns ``True`` on success; raises
    :class:`VerificationError` (or returns ``False``) on mismatch.
    """
    if len(program.pi_cells) != mig.num_pis:
        raise ValueError("program/MIG input arity mismatch")
    if len(program.po_cells) != mig.num_pos:
        raise ValueError("program/MIG output arity mismatch")

    if mig.num_pis <= exhaustive_limit:
        width = 1 << mig.num_pis
        mask = (1 << width) - 1
        batches = [exhaustive_words(mig.num_pis, width)]
    else:
        rng = random.Random(seed)
        rounds, width, mask = randomized_rounds(patterns)
        batches = [
            [rng.getrandbits(width) for _ in range(mig.num_pis)]
            for _ in range(rounds)
        ]

    for words in batches:
        expected = simulate(mig, words, mask=mask)
        array = RramArray(program.num_cells)
        got = PlimController(array).run(program, words, mask=mask)
        if expected != got:
            if raise_on_mismatch:
                bad = [
                    (i, mig.po_name(i))
                    for i, (e, g) in enumerate(zip(expected, got))
                    if e != g
                ]
                raise VerificationError(
                    f"program {program.name!r} disagrees with its MIG on "
                    f"outputs {bad[:8]}"
                )
            return False
    return True


def cross_check_truth_tables(program: Program, mig: Mig) -> Optional[int]:
    """Exhaustive comparison helper for tiny functions; returns the first
    differing output index or ``None`` when equivalent."""
    tables = truth_tables(mig)
    width = 1 << mig.num_pis
    mask = (1 << width) - 1
    words = exhaustive_words(mig.num_pis, width)
    array = RramArray(program.num_cells)
    got = PlimController(array).run(program, words, mask=mask)
    for idx, (table, word) in enumerate(zip(tables, got)):
        if table != word:
            return idx
    return None
