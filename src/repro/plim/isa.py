"""The PLiM instruction set: RM3 and nothing else.

The PLiM computer [Gaillardon et al., DATE'16] executes a single native
instruction on its resistive memory array:

``RM3(P, Q, Z):   Z <- MAJ(P, NOT Q, Z)``

where ``P`` and ``Q`` are read operands (memory cells or the constants
0/1 applied directly on the bit lines) and ``Z`` is a memory cell that is
*always written*.  Every other primitive the compiler needs is an RM3
special case — and therefore counts toward both the instruction total
(``#I``) and the destination cell's write count:

=================  =====================  =============================
operation          encoding               effect
=================  =====================  =============================
write 0            ``RM3(0, 1, Z)``       ``Z <- MAJ(0, 0, Z) = 0``
write 1            ``RM3(1, 0, Z)``       ``Z <- MAJ(1, 1, Z) = 1``
copy   ``x -> Z``  ``Z <- 0``; ``RM3(x, 0, Z)``   ``Z <- MAJ(x, 1, 0) = x``
invert ``x -> Z``  ``Z <- 1``; ``RM3(0, x, Z)``   ``Z <- MAJ(0, ~x, 1) = ~x``
majority node      ``RM3(A, B, Z)``       ``Z <- MAJ(A, ~B, Z)``
=================  =====================  =============================

Operands are encoded as plain integers for compactness: a non-negative
value is a cell address, :data:`OP_CONST0`/:data:`OP_CONST1` are the two
constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Operand encoding for the constant 0 applied directly to a bit line.
OP_CONST0 = -1

#: Operand encoding for the constant 1 applied directly to a bit line.
OP_CONST1 = -2


def const_operand(value: int) -> int:
    """Operand encoding of a Boolean constant."""
    return OP_CONST1 if value else OP_CONST0


def operand_is_const(op: int) -> bool:
    """Return ``True`` when *op* encodes a constant rather than a cell."""
    return op < 0


def operand_const_value(op: int) -> int:
    """Boolean value of a constant operand."""
    if op == OP_CONST0:
        return 0
    if op == OP_CONST1:
        return 1
    raise ValueError(f"operand {op} is not a constant")


def format_operand(op: int) -> str:
    """Human-readable operand for disassembly."""
    if op == OP_CONST0:
        return "0"
    if op == OP_CONST1:
        return "1"
    return f"@{op}"


#: One RM3 instruction: ``(P, Q, Z)`` with Z always a cell address.
Rm3 = Tuple[int, int, int]


@dataclass
class Program:
    """A compiled PLiM program: a linear sequence of RM3 instructions.

    Attributes
    ----------
    instructions:
        ``(P, Q, Z)`` triples executed in order.
    num_cells:
        Number of RRAM devices the program touches (``#R`` in the paper's
        tables); includes the cells pre-loaded with primary inputs.
    pi_cells:
        Cell address holding each primary input at program start.  These
        pre-loads model input data already resident in memory and do *not*
        count as writes (consistent with the ``min = 0`` entries of the
        paper's Table I).
    po_cells:
        Cell address holding each primary output when the program halts.
    name:
        Name of the source function (benchmark), for reports.
    """

    instructions: List[Rm3] = field(default_factory=list)
    num_cells: int = 0
    pi_cells: List[int] = field(default_factory=list)
    po_cells: List[int] = field(default_factory=list)
    name: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def num_instructions(self) -> int:
        """``#I`` — the paper's latency proxy."""
        return len(self.instructions)

    @property
    def num_rrams(self) -> int:
        """``#R`` — the paper's area proxy."""
        return self.num_cells

    def write_counts(self) -> List[int]:
        """Static per-cell write counts (one per RM3 targeting the cell).

        This is the distribution whose standard deviation the paper
        reports; PI pre-loads are excluded by construction (they are not
        instructions).
        """
        counts = [0] * self.num_cells
        for _, _, z in self.instructions:
            counts[z] += 1
        return counts

    def read_counts(self) -> List[int]:
        """Static per-cell read counts (P/Q operands plus the old Z value)."""
        counts = [0] * self.num_cells
        for p, q, z in self.instructions:
            if p >= 0:
                counts[p] += 1
            if q >= 0:
                counts[q] += 1
            counts[z] += 1  # RM3 reads the stored Z before writing
        return counts

    def value_lifetimes(self) -> List[List[Tuple[int, int]]]:
        """Per-cell value lifetimes: ``(written_at, last_read_at)`` spans.

        A span opens when an instruction writes the cell and closes at the
        last instruction that reads it before the next overwrite (or at
        the end of the program for output cells).  Long spans are the
        "blocked RRAM" phenomenon of the paper's Fig. 2: a device that
        holds one value across many instructions cannot be reused, and its
        neighbours absorb the traffic.
        """
        spans: List[List[Tuple[int, int]]] = [[] for _ in range(self.num_cells)]
        open_at: List[Optional[int]] = [None] * self.num_cells
        last_read: List[Optional[int]] = [None] * self.num_cells
        for idx, (p, q, z) in enumerate(self.instructions):
            for op in (p, q):
                if op >= 0:
                    last_read[op] = idx
            # RM3 reads Z's old value as it writes it.
            if open_at[z] is not None:
                spans[z].append((open_at[z], idx))
            open_at[z] = idx
            last_read[z] = idx
        end = len(self.instructions)
        for cell in range(self.num_cells):
            if open_at[cell] is not None:
                close = end if cell in self.po_cells else (
                    last_read[cell] if last_read[cell] is not None else open_at[cell]
                )
                spans[cell].append((open_at[cell], close))
        return spans

    def max_blocked_span(self) -> int:
        """Longest value lifetime in instructions (Fig. 2's pathology)."""
        longest = 0
        for cell_spans in self.value_lifetimes():
            for start, stop in cell_spans:
                longest = max(longest, stop - start)
        return longest

    def disassemble(self, limit: Optional[int] = None) -> str:
        """Readable listing; *limit* truncates long programs."""
        lines = [f"; program {self.name or '<anonymous>'}"]
        lines.append(
            f"; {self.num_instructions} instructions over {self.num_cells} cells"
        )
        for idx, (p, q, z) in enumerate(self.instructions):
            if limit is not None and idx >= limit:
                lines.append(
                    f"; ... {self.num_instructions - limit} more instructions"
                )
                break
            lines.append(
                f"{idx:6d}: RM3({format_operand(p)}, {format_operand(q)}, "
                f"{format_operand(z)})"
            )
        return "\n".join(lines)

    def validate(self) -> None:
        """Sanity-check addresses; raises :class:`ValueError` on corruption."""
        for idx, (p, q, z) in enumerate(self.instructions):
            if z < 0 or z >= self.num_cells:
                raise ValueError(f"instruction {idx}: bad destination {z}")
            for op in (p, q):
                if op >= self.num_cells or op < OP_CONST1:
                    raise ValueError(f"instruction {idx}: bad operand {op}")
        for addr in list(self.pi_cells) + list(self.po_cells):
            if addr < 0 or addr >= self.num_cells:
                raise ValueError(f"interface cell {addr} out of range")

    def stats_summary(self) -> Dict[str, float]:
        """Compact summary used by reports and tests."""
        counts = self.write_counts()
        from ..core.stats import WriteTrafficStats

        stats = WriteTrafficStats.from_counts(counts)
        return {
            "instructions": float(self.num_instructions),
            "rrams": float(self.num_rrams),
            "stdev": stats.stdev,
            "min": float(stats.min_writes),
            "max": float(stats.max_writes),
        }
