"""MIG-to-RM3 compilation for the PLiM computer.

Reimplements the compiler of [Soeken et al., DAC'16] — node *selection*
(which computable MIG node to schedule next) and node *translation* (how to
realise one majority node with RM3 instructions) — with the endurance hooks
of the reproduced paper threaded through:

* the destination/allocation decisions consult an
  :class:`~repro.plim.allocator.RramAllocator` whose policy implements the
  minimum/maximum write count strategies;
* the selection order is pluggable (:mod:`repro.core.selection` provides
  the DAC'16 and the endurance-aware Algorithm 3 strategies).

Cost model (Section III of the paper)
-------------------------------------
A majority node ``<a b c>`` costs a single RM3 when one fanin can serve as
the second operand ``Q`` for free (a complemented edge or a constant — RM3
inverts ``Q`` intrinsically) and another fanin can be *overwritten* as the
destination ``Z`` (a non-complemented edge to a value with no remaining
readers, stored in a device that may still be written).  Every violation
costs **two extra instructions and one extra RRAM**:

* missing free ``Q``: invert a fanin into a helper device
  (write 1 + RM3);
* missing destination: copy a fanin into a requested device
  (write 0/1 + RM3); a constant fanin reduces this to a single
  initialisation write.

The translator enumerates all role assignments of the three fanins and
picks the cheapest, so those rules emerge from a small cost table rather
than a case cascade.  The cost table — and the device-allocation
machinery behind the destination decisions — belong to the *target
machine*: the compiler consumes a :class:`repro.arch.Architecture`
(cost model, array geometry, endurance semantics) and emits a program
for that machine.  The default architecture is the paper's unbounded
wear-tracked crossbar, which reproduces the historic behaviour exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..mig.graph import Mig
from ..mig.signal import is_complemented, node_of
from .isa import OP_CONST0, OP_CONST1, Program, const_operand


@dataclass(frozen=True)
class _Fanin:
    """One fanin of the node under translation, classified for costing."""

    is_const: bool
    value: int  # constant value (is_const) — else unused
    node: int  # MIG node id (var) — else unused
    complemented: bool


# Role kinds used by the assignment enumeration.
_Q_FREE = 0  # complemented edge or constant: RM3's intrinsic inversion
_Q_INVERT = 1  # helper inversion required (+2 instructions, +1 device)
_Z_DIRECT = 0  # overwrite the fanin's own device
_Z_CONST = 1  # initialise a requested device with the constant (+1)
_Z_COPY = 2  # copy/copy-invert into a requested device (+2, +1 device)
_P_FREE = 0  # constant or plain stored value
_P_INVERT = 1  # helper inversion required (+2 instructions, +1 device)


class PlimCompiler:
    """Compiles MIGs into PLiM programs.

    Parameters
    ----------
    selection:
        A strategy object with ``key(state, node)`` and ``dynamic``
        attributes (see :mod:`repro.core.selection`); ``None`` selects
        plain topological order (the naive baseline).
    allocation:
        ``"naive"`` (LIFO free list) or ``"min_write"`` (the paper's
        minimum write count strategy).
    w_max:
        Optional maximum write count per device (the paper's maximum
        write count strategy); devices reaching it are retired.
    allow_pi_overwrite:
        Whether devices pre-loaded with primary inputs may be reused as
        destinations once their value is dead (the DAC'16 compiler's
        aggressive reuse; disable for ablations).
    fanout_aggregate:
        ``"max"`` (storage-duration reading) or ``"min"`` (first-use
        reading) for the fanout level index used by selection strategies.
    arch:
        The target machine model — a :class:`repro.arch.Architecture`,
        a registry name, or ``None`` for the ambient selection
        (``$REPRO_ARCH``, else the paper's ``endurance`` machine).  The
        architecture supplies the translation cost table and the device
        allocator matching its array geometry, and refuses allocation
        policies it cannot implement (e.g. ``min_write`` on the
        wear-counter-free ``dac16`` machine).
    """

    def __init__(
        self,
        selection=None,
        allocation: str = "naive",
        w_max: Optional[int] = None,
        allow_pi_overwrite: bool = True,
        fanout_aggregate: str = "max",
        arch=None,
    ) -> None:
        self.selection = selection
        self.allocation = allocation
        self.w_max = w_max
        self.allow_pi_overwrite = allow_pi_overwrite
        self.fanout_aggregate = fanout_aggregate
        self.arch = arch

    def compile(self, mig: Mig) -> Program:
        """Translate *mig* into a :class:`~repro.plim.isa.Program`."""
        from ..arch import resolve_architecture

        arch = resolve_architecture(self.arch)
        run = _Compilation(
            mig,
            selection=self.selection,
            allocator=arch.make_allocator(self.allocation, self.w_max),
            allow_pi_overwrite=self.allow_pi_overwrite,
            fanout_aggregate=self.fanout_aggregate,
            cost=arch.cost,
        )
        return run.run()


class _Compilation:
    """State of one compilation; also the ``state`` view for selection."""

    def __init__(
        self,
        mig: Mig,
        selection,
        allocator,
        allow_pi_overwrite: bool,
        fanout_aggregate: str,
        cost,
    ) -> None:
        self.mig = mig
        self.selection = selection
        self.alloc = allocator
        self.cost = cost
        self.allow_pi_overwrite = allow_pi_overwrite

        view = mig.fanout_view()
        self.view = view
        self.refs: List[int] = list(view.ref_counts)
        self.fanout_level_index: List[int] = view.fanout_level_indices(
            fanout_aggregate
        )

        n = mig.num_nodes
        self.cell_of: List[Optional[int]] = [None] * n
        self.computed = [False] * n
        self.instructions: List[Tuple[int, int, int]] = []
        # Per-gate fanin node-id triples, for the hot selection keys.
        self._fanin_nodes: List[Optional[Tuple[int, int, int]]] = [None] * n
        for node, na, _, nb, _, nc, _ in mig.flat_gates():
            self._fanin_nodes[node] = (na, nb, nc)

    # -- selection support ----------------------------------------------

    def releasing_count(self, node: int) -> int:
        """Devices freed by computing *node*: children at their last use."""
        refs = self.refs
        fanins = self._fanin_nodes[node]
        if fanins is None:
            # Not a live gate: dead gates still answer (the flat records
            # only cover live ones); non-gates raise as they always did.
            fanins = tuple(s >> 1 for s in self.mig.fanins(node))
        count = 0
        for child in fanins:
            if child != 0 and refs[child] == 1:
                count += 1
        return count

    def _key(self, node: int) -> Tuple[int, ...]:
        if self.selection is None:
            return (node,)
        return self.selection.key(self, node)

    # -- emission helpers -------------------------------------------------

    def _emit(self, p: int, q: int, z: int) -> None:
        self.instructions.append((p, q, z))
        self.alloc.record_write(z)

    def _emit_const(self, z: int, value: int) -> None:
        """``Z <- value`` as a single RM3 (write-0 / write-1 idiom)."""
        if value:
            self._emit(OP_CONST1, OP_CONST0, z)
        else:
            self._emit(OP_CONST0, OP_CONST1, z)

    def _emit_materialize(
        self, src_cell: int, inverted: bool, extra_headroom: int = 0
    ) -> int:
        """Copy (or copy-invert) a stored value into a requested device.

        Returns the new device; costs exactly two instructions — the
        repair cost the paper charges per fanout/complement violation.
        ``extra_headroom`` reserves cap room for writes the caller will
        add afterwards (the final RM3 of a copy destination).
        """
        dst = self.alloc.request(headroom=2 + extra_headroom)
        if inverted:
            self._emit_const(dst, 1)
            self._emit(OP_CONST0, src_cell, dst)  # MAJ(0, ~x, 1) = ~x
        else:
            self._emit_const(dst, 0)
            self._emit(src_cell, OP_CONST0, dst)  # MAJ(x, 1, 0) = x
        return dst

    # -- main loop ----------------------------------------------------------

    def run(self) -> Program:
        mig = self.mig

        pi_cells = []
        for node in mig.pis():
            cell = self.alloc.new_cell()
            self.cell_of[node] = cell
            pi_cells.append(cell)

        pending = [0] * mig.num_nodes
        heap: List[Tuple[Tuple[int, ...], int]] = []
        gates = mig.live_gates()
        for node in gates:
            pending[node] = sum(
                1 for child in self._fanin_nodes[node] if mig.is_gate(child)
            )
            if pending[node] == 0:
                heapq.heappush(heap, (self._key(node), node))

        parents = self.view.fanouts  # immutable Tuple[Tuple[int, ...], ...]
        dynamic = self.selection is not None and self.selection.dynamic
        scheduled = 0
        while heap:
            key, node = heapq.heappop(heap)
            if self.computed[node]:
                continue
            if dynamic:
                fresh = self._key(node)
                if fresh != key:
                    heapq.heappush(heap, (fresh, node))
                    continue
            self._translate(node)
            self.computed[node] = True
            scheduled += 1
            for parent in parents[node]:
                pending[parent] -= 1
                if pending[parent] == 0:
                    heapq.heappush(heap, (self._key(parent), parent))
        if scheduled != len(gates):
            raise RuntimeError(
                f"scheduled {scheduled} of {len(gates)} gates — "
                "candidate bookkeeping is inconsistent"
            )

        po_cells = self._materialize_outputs()

        program = Program(
            instructions=self.instructions,
            num_cells=self.alloc.num_cells,
            pi_cells=pi_cells,
            po_cells=po_cells,
            name=mig.name,
        )
        program.validate()
        return program

    # -- node translation ---------------------------------------------------

    def _classify(self, signal: int) -> _Fanin:
        node = node_of(signal)
        if node == 0:
            return _Fanin(
                is_const=True,
                value=1 if is_complemented(signal) else 0,
                node=0,
                complemented=False,
            )
        return _Fanin(
            is_const=False,
            value=0,
            node=node,
            complemented=is_complemented(signal),
        )

    def _q_cost(self, f: _Fanin) -> int:
        if f.is_const or f.complemented:
            return _Q_FREE
        return _Q_INVERT

    def _z_kind(self, f: _Fanin) -> int:
        if f.is_const:
            return _Z_CONST
        if (
            not f.complemented
            and self.refs[f.node] == 1
            and self.cell_of[f.node] is not None
            and self.alloc.writable(self.cell_of[f.node])
            and (self.allow_pi_overwrite or not self.mig.is_pi(f.node))
        ):
            return _Z_DIRECT
        return _Z_COPY

    def _p_cost(self, f: _Fanin) -> int:
        if f.is_const or not f.complemented:
            return _P_FREE
        return _P_INVERT

    def _translate(self, node: int) -> None:
        fanins = [self._classify(s) for s in self.mig.fanins(node)]

        # Enumerate the six (Q, Z, P) role assignments; keep the cheapest.
        best = None
        for qi in range(3):
            rest = [i for i in range(3) if i != qi]
            for zi, pi in (rest, reversed(rest)):
                q, z, p = fanins[qi], fanins[zi], fanins[pi]
                q_cost = self._q_cost(q)
                z_kind = self._z_kind(z)
                p_cost = self._p_cost(p)
                # Overheads come from the target machine's cost table
                # (defaults: Q invert 2, Z const 1 / copy 2, P invert 2).
                cost = self.cost
                extra = (
                    cost.q_invert_instructions * q_cost
                    + (
                        cost.z_const_instructions
                        if z_kind == _Z_CONST
                        else cost.z_copy_instructions
                        if z_kind == _Z_COPY
                        else 0
                    )
                    + cost.p_invert_instructions * p_cost
                )
                extra_cells = (
                    cost.q_invert_cells * q_cost
                    + cost.p_invert_cells * p_cost
                    + (0 if z_kind == _Z_DIRECT else cost.z_request_cells)
                )
                if z_kind == _Z_DIRECT and self.alloc.strategy == "min_write":
                    z_writes = self.alloc.writes[self.cell_of[z.node]]
                else:
                    z_writes = 0
                rank = (extra, extra_cells, z_kind, z_writes, qi, zi)
                if best is None or rank < best[0]:
                    best = (rank, qi, zi, pi, z_kind)
        assert best is not None
        _, qi, zi, pi, z_kind = best
        q, z, p = fanins[qi], fanins[zi], fanins[pi]

        temps: List[int] = []

        # Destination Z holds the contribution of its fanin.
        overwritten: Optional[int] = None
        if z_kind == _Z_DIRECT:
            z_addr = self.cell_of[z.node]
            overwritten = z.node
        elif z_kind == _Z_CONST:
            z_addr = self.alloc.request(headroom=2)  # init + final RM3
            self._emit_const(z_addr, z.value)
        else:  # _Z_COPY
            src = self.cell_of[z.node]
            z_addr = self._emit_materialize(
                src, inverted=z.complemented, extra_headroom=1
            )

        # Second operand Q: RM3 applies ~Q, so Q must hold the *inverse*
        # of the fanin's contribution.
        if q.is_const:
            q_op = const_operand(1 - q.value)
        elif q.complemented:
            q_op = self.cell_of[q.node]  # stored value, contribution is ~v
        else:
            temp = self.alloc.request(headroom=2)
            self._emit_const(temp, 1)
            self._emit(OP_CONST0, self.cell_of[q.node], temp)
            temps.append(temp)
            q_op = temp

        # First operand P holds the contribution directly.
        if p.is_const:
            p_op = const_operand(p.value)
        elif not p.complemented:
            p_op = self.cell_of[p.node]
        else:
            temp = self.alloc.request(headroom=2)
            self._emit_const(temp, 1)
            self._emit(OP_CONST0, self.cell_of[p.node], temp)
            temps.append(temp)
            p_op = temp

        self._emit(p_op, q_op, z_addr)

        # Consume fanin references; free devices at their last use.
        for f in fanins:
            if f.is_const:
                continue
            self.refs[f.node] -= 1
            if self.refs[f.node] == 0:
                cell = self.cell_of[f.node]
                self.cell_of[f.node] = None
                if f.node != overwritten and cell is not None:
                    self._release(f.node, cell)
        for temp in temps:
            self.alloc.release(temp)

        self.cell_of[node] = z_addr

    def _release(self, node: int, cell: int) -> None:
        """Return a dead value's device to the pool.

        With input protection on (``allow_pi_overwrite=False``) devices
        pre-loaded with primary inputs never re-enter the pool: the flag
        guarantees input data survives the whole program, not merely the
        node's own computation.
        """
        if not self.allow_pi_overwrite and self.mig.is_pi(node):
            return
        self.alloc.release(cell)

    # -- outputs ------------------------------------------------------------

    def _materialize_outputs(self) -> List[int]:
        """Pin every primary output to a device holding its plain value.

        Complemented outputs need an explicit inversion (the same +2 cost
        as any other complement violation); constant outputs need a single
        initialisation write.  Cells are shared between outputs wanting
        the same signal.
        """
        const_cells: dict = {}
        inverted_cells: dict = {}
        po_cells: List[int] = []
        for s in self.mig.pos():
            node = node_of(s)
            if node == 0:
                value = 1 if is_complemented(s) else 0
                if value not in const_cells:
                    cell = self.alloc.request(headroom=1)
                    self._emit_const(cell, value)
                    const_cells[value] = cell
                po_cells.append(const_cells[value])
            elif not is_complemented(s):
                cell = self.cell_of[node]
                assert cell is not None, f"output node {node} has no device"
                po_cells.append(cell)
            else:
                if s not in inverted_cells:
                    src = self.cell_of[node]
                    assert src is not None, f"output node {node} has no device"
                    inverted_cells[s] = self._emit_materialize(
                        src, inverted=True
                    )
                po_cells.append(inverted_cells[s])
                self.refs[node] -= 1
                if self.refs[node] == 0:
                    cell = self.cell_of[node]
                    self.cell_of[node] = None
                    if cell is not None:
                        self._release(node, cell)
        return po_cells
