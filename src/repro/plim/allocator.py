"""RRAM device allocation for the PLiM compiler.

The compiler requests devices for intermediate values, helper cells, and
outputs, and releases them when their last reader has executed.  Which
*free* device a request returns is exactly where two of the paper's
endurance-management techniques live:

* **minimum write count strategy** — return the free device with the
  smallest write count (``strategy="min_write"``).  Pure policy: it can
  change neither the instruction count nor the device count, only the
  write *distribution* (asserted in the test suite, and stated explicitly
  in Section IV of the paper);
* **maximum write count strategy** — devices whose write count reaches
  ``w_max`` are *retired*: they leave the free pool and are refused as RM3
  destinations, forcing the compiler to allocate fresh or less-worn
  devices at the cost of extra instructions/RRAMs (``w_max`` knob).

The default ``strategy="naive"`` is a LIFO free list, which models the
endurance-oblivious compiler: the most recently freed device is the next
destination, concentrating writes on few cells.

Which allocator class (and which capacity / write-cap constants) a
compilation uses is decided by the target machine model — see
:mod:`repro.arch`; this flat allocator serves the crossbar geometries,
:class:`repro.plim.blocked.BlockedAllocator` the word-addressed ones.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set

#: Allocation strategies understood by :class:`RramAllocator`.
STRATEGIES = ("naive", "min_write")

#: Smallest usable write cap: a copy destination takes 2 writes
#: (initialisation + RM3) and must still be writable afterwards.
MIN_WRITE_CAP = 3


class CapacityExceededError(RuntimeError):
    """The target architecture's array cannot hold another device."""


class RramAllocator:
    """Tracks devices, their compile-time write counts, and the free pool."""

    def __init__(
        self,
        strategy: str = "naive",
        w_max: Optional[int] = None,
        *,
        capacity: Optional[int] = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown allocation strategy {strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        if w_max is not None and w_max < MIN_WRITE_CAP:
            raise ValueError(
                f"w_max must be at least {MIN_WRITE_CAP}, got {w_max}"
            )
        self.strategy = strategy
        self.w_max = w_max
        self.capacity = capacity
        self.writes: List[int] = []
        self._free_stack: List[int] = []  # naive: LIFO
        self._free_heap: List[tuple] = []  # min_write: (writes, addr)
        self._free_set: Set[int] = set()
        self.retired: Set[int] = set()

    # -- device creation and request -------------------------------------

    @property
    def num_cells(self) -> int:
        """Total devices ever allocated (the paper's ``#R``)."""
        return len(self.writes)

    def new_cell(self) -> int:
        """Allocate a brand-new device (bypasses the free pool).

        Raises :class:`CapacityExceededError` when the architecture's
        array is bounded and full (``capacity=None`` is unbounded, the
        paper's assumption).
        """
        if self.capacity is not None and len(self.writes) >= self.capacity:
            raise CapacityExceededError(
                f"crossbar is full: capacity {self.capacity} devices"
            )
        self.writes.append(0)
        return len(self.writes) - 1

    def request(self, headroom: int = 1) -> int:
        """Return a device that can absorb *headroom* more writes.

        A free device if one fits, else a new one.  Under ``min_write``
        the least-written free device is returned (ties broken by lowest
        address for determinism); under ``naive`` the most recently freed
        one.  *headroom* matters under the write cap: a copy destination
        takes two initialisation writes plus the final RM3, and handing it
        a device one write below the cap would overshoot.  Devices with
        insufficient headroom stay in the pool for smaller requests.
        """
        def fits(addr: int) -> bool:
            return (
                self.w_max is None
                or self.writes[addr] + headroom <= self.w_max
            )

        if self.strategy == "min_write":
            skipped = []
            found = None
            while self._free_heap:
                wr, addr = heapq.heappop(self._free_heap)
                if addr not in self._free_set or wr != self.writes[addr]:
                    continue  # stale entry from an earlier free period
                if not fits(addr):
                    skipped.append((wr, addr))
                    continue
                self._free_set.discard(addr)
                found = addr
                break
            for entry in skipped:
                heapq.heappush(self._free_heap, entry)
            if found is not None:
                return found
        else:
            skipped_addrs = []
            found = None
            while self._free_stack:
                addr = self._free_stack.pop()
                if addr not in self._free_set:
                    continue
                if not fits(addr):
                    skipped_addrs.append(addr)
                    continue
                self._free_set.discard(addr)
                found = addr
                break
            for addr in reversed(skipped_addrs):
                self._free_stack.append(addr)
            if found is not None:
                return found
        return self.new_cell()

    def release(self, addr: int) -> None:
        """Return *addr* to the free pool (or retire it at the cap)."""
        if addr in self._free_set:
            raise ValueError(f"double release of cell {addr}")
        if self.w_max is not None and self.writes[addr] >= self.w_max:
            self.retired.add(addr)
            return
        self._free_set.add(addr)
        if self.strategy == "min_write":
            heapq.heappush(self._free_heap, (self.writes[addr], addr))
        else:
            self._free_stack.append(addr)

    # -- write accounting -------------------------------------------------

    def record_write(self, addr: int) -> None:
        """Charge one compile-time write to *addr*."""
        self.writes[addr] += 1

    def writable(self, addr: int) -> bool:
        """May the compiler still target *addr* with an RM3?"""
        return self.w_max is None or self.writes[addr] < self.w_max

    def headroom(self, addr: int) -> Optional[int]:
        """Writes left before *addr* hits the cap (``None`` = unbounded)."""
        if self.w_max is None:
            return None
        return max(0, self.w_max - self.writes[addr])
