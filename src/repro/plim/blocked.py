"""Per-block device allocation for word-addressed RRAM arrays.

The crossbar allocator (:class:`~repro.plim.allocator.RramAllocator`)
assumes every device is individually addressable and provisioned one at
a time.  Real RRAM macros are usually *word-addressed*: devices come in
word lines of ``block_size`` cells, capacity is manufactured a whole
line at a time, and peripheral circuitry makes accesses within the open
line cheap — the same row locality Start-Gap style wear levelling
exploits at runtime.

:class:`BlockedAllocator` models that machine for the compiler
(selected via the ``blocked`` architecture, see
:mod:`repro.arch.registry`):

* **block-granular provisioning** — :attr:`num_cells` (the ``#R`` the
  tables report) rounds up to whole word lines; a program that touches
  nine values on an 8-cell-word machine occupies two lines, sixteen
  devices;
* **block-first free-pool search** — under ``naive`` the free pool is
  searched in block-recency order (the open line first), LIFO within a
  line; under ``min_write`` the least-*worn* line is searched first
  (line wear = its hottest cell — word-line stress is bounded by the
  worst device), least-written cell within it;
* the write-cap **retirement** semantics match the crossbar allocator
  cell for cell, so the maximum write count strategy runs unchanged.

The external contract (``new_cell`` / ``request`` / ``release`` /
``record_write`` / ``writable`` / ``headroom`` / ``writes`` /
``strategy`` / ``retired``) is exactly the crossbar allocator's, so the
compiler consumes either through the same code path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .allocator import (
    CapacityExceededError,
    MIN_WRITE_CAP,
    STRATEGIES,
)


class BlockedAllocator:
    """Device allocation over word lines of ``block_size`` cells."""

    def __init__(
        self,
        block_size: int,
        strategy: str = "naive",
        w_max: Optional[int] = None,
        *,
        capacity: Optional[int] = None,
    ) -> None:
        if block_size < 1:
            raise ValueError("block size must be positive")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown allocation strategy {strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        if w_max is not None and w_max < MIN_WRITE_CAP:
            raise ValueError(
                f"w_max must be at least {MIN_WRITE_CAP}, got {w_max}"
            )
        if capacity is not None and (
            capacity < block_size or capacity % block_size
        ):
            raise ValueError(
                "a word-addressed array's capacity must be a whole number "
                f"of {block_size}-cell lines, got {capacity}"
            )
        self.block_size = block_size
        self.strategy = strategy
        self.w_max = w_max
        self.capacity = capacity
        self.writes: List[int] = []
        #: Per-block LIFO free stacks (blocks keyed by index).
        self._free_stacks: Dict[int, List[int]] = {}
        self._free_set: Set[int] = set()
        #: Block indices, most recently *released-into* first — the
        #: "open line" preference of the naive search.
        self._recency: List[int] = []
        self.retired: Set[int] = set()

    # -- geometry ---------------------------------------------------------

    def _block_of(self, addr: int) -> int:
        return addr // self.block_size

    @property
    def num_blocks(self) -> int:
        """Word lines provisioned so far."""
        return -(-len(self.writes) // self.block_size)

    @property
    def num_cells(self) -> int:
        """Devices provisioned (the paper's ``#R``), whole lines only."""
        return self.num_blocks * self.block_size

    # -- device creation and request -------------------------------------

    def new_cell(self) -> int:
        """Allocate the next unused device (bypasses the free pool)."""
        addr = len(self.writes)
        if self.capacity is not None and addr >= self.capacity:
            raise CapacityExceededError(
                f"word-addressed array is full: capacity {self.capacity} "
                f"cells ({self.capacity // self.block_size} lines)"
            )
        self.writes.append(0)
        return addr

    def _fits(self, addr: int, headroom: int) -> bool:
        return (
            self.w_max is None or self.writes[addr] + headroom <= self.w_max
        )

    def _block_wear(self, block: int) -> int:
        """Line wear: the hottest cell of the word line."""
        start = block * self.block_size
        stop = min(start + self.block_size, len(self.writes))
        return max(self.writes[start:stop], default=0)

    def request(self, headroom: int = 1) -> int:
        """A free device with *headroom* writes left, else a fresh one.

        ``naive`` searches lines most-recently-released first and LIFO
        within the line; ``min_write`` searches the least-worn line
        first (ties to the lower index) and takes its least-written
        fitting cell.  Devices without headroom stay pooled for smaller
        requests, exactly like the crossbar allocator.
        """
        if self.strategy == "min_write":
            found = self._request_min_write(headroom)
        else:
            found = self._request_naive(headroom)
        if found is not None:
            return found
        return self.new_cell()

    def _request_naive(self, headroom: int) -> Optional[int]:
        for block in self._recency:
            stack = self._free_stacks.get(block)
            if not stack:
                continue
            skipped: List[int] = []
            found = None
            while stack:
                addr = stack.pop()
                if addr not in self._free_set:
                    continue  # stale entry from an earlier free period
                if not self._fits(addr, headroom):
                    skipped.append(addr)
                    continue
                self._free_set.discard(addr)
                found = addr
                break
            for addr in reversed(skipped):
                stack.append(addr)
            if found is not None:
                return found
        return None

    def _request_min_write(self, headroom: int) -> Optional[int]:
        candidates = [
            block
            for block, stack in self._free_stacks.items()
            if any(a in self._free_set for a in stack)
        ]
        for block in sorted(
            candidates, key=lambda b: (self._block_wear(b), b)
        ):
            fitting = [
                a
                for a in self._free_stacks[block]
                if a in self._free_set and self._fits(a, headroom)
            ]
            if not fitting:
                continue
            addr = min(fitting, key=lambda a: (self.writes[a], a))
            self._free_set.discard(addr)
            self._free_stacks[block] = [
                a for a in self._free_stacks[block] if a != addr
            ]
            return addr
        return None

    def release(self, addr: int) -> None:
        """Return *addr* to its line's pool (or retire it at the cap)."""
        if addr in self._free_set:
            raise ValueError(f"double release of cell {addr}")
        if self.w_max is not None and self.writes[addr] >= self.w_max:
            self.retired.add(addr)
            return
        block = self._block_of(addr)
        self._free_set.add(addr)
        self._free_stacks.setdefault(block, []).append(addr)
        # Move the line to the front of the recency order (open line).
        if self._recency and self._recency[0] == block:
            pass
        else:
            try:
                self._recency.remove(block)
            except ValueError:
                pass
            self._recency.insert(0, block)

    # -- write accounting -------------------------------------------------

    def record_write(self, addr: int) -> None:
        """Charge one compile-time write to *addr*."""
        self.writes[addr] += 1

    def writable(self, addr: int) -> bool:
        """May the compiler still target *addr* with an RM3?"""
        return self.w_max is None or self.writes[addr] < self.w_max

    def headroom(self, addr: int) -> Optional[int]:
        """Writes left before *addr* hits the cap (``None`` = unbounded)."""
        if self.w_max is None:
            return None
        return max(0, self.w_max - self.writes[addr])
