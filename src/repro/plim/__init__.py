"""The PLiM computer: ISA, memory, controller, compiler, verifier."""

from .allocator import CapacityExceededError, RramAllocator
from .blocked import BlockedAllocator
from .compiler import PlimCompiler
from .controller import CYCLES_PER_INSTRUCTION, ExecutionTrace, PlimController, execute
from .isa import OP_CONST0, OP_CONST1, Program, const_operand, format_operand
from .memory import (
    EnduranceExhaustedError,
    LifetimeEstimate,
    RramArray,
    TYPICAL_ENDURANCE_HIGH,
    TYPICAL_ENDURANCE_LOW,
    estimate_lifetime,
)
from .startgap import StartGapArray, run_with_start_gap
from .verify import VerificationError, cross_check_truth_tables, verify_program

__all__ = [
    "BlockedAllocator",
    "CYCLES_PER_INSTRUCTION",
    "CapacityExceededError",
    "EnduranceExhaustedError",
    "ExecutionTrace",
    "LifetimeEstimate",
    "OP_CONST0",
    "OP_CONST1",
    "PlimCompiler",
    "PlimController",
    "Program",
    "RramAllocator",
    "RramArray",
    "StartGapArray",
    "run_with_start_gap",
    "TYPICAL_ENDURANCE_HIGH",
    "TYPICAL_ENDURANCE_LOW",
    "VerificationError",
    "const_operand",
    "cross_check_truth_tables",
    "estimate_lifetime",
    "execute",
    "format_operand",
    "verify_program",
]
