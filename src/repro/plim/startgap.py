"""Start-Gap: runtime wear levelling, the alternative the paper cites.

The paper's introduction points at write-balancing schemes developed for
PCM main memories — most prominently Start-Gap [Qureshi et al.,
MICRO'09] — as the existing answer to limited write endurance.  Those
schemes act at *runtime* by periodically rotating the logical-to-physical
address mapping, so a logically hot line physically wanders across the
array.  The paper instead balances writes at *compile time*.

This module implements Start-Gap over the PLiM RRAM array so the two
approaches (and their combination) can be compared quantitatively — see
``benchmarks/test_ablation_startgap.py`` and EXPERIMENTS.md.

Mechanics (faithful to the original scheme):

* the physical array has one spare cell, the *gap*;
* every ``gap_interval`` writes, the gap moves one position: the
  neighbouring line's content is copied into the current gap (one extra
  write of wear), and the neighbour becomes the new gap;
* after ``num_cells + 1`` gap movements every logical line has shifted
  by one physical position (``start`` increments), so sustained traffic
  visits all physical cells.

The writes-per-rotation interval — and the rotation *scope* — are
properties of the machine, not of this module: pass an
:class:`repro.arch.Architecture` (or use
:meth:`StartGapArray.for_architecture`) and the interval comes from its
:class:`~repro.arch.Geometry` instead of the historic hard-coded
default; the machine's physical endurance budget is armed with
``for_architecture(..., wear_out=True)``.

On a word-addressed machine (``Geometry.block_size`` set, e.g. the
``blocked`` architecture) rotation is **per word line**: every line gets
its own spare cell and its own gap, each line rotates independently
every ``gap_interval`` writes *into that line*, and a logical value
never leaves its line — the original scheme's region-restricted variant,
matching hardware where the row decoder makes intra-line moves cheap
but cross-line moves would cost a full read-modify-write of two lines.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .controller import PlimController
from .isa import Program
from .memory import RramArray

#: Historic default rotation interval (Qureshi et al., MICRO'09).
DEFAULT_GAP_INTERVAL = 100


class _BlockRotor:
    """Start-Gap state of one rotation region (a word line, or the
    whole array on a crossbar): the gap's physical position, the write
    countdown, and completed revolutions."""

    __slots__ = ("base", "size", "gap", "writes_since_move", "revolutions")

    def __init__(self, base: int, size: int) -> None:
        self.base = base          # first physical cell of the region
        self.size = size          # logical cells in the region
        self.gap = base + size    # spare starts at the region's end
        self.writes_since_move = 0
        self.revolutions = 0


class StartGapArray:
    """A logical RRAM array with Start-Gap address rotation.

    Presents the same ``read``/``write``/``preload`` interface as
    :class:`~repro.plim.memory.RramArray` so the PLiM controller can run
    on it unmodified, while the physical array underneath has one spare
    cell per rotation region and a rotating gap in each.

    A crossbar (``block_size=None``, the default) is one region spanning
    the whole array — the original scheme, one spare cell total.  A
    word-addressed machine (*block_size* set explicitly or, via *arch*,
    from the geometry of e.g. the ``blocked`` architecture) rotates each
    word line independently: one spare per line, and a line's gap moves
    every *gap_interval* writes into that line.

    *gap_interval* defaults to the target machine model's
    :attr:`~repro.arch.Geometry.gap_interval` when *arch* is given,
    else to the historic 100.  *endurance* stays explicit (``None`` =
    no wear-out); :meth:`for_architecture` with ``wear_out=True`` arms
    the machine's physical budget.
    """

    def __init__(
        self,
        num_cells: int,
        gap_interval: Optional[int] = None,
        endurance: Optional[int] = None,
        *,
        arch=None,
        block_size: Optional[int] = None,
    ) -> None:
        if gap_interval is None:
            gap_interval = (
                arch.geometry.gap_interval
                if arch is not None
                else DEFAULT_GAP_INTERVAL
            )
        if gap_interval < 1:
            raise ValueError("gap interval must be positive")
        if block_size is None and arch is not None:
            block_size = arch.geometry.block_size
        if block_size is not None and block_size < 1:
            raise ValueError("block size must be positive")
        self.num_logical = num_cells
        self.gap_interval = gap_interval
        self.block_size = block_size
        # Rotation regions: the whole array, or one per word line (the
        # last line may be partial).  Physical layout is the regions
        # back to back, each with its spare appended.
        region = block_size if block_size is not None else max(num_cells, 1)
        self._rotors: List[_BlockRotor] = []
        base = 0
        for start in range(0, max(num_cells, 1), region):
            size = min(region, num_cells - start) if num_cells else 0
            self._rotors.append(_BlockRotor(base, size))
            base += size + 1
        self.physical = RramArray(base, endurance=endurance)
        # Explicit permutation (and inverse) between logical lines and
        # physical cells; -1 marks the gaps in the inverse map.
        self._log_to_phys: List[int] = []
        self._phys_to_log: List[int] = [-1] * base
        for index, rotor in enumerate(self._rotors):
            for offset in range(rotor.size):
                logical = index * region + offset
                physical = rotor.base + offset
                self._log_to_phys.append(physical)
                self._phys_to_log[physical] = logical

    @classmethod
    def for_architecture(
        cls, arch, num_cells: int, *, wear_out: bool = False
    ) -> "StartGapArray":
        """A Start-Gap array with *arch*'s rotation interval and scope
        (per word line on word-addressed geometries); ``wear_out=True``
        arms the machine's physical endurance budget."""
        return cls(
            num_cells,
            endurance=arch.endurance.cell_endurance if wear_out else None,
            arch=arch,
        )

    # -- rotation state ----------------------------------------------------

    @property
    def num_regions(self) -> int:
        """Independent rotation regions (1 on a crossbar)."""
        return len(self._rotors)

    @property
    def gap(self) -> int:
        """Physical index of the gap (single-region arrays only)."""
        if len(self._rotors) != 1:
            raise AttributeError(
                "a word-addressed array has one gap per line; use gaps()"
            )
        return self._rotors[0].gap

    def gaps(self) -> List[int]:
        """Physical gap index of every rotation region."""
        return [rotor.gap for rotor in self._rotors]

    @property
    def revolutions(self) -> int:
        """Completed full gap revolutions (the slowest region's count —
        the original scheme's ``start`` register)."""
        return min(rotor.revolutions for rotor in self._rotors)

    def region_revolutions(self) -> List[int]:
        """Completed revolutions per rotation region."""
        return [rotor.revolutions for rotor in self._rotors]

    def region_of(self, logical: int) -> int:
        """Rotation-region index of a logical address."""
        self.physical_address(logical)  # bounds check
        if self.block_size is None:
            return 0
        return logical // self.block_size

    # -- address translation ---------------------------------------------

    def physical_address(self, logical: int) -> int:
        """Current physical cell of a logical address."""
        if not 0 <= logical < self.num_logical:
            raise IndexError(f"logical address {logical} out of range")
        return self._log_to_phys[logical]

    # -- RramArray-compatible interface ------------------------------------

    @property
    def num_cells(self) -> int:
        return self.num_logical

    @property
    def values(self) -> "_LogicalValues":
        return _LogicalValues(self)

    def read(self, logical: int) -> int:
        return self.physical.read(self.physical_address(logical))

    def preload(self, logical: int, value: int) -> None:
        self.physical.preload(self.physical_address(logical), value)

    def write(self, logical: int, value: int) -> None:
        self.physical.write(self.physical_address(logical), value)
        rotor = self._rotors[
            0 if self.block_size is None else logical // self.block_size
        ]
        rotor.writes_since_move += 1
        if rotor.writes_since_move >= self.gap_interval:
            rotor.writes_since_move = 0
            self._move_gap(rotor)

    def _move_gap(self, rotor: _BlockRotor) -> None:
        """Move one region's gap one position (copying the displaced
        line; the copy costs one real write of wear on the old gap)."""
        total = rotor.size + 1
        source = rotor.base + (rotor.gap - rotor.base - 1) % total
        self.physical.write(rotor.gap, self.physical.read(source))
        line = self._phys_to_log[source]
        self._log_to_phys[line] = rotor.gap
        self._phys_to_log[rotor.gap] = line
        self._phys_to_log[source] = -1
        rotor.gap = source
        if rotor.gap == rotor.base + rotor.size:
            rotor.revolutions += 1

    # -- wear reporting ----------------------------------------------------

    def write_counts(self) -> List[int]:
        """Physical per-cell write counts (including gap-copy wear)."""
        return list(self.physical.writes)

    def max_writes(self) -> int:
        return self.physical.max_writes()


class _LogicalValues:
    """Sequence view translating logical indices on the fly.

    Lets the unmodified controller index ``array.values[addr]``.
    """

    def __init__(self, array: StartGapArray) -> None:
        self._array = array

    def __getitem__(self, logical: int) -> int:
        return self._array.read(logical)

    def __len__(self) -> int:
        return self._array.num_logical


def run_with_start_gap(
    program: Program,
    pi_values: Sequence[int],
    executions: int,
    gap_interval: Optional[int] = None,
    mask: int = 1,
    *,
    arch=None,
) -> StartGapArray:
    """Execute *program* repeatedly on a Start-Gap array; returns the
    array so callers can inspect physical wear.

    This is the runtime-only balancing baseline: the compiled write
    pattern stays as unbalanced as the compiler left it, but rotation
    spreads it over physical cells across executions.  The rotation
    interval follows *gap_interval* > *arch* geometry > the historic
    default of 100; on a word-addressed *arch* (e.g. ``blocked``) the
    rotation is per word line, exactly as :class:`StartGapArray`
    documents.
    """
    array = StartGapArray(program.num_cells, gap_interval=gap_interval, arch=arch)
    controller = PlimController(array)  # duck-typed array interface
    for _ in range(executions):
        controller.run(program, pi_values, mask=mask)
    return array
