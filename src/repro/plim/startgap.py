"""Start-Gap: runtime wear levelling, the alternative the paper cites.

The paper's introduction points at write-balancing schemes developed for
PCM main memories — most prominently Start-Gap [Qureshi et al.,
MICRO'09] — as the existing answer to limited write endurance.  Those
schemes act at *runtime* by periodically rotating the logical-to-physical
address mapping, so a logically hot line physically wanders across the
array.  The paper instead balances writes at *compile time*.

This module implements Start-Gap over the PLiM RRAM array so the two
approaches (and their combination) can be compared quantitatively — see
``benchmarks/test_ablation_startgap.py`` and EXPERIMENTS.md.

Mechanics (faithful to the original scheme):

* the physical array has one spare cell, the *gap*;
* every ``gap_interval`` writes, the gap moves one position: the
  neighbouring line's content is copied into the current gap (one extra
  write of wear), and the neighbour becomes the new gap;
* after ``num_cells + 1`` gap movements every logical line has shifted
  by one physical position (``start`` increments), so sustained traffic
  visits all physical cells.

The writes-per-rotation interval is a property of the machine, not of
this module: pass an :class:`repro.arch.Architecture` (or use
:meth:`StartGapArray.for_architecture`) and it comes from its
:class:`~repro.arch.Geometry` instead of the historic hard-coded
default; the machine's physical endurance budget is armed with
``for_architecture(..., wear_out=True)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .controller import PlimController
from .isa import Program
from .memory import RramArray

#: Historic default rotation interval (Qureshi et al., MICRO'09).
DEFAULT_GAP_INTERVAL = 100


class StartGapArray:
    """A logical RRAM array with Start-Gap address rotation.

    Presents the same ``read``/``write``/``preload`` interface as
    :class:`~repro.plim.memory.RramArray` so the PLiM controller can run
    on it unmodified, while the physical array underneath has
    ``num_cells + 1`` cells and a rotating gap.

    *gap_interval* defaults to the target machine model's
    :attr:`~repro.arch.Geometry.gap_interval` when *arch* is given,
    else to the historic 100.  *endurance* stays explicit (``None`` =
    no wear-out); :meth:`for_architecture` with ``wear_out=True`` arms
    the machine's physical budget.
    """

    def __init__(
        self,
        num_cells: int,
        gap_interval: Optional[int] = None,
        endurance: Optional[int] = None,
        *,
        arch=None,
    ) -> None:
        if gap_interval is None:
            gap_interval = (
                arch.geometry.gap_interval
                if arch is not None
                else DEFAULT_GAP_INTERVAL
            )
        if gap_interval < 1:
            raise ValueError("gap interval must be positive")
        self.num_logical = num_cells
        self.gap_interval = gap_interval
        self.physical = RramArray(num_cells + 1, endurance=endurance)
        #: physical index of the gap (initially the spare at the end).
        self.gap = num_cells
        #: completed full revolutions of the gap (the original scheme's
        #: ``start`` register increments once per revolution).
        self.revolutions = 0
        self._writes_since_move = 0
        # Explicit permutation (and inverse) between logical lines and
        # physical cells; -1 marks the gap in the inverse map.
        self._log_to_phys: List[int] = list(range(num_cells))
        self._phys_to_log: List[int] = list(range(num_cells)) + [-1]

    @classmethod
    def for_architecture(
        cls, arch, num_cells: int, *, wear_out: bool = False
    ) -> "StartGapArray":
        """A Start-Gap array with *arch*'s rotation interval;
        ``wear_out=True`` arms the machine's physical endurance budget."""
        return cls(
            num_cells,
            endurance=arch.endurance.cell_endurance if wear_out else None,
            arch=arch,
        )

    # -- address translation ---------------------------------------------

    def physical_address(self, logical: int) -> int:
        """Current physical cell of a logical address."""
        if not 0 <= logical < self.num_logical:
            raise IndexError(f"logical address {logical} out of range")
        return self._log_to_phys[logical]

    # -- RramArray-compatible interface ------------------------------------

    @property
    def num_cells(self) -> int:
        return self.num_logical

    @property
    def values(self) -> "_LogicalValues":
        return _LogicalValues(self)

    def read(self, logical: int) -> int:
        return self.physical.read(self.physical_address(logical))

    def preload(self, logical: int, value: int) -> None:
        self.physical.preload(self.physical_address(logical), value)

    def write(self, logical: int, value: int) -> None:
        self.physical.write(self.physical_address(logical), value)
        self._writes_since_move += 1
        if self._writes_since_move >= self.gap_interval:
            self._writes_since_move = 0
            self._move_gap()

    def _move_gap(self) -> None:
        """Move the gap one position (copying the displaced line)."""
        total = self.num_logical + 1
        source = (self.gap - 1) % total
        # the copy costs one real write of wear on the old gap cell
        self.physical.write(self.gap, self.physical.read(source))
        line = self._phys_to_log[source]
        self._log_to_phys[line] = self.gap
        self._phys_to_log[self.gap] = line
        self._phys_to_log[source] = -1
        self.gap = source
        if self.gap == self.num_logical:
            self.revolutions += 1

    # -- wear reporting ----------------------------------------------------

    def write_counts(self) -> List[int]:
        """Physical per-cell write counts (including gap-copy wear)."""
        return list(self.physical.writes)

    def max_writes(self) -> int:
        return self.physical.max_writes()


class _LogicalValues:
    """Sequence view translating logical indices on the fly.

    Lets the unmodified controller index ``array.values[addr]``.
    """

    def __init__(self, array: StartGapArray) -> None:
        self._array = array

    def __getitem__(self, logical: int) -> int:
        return self._array.read(logical)

    def __len__(self) -> int:
        return self._array.num_logical


def run_with_start_gap(
    program: Program,
    pi_values: Sequence[int],
    executions: int,
    gap_interval: Optional[int] = None,
    mask: int = 1,
    *,
    arch=None,
) -> StartGapArray:
    """Execute *program* repeatedly on a Start-Gap array; returns the
    array so callers can inspect physical wear.

    This is the runtime-only balancing baseline: the compiled write
    pattern stays as unbalanced as the compiler left it, but rotation
    spreads it over physical cells across executions.  The rotation
    interval follows *gap_interval* > *arch* geometry > the historic
    default of 100.
    """
    array = StartGapArray(program.num_cells, gap_interval=gap_interval, arch=arch)
    controller = PlimController(array)  # duck-typed array interface
    for _ in range(executions):
        controller.run(program, pi_values, mask=mask)
    return array
