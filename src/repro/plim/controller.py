"""The PLiM controller: a fetch/decode/execute wrapper around the array.

Models the finite-state machine of [Gaillardon et al., DATE'16]: when the
control signal is off the array is an ordinary RAM; when on, the controller
fetches RM3 instructions, reads operands ``P`` and ``Q`` (from cells or the
constant lines), performs the resistive-majority write on ``Z``, increments
the program counter, and repeats.  Each instruction takes a fixed number of
controller cycles (fetch, two operand reads, one compute/write), so the
cycle count is an affine function of the instruction count — which is why
the paper uses ``#I`` as its latency metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .isa import Program, operand_const_value, operand_is_const
from .memory import RramArray

#: Controller cycles per RM3: fetch, read P, read Q, compute+write Z.
CYCLES_PER_INSTRUCTION = 4


@dataclass
class ExecutionTrace:
    """Optional per-instruction trace for debugging and the examples."""

    records: List[str] = field(default_factory=list)

    def log(self, pc: int, p: int, q: int, z: int, result: int) -> None:
        self.records.append(
            f"pc={pc:6d} RM3(p={p}, q={q}, z={z}) -> {result & 1}"
        )


class PlimController:
    """Executes PLiM programs on a :class:`~repro.plim.memory.RramArray`.

    >>> from repro.plim.isa import Program, OP_CONST1, OP_CONST0
    >>> prog = Program(instructions=[(OP_CONST1, OP_CONST0, 0)], num_cells=1)
    >>> array = RramArray(1)
    >>> ctrl = PlimController(array)
    >>> ctrl.run(prog)
    []
    >>> array.read(0)
    1
    """

    def __init__(self, array: RramArray) -> None:
        self.array = array
        self.cycles = 0
        self.instructions_executed = 0

    def run(
        self,
        program: Program,
        pi_values: Optional[Sequence[int]] = None,
        mask: int = 1,
        trace: Optional[ExecutionTrace] = None,
    ) -> List[int]:
        """Execute *program* and return the primary-output words.

        Parameters
        ----------
        pi_values:
            One (bit-parallel) word per primary input, deposited into the
            mapped cells before execution; may be omitted for programs
            without inputs.
        mask:
            All-ones mask covering the simulated pattern width.
        trace:
            Optional :class:`ExecutionTrace` collecting a readable log.
        """
        if program.num_cells > self.array.num_cells:
            raise ValueError(
                f"program needs {program.num_cells} cells, array has "
                f"{self.array.num_cells}"
            )
        pi_values = list(pi_values or [])
        if len(pi_values) != len(program.pi_cells):
            raise ValueError(
                f"expected {len(program.pi_cells)} input words, got "
                f"{len(pi_values)}"
            )
        for cell, word in zip(program.pi_cells, pi_values):
            self.array.preload(cell, word & mask)

        values = self.array.values
        for pc, (p, q, z) in enumerate(program.instructions):
            p_val = (
                (mask if operand_const_value(p) else 0)
                if operand_is_const(p)
                else values[p]
            )
            q_val = (
                (mask if operand_const_value(q) else 0)
                if operand_is_const(q)
                else values[q]
            )
            nq = q_val ^ mask
            z_val = values[z]
            result = (p_val & nq) | (p_val & z_val) | (nq & z_val)
            self.array.write(z, result & mask)
            if trace is not None:
                trace.log(pc, p, q, z, result)
        self.instructions_executed += len(program.instructions)
        self.cycles += CYCLES_PER_INSTRUCTION * len(program.instructions)

        return [self.array.read(cell) & mask for cell in program.po_cells]


def execute(
    program: Program,
    pi_values: Optional[Sequence[int]] = None,
    mask: int = 1,
    endurance: Optional[int] = None,
) -> List[int]:
    """One-shot convenience wrapper: fresh array, run, return outputs."""
    array = RramArray(program.num_cells, endurance=endurance)
    return PlimController(array).run(program, pi_values, mask=mask)
