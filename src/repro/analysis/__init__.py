"""Experiment harnesses: table runners, figure scenarios, reporting."""

from .scenarios import (
    fig1_chain,
    fig1_mig,
    fig2_ladder,
    fig2_mig,
    storage_pressure,
)
from .tables import (
    BenchmarkEvaluation,
    TABLE1_CONFIGS,
    TABLE3_CAPS,
    average_row,
    evaluate_benchmark,
    evaluate_mig,
    evaluate_suite,
    headline_metrics,
)
from .report import (
    render_headline,
    render_table1,
    render_table2,
    render_table3,
)
from .sweeps import (
    SweepPoint,
    by_config,
    render_sweep,
    scaling_exponent,
    sweep_widths,
)

__all__ = [
    "BenchmarkEvaluation",
    "TABLE1_CONFIGS",
    "TABLE3_CAPS",
    "average_row",
    "evaluate_benchmark",
    "evaluate_mig",
    "evaluate_suite",
    "fig1_chain",
    "fig1_mig",
    "fig2_ladder",
    "fig2_mig",
    "headline_metrics",
    "render_headline",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_sweep",
    "scaling_exponent",
    "storage_pressure",
    "sweep_widths",
    "by_config",
    "SweepPoint",
]
