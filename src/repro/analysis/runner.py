"""Keyed, session-scoped experiment runner for the evaluation harness.

Every table, figure, sweep, and benchmark module of the harness compiles
the same (benchmark, configuration) pairs.  This module makes those
compilations *shared work*:

* :class:`ExperimentCache` memoizes the three expensive stages
  independently — benchmark construction, MIG rewriting, and compilation
  — keyed by the *semantics* of an :class:`EnduranceConfig` (rewriting
  script, selection strategy, allocation policy, write cap, effort), not
  its display name.  Two configs that differ only in ``name`` (e.g.
  ``with_cap`` relabels) hit the same cache line; every configuration
  sharing a rewriting script reuses one rewriting run.
* :func:`run_matrix` evaluates a benchmarks x configurations matrix,
  either serially through a shared cache or fanned out over worker
  processes with ``concurrent.futures`` — results are assembled in
  matrix order, so the parallel path is bit-for-bit identical to the
  serial one.

The table/report layer (:mod:`repro.analysis.tables`,
:mod:`repro.analysis.report`) and the benchmark harness conftest are thin
views over this runner.
"""

from __future__ import annotations

import os
import pathlib
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack, contextmanager, nullcontext
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..arch import Architecture, resolve_architecture
from ..core.manager import (
    CompilationResult,
    EnduranceConfig,
    PRESETS,
    compile_pipeline,
    full_management,
)
from ..core.stats import improvement_percent
from ..opt import (
    DEFAULT_EFFORT,
    OptLike,
    Optimizer,
    OptimizerSpec,
    resolve_optimizer,
    rewrite,
)
from ..mig.graph import Mig
from ..mig.kernel import degradation_scope
from ..plim.verify import verify_program
from ..resilience import (
    DEFAULT_POLICY,
    RetriesExhaustedError,
    RetryPolicy,
    StageTimeoutError,
    WorkerCrashError,
    call_with_retry,
    classify_transient,
    resolve_timeouts,
    time_limit,
)
from ..resilience import events as res_events
from ..resilience import faults as res_faults
from ..source import Source, SourceLike, resolve_source
from ..synth.registry import BENCHMARK_ORDER, build_benchmark
from .diskcache import DiskCache

#: An architecture request: a registry name, an explicit
#: :class:`~repro.arch.Architecture`, or ``None`` for the ambient
#: (``$REPRO_ARCH``, else default) selection.
ArchLike = Union[str, Architecture, None]

#: A configuration request: a preset name or an explicit config object.
ConfigLike = Union[str, EnduranceConfig]

#: The five incremental Table I configuration presets, in column order —
#: the default matrix columns.  Deliberately an explicit list rather than
#: ``list(PRESETS)``: the preset registry may grow aliases without every
#: default table silently changing shape.
TABLE1_PRESETS: List[str] = [
    "naive",
    "dac16",
    "min-write",
    "ea-rewrite",
    "ea-full",
]


def config_key(config: EnduranceConfig) -> Tuple:
    """Semantic identity of a configuration (display name excluded).

    Two configurations with equal keys compile any MIG to the identical
    program, so cached results may be shared between them — in particular
    across :meth:`EnduranceConfig.with_cap` relabellings.
    """
    return (
        config.rewriting,
        config.selection,
        config.allocation.strategy,
        config.allocation.w_max,
        config.effort,
        config.allow_pi_overwrite,
    )


def experiment_key(
    config: EnduranceConfig,
    arch: Architecture,
    opt: Optional[OptimizerSpec] = None,
) -> Tuple:
    """Joint semantic identity of a (configuration, machine, optimizer)
    triple.

    Compiled artefacts are keyed by all three: the same configuration on
    a different machine model (cost table, geometry, endurance
    semantics) — or through a different rewriting optimizer — compiles
    to a different program, so cache lines must never be shared across
    them.  ``opt=None`` means the default ``script`` optimizer, whose
    rewriting is fully determined by the configuration key.
    """
    opt_key = opt.key() if opt is not None else ("script",)
    return (config_key(config), arch.key(), opt_key)


def mig_key(mig: Mig) -> Tuple:
    """Default cache identity of a MIG.

    Name, interface, size, *and* a structural digest over the fanin/PO
    lists — so two hand-built graphs that merely coincide in name and
    node counts never share cache lines.  The digest is process-local
    (plain ``hash``); worker processes re-derive keys from the actual
    graph objects they adopt, so this never crosses a process boundary.
    """
    return (
        mig.name,
        mig.num_pis,
        mig.num_pos,
        mig.num_nodes,
        mig.num_gates,
        mig.structural_digest(),
    )


def result_label(config: EnduranceConfig) -> str:
    """Result-dictionary key used by the tables (``wmaxN`` for caps)."""
    if config.name.startswith("ea-full+wmax"):
        return "wmax" + config.name.split("wmax")[1]
    return config.name


@dataclass
class BenchmarkEvaluation:
    """All configurations of one benchmark, verified and summarised."""

    name: str
    num_pis: int
    num_pos: int
    gates: int
    results: Dict[str, CompilationResult] = field(default_factory=dict)

    def stats(self, config: str):
        return self.results[config].stats

    def improvement(self, config: str, baseline: str = "naive") -> float:
        """Stdev improvement of *config* over *baseline*, percent."""
        return improvement_percent(
            self.stats(baseline).stdev, self.stats(config).stdev
        )


class ExperimentCache:
    """Session-scoped memo of built, rewritten, and compiled artefacts.

    All stages are keyed semantically (see :func:`config_key` /
    :func:`mig_key`); hit/miss counters cover the compilation stage and
    back the cache tests.  The cache is lock-protected, so one instance
    may be shared by threads; worker *processes* get their own instance.

    With a :class:`~repro.analysis.diskcache.DiskCache` attached, built
    graphs and compiled results are *read through* to disk and written
    back, so a warm rerun of the harness in a fresh process — or in a
    ``run_matrix(parallel=N)`` worker sharing the same root —
    deserialises instead of recompiling.  Registry benchmarks persist
    under their classic ``(name, preset)`` identity; every other
    :class:`~repro.source.Source` (and any MIG registered through
    :meth:`register_external`) persists under its stable content
    fingerprint, so external circuits hit the disk cache exactly like
    benchmarks do.
    """

    def __init__(self, disk: Optional[DiskCache] = None) -> None:
        self._migs: Dict[Tuple, Mig] = {}
        self._rewrites: Dict[Tuple, Mig] = {}
        self._results: Dict[Tuple, Tuple[CompilationResult, int]] = {}
        # graph key -> (benchmark name, preset): the persistent identity
        # under which a registry benchmark's results may go to disk.
        self._bench_keys: Dict[Tuple, Tuple[str, str]] = {}
        self.disk = disk
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        #: Aggregated counters of the ``run_matrix(parallel=N)`` worker
        #: processes that fed this cache (each worker has its own
        #: in-memory cache and disk handle, so the parent's counters
        #: alone under-report what the fan-out actually did).
        self.worker_counters: Dict[str, int] = {
            "workers": 0,
            "hits": 0,
            "misses": 0,
            "disk_hits": 0,
            "disk_misses": 0,
            "disk_lock_skips": 0,
            "remote_memory_hits": 0,
            "remote_disk_hits": 0,
            "remote_waits": 0,
            "remote_fallbacks": 0,
        }

    def counters(self) -> Dict[str, int]:
        """This cache's own hit/miss counters (memory and disk).

        Always includes the remote-tier keys (zero without a
        :class:`~repro.cachesvc.RemoteCache` attached), so counter
        deltas and worker aggregation never branch on the disk kind.
        """
        counters = {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk.hits if self.disk is not None else 0,
            "disk_misses": self.disk.misses if self.disk is not None else 0,
            "disk_lock_skips": (
                self.disk.lock_skips if self.disk is not None else 0
            ),
            "remote_memory_hits": 0,
            "remote_disk_hits": 0,
            "remote_waits": 0,
            "remote_fallbacks": 0,
        }
        tiers = getattr(self.disk, "tier_counters", None)
        if tiers is not None:
            counters.update(tiers())
        return counters

    def _flight(self, key: Tuple):
        """The disk tier's single-flight window for *key*, if it has one.

        A :class:`~repro.cachesvc.RemoteCache` returns a context that
        leases the key on the server: entering yields a payload another
        process stored meanwhile (adopt it, skip the compute) or
        ``None`` (we hold the lease — compute and store inside the
        window).  A plain :class:`DiskCache` (or no disk at all) gets a
        no-op window and keeps its per-entry lockfile behaviour.
        """
        opener = getattr(self.disk, "flight", None)
        if opener is None:
            return nullcontext(None)
        return opener(key)

    def absorb_worker_counters(self, counters: Dict[str, int]) -> None:
        """Fold one worker's :meth:`counters` into
        :attr:`worker_counters` (thread-safe)."""
        with self._lock:
            self.worker_counters["workers"] += 1
            for key, value in counters.items():
                if key in self.worker_counters:
                    self.worker_counters[key] += value

    # -- stages ----------------------------------------------------------

    def cached_mig(self, name: str, preset: str) -> Optional[Mig]:
        """Fetch an already-built registry benchmark, or ``None``.

        Reads through to the disk cache (a deserialised benchmark *is*
        available without building), but never builds.
        """
        with self._lock:
            mig = self._migs.get((name, preset))
        if mig is None and self.disk is not None:
            mig = self.disk.load(("mig", name, preset))
            if mig is not None:
                mig = self._remember_mig(name, preset, mig)
        return mig

    def _remember_mig(self, name: str, preset: str, mig: Mig) -> Mig:
        with self._lock:
            mig = self._migs.setdefault((name, preset), mig)
            self._bench_keys[mig_key(mig)] = (name, preset)
        return mig

    def benchmark_mig(self, name: str, preset: str) -> Mig:
        """Build (or fetch) a registry benchmark.

        A disk miss opens the disk tier's single-flight window (see
        :meth:`_flight`): against a shared cache server, exactly one
        process builds a cold benchmark while concurrent requesters
        block and adopt the stored graph.
        """
        key = (name, preset)
        with self._lock:
            mig = self._migs.get(key)
        if mig is not None:
            return mig
        built = False
        with ExitStack() as stack:
            if self.disk is not None:
                mig = self.disk.load(("mig", name, preset))
                if mig is None:
                    mig = stack.enter_context(
                        self._flight(("mig", name, preset))
                    )
            if mig is None:
                mig = build_benchmark(name, preset)
                built = True
            mig = self._remember_mig(name, preset, mig)
            if built and self.disk is not None:
                self.disk.store(("mig", name, preset), mig)
        return mig

    def _remember_external(self, identity: Tuple, mig: Mig) -> Mig:
        with self._lock:
            mig = self._migs.setdefault(identity, mig)
            self._bench_keys[mig_key(mig)] = identity
        return mig

    def register_external(
        self, mig: Mig, identity: Optional[Tuple] = None
    ) -> Tuple:
        """Give a user-supplied MIG a persistent cache identity.

        By default the identity is the graph's stable
        :meth:`~repro.mig.graph.Mig.content_fingerprint`, so rewrite and
        compile artefacts derived from it read through to — and persist
        in — the disk cache across processes, exactly like registry
        benchmarks.  Returns the identity tuple.
        """
        ident = (
            tuple(identity)
            if identity is not None
            else ("graph", mig.content_fingerprint())
        )
        self._remember_external(ident, mig)
        return ident

    def source_mig(self, source: Source, preset: str) -> Mig:
        """Build (or fetch) any :class:`~repro.source.Source`.

        Registry sources delegate to :meth:`benchmark_mig` (identical
        keys, identical artefacts); every other kind reads through to
        the disk cache under the source's content-addressed identity,
        so imported netlists and frontend circuits deserialise instead
        of re-elaborating in warm processes.
        """
        if source.kind == "registry":
            return self.benchmark_mig(source.name, preset)
        identity = tuple(source.identity(preset))
        with self._lock:
            mig = self._migs.get(identity)
        if mig is not None:
            return mig
        built = False
        with ExitStack() as stack:
            if self.disk is not None:
                mig = self.disk.load(("mig", *identity))
                if mig is None:
                    mig = stack.enter_context(
                        self._flight(("mig", *identity))
                    )
            if mig is None:
                mig = source.build(preset)
                built = True
            mig = self._remember_external(identity, mig)
            if built and self.disk is not None:
                self.disk.store(("mig", *identity), mig)
        return mig

    def cached_source_mig(self, source: Source, preset: str) -> Optional[Mig]:
        """Fetch an already-built source, or ``None`` (never builds)."""
        if source.kind == "registry":
            return self.cached_mig(source.name, preset)
        identity = tuple(source.identity(preset))
        with self._lock:
            mig = self._migs.get(identity)
        if mig is None and self.disk is not None:
            mig = self.disk.load(("mig", *identity))
            if mig is not None:
                mig = self._remember_external(identity, mig)
        return mig

    @staticmethod
    def _rewrite_tail(
        script: str, effort: int, optimizer: Optional[Optimizer]
    ) -> Tuple:
        """Cache-key tail identifying one rewriting result (shared by
        the memory and disk keys)."""
        if optimizer is None:
            return ("script", script, effort)
        return optimizer.rewrite_key(script, effort)

    def has_rewritten(
        self,
        mig_or_key,
        script: str,
        effort: int,
        optimizer: Optional[Optimizer] = None,
    ) -> bool:
        """Whether the rewriting result is already available.

        Peeks memory first, then (for registry benchmarks) the disk
        cache — a satisfying disk entry is adopted into memory so the
        matching ``rewritten`` call that follows is a pure memory hit.
        Never computes; the flow layer uses this to flag rewrite-stage
        artefacts as cached.
        """
        graph_id = (
            mig_or_key if isinstance(mig_or_key, tuple) else mig_key(mig_or_key)
        )
        tail = self._rewrite_tail(script, effort, optimizer)
        cache_key = (graph_id, tail)
        with self._lock:
            if cache_key in self._rewrites:
                return True
            bench = (
                self._bench_keys.get(graph_id)
                if self.disk is not None and script != "none"
                else None
            )
        if bench is None:
            return False
        payload = self.disk.load(("rewrite", *bench, tail))
        if payload is None:
            return False
        with self._lock:
            self._rewrites.setdefault(cache_key, payload)
        return True

    def rewritten(
        self,
        mig: Mig,
        script: str,
        effort: int,
        key: Optional[Tuple] = None,
        optimizer: Optional[Optimizer] = None,
    ) -> Mig:
        """Rewriting result shared by every config running *script*
        through *optimizer* (default: the legacy fixed pipelines).

        Results are keyed by :meth:`repro.opt.Optimizer.rewrite_key`, so
        script-driven rewrites stay shared across machines while
        architecture-sensitive search results are kept per machine.
        Registry benchmarks read through to the attached disk cache
        (except the trivial ``"none"`` script, whose result is just a
        cleanup copy of the stored benchmark): a cold process deserialises
        the rewritten MIG instead of re-running the rewriting engine.
        """
        graph_id = key or mig_key(mig)
        tail = self._rewrite_tail(script, effort, optimizer)
        cache_key = (graph_id, tail)
        with self._lock:
            result = self._rewrites.get(cache_key)
            bench = (
                self._bench_keys.get(graph_id)
                if self.disk is not None and script != "none"
                else None
            )
        if result is not None:
            return result
        computed = False
        with ExitStack() as stack:
            if bench is not None:
                result = self.disk.load(("rewrite", *bench, tail))
                if result is None:
                    result = stack.enter_context(
                        self._flight(("rewrite", *bench, tail))
                    )
            if result is None:
                if optimizer is not None:
                    result = optimizer.run(mig, script, effort=effort)
                else:
                    result = rewrite(mig, script, effort=effort)
                computed = True
            with self._lock:
                result = self._rewrites.setdefault(cache_key, result)
            if computed and bench is not None:
                self.disk.store(("rewrite", *bench, tail), result)
        return result

    def _manifest_meta(
        self,
        bench: Tuple,
        mig: Mig,
        config: EnduranceConfig,
        arch: Architecture,
        optimizer: Optimizer,
        verified: int,
    ) -> Dict:
        """The ``run_manifest.json`` fields for one persisted result.

        Identity fields name what produced the artefact (source, config,
        machine, optimizer, certificate width); ``events`` carries this
        process's resilience log for the job (retries, degradations,
        injected faults), filtered by job name so sibling benchmarks'
        events stay out of each other's manifests.
        """
        names = {mig.name}
        if bench and isinstance(bench[0], str):
            names.add(bench[0])
        return {
            "source": [str(part) for part in bench],
            "benchmark": mig.name,
            "config": config.name,
            "config_key": repr(config_key(config)),
            "arch": arch.name,
            "opt": optimizer.spec.label(),
            "verified_patterns": verified,
            "events": [
                e for e in res_events.snapshot() if e.get("job") in names
            ],
        }

    def compile(
        self,
        mig: Mig,
        config: EnduranceConfig,
        *,
        key: Optional[Tuple] = None,
        verify: bool = False,
        verify_patterns: int = 64,
        arch: ArchLike = None,
        optimizer: "OptLike | Optimizer" = None,
    ) -> CompilationResult:
        """Compile *mig* under *config* for *arch*, memoized on semantic keys.

        With ``verify=True`` the compiled program is co-simulated against
        the MIG once per cache entry; re-requests at the same or lower
        pattern count reuse the stored certificate.  Racing threads may
        duplicate a compilation, but the first stored result wins and
        verification certificates are never downgraded.

        Registry benchmarks additionally read through to the attached
        disk cache: a miss here that hits on disk deserialises the
        stored result (and its certificate) instead of compiling, and
        fresh compilations or certificate upgrades are written back.
        Entries — in memory and on disk — are keyed by the target
        architecture and rewriting optimizer (:func:`experiment_key`),
        so one cache serves every machine model and optimizer spec
        without cross-talk.
        """
        graph_id = key or mig_key(mig)
        arch = resolve_architecture(arch)
        optimizer = (
            optimizer
            if isinstance(optimizer, Optimizer)
            else Optimizer(optimizer, arch)
        )
        semantic = experiment_key(config, arch, optimizer.spec)
        cache_key = (graph_id, semantic)
        with self._lock:
            entry = self._results.get(cache_key)
            if entry is not None:
                self.hits += 1
            else:
                self.misses += 1
            bench = (
                self._bench_keys.get(graph_id)
                if self.disk is not None
                else None
            )
        persisted = -1  # certificate already on disk; -1 = absent
        computed = False
        with ExitStack() as stack:
            if entry is None and bench is not None:
                payload = self.disk.load(("result", *bench, semantic))
                if payload is None:
                    # Cold key: open the disk tier's single-flight
                    # window.  Against a shared cache server, exactly
                    # one process compiles this pair while concurrent
                    # requesters block inside enter_context and adopt
                    # the stored (result, certificate) payload; the
                    # window stays open through the write-back below,
                    # so a failed compile releases the lease to the
                    # next waiter.
                    payload = stack.enter_context(
                        self._flight(("result", *bench, semantic))
                    )
                if payload is not None:
                    entry = payload
                    persisted = payload[1]
            if entry is not None:
                result, verified = entry
            else:
                prewritten = self.rewritten(
                    mig, config.rewriting, config.effort, key=graph_id,
                    optimizer=optimizer,
                )
                result = compile_pipeline(
                    mig, config, rewritten=prewritten, arch=arch
                )
                verified = 0
                computed = True
            upgraded = False
            if verify and verify_patterns > verified:
                verify_program(result.program, mig, patterns=verify_patterns)
                verified = verify_patterns
                upgraded = True
            with self._lock:
                stored = self._results.get(cache_key)
                if stored is not None:
                    result = stored[0]
                    verified = max(verified, stored[1])
                self._results[cache_key] = (result, verified)
            if bench is not None and (
                computed or upgraded or 0 <= persisted < verified
            ):
                # The replace predicate runs inside the entry's writer
                # lock: another process may have persisted a wider
                # verification certificate since our probe, and
                # certificates must never be downgraded (the stored
                # result is identical either way — compilation is
                # deterministic).
                certified = verified
                self.disk.store(
                    ("result", *bench, semantic),
                    (result, verified),
                    replace=lambda current: current[1] < certified,
                    manifest=self._manifest_meta(
                        bench, mig, config, arch, optimizer, verified
                    ),
                )
        return result

    def verify(
        self,
        mig: Mig,
        config: EnduranceConfig,
        *,
        key: Optional[Tuple] = None,
        patterns: int = 64,
        arch: ArchLike = None,
        optimizer: "OptLike | Optimizer" = None,
    ) -> CompilationResult:
        """Ensure the stored result carries a certificate >= *patterns*.

        The flow layer's verify stage: where :meth:`compile` always
        counts a hit or miss and re-persists on any upgrade path, this
        only co-simulates when the stored certificate is too narrow,
        touches no hit/miss counters for the already-compiled result,
        and leaves the disk alone when the persisted certificate is
        already wide enough.  Falls back to the full :meth:`compile`
        path when the pair has not been compiled in this session.
        """
        graph_id = key or mig_key(mig)
        arch = resolve_architecture(arch)
        optimizer = (
            optimizer
            if isinstance(optimizer, Optimizer)
            else Optimizer(optimizer, arch)
        )
        semantic = experiment_key(config, arch, optimizer.spec)
        cache_key = (graph_id, semantic)
        with self._lock:
            entry = self._results.get(cache_key)
        if entry is None:
            # Not in memory (possibly on disk): the compile path handles
            # read-through, counters, and verification in one go.
            return self.compile(
                mig, config, key=graph_id, verify=True,
                verify_patterns=patterns, arch=arch, optimizer=optimizer,
            )
        result, verified = entry
        if patterns <= verified:
            return result
        verify_program(result.program, mig, patterns=patterns)
        with self._lock:
            stored = self._results.get(cache_key)
            if stored is not None:
                result = stored[0]
                patterns = max(patterns, stored[1])
            self._results[cache_key] = (result, patterns)
            bench = (
                self._bench_keys.get(graph_id)
                if self.disk is not None
                else None
            )
        if bench is not None:
            certified = patterns
            self.disk.store(
                ("result", *bench, semantic),
                (result, patterns),
                replace=lambda current: current[1] < certified,
                manifest=self._manifest_meta(
                    bench, mig, config, arch, optimizer, patterns
                ),
            )
        return result

    def has(
        self,
        mig_or_key,
        config: EnduranceConfig,
        *,
        verified_patterns: int = 0,
        arch: ArchLike = None,
        optimizer: "OptLike | Optimizer" = None,
    ) -> bool:
        """Whether a stored result satisfies this pair's requirements.

        With a nonzero *verified_patterns* the entry must also carry a
        verification certificate at least that wide — an unverified
        entry does not satisfy a verifying request.

        Registry-benchmark entries read through to the disk cache; a
        satisfying disk entry is adopted into memory so the matching
        ``compile`` call that follows is a pure hit.
        """
        graph_id = (
            mig_or_key if isinstance(mig_or_key, tuple) else mig_key(mig_or_key)
        )
        machine = resolve_architecture(arch)
        spec = (
            optimizer.spec
            if isinstance(optimizer, Optimizer)
            else resolve_optimizer(optimizer)
        )
        semantic = experiment_key(config, machine, spec)
        with self._lock:
            entry = self._results.get((graph_id, semantic))
            if entry is not None:
                return entry[1] >= verified_patterns
            bench = (
                self._bench_keys.get(graph_id)
                if self.disk is not None
                else None
            )
        if bench is None:
            return False
        payload = self.disk.load(("result", *bench, semantic))
        if payload is None or payload[1] < verified_patterns:
            return False
        with self._lock:
            self._results.setdefault((graph_id, semantic), payload)
        return True

    def adopt(
        self,
        name: "str | Tuple",
        preset: str,
        mig: Mig,
        configs: Sequence[EnduranceConfig],
        evaluation: "BenchmarkEvaluation",
        verified_patterns: int = 0,
        arch: ArchLike = None,
        optimizer: "OptLike | Optimizer" = None,
    ) -> None:
        """Merge results computed elsewhere (a worker process) into this
        cache.

        Existing result objects are kept (first stored wins), but their
        verification certificates are upgraded: compilation is
        deterministic, so a worker verifying its recompilation certifies
        the identical stored program too.  *arch* and *optimizer* must
        name the machine and optimizer the worker targeted — adopted
        entries land under their keys.  *name* is a registry benchmark
        name (classic ``(name, preset)`` identity) or a full identity
        tuple for external sources, in which case *preset* is ignored.
        """
        identity = name if isinstance(name, tuple) else (name, preset)
        graph_id = mig_key(mig)
        arch = resolve_architecture(arch)
        spec = (
            optimizer.spec
            if isinstance(optimizer, Optimizer)
            else resolve_optimizer(optimizer)
        )
        with self._lock:
            self._migs.setdefault(identity, mig)
            self._bench_keys[graph_id] = identity
            for cfg in configs:
                key = (graph_id, experiment_key(cfg, arch, spec))
                stored = self._results.get(key)
                if stored is None:
                    self._results[key] = (
                        evaluation.results[result_label(cfg)],
                        verified_patterns,
                    )
                elif verified_patterns > stored[1]:
                    self._results[key] = (stored[0], verified_patterns)

    def annotate_manifests(
        self,
        identity: Tuple,
        configs: Sequence[EnduranceConfig],
        events: Sequence[Dict],
        *,
        arch: ArchLike = None,
        optimizer: "OptLike | Optimizer" = None,
    ) -> None:
        """Fold recovery *events* into the persisted manifests of
        *identity*'s experiments.

        The parallel supervisor's half of the manifest audit log: worker
        crashes, pool respawns, and retries are observed in the *parent*
        — after the worker's manifests are already on disk — so they are
        appended here once the job's results are adopted.  Best-effort
        like all manifest writes; experiments without a sidecar (no disk
        cache, store lost its lock) are skipped silently.
        """
        if self.disk is None or not events:
            return
        from ..resilience.manifest import append_manifest_events

        machine = resolve_architecture(arch)
        spec = (
            optimizer.spec
            if isinstance(optimizer, Optimizer)
            else resolve_optimizer(optimizer)
        )
        for cfg in configs:
            semantic = experiment_key(cfg, machine, spec)
            entry = self.disk.entry_path(("result", *identity, semantic))
            append_manifest_events(entry, list(events))


def resolve_configs(
    configs: Optional[Sequence[ConfigLike]] = None,
    caps: Optional[Sequence[int]] = None,
    effort: int = DEFAULT_EFFORT,
) -> List[EnduranceConfig]:
    """Expand preset names / explicit configs / write caps into one list.

    The *effort* override applies to preset names and caps; explicit
    :class:`EnduranceConfig` objects already carry their own effort and
    pass through untouched.
    """
    jobs: List[EnduranceConfig] = []
    for entry in configs if configs is not None else TABLE1_PRESETS:
        if isinstance(entry, str):
            cfg = PRESETS[entry]
            if cfg.effort != effort:
                cfg = replace(cfg, effort=effort)
            jobs.append(cfg)
        else:
            jobs.append(entry)
    for cap in caps or []:
        cfg = full_management(cap)
        if cfg.effort != effort:
            cfg = replace(cfg, effort=effort)
        jobs.append(cfg)
    return jobs


def evaluate_mig_cached(
    mig: Mig,
    configs: Sequence[EnduranceConfig],
    *,
    cache: Optional[ExperimentCache] = None,
    key: Optional[Tuple] = None,
    verify: bool = False,
    verify_patterns: int = 64,
    arch: ArchLike = None,
    opt: "OptLike | Optimizer" = None,
) -> BenchmarkEvaluation:
    """Compile *mig* under every configuration through a cache."""
    cache = cache if cache is not None else ExperimentCache()
    arch = resolve_architecture(arch)
    optimizer = opt if isinstance(opt, Optimizer) else Optimizer(opt, arch)
    evaluation = BenchmarkEvaluation(
        name=mig.name,
        num_pis=mig.num_pis,
        num_pos=mig.num_pos,
        gates=mig.num_live_gates(),
    )
    labels: Dict[str, Tuple] = {}
    # One degradation scope per job: a numpy-kernel failure demotes the
    # rest of *this* benchmark's compilations one step down the
    # (bit-identical) numpy-batch -> numpy -> bigint chain and is
    # recorded in its manifests; the next benchmark tries the full
    # engine again.
    with degradation_scope(mig.name):
        for cfg in configs:
            label = result_label(cfg)
            semantic = config_key(cfg)
            if labels.setdefault(label, semantic) != semantic:
                # A silent last-wins overwrite here would also poison the
                # shared cache through adopt(), which maps labels back to
                # configurations — refuse loudly instead.
                raise ValueError(
                    f"distinct configurations share the result label "
                    f"{label!r}; rename one of them"
                )
            evaluation.results[label] = cache.compile(
                mig, cfg, key=key, verify=verify,
                verify_patterns=verify_patterns, arch=arch,
                optimizer=optimizer,
            )
    return evaluation


#: Directory containing the ``repro`` package, for worker bootstrap.
_PACKAGE_ROOT = str(pathlib.Path(__file__).resolve().parents[2])

# Refcounted PYTHONPATH patch: os.environ is process-global, so
# concurrent pools must not restore it while a sibling is still
# spawning workers.
_ENV_LOCK = threading.Lock()
_ENV_DEPTH = 0
_ENV_SAVED: object = None
_ENV_UNTOUCHED = object()  # sentinel: nothing to restore


@contextmanager
def _importable_in_workers():
    """Make ``repro`` importable in spawned worker processes.

    Under the ``fork`` start method children inherit the parent's
    ``sys.path``, but ``spawn`` (Windows, macOS default) re-executes the
    interpreter, which only sees ``PYTHONPATH`` — and the pytest
    ``pythonpath`` ini option patches the test process, not the
    environment.  The package root is exported while any pool is alive
    (refcounted across threads) and restored when the last one exits.
    """
    global _ENV_DEPTH, _ENV_SAVED
    with _ENV_LOCK:
        if _ENV_DEPTH == 0:
            existing = os.environ.get("PYTHONPATH")
            parts = existing.split(os.pathsep) if existing else []
            if _PACKAGE_ROOT in parts:
                _ENV_SAVED = _ENV_UNTOUCHED
            else:
                _ENV_SAVED = existing
                os.environ["PYTHONPATH"] = os.pathsep.join(
                    [_PACKAGE_ROOT] + parts
                )
        _ENV_DEPTH += 1
    try:
        yield
    finally:
        with _ENV_LOCK:
            _ENV_DEPTH -= 1
            if _ENV_DEPTH == 0 and _ENV_SAVED is not _ENV_UNTOUCHED:
                if _ENV_SAVED is None:
                    os.environ.pop("PYTHONPATH", None)
                else:
                    os.environ["PYTHONPATH"] = _ENV_SAVED


def _job_name(entry: "str | Source") -> str:
    """Display/event name of a matrix job entry."""
    return entry if isinstance(entry, str) else entry.name


def _run_benchmark_job(
    args,
) -> Tuple[Mig, BenchmarkEvaluation, Dict[str, int], List[Dict]]:
    """Worker-process entry: evaluate one benchmark in a local session.

    The worker reconstructs a :class:`repro.flow.Session` from the
    picklable spec shipped by the parent — same disk-cache root, same
    simulation backend, same machine model and optimizer — so
    cross-cutting concerns resolve identically on both sides of the
    process boundary.  Returns the built MIG alongside the evaluation
    (so the parent can adopt both into a shared cache), the worker
    cache's hit/miss counters (so ``BENCH_suite.json`` can report the
    fan-out's cache behaviour, not just the parent's), and the job's
    resilience event log (so the parent can report recoveries it never
    saw).  The job entry is a registry benchmark name or a picklable
    :class:`~repro.source.Source` (external circuits fan out too,
    persisting under their content fingerprints).

    The job runs under the session's ``job`` wall-clock budget —
    ``SIGALRM`` works here because pool workers execute jobs on their
    main thread — and passes the worker-entry fault-injection site
    first, so an injected crash kills the process before any work.
    """
    entry, preset, configs, verify, verify_patterns, spec = args
    from ..flow.session import Session  # deferred: flow imports runner

    job = _job_name(entry)
    session = Session.from_spec(spec)
    with res_events.capture() as log:
        with time_limit(
            session.timeouts.limit("job"), stage="job", job=job
        ):
            res_faults.worker_entry(job)
            with session.activated():
                if isinstance(entry, str):
                    mig = session.cache.benchmark_mig(entry, preset)
                else:
                    mig = session.cache.source_mig(entry, preset)
                evaluation = evaluate_mig_cached(
                    mig,
                    configs,
                    cache=session.cache,
                    verify=verify,
                    verify_patterns=verify_patterns,
                    arch=session.architecture,
                    opt=session.optimizer,
                )
    return mig, evaluation, session.cache.counters(), list(log)


def _worker_spec(
    session,
    cache: Optional[ExperimentCache],
    preset: str,
    arch: Optional[str] = None,
    opt: Optional[str] = None,
):
    """The :class:`repro.flow.SessionSpec` worker processes rebuild from.

    Prefers the dispatching session's own spec (backend + cache root),
    pinned to the *resolved* architecture and optimizer the matrix is
    targeting — an explicit ``run_matrix(arch=...)``/``opt=...``
    override must reach the workers even when the session prefers
    different ones.  Legacy calls without a session ship just the
    cache's disk root plus the architecture and optimizer names, so
    workers still share persisted artefacts and target the same
    machine/optimizer.
    """
    import dataclasses

    from ..flow.session import SessionSpec  # deferred: flow imports runner

    if session is not None:
        spec = session.spec()
        if arch is not None and spec.arch != arch:
            spec = dataclasses.replace(spec, arch=arch)
        if opt is not None and spec.opt != opt:
            spec = dataclasses.replace(spec, opt=opt)
        return spec
    disk = cache.disk if cache is not None else None
    disk_root = getattr(disk, "root", None)
    return SessionSpec(
        cache_dir=str(disk_root) if disk_root is not None else None,
        cache_url=getattr(disk, "url", None),
        preset=preset,
        arch=arch,
        opt=opt,
    )


def _supervised_pool_map(
    work: List[Tuple],
    parallel: int,
    *,
    policy: RetryPolicy = DEFAULT_POLICY,
    job_timeout: Optional[float] = None,
) -> Tuple[List[Tuple], List[List[Dict]]]:
    """Run :func:`_run_benchmark_job` over *work*, supervised.

    The supervisor half of ``run_matrix(parallel=N)``'s fault tolerance:

    * **Retry** — a job failing with a *transient* error (see
      :func:`repro.resilience.classify_transient`) is resubmitted after
      a deterministic exponential backoff, up to ``policy.attempts``;
      permanent errors and exhausted budgets propagate.
    * **Pool respawn** — a dying worker process (``os._exit``, segfault,
      OOM kill) breaks the whole ``ProcessPoolExecutor``; the supervisor
      terminates it, spawns a fresh pool, and resubmits *only the jobs
      that had not finished* — completed results are kept.
    * **Job deadline** — with a ``job`` budget (*job_timeout*), a job
      whose worker exceeds it from the parent's clock is abandoned: the
      (possibly wedged) pool is killed and a permanent
      :class:`~repro.resilience.StageTimeoutError` raised.  This backs
      up the worker's own ``SIGALRM`` enforcement, which a hard-wedged C
      loop in a dying process might never run.
    * **Interrupt** — on ``KeyboardInterrupt`` (or any other error) the
      pool is terminated and its pending futures cancelled before the
      exception propagates, so Ctrl-C never leaks worker processes.

    Returns the per-job payloads in *work* order plus the parent-side
    recovery events of each job (for the manifests the workers already
    wrote — the parent is the only witness of crashes and respawns).
    """
    results: List[Optional[Tuple]] = [None] * len(work)
    attempts = [0] * len(work)
    parent_events: List[List[Dict]] = [[] for _ in work]
    job_names = [_job_name(item[0]) for item in work]
    unfinished = set(range(len(work)))
    pool: Optional[ProcessPoolExecutor] = None
    futures: Dict = {}
    deadlines: Dict = {}

    def record(idx: int, kind: str, **detail) -> None:
        parent_events[idx].append(
            res_events.record(kind, job=job_names[idx], **detail)
        )

    def submit(idx: int) -> None:
        nonlocal pool
        attempts[idx] += 1
        while True:
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=parallel)
            try:
                future = pool.submit(_run_benchmark_job, work[idx])
                break
            except BrokenProcessPool:
                # The pool died between submissions (a just-resubmitted
                # job crashed during a sibling's backoff sleep).  Its
                # in-flight futures already carry BrokenProcessPool and
                # surface through the main loop; just respawn for this
                # submission.
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
        futures[future] = idx
        if job_timeout:
            deadlines[future] = time.monotonic() + job_timeout

    def kill_pool() -> None:
        """Terminate every worker and drop the pool (broken or not)."""
        nonlocal pool
        if pool is not None:
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.terminate()
                except Exception:
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None
        futures.clear()
        deadlines.clear()

    def check_retryable(idx: int, error: BaseException) -> None:
        """Record the retry of a transient job failure, or give up loudly."""
        if not classify_transient(error):
            raise error
        if attempts[idx] >= policy.attempts:
            raise RetriesExhaustedError(job_names[idx], attempts[idx], error)
        record(idx, "retry", attempt=attempts[idx], error=repr(error))

    try:
        for idx in sorted(unfinished):
            submit(idx)
        while unfinished:
            timeout = None
            if deadlines:
                timeout = max(
                    0.0, min(deadlines.values()) - time.monotonic()
                )
            done, _ = wait(
                set(futures), timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                now = time.monotonic()
                expired = [
                    futures[f] for f, dl in deadlines.items() if dl <= now
                ]
                if expired:
                    idx = expired[0]
                    record(idx, "job_timeout", seconds=job_timeout)
                    raise StageTimeoutError(
                        "job", job_timeout, job_names[idx]
                    )
                continue
            crashed: List[int] = []
            retries: List[int] = []
            for future in done:
                idx = futures.pop(future)
                deadlines.pop(future, None)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    crashed.append(idx)
                    continue
                except BaseException as error:
                    check_retryable(idx, error)
                    retries.append(idx)
                    continue
                results[idx] = payload
                unfinished.discard(idx)
            if crashed:
                # One dead worker poisons the whole pool: every future
                # still in flight will fail the same way.  Respawn once
                # and resubmit only the jobs that had not finished.
                resubmit = sorted(crashed + list(futures.values()))
                kill_pool()
                res_events.record(
                    "pool_respawn", jobs=[job_names[i] for i in resubmit]
                )
                for idx in resubmit:
                    check_retryable(
                        idx, WorkerCrashError(job_names[idx], attempts[idx])
                    )
                retries.extend(resubmit)
            for idx in sorted(set(retries)):
                time.sleep(policy.delay(attempts[idx], key=(job_names[idx],)))
                submit(idx)
    except BaseException:
        kill_pool()
        raise
    if pool is not None:
        pool.shutdown(wait=True)
    return list(results), parent_events


def run_matrix(
    benchmarks: "Optional[Iterable[SourceLike]]" = None,
    configs: Optional[Sequence[ConfigLike]] = None,
    *,
    preset: str = "default",
    caps: Optional[Sequence[int]] = None,
    effort: int = DEFAULT_EFFORT,
    verify: bool = False,
    verify_patterns: int = 64,
    parallel: Optional[int] = None,
    cache: Optional[ExperimentCache] = None,
    session=None,
    arch: ArchLike = None,
    opt: OptLike = None,
    retry: Optional[RetryPolicy] = None,
) -> List[BenchmarkEvaluation]:
    """Evaluate a benchmarks x configurations matrix.

    Parameters
    ----------
    benchmarks:
        Circuit sources (default: all 18 registry benchmarks, table
        order).  Each entry is anything
        :func:`repro.source.resolve_source` accepts — a registry name,
        a netlist path, a :class:`~repro.source.Source`, a built
        :class:`~repro.mig.graph.Mig`, or a decorated frontend
        function.  External sources persist and fan out under their
        content fingerprints, exactly like registry benchmarks.
    configs:
        Configuration preset names or explicit :class:`EnduranceConfig`
        objects (default: the five Table I columns).
    caps:
        Additional ``full_management(cap)`` columns, labelled ``wmaxN``.
    arch:
        Target machine model for every compilation (a registry name or
        :class:`~repro.arch.Architecture`).  An explicit value beats
        the dispatching *session*'s architecture (mirroring
        ``Flow.arch()``); unset, the session's — else the ambient —
        selection applies.  Results and cache entries are keyed by it.
    opt:
        Rewriting optimizer for every compilation (an
        :class:`repro.opt.OptimizerSpec` or spec string such as
        ``"greedy:write_cost"``).  Resolution mirrors *arch*: explicit
        beats the session's, which beats the ambient
        ``$REPRO_OPT``/default selection.  Results and cache entries
        are keyed by it.
    parallel:
        ``None``/``0``/``1`` — run serially through *cache* (created on
        demand).  ``N > 1`` — fan benchmarks out over ``N`` worker
        processes; each worker reconstructs a :class:`repro.flow.Session`
        from the dispatching session's spec, and results are assembled in
        matrix order, so the output is identical to the serial run
        (asserted by the runner tests).  A shared *cache* cooperates with
        the pool: already-compiled (benchmark, config) pairs are served
        from it, only the missing remainder is dispatched, and worker
        results are adopted back into the cache.  When the shared cache
        has a disk cache attached, workers read through and write back to
        the same on-disk root.
    session:
        The :class:`repro.flow.Session` driving this matrix, if any —
        supplies the spec (backend + cache root) workers are rebuilt
        from.  Prefer calling :meth:`repro.flow.Session.run_matrix`,
        which fills *cache*, *parallel*, *preset*, and *session* in one
        go.
    retry:
        The :class:`repro.resilience.RetryPolicy` supervising every
        job: transient failures (worker crashes, injected faults,
        I/O errors classified by
        :func:`repro.resilience.classify_transient`) are retried with
        deterministic exponential backoff; permanent failures and
        exhausted budgets propagate.  Defaults to
        :data:`repro.resilience.DEFAULT_POLICY` (three attempts).  The
        session's ``job`` timeout budget is enforced per job in both
        the serial and parallel paths.
    """
    raw = list(benchmarks) if benchmarks is not None else list(BENCHMARK_ORDER)
    # Normalize every entry: registry benchmarks stay bare name strings
    # (the classic job shape, byte-identical cache keys), everything
    # else becomes a picklable Source.
    entries: List["str | Source"] = []
    for item in raw:
        source = item if isinstance(item, Source) else resolve_source(item)
        entries.append(
            source.name if source.kind == "registry" else source
        )
    jobs = resolve_configs(configs, caps, effort)
    if session is not None and cache is None:
        cache = session.cache
    # An explicit arch/opt argument beats the session's, mirroring
    # Flow.arch()/Flow.optimize(); with neither, the ambient selection
    # applies.
    machine = (
        resolve_architecture(arch)
        if arch is not None
        else session.architecture
        if session is not None
        else resolve_architecture(None)
    )
    opt_spec = (
        resolve_optimizer(opt)
        if opt is not None
        else session.optimizer
        if session is not None
        else resolve_optimizer(None)
    )
    optimizer = Optimizer(opt_spec, machine)
    policy = retry if retry is not None else DEFAULT_POLICY
    timeouts = (
        session.timeouts if session is not None else resolve_timeouts(None)
    )
    job_timeout = timeouts.limit("job")
    # Touch the fault plan before any pool exists: an active
    # $REPRO_FAULTS spec exports its fire ledger into the environment
    # here, so workers spawned below share the parent's fault budget (a
    # retried job must not re-fire a spent count=1 crash).
    res_faults.active_plan()

    if parallel is not None and parallel > 1 and len(entries) > 1:
        spec = _worker_spec(
            session, cache, preset, machine.name, opt_spec.label()
        )
        if cache is None:
            work = [
                (entry, preset, jobs, verify, verify_patterns, spec)
                for entry in entries
            ]
            with _importable_in_workers():
                payloads, _ = _supervised_pool_map(
                    work, parallel, policy=policy, job_timeout=job_timeout
                )
            return [payload[1] for payload in payloads]
        # Cooperative mode: dispatch only the pairs the cache is missing
        # (an entry without a wide-enough verification certificate counts
        # as missing when this run verifies).  Workers share the cache's
        # disk root, if any, so they persist what they compile.
        needed = verify_patterns if verify else 0
        work = []
        for entry in entries:
            mig = (
                cache.cached_mig(entry, preset)
                if isinstance(entry, str)
                else cache.cached_source_mig(entry, preset)
            )
            missing = (
                jobs
                if mig is None
                else [
                    cfg
                    for cfg in jobs
                    if not cache.has(
                        mig_key(mig), cfg, verified_patterns=needed,
                        arch=machine, optimizer=optimizer,
                    )
                ]
            )
            if missing:
                work.append(
                    (entry, preset, missing, verify, verify_patterns, spec)
                )
        if work:
            with _importable_in_workers():
                payloads, recoveries = _supervised_pool_map(
                    work, parallel, policy=policy, job_timeout=job_timeout
                )
            for job, payload, recovery in zip(work, payloads, recoveries):
                mig, evaluation, counters, _worker_log = payload
                entry = job[0]
                identity = (
                    (entry, preset)
                    if isinstance(entry, str)
                    else tuple(entry.identity(preset))
                )
                cache.adopt(
                    identity,
                    preset,
                    mig,
                    job[2],
                    evaluation,
                    verified_patterns=verify_patterns if verify else 0,
                    arch=machine,
                    optimizer=optimizer,
                )
                cache.absorb_worker_counters(counters)
                # Worker-side events are already in the manifests the
                # worker wrote; crashes/respawns/retries are only
                # observable in the parent and are appended here.
                cache.annotate_manifests(
                    identity, job[2], recovery,
                    arch=machine, optimizer=optimizer,
                )
        # Fall through: assemble every evaluation from the now-warm cache
        # (pure hits), which also keeps matrix order.

    cache = cache if cache is not None else ExperimentCache()
    evaluations = []
    for entry in entries:
        job_name = _job_name(entry)
        mig = (
            cache.benchmark_mig(entry, preset)
            if isinstance(entry, str)
            else cache.source_mig(entry, preset)
        )

        def attempt(mig=mig, job_name=job_name):
            # Serial jobs run under the same job budget and injection
            # site as pool workers (minus the process-killing faults),
            # so the retry taxonomy behaves identically in both paths.
            with time_limit(job_timeout, stage="job", job=job_name):
                res_faults.serial_entry(job_name)
                return evaluate_mig_cached(
                    mig,
                    jobs,
                    cache=cache,
                    verify=verify,
                    verify_patterns=verify_patterns,
                    arch=machine,
                    opt=optimizer,
                )

        evaluations.append(
            call_with_retry(
                attempt,
                policy=policy,
                key=(job_name,),
                job=job_name,
                on_retry=lambda n, error, job_name=job_name: res_events.record(
                    "retry", job=job_name, attempt=n, error=repr(error)
                ),
            )
        )
    return evaluations
