"""The motivating examples of the paper: Fig. 1 and Fig. 2.

Fig. 1 shows a MIG where the area/latency-optimal destination choice
rewrites the *same* device repeatedly: whenever the only single-fanout,
non-complemented child of the node under computation is the previously
computed value, the compiler keeps overwriting that one cell.

Fig. 2 shows the "blocked RRAM" pathology: a node whose consumers sit
many levels higher pins its device for most of the program, while
short-lived neighbours are released and rewritten over and over.

This module rebuilds both MIGs exactly as drawn, plus parametric
generalisations (:func:`fig1_chain`, :func:`fig2_ladder`) used by the
figure benchmarks to show how the pathologies scale and how the paper's
techniques mitigate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..mig.graph import Mig
from ..mig.signal import complement


def fig1_mig() -> Mig:
    """The MIG of the paper's Fig. 1 (nodes A, B, C, inverted child D).

    Node ``A`` is the only single-fanout child of ``B``, and ``B`` in
    turn is the only single-fanout child of ``C``; ``D`` is ``C``'s
    complemented child.  A cost-greedy compiler therefore writes the
    device first holding ``A``, then ``B``, then ``C`` — three writes on
    one cell while ``D``'s device is written once.
    """
    mig = Mig("fig1")
    x1, x2, x3, x4, x5 = (mig.add_pi(f"x{i}") for i in range(1, 6))
    a = mig.add_maj(x1, x2, x3)
    d = mig.add_maj(x2, x3, x4)  # multi-fanout sibling (also an output)
    b = mig.add_maj(a, x2, d)  # A is B's only single-fanout child
    c = mig.add_maj(b, complement(d), x5)  # D enters complemented
    mig.add_po(c, "f")
    mig.add_po(d, "g")
    return mig


def fig1_chain(length: int = 16) -> Mig:
    """Parametric Fig. 1: a chain of *length* nodes where each step's only
    single-fanout child is the previous result — the same device is the
    preferred destination *length* times in a row."""
    if length < 1:
        raise ValueError("chain length must be positive")
    mig = Mig(f"fig1_chain{length}")
    shared = [mig.add_pi(f"s{i}") for i in range(length + 2)]
    current = mig.add_maj(shared[0], shared[1], shared[2])
    for i in range(length):
        current = mig.add_maj(current, shared[i + 1], complement(shared[i + 2]))
    mig.add_po(current, "f")
    # Pin every shared operand with an output so it stays multi-fanout for
    # the whole program: `current` is then the only legal destination at
    # every step, exactly the Fig. 1 pathology.
    for i, s in enumerate(shared):
        mig.add_po(s, f"pin{i}")
    return mig


def fig2_mig() -> Mig:
    """The MIG of the paper's Fig. 2 (nodes A..G).

    ``A`` is consumed only by the root ``G``, three levels above it;
    ``B`` and ``C`` are consumed immediately by ``D`` and ``E``.
    Computing ``A`` early (as a naive order does) blocks its device for
    almost the whole program.
    """
    mig = Mig("fig2")
    x1, x2, x3, x4, x5, x6 = (mig.add_pi(f"x{i}") for i in range(1, 7))
    a = mig.add_maj(x1, x2, complement(x3))
    b = mig.add_maj(x2, x3, x4)
    c = mig.add_maj(x4, x5, x6)
    d = mig.add_maj(b, c, x1)
    e = mig.add_maj(c, x5, complement(x6))
    f = mig.add_maj(d, e, x2)
    g = mig.add_maj(a, f, complement(x4))
    mig.add_po(g, "g")
    return mig


def fig2_ladder(rungs: int = 8) -> Mig:
    """Parametric Fig. 2: *rungs* long-storage producers, each consumed
    only by the root, interleaved with short-lived ladder logic.

    The larger *rungs* is, the more devices a storage-oblivious order
    blocks simultaneously; Algorithm 3 defers the producers instead.
    """
    if rungs < 1:
        raise ValueError("need at least one rung")
    mig = Mig(f"fig2_ladder{rungs}")
    xs = [mig.add_pi(f"x{i}") for i in range(2 * rungs + 3)]
    blocked: List[int] = []
    rail = mig.add_maj(xs[0], xs[1], xs[2])
    for i in range(rungs):
        blocked.append(mig.add_maj(xs[i], xs[i + 1], complement(xs[i + 2])))
        rail = mig.add_maj(rail, xs[i + 2], complement(xs[i + 1]))
    root = rail
    for producer in blocked:  # consumed only here, at the very top
        root = mig.add_maj(root, producer, xs[0])
    mig.add_po(root, "g")
    return mig


def evaluate_scenarios(
    mig: Mig,
    configs: Sequence,
    *,
    session=None,
    verify: bool = False,
    verify_patterns: int = 64,
) -> Iterable[Tuple[str, "object"]]:
    """Compile a scenario MIG under each configuration through a Flow.

    *configs* is a sequence of preset names or
    :class:`~repro.core.manager.EnduranceConfig` objects; yields
    ``(label, FlowResult)`` pairs in order.  The CLI ``fig1``/``fig2``
    subcommands and the figure examples route through this helper so
    scenario compilations share the session's cache and backend like
    every other pipeline.
    """
    from ..flow import Flow, Session  # deferred: flow imports analysis

    if session is None:
        session = Session()
    for config in configs:
        flow = Flow.for_config(config, session=session).source_mig(mig)
        if verify:
            flow.verify(verify_patterns)
        result = flow.run()
        yield result.compilation.config.name, result


@dataclass(frozen=True)
class ArchSweepPoint:
    """One (architecture, configuration) measurement of a sweep.

    ``result`` is the :class:`repro.flow.FlowResult` when the machine
    supports the configuration, ``None`` otherwise (``reason`` then says
    why — e.g. the ``dac16`` machine has no wear counters for
    ``min_write``).
    """

    arch: str
    config: str
    result: Optional[object]
    reason: str = ""

    @property
    def supported(self) -> bool:
        return self.result is not None


def architecture_sweep(
    source: Union[Mig, str],
    archs: Optional[Sequence] = None,
    configs: Sequence = ("naive", "ea-full"),
    *,
    session=None,
    verify: bool = False,
    verify_patterns: int = 64,
) -> List[ArchSweepPoint]:
    """Compile one source under every (architecture, configuration) pair.

    The architecture dimension of the design space: the same benchmark
    (a registry name or an explicit MIG) is compiled for each machine
    model — by default every registered one — under each endurance
    configuration, all through one session so every artefact lands in
    the shared (architecture-keyed) cache.  Pairs the machine cannot
    implement (e.g. ``min_write`` on the wear-counter-free ``dac16``)
    come back as unsupported points rather than raising, so a sweep
    table can render them as gaps.

    The CLI ``archsweep`` subcommand, the architecture example, and the
    ``ARCH_sweep`` benchmark artefact all render these points via
    :func:`repro.analysis.report.render_architecture_sweep`.
    """
    from ..arch import ArchitectureError, available_architectures, resolve_architecture
    from ..flow import Flow, Session  # deferred: flow imports analysis

    if session is None:
        session = Session()
    if archs is None:
        archs = available_architectures()
    points: List[ArchSweepPoint] = []
    for arch in archs:
        machine = resolve_architecture(arch)
        for config in configs:
            flow = Flow.for_config(config, session=session).arch(machine)
            flow.source(source)  # any SourceLike: name, path, Mig, ...
            if verify:
                flow.verify(verify_patterns)
            try:
                result = flow.run()
            except ArchitectureError as exc:
                points.append(
                    ArchSweepPoint(
                        arch=machine.name,
                        config=config if isinstance(config, str) else config.name,
                        result=None,
                        reason=str(exc),
                    )
                )
                continue
            points.append(
                ArchSweepPoint(
                    arch=machine.name,
                    config=result.compilation.config.name,
                    result=result,
                )
            )
    return points


@dataclass(frozen=True)
class OptSweepPoint:
    """One (optimizer, configuration) measurement of an optimizer sweep.

    ``objective`` is the optimizer's own objective score of the
    rewritten graph (estimated, compile-free); ``result`` the full
    :class:`repro.flow.FlowResult` with the *measured* compilation.
    """

    opt: str
    config: str
    result: object
    objective: int


def optimizer_sweep(
    source: Union[Mig, str],
    opts: Sequence = ("script", "greedy", "budget"),
    configs: Sequence = ("ea-full",),
    *,
    session=None,
    verify: bool = False,
    verify_patterns: int = 64,
) -> List[OptSweepPoint]:
    """Compile one source under every (optimizer, configuration) pair.

    The optimizer dimension of the design space: the same benchmark (a
    registry name or an explicit MIG) is rewritten by each optimizer
    spec — the legacy fixed scripts, the greedy cost-guided strategy,
    the bounded look-ahead search, or any custom spec string — then
    compiled under each endurance configuration, all through one
    session so every artefact lands in the shared (optimizer-keyed)
    cache and the measured #I/#R/write statistics are directly
    comparable against the compile-free objective estimates.

    The CLI ``optsweep`` subcommand, the optimizer example, and the
    ``OPT_sweep`` benchmark artefact all render these points via
    :func:`repro.analysis.report.render_optimizer_sweep`.
    """
    from ..flow import Flow, Session  # deferred: flow imports analysis
    from ..opt import Optimizer, resolve_optimizer

    if session is None:
        session = Session()
    machine = session.architecture
    points: List[OptSweepPoint] = []
    for opt in opts:
        spec = resolve_optimizer(opt)
        for config in configs:
            flow = Flow.for_config(config, session=session).optimize(spec)
            flow.source(source)  # any SourceLike: name, path, Mig, ...
            if verify:
                flow.verify(verify_patterns)
            result = flow.run()
            points.append(
                OptSweepPoint(
                    opt=spec.label(),
                    config=result.compilation.config.name,
                    result=result,
                    objective=Optimizer(spec, machine).score(
                        result.rewritten
                    ),
                )
            )
    return points


@dataclass(frozen=True)
class SourceSweepPoint:
    """One (source, configuration) measurement of a source sweep.

    ``source`` is the display name, ``kind`` the origin
    (``registry``/``file``/``frontend``/``graph``), ``result`` the full
    :class:`repro.flow.FlowResult`.
    """

    source: str
    kind: str
    config: str
    result: object


def source_sweep(
    sources: Sequence,
    configs: Sequence = ("naive", "ea-full"),
    *,
    session=None,
    verify: bool = False,
    verify_patterns: int = 64,
) -> List[SourceSweepPoint]:
    """Compile every source under every configuration pair.

    The source dimension of the design space: circuits from *anywhere*
    — registry benchmarks, imported BLIF/AIGER netlists, frontend
    functions, hand-built graphs — run the identical pipeline under
    each endurance configuration, all through one session, so the
    write-traffic characteristics of hand-picked benchmarks can be
    compared directly against circuits nobody hand-picked.  Each entry
    of *sources* is anything :func:`repro.source.resolve_source`
    accepts.

    The CLI ``sourcesweep`` subcommand and the frontend example render
    these points via
    :func:`repro.analysis.report.render_source_sweep`.
    """
    from ..flow import Flow, Session  # deferred: flow imports analysis
    from ..source import resolve_source

    if session is None:
        session = Session()
    points: List[SourceSweepPoint] = []
    for entry in sources:
        resolved = resolve_source(entry)
        for config in configs:
            flow = Flow.for_config(config, session=session).source(resolved)
            if verify:
                flow.verify(verify_patterns)
            result = flow.run()
            points.append(
                SourceSweepPoint(
                    source=resolved.name,
                    kind=resolved.kind,
                    config=result.compilation.config.name,
                    result=result,
                )
            )
    return points


@dataclass(frozen=True)
class ObjectiveStudyRow:
    """One benchmark of the suite-wide objective study.

    Objective scores of the raw graph, the fixed baseline script's
    result, and the cost-guided optimizer's result — ``improved`` flags
    a strict reduction of the optimizer over the script.
    """

    benchmark: str
    raw: int
    script: int
    optimized: int

    @property
    def improved(self) -> bool:
        return self.optimized < self.script


def optimizer_objective_study(
    benchmarks: Optional[Sequence[str]] = None,
    *,
    opt="greedy",
    baseline: str = "endurance",
    effort: Optional[int] = None,
    preset: Optional[str] = None,
    session=None,
) -> List[ObjectiveStudyRow]:
    """Score a cost-guided optimizer against a fixed script, suite-wide.

    For each registry benchmark the *baseline* script and the *opt*
    optimizer rewrite the same graph (both through the session cache,
    so rewrites persist and rerunning the study is cheap) and the
    optimizer's objective — priced under the session's architecture —
    is compared.  This is the quantitative backing of the paper-level
    claim that cost-guided rewriting beats fixed pipelines: the
    ``OPT_sweep.txt`` benchmark artefact asserts the optimizer strictly
    improves at least half the suite.
    """
    from ..flow import Session  # deferred: flow imports analysis
    from ..opt import DEFAULT_EFFORT, Optimizer
    from ..synth.registry import BENCHMARK_ORDER
    from .runner import mig_key

    if session is None:
        session = Session()
    names = list(benchmarks) if benchmarks is not None else list(BENCHMARK_ORDER)
    effort = effort if effort is not None else DEFAULT_EFFORT
    preset = preset or session.preset
    optimizer = Optimizer(opt, session.architecture)
    rows: List[ObjectiveStudyRow] = []
    with session.activated():
        for name in names:
            mig = session.cache.benchmark_mig(name, preset)
            graph_id = mig_key(mig)
            scripted = session.cache.rewritten(
                mig, baseline, effort, key=graph_id
            )
            optimized = session.cache.rewritten(
                mig, baseline, effort, key=graph_id, optimizer=optimizer
            )
            rows.append(
                ObjectiveStudyRow(
                    benchmark=name,
                    raw=optimizer.score(mig),
                    script=optimizer.score(scripted),
                    optimized=optimizer.score(optimized),
                )
            )
    return rows


def storage_pressure(program) -> Tuple[int, float]:
    """(longest, mean) value lifetime of a compiled program, in
    instructions — the quantitative reading of Fig. 2."""
    spans = program.value_lifetimes()
    lengths = [stop - start for cell in spans for start, stop in cell]
    if not lengths:
        return 0, 0.0
    return max(lengths), sum(lengths) / len(lengths)
