"""Persistent, content-addressed experiment cache.

The session-scoped :class:`~repro.analysis.runner.ExperimentCache` dies
with the process, so every new harness run (a pytest session, a CLI
invocation, a CI job) rebuilds and recompiles the same (benchmark,
configuration) pairs.  This module adds the cross-session layer: a
directory of pickled stage artefacts keyed by

* the *benchmark key* — registry name + width preset (hand-built MIGs
  have no stable cross-process identity and are never persisted),
* the *semantic configuration key* (:func:`~repro.analysis.runner.config_key`),
* and a *code-version fingerprint* — a SHA-256 over every ``repro``
  source file, so any change to the package invalidates the whole shard
  rather than serving artefacts a different compiler produced.

Entries are written atomically (temp file + ``os.replace``) and loaded
through an integrity check (magic, payload digest, key match); torn,
truncated, or otherwise corrupt files are treated as misses, never as
data.  Multiple processes — e.g. ``run_matrix(parallel=N)`` workers —
may share one cache root concurrently: each entry write is guarded by
an exclusive per-key lockfile, so exactly one writer serialises and
persists a given artefact while racing writers (whose payload would be
identical — stage computation is deterministic) skip the redundant
write-through instead of piling up temp files and renames on the same
path.  Locks carry their holder's PID: a lock whose writer has died is
broken immediately, anything else after a staleness timeout.

Layout::

    <root>/<fingerprint>/<sha256(key)>.pkl

``repro cache stats`` / ``repro cache clear`` expose the directory from
the command line.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pathlib
import pickle
import tempfile
import time
from typing import Iterable, Optional, Tuple

from ..resilience import faults, manifest as run_manifest

#: Default cache directory (relative to the working directory).
DEFAULT_ROOT = ".repro_cache"

#: Environment variable overriding/enabling the cache root.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: File magic; bump when the entry format changes.
_MAGIC = b"RPCH1\n"

#: Age (seconds) after which another writer's lockfile is presumed dead
#: (crashed worker) and broken.  Serialising one entry takes well under
#: a second; a minute leaves room for pathological filesystem stalls.
STALE_LOCK_SECONDS = 60.0

#: How long a writer waits for a sibling to release an entry's lock
#: before giving up.  Entry writes take milliseconds, so a losing
#: writer normally gets the lock on an early poll; the bound only
#: matters when the holder is wedged (and the stale break then applies).
LOCK_WAIT_SECONDS = 1.0

_LOCK_POLL_SECONDS = 0.01

#: Uniquifier for stale-lock tombstones (see ``_acquire_lock``).
_TOMB_COUNTER = itertools.count()

_FINGERPRINT: Optional[str] = None


def encode_entry(key_repr: str, payload) -> bytes:
    """Serialise one cache entry into its on-disk/wire blob form.

    ``MAGIC + sha256hex(body) + body`` with ``body = pickle((key_repr,
    payload))`` — the format :class:`DiskCache` persists and
    :mod:`repro.cachesvc` ships over HTTP, so an artefact fetched from a
    cache server is byte-identical to one read off a shared root.
    """
    body = pickle.dumps((key_repr, payload), protocol=pickle.HIGHEST_PROTOCOL)
    return _MAGIC + hashlib.sha256(body).hexdigest().encode() + body


def verify_blob(blob: bytes) -> bool:
    """Structural integrity of a blob: magic plus payload digest.

    Deliberately does **not** unpickle — this is the check a cache
    *server* runs on opaque artefacts it never executes (admitting a
    tampered pickle to the warm tier would hand it to every client).
    """
    if not blob.startswith(_MAGIC):
        return False
    digest_end = len(_MAGIC) + 64
    digest = blob[len(_MAGIC):digest_end]
    return hashlib.sha256(blob[digest_end:]).hexdigest().encode() == digest


def blob_digest(blob: bytes) -> str:
    """SHA-256 (hex) of a whole blob — the put-verification checksum."""
    return hashlib.sha256(blob).hexdigest()


def decode_entry(blob: bytes, key_repr: str):
    """Decode a blob back into its payload, or ``None``.

    Anything wrong — bad magic, digest mismatch, unpicklable body, or a
    key mismatch (hash collision, format drift) — is a miss; corruption
    is never surfaced as data.
    """
    if not verify_blob(blob):
        return None
    try:
        stored_key, payload = pickle.loads(blob[len(_MAGIC) + 64:])
    except Exception:
        # A well-digested but unloadable body can only mean format
        # drift (e.g. a renamed class in a stale shard): miss.
        return None
    if stored_key != key_repr:
        return None
    return payload


def _lock_holder_dead(lock: pathlib.Path) -> bool:
    """``True`` if *lock* names a holder PID that no longer exists.

    Locks carry their writer's PID; a pool supervisor recovering from a
    crashed worker SIGTERMs the siblings, and a sibling killed while
    holding an entry lock leaks it — its retried job must not wait out
    :data:`STALE_LOCK_SECONDS` (and then *skip* the store) for a writer
    that can never release.  Best-effort on purpose: an empty or
    unparsable lock (a foreign writer, or the instant between create and
    write) and a reused PID both fall back to the age-based break.
    """
    try:
        pid = int(lock.read_bytes())
    except (OSError, ValueError):
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except OSError:
        return False  # e.g. EPERM: alive, just not ours
    return False


def _key_job(key: Tuple) -> Optional[str]:
    """Best-effort job label of a cache key, for fault targeting.

    Entry keys lead with a kind tag followed by the source identity
    (``("result", "adder", "default", …)``), so the second element —
    when it is a string — names the benchmark/source the entry belongs
    to.  Used only to scope ``$REPRO_FAULTS`` directives.
    """
    if len(key) > 1 and isinstance(key[1], str):
        return key[1]
    return None


def code_fingerprint() -> str:
    """SHA-256 over the ``repro`` package sources (hex, memoized).

    Any edit to any module under ``repro`` yields a new fingerprint, so
    persisted artefacts can never outlive the code that produced them.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package_root = pathlib.Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


class DiskCache:
    """One cache root; stores and retrieves pickled stage artefacts.

    Thread-compatible in the same way the rest of the runner is: loads
    are pure reads, stores are atomic renames, and racing writers of the
    same key produce identical content (stage computation is
    deterministic), so last-writer-wins is harmless.
    """

    def __init__(
        self,
        root: "str | os.PathLike[str]" = DEFAULT_ROOT,
        *,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.root = pathlib.Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        #: Writes skipped because another process held the entry's lock
        #: (it was persisting the identical payload).
        self.lock_skips = 0

    # -- keying ----------------------------------------------------------

    def _path(self, key: Tuple) -> pathlib.Path:
        name = hashlib.sha256(repr(key).encode()).hexdigest()
        return self.root / self.fingerprint[:16] / f"{name}.pkl"

    def entry_path(self, key: Tuple) -> pathlib.Path:
        """The content-addressed path *key* persists under (whether or
        not an entry exists there yet) — how the parallel supervisor
        locates a retried job's manifests to annotate."""
        return self._path(key)

    # -- read/write ------------------------------------------------------

    def load(self, key: Tuple):
        """Return the stored payload for *key*, or ``None``.

        Anything wrong with the file — missing, truncated, bad digest,
        unpicklable, or keyed differently (a hash collision or format
        drift) — is a miss; corruption is never surfaced as data.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        # Chaos hook: an injected corruption must surface as a miss.
        blob = faults.corrupt_blob(blob, _key_job(key))
        payload = self._decode(blob, key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    @staticmethod
    def _decode(blob: bytes, key: Tuple):
        return decode_entry(blob, repr(key))

    def _acquire_lock(self, path: pathlib.Path) -> Optional[pathlib.Path]:
        """Take the per-entry writer lock, or ``None`` on timeout.

        The lock is an ``O_EXCL``-created sidecar file: exactly one
        process holds it at a time, making every entry write
        single-writer even when a whole worker pool warms the same
        root.  A held lock is polled for up to
        :data:`LOCK_WAIT_SECONDS` (entry writes take milliseconds, so
        losers normally proceed on an early poll — this is what lets a
        verification-certificate upgrade land even when a sibling was
        persisting the unverified entry first); a lock whose recorded
        holder is dead, or older than :data:`STALE_LOCK_SECONDS`,
        belongs to a crashed writer and is broken.
        """
        lock = path.with_suffix(".lock")
        deadline = time.monotonic() + LOCK_WAIT_SECONDS
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                try:
                    # Record the holder so waiters can tell a *dead*
                    # writer (terminated pool worker — SIGTERM runs no
                    # Python cleanup, so the lock leaks) from a live
                    # slow one, and break it without the 60s wait.
                    os.write(fd, str(os.getpid()).encode())
                finally:
                    os.close(fd)
                return lock
            except FileExistsError:
                if time.monotonic() >= deadline:
                    return None
                try:
                    age = time.time() - lock.stat().st_mtime
                except FileNotFoundError:
                    continue  # holder finished between open and stat
                except OSError:
                    continue
                if age >= STALE_LOCK_SECONDS or _lock_holder_dead(lock):
                    self._break_stale_lock(lock)
                    continue
                if time.monotonic() >= deadline:
                    return None
                time.sleep(_LOCK_POLL_SECONDS)

    @staticmethod
    def _break_stale_lock(lock: pathlib.Path) -> None:
        """Break a crashed writer's lock so exactly one breaker wins.

        A bare ``unlink`` here would race: two waiters can both judge
        the lock stale and both unlink — and the second unlink can
        destroy a *fresh* lock acquired in between, letting two writers
        into the critical section at once.  Renaming the lock to a
        uniquely-named tombstone is atomic and single-winner: only one
        rename of a given path succeeds, every loser gets
        ``FileNotFoundError`` (which just means "lost the race — poll
        again"), and a fresh lock created after the rename is a
        different inode that no loser can touch.
        """
        tombstone = lock.with_name(
            f"{lock.name}.tomb-{os.getpid()}-{next(_TOMB_COUNTER)}"
        )
        try:
            os.rename(lock, tombstone)
        except FileNotFoundError:
            return  # another breaker (or the holder's release) won
        except OSError:
            return
        try:
            os.unlink(tombstone)
        except OSError:
            pass

    def store(
        self, key: Tuple, payload, *, replace=None, manifest=None
    ) -> None:
        """Persist *payload* under *key* (atomic, best-effort,
        single-writer).

        The entry's lockfile is acquired first (waiting briefly for a
        sibling writer to finish); an unobtainable lock skips the write
        (counted in :attr:`lock_skips`).  With a *replace* predicate
        the decision to overwrite an existing entry happens *inside*
        the lock: the current payload (if any decodes) is passed to
        ``replace`` and the write proceeds only on ``True`` — this is
        how verification certificates upgrade atomically and never
        downgrade, regardless of writer interleaving.  A cache must
        never take the experiment down: filesystem and serialisation
        errors are swallowed and the entry is simply not persisted.

        With a *manifest* dict the entry gets a ``run_manifest.json``
        sidecar (see :mod:`repro.resilience.manifest`), written inside
        the same lock so it always describes the bytes on disk; a
        skipped write (replace declined) still folds the manifest's
        event log into the existing sidecar, so recovery history is
        never lost to a lost store race.
        """
        path = self._path(key)
        lock = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            lock = self._acquire_lock(path)
            if lock is None:
                self.lock_skips += 1
                return
            faults.store_io_fault(_key_job(key))  # chaos hook
            if replace is not None:
                try:
                    current = self._decode(path.read_bytes(), key)
                except OSError:
                    current = None
                if current is not None and not replace(current):
                    if manifest is not None:
                        run_manifest.append_manifest_events(
                            path, manifest.get("events", [])
                        )
                    return
            blob = encode_entry(repr(key), payload)
            # The temp suffix is deliberately not ".pkl": a writer killed
            # mid-write (terminated worker, SIGKILL) orphans the temp
            # file, and an orphan must never be countable or comparable
            # as a cache entry.
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            if manifest is not None:
                meta = dict(manifest)
                events = meta.pop("events", [])
                run_manifest.write_manifest(
                    path,
                    run_manifest.build_manifest(
                        path,
                        key_repr=repr(key),
                        blob=blob,
                        meta=meta,
                        events=events,
                    ),
                )
        except Exception:
            # Unpicklable payloads and filesystem failures degrade to
            # "not persisted", never to a crashed experiment.
            pass
        finally:
            # The lock is released on *every* exit path — including a
            # KeyboardInterrupt arriving mid-write — so an interrupted
            # run never wedges sibling writers for STALE_LOCK_SECONDS.
            if lock is not None:
                try:
                    os.unlink(lock)
                except OSError:
                    pass

    # -- blob layer (cache service) --------------------------------------

    def blob_path(self, key_repr: str, shard: Optional[str] = None) -> pathlib.Path:
        """Entry path for an *opaque* key/shard pair.

        The cache-service half of :meth:`entry_path`: a server stores
        artefacts on behalf of clients whose code fingerprint may differ
        from its own, so the client names the shard explicitly and the
        server never re-derives keys.
        """
        name = hashlib.sha256(key_repr.encode()).hexdigest()
        return self.root / (shard or self.fingerprint[:16]) / f"{name}.pkl"

    def load_blob(
        self, key_repr: str, shard: Optional[str] = None
    ) -> Optional[bytes]:
        """Read one entry's raw blob (integrity-checked, never decoded).

        Returns ``None`` for missing or structurally corrupt entries —
        the same "corruption is a miss" contract as :meth:`load`, minus
        the unpickle (servers treat artefacts as opaque bytes).
        """
        try:
            blob = self.blob_path(key_repr, shard).read_bytes()
        except OSError:
            return None
        if not verify_blob(blob):
            return None
        return blob

    def store_blob(
        self,
        key_repr: str,
        blob: bytes,
        shard: Optional[str] = None,
        manifest: Optional[dict] = None,
    ) -> bool:
        """Persist a raw blob under an opaque key (atomic, single-writer).

        The server-side write path: same lockfile discipline and atomic
        rename as :meth:`store`, but the payload is never unpickled and
        the write is refused outright for a blob that fails
        :func:`verify_blob` — a cache server must not launder corrupt
        artefacts onto a shared root.  Returns ``True`` when the bytes
        landed.
        """
        if not verify_blob(blob):
            return False
        path = self.blob_path(key_repr, shard)
        lock = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            lock = self._acquire_lock(path)
            if lock is None:
                self.lock_skips += 1
                return False
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            if manifest is not None:
                meta = dict(manifest)
                events = meta.pop("events", [])
                run_manifest.write_manifest(
                    path,
                    run_manifest.build_manifest(
                        path,
                        key_repr=key_repr,
                        blob=blob,
                        meta=meta,
                        events=events,
                    ),
                )
            return True
        except Exception:
            return False
        finally:
            if lock is not None:
                try:
                    os.unlink(lock)
                except OSError:
                    pass

    # -- maintenance -----------------------------------------------------

    def _shards(self) -> Iterable[pathlib.Path]:
        if not self.root.is_dir():
            return []
        return [p for p in sorted(self.root.iterdir()) if p.is_dir()]

    def stats(self) -> dict:
        """Entry/byte counts per fingerprint shard plus session counters."""
        shards = []
        total_entries = 0
        total_bytes = 0
        for shard in self._shards():
            files = [p for p in shard.iterdir() if p.suffix == ".pkl"]
            size = sum(p.stat().st_size for p in files)
            shards.append(
                {
                    "fingerprint": shard.name,
                    "current": shard.name == self.fingerprint[:16],
                    "entries": len(files),
                    "bytes": size,
                }
            )
            total_entries += len(files)
            total_bytes += size
        return {
            "root": str(self.root),
            "fingerprint": self.fingerprint[:16],
            "entries": total_entries,
            "bytes": total_bytes,
            "shards": shards,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_lock_skips": self.lock_skips,
        }

    def clear(self, *, all_versions: bool = False) -> int:
        """Delete cached entries; returns the number of files removed.

        By default only the current code-version shard is cleared;
        ``all_versions=True`` removes every shard under the root.
        """
        removed = 0
        for shard in self._shards():
            if not all_versions and shard.name != self.fingerprint[:16]:
                continue
            for path in shard.iterdir():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed


def resolve_cache_dir(
    explicit: "str | os.PathLike[str] | None" = None,
    *,
    default: Optional[str] = None,
) -> Optional[str]:
    """Uniform cache-root resolution: explicit > ``$REPRO_CACHE_DIR`` > *default*.

    Every entry point — CLI flags, :class:`repro.flow.Session`
    construction, the maintenance subcommands — resolves its persistence
    root through this single function, so the precedence can never drift
    between them.
    """
    if explicit:
        return str(explicit)
    env = os.environ.get(CACHE_ENV_VAR, "").strip()
    if env:
        return env
    return default


def disk_cache_from_env() -> Optional[DiskCache]:
    """A :class:`DiskCache` rooted at ``$REPRO_CACHE_DIR``, if set."""
    root = resolve_cache_dir()
    return DiskCache(root) if root else None
