"""Experiment runners regenerating the paper's Tables I, II, and III.

One evaluation pass per benchmark compiles every configuration the three
tables need (the five incremental Table I columns plus the four Table III
write caps), verifies each compiled program against its source MIG, and
caches the results; the per-table views then just select columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.manager import (
    CompilationResult,
    EnduranceConfig,
    PRESETS,
    compile_with_management,
    full_management,
)
from ..core.stats import average_improvement, improvement_percent
from ..mig.graph import Mig
from ..plim.verify import verify_program
from ..synth.registry import BENCHMARK_ORDER, build_benchmark

#: Table I column order (left to right in the paper).
TABLE1_CONFIGS: List[str] = [
    "naive",
    "dac16",
    "min-write",
    "ea-rewrite",
    "ea-full",
]

#: Table III write caps.
TABLE3_CAPS: List[int] = [10, 20, 50, 100]


@dataclass
class BenchmarkEvaluation:
    """All configurations of one benchmark, verified and summarised."""

    name: str
    num_pis: int
    num_pos: int
    gates: int
    results: Dict[str, CompilationResult] = field(default_factory=dict)

    def stats(self, config: str):
        return self.results[config].stats

    def improvement(self, config: str, baseline: str = "naive") -> float:
        """Stdev improvement of *config* over *baseline*, percent."""
        return improvement_percent(
            self.stats(baseline).stdev, self.stats(config).stdev
        )


def evaluate_mig(
    mig: Mig,
    *,
    configs: Optional[Sequence[str]] = None,
    caps: Optional[Sequence[int]] = None,
    effort: int = 5,
    verify: bool = True,
    verify_patterns: int = 64,
) -> BenchmarkEvaluation:
    """Compile *mig* under every requested configuration.

    ``configs`` are preset names (default: the Table I columns);
    ``caps`` adds full-management runs keyed ``"wmax{cap}"`` (Table III).
    With ``verify=True`` every compiled program is co-simulated against
    the MIG — a failed check raises, keeping bogus statistics out of the
    tables.
    """
    evaluation = BenchmarkEvaluation(
        name=mig.name,
        num_pis=mig.num_pis,
        num_pos=mig.num_pos,
        gates=mig.num_live_gates(),
    )
    jobs: List[EnduranceConfig] = []
    for preset in configs if configs is not None else TABLE1_CONFIGS:
        cfg = PRESETS[preset]
        if cfg.effort != effort:
            from dataclasses import replace

            cfg = replace(cfg, effort=effort)
        jobs.append(cfg)
    for cap in caps or []:
        cfg = full_management(cap)
        if cfg.effort != effort:
            from dataclasses import replace

            cfg = replace(cfg, effort=effort)
        jobs.append(cfg)

    for cfg in jobs:
        result = compile_with_management(mig, cfg)
        if verify:
            verify_program(
                result.program, mig, patterns=verify_patterns
            )
        key = cfg.name if not cfg.name.startswith("ea-full+wmax") else (
            "wmax" + cfg.name.split("wmax")[1]
        )
        evaluation.results[key] = result
    return evaluation


def evaluate_benchmark(
    name: str,
    preset: str = "default",
    **kwargs,
) -> BenchmarkEvaluation:
    """Build a registry benchmark and evaluate it."""
    return evaluate_mig(build_benchmark(name, preset), **kwargs)


def evaluate_suite(
    preset: str = "default",
    names: Optional[Iterable[str]] = None,
    **kwargs,
) -> List[BenchmarkEvaluation]:
    """Evaluate a benchmark subset (default: all 18, table order)."""
    selected = list(names) if names is not None else list(BENCHMARK_ORDER)
    return [evaluate_benchmark(n, preset, **kwargs) for n in selected]


# ----------------------------------------------------------------------
# Aggregates (the AVG rows of the paper's tables)
# ----------------------------------------------------------------------

def average_row(
    evaluations: Sequence[BenchmarkEvaluation], config: str
) -> Dict[str, float]:
    """Suite averages for one configuration column."""
    stats = [e.stats(config) for e in evaluations]
    results = [e.results[config] for e in evaluations]
    return {
        "min": sum(s.min_writes for s in stats) / len(stats),
        "max": sum(s.max_writes for s in stats) / len(stats),
        "stdev": sum(s.stdev for s in stats) / len(stats),
        "instructions": sum(r.num_instructions for r in results) / len(results),
        "rrams": sum(r.num_rrams for r in results) / len(results),
        "improvement": average_improvement(
            [e.stats("naive").stdev for e in evaluations],
            [s.stdev for s in stats],
        )
        if all("naive" in e.results for e in evaluations)
        else float("nan"),
    }


def headline_metrics(
    evaluations: Sequence[BenchmarkEvaluation], cap_key: str = "wmax100"
) -> Dict[str, float]:
    """The abstract's three headline numbers.

    At ``W_max = 100`` the paper reports −86.65% average write-stdev,
    −36.45% average instructions, and −13.67% average RRAM devices, all
    relative to the naive compiler.
    """
    usable = [e for e in evaluations if cap_key in e.results]
    stdev_impr = average_improvement(
        [e.stats("naive").stdev for e in usable],
        [e.stats(cap_key).stdev for e in usable],
    )
    instr_impr = 100.0 * (
        1.0
        - sum(e.results[cap_key].num_instructions for e in usable)
        / sum(e.results["naive"].num_instructions for e in usable)
    )
    rram_impr = 100.0 * (
        1.0
        - sum(e.results[cap_key].num_rrams for e in usable)
        / sum(e.results["naive"].num_rrams for e in usable)
    )
    return {
        "stdev_improvement_pct": stdev_impr,
        "instruction_reduction_pct": instr_impr,
        "rram_reduction_pct": rram_impr,
    }
