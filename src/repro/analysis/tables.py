"""Experiment runners regenerating the paper's Tables I, II, and III.

The heavy lifting — building, rewriting, compiling, verifying — lives in
:mod:`repro.analysis.runner` behind the :mod:`repro.flow` Session/Flow
API, which memoizes each stage per session so every (benchmark,
configuration) pair compiles exactly once no matter how many tables ask
for it.  This module keeps the table vocabulary (column orders, write
caps) and the per-table aggregate views; :func:`evaluate_suite` survives
only as a deprecated shim over
:meth:`repro.flow.Session.evaluate_suite`.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.stats import average_improvement
from ..mig.graph import Mig
from .runner import (
    BenchmarkEvaluation,
    ExperimentCache,
    TABLE1_PRESETS,
    evaluate_mig_cached,
    resolve_configs,
)

#: Table I column order (left to right in the paper).
TABLE1_CONFIGS: List[str] = list(TABLE1_PRESETS)

#: Table III write caps.
TABLE3_CAPS: List[int] = [10, 20, 50, 100]

__all__ = [
    "BenchmarkEvaluation",
    "TABLE1_CONFIGS",
    "TABLE3_CAPS",
    "average_row",
    "evaluate_benchmark",
    "evaluate_mig",
    "evaluate_suite",
    "headline_metrics",
]


def evaluate_mig(
    mig: Mig,
    *,
    configs: Optional[Sequence[str]] = None,
    caps: Optional[Sequence[int]] = None,
    effort: int = 5,
    verify: bool = True,
    verify_patterns: int = 64,
    cache: Optional[ExperimentCache] = None,
    session=None,
) -> BenchmarkEvaluation:
    """Compile *mig* under every requested configuration.

    ``configs`` are preset names (default: the Table I columns);
    ``caps`` adds full-management runs keyed ``"wmax{cap}"`` (Table III).
    With ``verify=True`` every compiled program is co-simulated against
    the MIG — a failed check raises, keeping bogus statistics out of the
    tables.  Passing a shared *cache* (or a :class:`repro.flow.Session`,
    whose cache and backend are adopted) deduplicates work across calls.
    """
    jobs = resolve_configs(
        configs if configs is not None else TABLE1_CONFIGS, caps, effort
    )
    if session is not None:
        with session.activated():
            return evaluate_mig_cached(
                mig,
                jobs,
                cache=cache if cache is not None else session.cache,
                verify=verify,
                verify_patterns=verify_patterns,
                arch=session.architecture,
            )
    return evaluate_mig_cached(
        mig,
        jobs,
        cache=cache,
        verify=verify,
        verify_patterns=verify_patterns,
    )


def evaluate_benchmark(
    name: str,
    preset: str = "default",
    *,
    cache: Optional[ExperimentCache] = None,
    session=None,
    **kwargs,
) -> BenchmarkEvaluation:
    """Build a registry benchmark and evaluate it."""
    if cache is None:
        cache = session.cache if session is not None else ExperimentCache()
    return evaluate_mig(
        cache.benchmark_mig(name, preset), cache=cache, session=session,
        **kwargs,
    )


def evaluate_suite(
    preset: str = "default",
    names: Optional[Iterable[str]] = None,
    *,
    configs: Optional[Sequence[str]] = None,
    caps: Optional[Sequence[int]] = None,
    effort: int = 5,
    verify: bool = True,
    verify_patterns: int = 64,
    parallel: Optional[int] = None,
    cache: Optional[ExperimentCache] = None,
) -> List[BenchmarkEvaluation]:
    """Deprecated shim; use :meth:`repro.flow.Session.evaluate_suite`.

    Builds a throwaway session around the legacy arguments (adopting
    *cache* when given) and delegates — results are byte-identical to
    the pre-flow path, which the parity tests assert.
    """
    warnings.warn(
        "evaluate_suite() is deprecated; construct a repro.flow.Session "
        "and call session.evaluate_suite() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..flow import Session  # deferred: flow imports this module's siblings

    session = Session(preset=preset, parallel=parallel, cache=cache)
    return session.evaluate_suite(
        names,
        configs=configs if configs is not None else TABLE1_CONFIGS,
        caps=caps,
        effort=effort,
        verify=verify,
        verify_patterns=verify_patterns,
    )


# ----------------------------------------------------------------------
# Aggregates (the AVG rows of the paper's tables)
# ----------------------------------------------------------------------

def average_row(
    evaluations: Sequence[BenchmarkEvaluation], config: str
) -> Dict[str, float]:
    """Suite averages for one configuration column."""
    stats = [e.stats(config) for e in evaluations]
    results = [e.results[config] for e in evaluations]
    return {
        "min": sum(s.min_writes for s in stats) / len(stats),
        "max": sum(s.max_writes for s in stats) / len(stats),
        "stdev": sum(s.stdev for s in stats) / len(stats),
        "instructions": sum(r.num_instructions for r in results) / len(results),
        "rrams": sum(r.num_rrams for r in results) / len(results),
        "improvement": average_improvement(
            [e.stats("naive").stdev for e in evaluations],
            [s.stdev for s in stats],
        )
        if all("naive" in e.results for e in evaluations)
        else float("nan"),
    }


def headline_metrics(
    evaluations: Sequence[BenchmarkEvaluation], cap_key: str = "wmax100"
) -> Dict[str, float]:
    """The abstract's three headline numbers.

    At ``W_max = 100`` the paper reports −86.65% average write-stdev,
    −36.45% average instructions, and −13.67% average RRAM devices, all
    relative to the naive compiler.
    """
    usable = [e for e in evaluations if cap_key in e.results]
    stdev_impr = average_improvement(
        [e.stats("naive").stdev for e in usable],
        [e.stats(cap_key).stdev for e in usable],
    )
    instr_impr = 100.0 * (
        1.0
        - sum(e.results[cap_key].num_instructions for e in usable)
        / sum(e.results["naive"].num_instructions for e in usable)
    )
    rram_impr = 100.0 * (
        1.0
        - sum(e.results[cap_key].num_rrams for e in usable)
        / sum(e.results["naive"].num_rrams for e in usable)
    )
    return {
        "stdev_improvement_pct": stdev_impr,
        "instruction_reduction_pct": instr_impr,
        "rram_reduction_pct": rram_impr,
    }
