"""Parameter sweeps beyond the paper's evaluation.

The paper evaluates fixed-size benchmarks.  Because our generators are
width-parametric, we can additionally ask how the endurance techniques
*scale*: does the naive compiler's write imbalance grow with circuit
size, and does the managed flow keep it flat?  These sweeps back the
scaling ablation benches and the ``design_space`` example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.manager import (
    EnduranceConfig,
    PRESETS,
    full_management,
)
from ..mig.graph import Mig
from ..plim.memory import TYPICAL_ENDURANCE_LOW, estimate_lifetime
from .runner import ExperimentCache


@dataclass(frozen=True)
class SweepPoint:
    """One (size, configuration) measurement."""

    parameter: int
    config: str
    gates: int
    instructions: int
    rrams: int
    stdev: float
    max_writes: int
    lifetime: int

    @property
    def writes_per_gate(self) -> float:
        """Instruction (= write) overhead per logic node."""
        return self.instructions / self.gates if self.gates else 0.0


def sweep_widths(
    builder: Callable[[int], Mig],
    widths: Sequence[int],
    configs: Optional[Dict[str, EnduranceConfig]] = None,
    endurance: int = TYPICAL_ENDURANCE_LOW,
    cache: Optional[ExperimentCache] = None,
    session=None,
) -> List[SweepPoint]:
    """Compile ``builder(width)`` for every width under every config.

    *builder* maps an integer size parameter to a MIG (any of the
    arithmetic generators fits directly).  Every point runs as a
    :class:`repro.flow.Flow` through one session (pass *session* to
    share its cache/backend; the legacy *cache* argument wraps the cache
    in a throwaway session), so configurations with a common rewriting
    script rewrite each width only once.
    """
    from ..flow import Flow, Session  # deferred: flow imports this package

    if configs is None:
        configs = {
            "naive": PRESETS["naive"],
            "ea-full": PRESETS["ea-full"],
            "wmax20": full_management(20),
        }
    if session is None:
        session = Session(cache=cache)
    points: List[SweepPoint] = []
    for width in widths:
        mig = builder(width)
        gates = mig.num_live_gates()
        for label, config in configs.items():
            result = Flow.for_config(
                config, session=session
            ).source_mig(mig).run().compilation
            stats = result.stats
            life = estimate_lifetime(
                result.program.write_counts(), endurance=endurance
            )
            points.append(
                SweepPoint(
                    parameter=width,
                    config=label,
                    gates=gates,
                    instructions=result.num_instructions,
                    rrams=result.num_rrams,
                    stdev=stats.stdev,
                    max_writes=stats.max_writes,
                    lifetime=life.executions,
                )
            )
    return points


def scaling_exponent(points: Sequence[SweepPoint], field: str) -> float:
    """Crude log-log slope of *field* vs the size parameter.

    Used by the scaling bench to check e.g. that the naive flow's peak
    write count grows super-linearly while the capped flow stays flat
    (slope ~0).  Requires at least two distinct parameters.
    """
    import math

    xs = [p.parameter for p in points]
    ys = [max(1e-9, float(getattr(p, field))) for p in points]
    if len(set(xs)) < 2:
        raise ValueError("need at least two distinct sweep parameters")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    return num / den


def render_sweep(points: Sequence[SweepPoint]) -> str:
    """Fixed-width text table of a sweep result."""
    lines = [
        f"{'param':>6s} {'config':>10s} {'gates':>7s} {'#I':>8s} "
        f"{'#R':>6s} {'stdev':>8s} {'max':>6s} {'lifetime':>12s}"
    ]
    for p in points:
        lines.append(
            f"{p.parameter:6d} {p.config:>10s} {p.gates:7d} "
            f"{p.instructions:8d} {p.rrams:6d} {p.stdev:8.2f} "
            f"{p.max_writes:6d} {p.lifetime:12,d}"
        )
    return "\n".join(lines)


def by_config(
    points: Sequence[SweepPoint], config: str
) -> List[SweepPoint]:
    """Filter a sweep to one configuration, ordered by parameter."""
    return sorted(
        (p for p in points if p.config == config),
        key=lambda p: p.parameter,
    )
