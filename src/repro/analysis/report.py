"""Plain-text rendering of the reproduced tables.

Formats :class:`~repro.analysis.tables.BenchmarkEvaluation` collections
into fixed-width tables laid out like Tables I-III of the paper, with the
same AVG row semantics (column means; the improvement column averages the
per-benchmark percentages).  :func:`full_report` drives the shared
:mod:`~repro.analysis.runner` once and renders every table from that
single evaluation pass.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .runner import ExperimentCache
from .tables import (
    BenchmarkEvaluation,
    TABLE1_CONFIGS,
    TABLE3_CAPS,
    average_row,
    headline_metrics,
)


def _fmt_minmax(stats) -> str:
    return f"{stats.min_writes}/{stats.max_writes}"


def render_table1(evaluations: Sequence[BenchmarkEvaluation]) -> str:
    """Table I: write statistics of the five incremental configurations."""
    header_cfgs = TABLE1_CONFIGS
    lines: List[str] = []
    title = (
        "TABLE I - WRITE TRAFFIC OF THE PROPOSED ENDURANCE MANAGEMENT "
        "TECHNIQUES"
    )
    lines.append(title)
    cols = ["benchmark", "PI/PO"]
    for cfg in header_cfgs:
        cols.append(f"{cfg}:min/max")
        cols.append("STDEV")
        if cfg != "naive":
            cols.append("impr.")
    lines.append(" | ".join(f"{c:>16s}" for c in cols))
    lines.append("-" * len(lines[-1]))
    for ev in evaluations:
        row = [ev.name, f"{ev.num_pis}/{ev.num_pos}"]
        for cfg in header_cfgs:
            stats = ev.stats(cfg)
            row.append(_fmt_minmax(stats))
            row.append(f"{stats.stdev:.2f}")
            if cfg != "naive":
                row.append(f"{ev.improvement(cfg):.2f}%")
        lines.append(" | ".join(f"{c:>16s}" for c in row))
    avg_cells = ["AVG", ""]
    for cfg in header_cfgs:
        avg = average_row(evaluations, cfg)
        avg_cells.append(f"{avg['min']:.2f}/{avg['max']:.2f}")
        avg_cells.append(f"{avg['stdev']:.2f}")
        if cfg != "naive":
            avg_cells.append(f"{avg['improvement']:.2f}%")
    lines.append("-" * len(lines[1]))
    lines.append(" | ".join(f"{c:>16s}" for c in avg_cells))
    return "\n".join(lines)


def render_table2(evaluations: Sequence[BenchmarkEvaluation]) -> str:
    """Table II: #I and #R for naive vs endurance-aware rewriting vs
    endurance-aware rewriting + compilation."""
    lines: List[str] = []
    lines.append(
        "TABLE II - INSTRUCTIONS AND RRAMS OF ENDURANCE-AWARE COMPILATION"
    )
    cfgs = [("naive", "naive"), ("ea-rewrite", "EA rewriting"),
            ("ea-full", "EA rewriting+compilation")]
    header = ["benchmark", "PI/PO"]
    for _, label in cfgs:
        header += [f"{label}:#I", "#R"]
    lines.append(" | ".join(f"{c:>26s}" for c in header[:2]) + " | " +
                 " | ".join(f"{c:>26s}" for c in header[2:]))
    lines.append("-" * 140)
    for ev in evaluations:
        row = [ev.name, f"{ev.num_pis}/{ev.num_pos}"]
        for key, _ in cfgs:
            res = ev.results[key]
            row += [str(res.num_instructions), str(res.num_rrams)]
        lines.append(" | ".join(f"{c:>26s}" for c in row[:2]) + " | " +
                     " | ".join(f"{c:>26s}" for c in row[2:]))
    avg_cells = ["AVG", ""]
    for key, _ in cfgs:
        avg = average_row(evaluations, key)
        avg_cells += [f"{avg['instructions']:.2f}", f"{avg['rrams']:.2f}"]
    lines.append("-" * 140)
    lines.append(" | ".join(f"{c:>26s}" for c in avg_cells[:2]) + " | " +
                 " | ".join(f"{c:>26s}" for c in avg_cells[2:]))
    return "\n".join(lines)


def render_table3(
    evaluations: Sequence[BenchmarkEvaluation],
    caps: Sequence[int] = tuple(TABLE3_CAPS),
) -> str:
    """Table III: full endurance management under write caps."""
    lines: List[str] = []
    lines.append(
        "TABLE III - FULL ENDURANCE MANAGEMENT WITH MAXIMUM WRITE STRATEGY"
    )
    header = ["benchmark", "PI/PO"]
    for cap in caps:
        header += [f"W={cap}:#I", "#R", "STDEV"]
    lines.append(" | ".join(f"{c:>12s}" for c in header))
    lines.append("-" * len(lines[-1]))
    for ev in evaluations:
        row = [ev.name, f"{ev.num_pis}/{ev.num_pos}"]
        for cap in caps:
            key = f"wmax{cap}"
            if key in ev.results:
                res = ev.results[key]
                row += [
                    str(res.num_instructions),
                    str(res.num_rrams),
                    f"{res.stats.stdev:.2f}",
                ]
            else:
                row += ["-", "-", "-"]
        lines.append(" | ".join(f"{c:>12s}" for c in row))
    avg_cells = ["AVG", ""]
    for cap in caps:
        key = f"wmax{cap}"
        usable = [e for e in evaluations if key in e.results]
        if usable:
            avg = average_row(usable, key)
            avg_cells += [
                f"{avg['instructions']:.2f}",
                f"{avg['rrams']:.2f}",
                f"{avg['stdev']:.2f}",
            ]
        else:
            avg_cells += ["-", "-", "-"]
    lines.append("-" * len(lines[1]))
    lines.append(" | ".join(f"{c:>12s}" for c in avg_cells))
    return "\n".join(lines)


def full_report(
    preset: str = "default",
    names: Optional[Iterable[str]] = None,
    *,
    caps: Sequence[int] = tuple(TABLE3_CAPS),
    effort: int = 5,
    verify: bool = True,
    parallel: Optional[int] = None,
    cache: Optional[ExperimentCache] = None,
    session=None,
) -> Dict[str, str]:
    """Regenerate every table and the headline from one runner pass.

    Each (benchmark, configuration) pair compiles exactly once — the
    Table I columns and the Table III caps share one evaluation matrix —
    and the rendered artefacts are returned keyed by table name.  Pass a
    :class:`repro.flow.Session` to reuse its cache/backend/parallelism
    (its preset wins over the *preset* argument); the remaining keyword
    arguments exist for legacy callers and build a throwaway session.
    """
    if session is None:
        from ..flow import Session  # deferred: flow imports this module

        session = Session(preset=preset, parallel=parallel, cache=cache)
    evaluations = session.run_matrix(
        names,
        TABLE1_CONFIGS,
        caps=list(caps),
        effort=effort,
        verify=verify,
    )
    return {
        "table1": render_table1(evaluations),
        "table2": render_table2(evaluations),
        "table3": render_table3(evaluations, caps=caps),
        "headline": render_headline(evaluations),
    }


def render_architecture_sweep(points, title: str = "") -> str:
    """Fixed-width table of an architecture sweep.

    *points* are :class:`~repro.analysis.scenarios.ArchSweepPoint`
    instances; unsupported (architecture, configuration) pairs render as
    dashes with the refusal reason in a footnote, so e.g. the ``dac16``
    machine's missing wear counters show up as a capability gap rather
    than an error.  Lifetime uses each machine's own endurance budget.
    """
    lines: List[str] = []
    lines.append(
        title
        or "ARCHITECTURE SWEEP - ONE SOURCE ACROSS PLIM MACHINE MODELS"
    )
    header = ["arch", "config", "#I", "#R", "min/max", "STDEV", "lifetime"]
    widths = [10, 12, 8, 8, 9, 8, 14]
    lines.append(
        " | ".join(f"{c:>{w}s}" for c, w in zip(header, widths))
    )
    lines.append("-" * len(lines[-1]))
    notes: List[str] = []
    for p in points:
        if not p.supported:
            row = [p.arch, p.config, "-", "-", "-", "-", "-"]
            notes.append(f"  [{len(notes) + 1}] {p.arch}/{p.config}: {p.reason}")
            row[1] += f"[{len(notes)}]"
        else:
            result = p.result.compilation
            stats = result.stats
            counts = result.program.write_counts()
            life = p.result.architecture.estimate_lifetime(counts)
            row = [
                p.arch,
                p.config,
                str(result.num_instructions),
                str(result.num_rrams),
                f"{stats.min_writes}/{stats.max_writes}",
                f"{stats.stdev:.2f}",
                f"{life.executions:,d}",
            ]
        lines.append(
            " | ".join(f"{c:>{w}s}" for c, w in zip(row, widths))
        )
    if notes:
        lines.append("")
        lines.append("unsupported pairs:")
        lines.extend(notes)
    return "\n".join(lines)


def render_optimizer_sweep(points, title: str = "") -> str:
    """Fixed-width table of an optimizer sweep.

    *points* are :class:`~repro.analysis.scenarios.OptSweepPoint`
    instances: per (optimizer, configuration) pair the *measured*
    compilation (#I, #R, write statistics) next to the optimizer's
    compile-free objective estimate of its rewritten graph, so the
    estimate's fidelity is visible in the artefact itself.
    """
    lines: List[str] = []
    lines.append(
        title or "OPTIMIZER SWEEP - ONE SOURCE ACROSS REWRITE STRATEGIES"
    )
    header = [
        "optimizer", "config", "gates", "objective", "#I", "#R",
        "min/max", "STDEV",
    ]
    widths = [22, 12, 7, 9, 8, 7, 9, 8]
    lines.append(" | ".join(f"{c:>{w}s}" for c, w in zip(header, widths)))
    lines.append("-" * len(lines[-1]))
    for p in points:
        result = p.result.compilation
        stats = result.stats
        row = [
            p.opt,
            p.config,
            str(p.result.rewritten.num_live_gates()),
            str(p.objective),
            str(result.num_instructions),
            str(result.num_rrams),
            f"{stats.min_writes}/{stats.max_writes}",
            f"{stats.stdev:.2f}",
        ]
        lines.append(" | ".join(f"{c:>{w}s}" for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_source_sweep(points, title: str = "") -> str:
    """Fixed-width table of a source sweep.

    *points* are :class:`~repro.analysis.scenarios.SourceSweepPoint`
    instances: per (source, configuration) pair the circuit's shape
    (PIs/POs/gates) next to the measured compilation, so registry
    benchmarks, imported netlists, and frontend circuits line up in one
    table.
    """
    lines: List[str] = []
    lines.append(
        title or "SOURCE SWEEP - ONE PIPELINE ACROSS CIRCUIT ORIGINS"
    )
    header = [
        "source", "kind", "config", "PI/PO", "gates", "#I", "#R",
        "min/max", "STDEV",
    ]
    widths = [16, 9, 12, 8, 7, 8, 7, 9, 8]
    lines.append(" | ".join(f"{c:>{w}s}" for c, w in zip(header, widths)))
    lines.append("-" * len(lines[-1]))
    for p in points:
        result = p.result.compilation
        stats = result.stats
        mig = p.result.mig
        row = [
            p.source,
            p.kind,
            p.config,
            f"{mig.num_pis}/{mig.num_pos}",
            str(mig.num_live_gates()),
            str(result.num_instructions),
            str(result.num_rrams),
            f"{stats.min_writes}/{stats.max_writes}",
            f"{stats.stdev:.2f}",
        ]
        lines.append(" | ".join(f"{c:>{w}s}" for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_objective_study(rows, title: str = "") -> str:
    """Fixed-width table of a suite-wide objective study.

    *rows* are :class:`~repro.analysis.scenarios.ObjectiveStudyRow`
    instances; the summary line counts the benchmarks on which the
    cost-guided optimizer strictly beat the fixed script.
    """
    lines: List[str] = []
    lines.append(
        title or "OBJECTIVE STUDY - COST-GUIDED OPTIMIZER VS FIXED SCRIPT"
    )
    header = ["benchmark", "raw", "script", "optimized", "delta", ""]
    widths = [12, 8, 8, 9, 7, 4]
    lines.append(" | ".join(f"{c:>{w}s}" for c, w in zip(header, widths)))
    lines.append("-" * len(lines[-1]))
    improved = 0
    for row in rows:
        improved += 1 if row.improved else 0
        cells = [
            row.benchmark,
            str(row.raw),
            str(row.script),
            str(row.optimized),
            str(row.optimized - row.script),
            "WIN" if row.improved else "",
        ]
        lines.append(" | ".join(f"{c:>{w}s}" for c, w in zip(cells, widths)))
    lines.append("-" * len(lines[1]))
    lines.append(
        f"strictly improved on {improved}/{len(rows)} benchmarks"
    )
    return "\n".join(lines)


def render_headline(evaluations: Sequence[BenchmarkEvaluation]) -> str:
    """The abstract's headline numbers, paper vs measured."""
    metrics = headline_metrics(evaluations)
    lines = [
        "HEADLINE (full management, W_max = 100, vs naive)",
        f"  write-stdev improvement : {metrics['stdev_improvement_pct']:7.2f}%"
        "   (paper: 86.65% avg per-benchmark)",
        f"  instruction reduction   : {metrics['instruction_reduction_pct']:7.2f}%"
        "   (paper: 36.45%)",
        f"  RRAM device reduction   : {metrics['rram_reduction_pct']:7.2f}%"
        "   (paper: 13.67%)",
    ]
    return "\n".join(lines)
