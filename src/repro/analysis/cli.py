"""Command-line interface: ``repro-plim`` / ``python -m repro``.

Subcommands regenerate each experiment of the paper:

* ``table1`` / ``table2`` / ``table3`` — the three evaluation tables;
* ``headline`` — the abstract's aggregate numbers;
* ``fig1`` / ``fig2`` — the motivating write-imbalance scenarios;
* ``bench NAME`` — one benchmark under all configurations;
* ``cache stats`` / ``cache clear`` — the on-disk experiment cache;
* ``list`` — available benchmarks and presets.

Suite commands accept ``--cache-dir`` (or honour ``$REPRO_CACHE_DIR``)
to persist built/compiled artefacts across invocations.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ..core.manager import PRESETS, compile_with_management, full_management
from ..synth.registry import BENCHMARKS, BENCHMARK_ORDER, build_benchmark
from . import report, scenarios, tables
from .diskcache import DEFAULT_ROOT, DiskCache, disk_cache_from_env
from .runner import ExperimentCache


def _add_suite_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        default="default",
        choices=["tiny", "default", "paper"],
        help="benchmark width preset (paper = the paper's sizes)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        metavar="NAME",
        help="subset of benchmarks (default: all 18)",
    )
    parser.add_argument(
        "--effort", type=int, default=5, help="rewriting cycles (paper: 5)"
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip program-vs-MIG co-simulation (faster)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="fan benchmarks out over N worker processes",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "persist built/compiled artefacts under DIR across runs "
            "(default: $REPRO_CACHE_DIR if set, else no persistence)"
        ),
    )


def _session_cache(args) -> Optional[ExperimentCache]:
    """Experiment cache for one CLI invocation, disk-backed on request."""
    if getattr(args, "cache_dir", None):
        return ExperimentCache(disk=DiskCache(args.cache_dir))
    disk = disk_cache_from_env()
    return ExperimentCache(disk=disk) if disk is not None else None


def _suite(args, caps=None):
    return tables.evaluate_suite(
        preset=args.preset,
        names=args.benchmarks,
        caps=caps,
        effort=args.effort,
        verify=not args.no_verify,
        parallel=args.parallel,
        cache=_session_cache(args),
    )


def cmd_table1(args) -> int:
    print(report.render_table1(_suite(args)))
    return 0


def cmd_table2(args) -> int:
    print(report.render_table2(_suite(args)))
    return 0


def cmd_table3(args) -> int:
    evaluations = _suite(args, caps=tables.TABLE3_CAPS)
    print(report.render_table3(evaluations))
    return 0


def cmd_headline(args) -> int:
    evaluations = _suite(args, caps=[100])
    print(report.render_headline(evaluations))
    return 0


def cmd_report(args) -> int:
    artifacts = report.full_report(
        preset=args.preset,
        names=args.benchmarks,
        effort=args.effort,
        verify=not args.no_verify,
        parallel=args.parallel,
        cache=_session_cache(args),
    )
    for name in ("table1", "table2", "table3", "headline"):
        print(artifacts[name])
        print()
    return 0


def cmd_fig1(args) -> int:
    mig = scenarios.fig1_mig()
    print(mig.dump())
    print()
    for name in ("naive", "min-write", "ea-full"):
        result = compile_with_management(mig, PRESETS[name])
        counts = result.program.write_counts()
        print(
            f"{name:10s}: writes per device = {counts} "
            f"(stdev {result.stats.stdev:.2f})"
        )
    return 0


def cmd_fig2(args) -> int:
    mig = scenarios.fig2_mig()
    print(mig.dump())
    print()
    for name in ("dac16", "ea-full"):
        result = compile_with_management(mig, PRESETS[name])
        longest, mean = scenarios.storage_pressure(result.program)
        print(
            f"{name:10s}: longest value lifetime = {longest} instructions, "
            f"mean = {mean:.1f}, stdev of writes = {result.stats.stdev:.2f}"
        )
    return 0


def cmd_bench(args) -> int:
    mig = build_benchmark(args.name, preset=args.preset)
    print(f"{args.name}: {mig.num_pis} PIs, {mig.num_pos} POs, "
          f"{mig.num_live_gates()} gates")
    configs = list(PRESETS.values())
    if args.wmax is not None:
        configs.append(full_management(args.wmax))
    for cfg in configs:
        result = compile_with_management(mig, cfg)
        stats = result.stats
        print(
            f"  {cfg.name:16s} #I={result.num_instructions:8d} "
            f"#R={result.num_rrams:6d} writes {stats.min_writes}/"
            f"{stats.max_writes} stdev {stats.stdev:.2f}"
        )
    return 0


def _cache_for_maintenance(args) -> DiskCache:
    root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_ROOT
    return DiskCache(root)


def cmd_cache_stats(args) -> int:
    stats = _cache_for_maintenance(args).stats()
    print(f"cache root   : {stats['root']}")
    print(f"code version : {stats['fingerprint']}")
    print(f"entries      : {stats['entries']} ({stats['bytes']} bytes)")
    for shard in stats["shards"]:
        marker = " (current)" if shard["current"] else " (stale)"
        print(
            f"  shard {shard['fingerprint']}{marker}: "
            f"{shard['entries']} entries, {shard['bytes']} bytes"
        )
    if not stats["shards"]:
        print("  (empty)")
    return 0


def cmd_cache_clear(args) -> int:
    cache = _cache_for_maintenance(args)
    removed = cache.clear(all_versions=args.all)
    scope = "all code versions" if args.all else "current code version"
    print(f"removed {removed} entries ({scope}) under {cache.root}")
    return 0


def cmd_list(args) -> int:
    print("benchmarks (name: paper PI/PO, category):")
    for name in BENCHMARK_ORDER:
        spec = BENCHMARKS[name]
        print(
            f"  {name:12s} {spec.paper_pi:5d}/{spec.paper_po:<5d} "
            f"{spec.category}"
        )
    print("\nconfigurations:", ", ".join(PRESETS))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-plim",
        description=(
            "Endurance management for resistive logic-in-memory computing "
            "(DATE 2017) - experiment harness"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn, doc in [
        ("table1", cmd_table1, "write-traffic statistics (Table I)"),
        ("table2", cmd_table2, "instructions and RRAMs (Table II)"),
        ("table3", cmd_table3, "write-cap sweep (Table III)"),
        ("headline", cmd_headline, "abstract headline numbers"),
        ("report", cmd_report, "all tables + headline from one cached run"),
    ]:
        p = sub.add_parser(name, help=doc)
        _add_suite_options(p)
        p.set_defaults(func=fn)

    p = sub.add_parser("fig1", help="Fig. 1 repeated-destination scenario")
    p.set_defaults(func=cmd_fig1)
    p = sub.add_parser("fig2", help="Fig. 2 blocked-RRAM scenario")
    p.set_defaults(func=cmd_fig2)

    p = sub.add_parser("bench", help="one benchmark, all configurations")
    p.add_argument("name", choices=BENCHMARK_ORDER)
    p.add_argument("--preset", default="default",
                   choices=["tiny", "default", "paper"])
    p.add_argument("--wmax", type=int, default=None,
                   help="additionally run full management at this cap")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("cache", help="inspect/clear the on-disk experiment cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    pc = cache_sub.add_parser("stats", help="entry/byte counts per code version")
    pc.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="cache root (default: $REPRO_CACHE_DIR or .repro_cache)")
    pc.set_defaults(func=cmd_cache_stats)
    pc = cache_sub.add_parser("clear", help="delete cached artefacts")
    pc.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="cache root (default: $REPRO_CACHE_DIR or .repro_cache)")
    pc.add_argument("--all", action="store_true",
                    help="clear every code-version shard, not just the current one")
    pc.set_defaults(func=cmd_cache_clear)

    p = sub.add_parser("list", help="list benchmarks and configurations")
    p.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
