"""Command-line interface: ``repro-plim`` / ``python -m repro``.

Subcommands regenerate each experiment of the paper:

* ``table1`` / ``table2`` / ``table3`` — the three evaluation tables;
* ``headline`` — the abstract's aggregate numbers;
* ``fig1`` / ``fig2`` — the motivating write-imbalance scenarios;
* ``bench NAME_OR_PATH`` — one circuit under all configurations;
* ``arch list`` — the registered PLiM machine models;
* ``archsweep NAME_OR_PATH`` — one circuit across machine models;
* ``opt list`` — the registered optimizer strategies/objectives/passes;
* ``optsweep NAME_OR_PATH`` — one circuit across rewriting optimizers;
* ``source list`` — the registered circuit sources;
* ``sourcesweep NAME_OR_PATH...`` — one pipeline across sources;
* ``cache stats`` / ``cache clear`` — the on-disk experiment cache
  (``stats --json`` for machine-readable ops scraping; with
  ``--cache-url``/``$REPRO_CACHE_URL`` the stats grow a ``tiers``
  section aggregated from the shared cache server);
* ``cachesvc serve`` / ``cachesvc stats`` — the shared compile-cache
  service (:mod:`repro.cachesvc`): warm in-memory tier plus
  cross-process single-flight over one disk root;
* ``manifest show`` / ``manifest verify`` — the ``run_manifest.json``
  provenance sidecars next to cached experiment results
  (``verify --json`` for machine-readable results);
* ``serve`` — the compilation-as-a-service HTTP front
  (:mod:`repro.serve`);
* ``list`` — available benchmarks and presets.

Wherever a command takes a circuit, it accepts either a registry
benchmark name or a netlist path (``.mig``/``.blif``/``.aag``/
``.aiger``/``.aig``) — imported files run the same cached pipeline,
keyed by content fingerprint.

Every subcommand routes through one :class:`repro.flow.Session` built
from its arguments: ``--backend`` selects the simulation kernel and
``--sim-threads`` (or ``$REPRO_SIM_THREADS``; flag wins) sizes its
worker-thread pool,
``--arch`` (or ``$REPRO_ARCH``; flag wins) targets a machine model,
``--opt`` (or ``$REPRO_OPT``; flag wins) selects the rewriting
optimizer, ``--cache-dir`` (or ``$REPRO_CACHE_DIR``; flag wins)
persists artefacts across invocations, ``--parallel`` fans benchmarks
out over worker processes, and ``--preset`` picks the benchmark widths.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..arch import (
    DEFAULT_ARCHITECTURE,
    available_architectures,
    get_architecture,
)
from ..core.manager import PRESETS, full_management
from ..opt import (
    DEFAULT_OPTIMIZER,
    available_objectives,
    available_passes,
    available_strategies,
    get_objective,
    get_pass,
    get_strategy,
)
from ..cachesvc import DEFAULT_PORT as CACHESVC_DEFAULT_PORT
from ..cachesvc import resolve_cache_url
from ..flow import Flow, Session, resolve_cache_dir
from ..resilience import iter_manifests, verify_manifest
from ..source import available_sources, get_source, resolve_source
from ..synth.registry import BENCHMARKS, BENCHMARK_ORDER
from . import report, scenarios
from .diskcache import DEFAULT_ROOT, DiskCache


def _add_suite_options(parser: argparse.ArgumentParser) -> None:
    """Session knobs plus the suite-shape options shared by the tables."""
    Session.add_arguments(parser)
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        metavar="NAME_OR_PATH",
        help=(
            "subset of benchmarks, or netlist paths (.mig/.blif/.aag) "
            "(default: all 18)"
        ),
    )
    parser.add_argument(
        "--effort", type=int, default=5, help="rewriting cycles (paper: 5)"
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip program-vs-MIG co-simulation (faster)",
    )


def _suite(args, caps=None):
    session = Session.from_args(args)
    return session.evaluate_suite(
        args.benchmarks,
        caps=caps,
        effort=args.effort,
        verify=not args.no_verify,
    )


def cmd_table1(args) -> int:
    print(report.render_table1(_suite(args)))
    return 0


def cmd_table2(args) -> int:
    print(report.render_table2(_suite(args)))
    return 0


def cmd_table3(args) -> int:
    evaluations = _suite(args, caps=report.TABLE3_CAPS)
    print(report.render_table3(evaluations))
    return 0


def cmd_headline(args) -> int:
    evaluations = _suite(args, caps=[100])
    print(report.render_headline(evaluations))
    return 0


def cmd_report(args) -> int:
    session = Session.from_args(args)
    artifacts = session.full_report(
        args.benchmarks,
        effort=args.effort,
        verify=not args.no_verify,
    )
    for name in ("table1", "table2", "table3", "headline"):
        print(artifacts[name])
        print()
    return 0


def cmd_fig1(args) -> int:
    session = Session.from_args(args)
    mig = scenarios.fig1_mig()
    print(mig.dump())
    print()
    for name, flow_result in scenarios.evaluate_scenarios(
        mig, ("naive", "min-write", "ea-full"), session=session
    ):
        counts = flow_result.program.write_counts()
        print(
            f"{name:10s}: writes per device = {counts} "
            f"(stdev {flow_result.stats.stdev:.2f})"
        )
    return 0


def cmd_fig2(args) -> int:
    session = Session.from_args(args)
    mig = scenarios.fig2_mig()
    print(mig.dump())
    print()
    for name, flow_result in scenarios.evaluate_scenarios(
        mig, ("dac16", "ea-full"), session=session
    ):
        longest, mean = scenarios.storage_pressure(flow_result.program)
        print(
            f"{name:10s}: longest value lifetime = {longest} instructions, "
            f"mean = {mean:.1f}, stdev of writes = {flow_result.stats.stdev:.2f}"
        )
    return 0


def _cli_source(args, session):
    """Positional NAME_OR_PATH > ``--source`` > ``$REPRO_SOURCE``."""
    name = getattr(args, "name", None)
    if name is not None:
        return resolve_source(name)
    return session.default_source


def cmd_bench(args) -> int:
    session = Session.from_args(args)
    source = _cli_source(args, session)
    if source is None:
        print(
            "bench: no source given; pass NAME_OR_PATH, --source, or "
            "set $REPRO_SOURCE",
            file=sys.stderr,
        )
        return 2
    with session.activated():
        mig = session.cache.source_mig(source, session.preset)
    print(f"{source.name}: {mig.num_pis} PIs, {mig.num_pos} POs, "
          f"{mig.num_live_gates()} gates")
    configs = list(PRESETS.values())
    if args.wmax is not None:
        configs.append(full_management(args.wmax))
    for cfg in configs:
        result = (
            Flow.for_config(cfg, session=session)
            .source(source)
            .run()
            .compilation
        )
        stats = result.stats
        print(
            f"  {cfg.name:16s} #I={result.num_instructions:8d} "
            f"#R={result.num_rrams:6d} writes {stats.min_writes}/"
            f"{stats.max_writes} stdev {stats.stdev:.2f}"
        )
    return 0


def cmd_arch_list(args) -> int:
    print("PLiM machine models (select with --arch or $REPRO_ARCH):")
    for name in available_architectures():
        arch = get_architecture(name)
        marker = "*" if name == DEFAULT_ARCHITECTURE else " "
        print(f" {marker} {name:12s} {arch.description}")
        geometry = arch.geometry
        shape = (
            "unbounded crossbar"
            if geometry.block_size is None
            else f"word lines of {geometry.block_size}"
        )
        if geometry.capacity is not None:
            shape += f", capacity {geometry.capacity}"
        wear = (
            "wear counters + retirement"
            if arch.endurance.supports_retirement
            else "wear counters"
            if arch.endurance.wear_tracking
            else "no wear counters"
        )
        print(f"   {'':12s} geometry: {shape}; endurance: {wear}")
    print("\n(* = default; register custom machines via "
          "repro.arch.register_architecture)")
    return 0


def cmd_archsweep(args) -> int:
    session = Session.from_args(args)
    points = scenarios.architecture_sweep(
        args.name,
        archs=args.archs,
        configs=args.configs,
        session=session,
        verify=not args.no_verify,
    )
    print(
        report.render_architecture_sweep(
            points,
            title=(
                f"ARCHITECTURE SWEEP - {args.name} "
                f"({session.preset} preset)"
            ),
        )
    )
    return 0


def cmd_source_list(args) -> int:
    print("circuit sources (select with a name/path, --source, or "
          "$REPRO_SOURCE):")
    for name in available_sources():
        source = get_source(name)
        print(f"   {name:14s} [{source.kind}]")
    print("\nnetlist paths (.mig/.blif/.aag) work everywhere a name "
          "does; register custom\nsources via "
          "repro.source.register_source, or compile Python functions "
          "with\n@repro.synth.frontend.mig_function")
    return 0


def cmd_sourcesweep(args) -> int:
    session = Session.from_args(args)
    points = scenarios.source_sweep(
        args.sources,
        configs=args.configs,
        session=session,
        verify=not args.no_verify,
    )
    print(
        report.render_source_sweep(
            points,
            title=(
                f"SOURCE SWEEP - {len(args.sources)} sources "
                f"({session.preset} preset, {session.architecture.name} "
                "machine)"
            ),
        )
    )
    return 0


def cmd_opt_list(args) -> int:
    print("optimizer strategies (select with --opt or $REPRO_OPT, "
          "spec = STRATEGY[:OBJECTIVE][@DEPTH]):")
    for name in available_strategies():
        strategy = get_strategy(name)
        marker = "*" if name == DEFAULT_OPTIMIZER else " "
        lines = (strategy.__doc__ or "").strip().splitlines()
        print(f" {marker} {name:12s} {lines[0] if lines else ''}")
    print("\nobjectives (lower is better; register custom ones via "
          "repro.opt.register_objective):")
    for name in available_objectives():
        objective = get_objective(name)
        arch_note = " [arch-aware]" if objective.arch_sensitive else ""
        print(f"   {name:12s} {objective.description}{arch_note}")
    print("\nrewrite passes (candidates of the search strategies):")
    for name in available_passes():
        rewrite_pass = get_pass(name)
        print(f"   {name:16s} {rewrite_pass.description}")
    print("\n(* = default; the script strategy replays the paper's "
          "fixed pipelines byte-identically)")
    return 0


def cmd_optsweep(args) -> int:
    session = Session.from_args(args)
    points = scenarios.optimizer_sweep(
        args.name,
        opts=args.opts,
        configs=args.configs,
        session=session,
        verify=not args.no_verify,
    )
    print(
        report.render_optimizer_sweep(
            points,
            title=(
                f"OPTIMIZER SWEEP - {args.name} "
                f"({session.preset} preset, {session.architecture.name} "
                "machine)"
            ),
        )
    )
    return 0


def _cache_for_maintenance(args) -> DiskCache:
    """Flag > ``$REPRO_CACHE_DIR`` > default root — maintenance commands
    always need *a* root to inspect, hence the default."""
    return DiskCache(
        resolve_cache_dir(args.cache_dir, default=DEFAULT_ROOT)
    )


def cmd_cache_stats(args) -> int:
    cache = _cache_for_maintenance(args)
    stats = cache.stats()
    url = resolve_cache_url(getattr(args, "cache_url", None))
    server = None
    if url:
        from ..cachesvc import RemoteCache

        server = RemoteCache(url, root=cache.root).server_stats()
        if server is None:
            print(f"warning: cache server {url} unreachable",
                  file=sys.stderr)
        else:
            stats["tiers"] = server.get("tiers", {})
            stats["server"] = server
    if args.json:
        print(json.dumps(stats, indent=2, default=str))
        return 0
    print(f"cache root   : {stats['root']}")
    print(f"code version : {stats['fingerprint']}")
    print(f"entries      : {stats['entries']} ({stats['bytes']} bytes)")
    for shard in stats["shards"]:
        marker = " (current)" if shard["current"] else " (stale)"
        print(
            f"  shard {shard['fingerprint']}{marker}: "
            f"{shard['entries']} entries, {shard['bytes']} bytes"
        )
    if not stats["shards"]:
        print("  (empty)")
    if server is not None:
        tiers = stats.get("tiers", {})
        print(f"server       : {url}")
        print(f"  memory hits         : {tiers.get('memory_hits', 0)}")
        print(f"  disk hits           : {tiers.get('disk_hits', 0)}")
        print("  single-flight waits : "
              f"{tiers.get('single_flight_waits', 0)}")
        print(f"  verify rejects      : {tiers.get('verify_rejects', 0)}")
    return 0


def cmd_cache_clear(args) -> int:
    cache = _cache_for_maintenance(args)
    removed = cache.clear(all_versions=args.all)
    scope = "all code versions" if args.all else "current code version"
    print(f"removed {removed} entries ({scope}) under {cache.root}")
    return 0


def _manifest_shard(args, cache: DiskCache) -> Optional[str]:
    """The fingerprint filter for manifest commands (``--all`` = every
    code-version shard, default = the current one)."""
    return None if args.all else cache.fingerprint


def cmd_manifest_show(args) -> int:
    cache = _cache_for_maintenance(args)
    count = 0
    for path, manifest in iter_manifests(
        cache.root, fingerprint=_manifest_shard(args, cache)
    ):
        count += 1
        artefact = manifest.get("artefact") or {}
        events = manifest.get("events") or []
        kinds = ", ".join(
            sorted({e.get("kind", "?") for e in events})
        ) or "-"
        print(
            f"{manifest.get('benchmark', '?'):12s} "
            f"{manifest.get('config', '?'):16s} "
            f"arch={manifest.get('arch', '?'):12s} "
            f"opt={manifest.get('opt', '?'):8s} "
            f"verified={manifest.get('verified_patterns', 0):<5} "
            f"events=[{kinds}]"
        )
        if args.verbose:
            print(f"    entry : {artefact.get('file')} "
                  f"({artefact.get('bytes')} bytes, "
                  f"sha256 {str(artefact.get('sha256'))[:16]}…)")
            print(f"    shard : {manifest.get('code_fingerprint')}")
            for event in events:
                detail = {
                    k: v for k, v in event.items()
                    if k not in ("kind", "time", "job")
                }
                print(f"    event : {event.get('kind')} {detail}")
    scope = "all code versions" if args.all else "current code version"
    print(f"{count} manifest(s) under {cache.root} ({scope})")
    return 0


def cmd_manifest_verify(args) -> int:
    cache = _cache_for_maintenance(args)
    count = 0
    failures = []
    for path, manifest in iter_manifests(
        cache.root, fingerprint=_manifest_shard(args, cache)
    ):
        count += 1
        problems = verify_manifest(path, manifest or None)
        if problems:
            failures.append((path, problems))
    if args.json:
        print(json.dumps({
            "root": str(cache.root),
            "checked": count,
            "failed": len(failures),
            "failures": [
                {"path": str(path), "problems": problems}
                for path, problems in failures
            ],
        }, indent=2))
        return 1 if failures else 0
    for path, problems in failures:
        print(f"FAIL {path.parent.name}/{path.name}")
        for problem in problems:
            print(f"     {problem}")
    print(f"{count} manifest(s) checked, {len(failures)} failed")
    return 1 if failures else 0


def cmd_serve(args) -> int:
    from ..resilience import resolve_retry
    from ..serve import create_server

    session = Session.from_args(args)
    server = create_server(
        args.host,
        args.port,
        session=session,
        workers=args.workers,
        isolate=not args.no_isolate,
        retry=resolve_retry(args.retries),
        allow_frontend=args.allow_frontend,
        allow_shutdown=args.allow_shutdown,
        verbose=args.verbose,
    )
    host, port = server.server_address[:2]
    mode = "inline threads" if args.no_isolate else "worker processes"
    print(f"repro.serve listening on http://{host}:{port}")
    print(f"  executors : {args.workers} ({mode})")
    print(f"  cache     : {session.cache_dir or 'in-memory only'}")
    print('  submit    : POST /jobs {"source": "adder", "config": "ea-full"}')
    sys.stdout.flush()
    try:
        server.serve_forever()
    finally:
        server.close()
    return 0


def cmd_cachesvc_serve(args) -> int:
    from ..cachesvc import create_cache_server

    server = create_cache_server(
        args.host,
        args.port,
        root=resolve_cache_dir(args.cache_dir, default=DEFAULT_ROOT),
        memory_bytes=args.memory_mb << 20,
        lease_timeout=args.lease_timeout,
        verbose=args.verbose,
    )
    print(f"repro.cachesvc listening on {server.url}")
    print(f"  disk root : {server.disk.root}")
    print(f"  warm tier : {args.memory_mb} MiB in-memory LRU")
    print(f"  leases    : single-flight, {args.lease_timeout:.0f}s TTL")
    print(f"  clients   : --cache-url {server.url}  "
          f"(or export REPRO_CACHE_URL)")
    sys.stdout.flush()
    try:
        server.serve_forever()
    finally:
        server.close()
    return 0


def cmd_cachesvc_stats(args) -> int:
    from ..cachesvc import RemoteCache

    url = resolve_cache_url(args.url)
    if not url:
        print(
            "cachesvc stats: no server; pass --url or set $REPRO_CACHE_URL",
            file=sys.stderr,
        )
        return 2
    payload = RemoteCache(url).server_stats()
    if payload is None:
        print(f"error: cache server {url} unreachable", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
        return 0
    memory = payload.get("memory", {})
    flight = payload.get("single_flight", {})
    tiers = payload.get("tiers", {})
    print(f"cache server : {url}")
    print(f"  disk root  : {payload.get('root')} "
          f"({payload.get('entries')} entries, {payload.get('bytes')} bytes)")
    print(f"  warm tier  : {memory.get('entries')} entries, "
          f"{memory.get('bytes')}/{memory.get('budget_bytes')} bytes, "
          f"{memory.get('evictions')} evictions")
    print(f"  tiers      : {tiers.get('memory_hits', 0)} memory hits, "
          f"{tiers.get('disk_hits', 0)} disk hits, "
          f"{tiers.get('single_flight_waits', 0)} waits, "
          f"{tiers.get('verify_rejects', 0)} verify rejects")
    print(f"  leases     : {flight.get('active_leases', 0)} active, "
          f"{flight.get('leases', 0)} granted, "
          f"{flight.get('served', 0)} served, "
          f"{flight.get('timeouts', 0)} timeouts, "
          f"{flight.get('breaks', 0)} breaks")
    print(f"  duplicates : {payload.get('duplicate_puts', 0)} "
          "duplicate compiles stored")
    return 0


def cmd_list(args) -> int:
    print("benchmarks (name: paper PI/PO, category):")
    for name in BENCHMARK_ORDER:
        spec = BENCHMARKS[name]
        print(
            f"  {name:12s} {spec.paper_pi:5d}/{spec.paper_po:<5d} "
            f"{spec.category}"
        )
    print("\nconfigurations:", ", ".join(PRESETS))
    print("architectures :", ", ".join(available_architectures()))
    print("optimizers    :", ", ".join(available_strategies()),
          "(see 'repro opt list')")
    print("sources       : registry names above, or netlist paths "
          "(.mig/.blif/.aag; see 'repro source list')")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-plim",
        description=(
            "Endurance management for resistive logic-in-memory computing "
            "(DATE 2017) - experiment harness"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn, doc in [
        ("table1", cmd_table1, "write-traffic statistics (Table I)"),
        ("table2", cmd_table2, "instructions and RRAMs (Table II)"),
        ("table3", cmd_table3, "write-cap sweep (Table III)"),
        ("headline", cmd_headline, "abstract headline numbers"),
        ("report", cmd_report, "all tables + headline from one cached run"),
    ]:
        p = sub.add_parser(name, help=doc)
        _add_suite_options(p)
        p.set_defaults(func=fn)

    p = sub.add_parser("fig1", help="Fig. 1 repeated-destination scenario")
    Session.add_arguments(p, preset=False, parallel=False, cache=False)
    p.set_defaults(func=cmd_fig1)
    p = sub.add_parser("fig2", help="Fig. 2 blocked-RRAM scenario")
    Session.add_arguments(p, preset=False, parallel=False, cache=False)
    p.set_defaults(func=cmd_fig2)

    p = sub.add_parser("bench", help="one circuit, all configurations")
    p.add_argument(
        "name",
        nargs="?",
        default=None,
        metavar="NAME_OR_PATH",
        help=(
            "registry benchmark or netlist path (.mig/.blif/.aag); "
            "default: --source / $REPRO_SOURCE"
        ),
    )
    Session.add_arguments(p, parallel=False, source=True)
    p.add_argument("--wmax", type=int, default=None,
                   help="additionally run full management at this cap")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("source", help="inspect the circuit-source registry")
    source_sub = p.add_subparsers(dest="source_command", required=True)
    ps = source_sub.add_parser("list", help="registered sources")
    ps.set_defaults(func=cmd_source_list)

    p = sub.add_parser(
        "sourcesweep", help="one pipeline across circuit sources"
    )
    p.add_argument(
        "sources",
        nargs="+",
        metavar="NAME_OR_PATH",
        help="sources to sweep (registry names and/or netlist paths)",
    )
    Session.add_arguments(p, parallel=False)
    p.add_argument(
        "--configs",
        nargs="*",
        default=["naive", "ea-full"],
        metavar="CONFIG",
        help="endurance configurations per source",
    )
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip program-vs-MIG co-simulation (faster)",
    )
    p.set_defaults(func=cmd_sourcesweep)

    p = sub.add_parser("arch", help="inspect the PLiM machine-model registry")
    arch_sub = p.add_subparsers(dest="arch_command", required=True)
    pa = arch_sub.add_parser("list", help="registered architectures")
    pa.set_defaults(func=cmd_arch_list)

    p = sub.add_parser(
        "archsweep", help="one circuit across PLiM machine models"
    )
    p.add_argument("name", metavar="NAME_OR_PATH")
    # The architecture dimension is swept, so no --arch session knob here.
    Session.add_arguments(p, parallel=False, arch=False)
    p.add_argument(
        "--archs",
        nargs="*",
        default=None,
        choices=available_architectures(),
        metavar="ARCH",
        help="architectures to sweep (default: all registered)",
    )
    p.add_argument(
        "--configs",
        nargs="*",
        default=["naive", "ea-full"],
        metavar="CONFIG",
        help="endurance configurations per architecture",
    )
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip program-vs-MIG co-simulation (faster)",
    )
    p.set_defaults(func=cmd_archsweep)

    p = sub.add_parser(
        "opt", help="inspect the rewriting-optimizer registries"
    )
    opt_sub = p.add_subparsers(dest="opt_command", required=True)
    po = opt_sub.add_parser(
        "list", help="registered strategies, objectives, and passes"
    )
    po.set_defaults(func=cmd_opt_list)

    p = sub.add_parser(
        "optsweep", help="one circuit across rewriting optimizers"
    )
    p.add_argument("name", metavar="NAME_OR_PATH")
    # The optimizer dimension is swept, so no --opt session knob here.
    Session.add_arguments(p, parallel=False, opt=False)
    p.add_argument(
        "--opts",
        nargs="*",
        default=["script", "greedy", "budget"],
        metavar="SPEC",
        help=(
            "optimizer specs to sweep, STRATEGY[:OBJECTIVE][@DEPTH] "
            "(default: script greedy budget)"
        ),
    )
    p.add_argument(
        "--configs",
        nargs="*",
        default=["ea-full"],
        metavar="CONFIG",
        help="endurance configurations per optimizer",
    )
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip program-vs-MIG co-simulation (faster)",
    )
    p.set_defaults(func=cmd_optsweep)

    p = sub.add_parser("cache", help="inspect/clear the on-disk experiment cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    pc = cache_sub.add_parser("stats", help="entry/byte counts per code version")
    pc.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="cache root (default: $REPRO_CACHE_DIR or .repro_cache)")
    pc.add_argument("--cache-url", default=None, metavar="URL",
                    help=(
                        "also aggregate tier counters from a shared cache "
                        "server (default: $REPRO_CACHE_URL if set)"
                    ))
    pc.add_argument("--json", action="store_true",
                    help="machine-readable output (the /stats disk payload)")
    pc.set_defaults(func=cmd_cache_stats)
    pc = cache_sub.add_parser("clear", help="delete cached artefacts")
    pc.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="cache root (default: $REPRO_CACHE_DIR or .repro_cache)")
    pc.add_argument("--all", action="store_true",
                    help="clear every code-version shard, not just the current one")
    pc.set_defaults(func=cmd_cache_clear)

    p = sub.add_parser(
        "cachesvc",
        help="shared compile-cache service (repro.cachesvc)",
    )
    svc_sub = p.add_subparsers(dest="cachesvc_command", required=True)
    pv = svc_sub.add_parser(
        "serve",
        help="run the cache-manager daemon over one disk root",
    )
    pv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default: loopback only)")
    pv.add_argument("--port", type=int, default=CACHESVC_DEFAULT_PORT,
                    help=f"TCP port (0 = ephemeral; default: "
                         f"{CACHESVC_DEFAULT_PORT})")
    pv.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="disk-cache root to serve (default: "
                         "$REPRO_CACHE_DIR or .repro_cache)")
    pv.add_argument("--memory-mb", type=int, default=256, metavar="MB",
                    help="warm in-memory tier budget (default: 256 MiB)")
    pv.add_argument("--lease-timeout", type=float, default=600.0,
                    metavar="S",
                    help="single-flight lease TTL in seconds "
                         "(default: 600)")
    pv.add_argument("-v", "--verbose", action="store_true",
                    help="log every request to stderr")
    pv.set_defaults(func=cmd_cachesvc_serve)
    pv = svc_sub.add_parser("stats", help="query a running server's /stats")
    pv.add_argument("--url", default=None, metavar="URL",
                    help="server URL (default: $REPRO_CACHE_URL)")
    pv.add_argument("--json", action="store_true",
                    help="machine-readable output (the raw /stats payload)")
    pv.set_defaults(func=cmd_cachesvc_stats)

    p = sub.add_parser(
        "manifest",
        help="inspect/verify run_manifest.json provenance sidecars",
    )
    manifest_sub = p.add_subparsers(dest="manifest_command", required=True)
    for name, fn, doc in [
        ("show", cmd_manifest_show,
         "list persisted experiment manifests and their event logs"),
        ("verify", cmd_manifest_verify,
         "re-derive every checkable claim (digests, addressing, shard)"),
    ]:
        pm = manifest_sub.add_parser(name, help=doc)
        pm.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="cache root (default: $REPRO_CACHE_DIR or .repro_cache)",
        )
        pm.add_argument(
            "--all", action="store_true",
            help="include every code-version shard, not just the current one",
        )
        if name == "show":
            pm.add_argument(
                "-v", "--verbose", action="store_true",
                help="also print artefact digests and full event details",
            )
        else:
            pm.add_argument(
                "--json", action="store_true",
                help="machine-readable verification report",
            )
        pm.set_defaults(func=fn)

    p = sub.add_parser(
        "serve",
        help="compilation-as-a-service HTTP front (repro.serve)",
    )
    Session.add_arguments(p, parallel=False)
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: loopback only)")
    p.add_argument("--port", type=int, default=8321,
                   help="TCP port (0 = ephemeral; default: 8321)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="job executors (default: 2)")
    p.add_argument(
        "--no-isolate", action="store_true",
        help=(
            "run jobs inline on executor threads instead of supervised "
            "worker processes (faster startup, no crash isolation)"
        ),
    )
    p.add_argument(
        "--retries", default=None, metavar="N",
        help="retry attempt budget per job (default: $REPRO_RETRIES or 3)",
    )
    p.add_argument(
        "--allow-frontend", action="store_true",
        help=(
            "accept inline Python @mig_function sources "
            "(executes submitted code; loopback-trusted clients only)"
        ),
    )
    p.add_argument(
        "--allow-shutdown", action="store_true",
        help="enable POST /shutdown for clean remote stops",
    )
    p.add_argument("-v", "--verbose", action="store_true",
                   help="log every request to stderr")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("list", help="list benchmarks and configurations")
    p.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Ctrl-C is a request, not a crash: worker pools and cache locks
        # are already released on the way up (the supervisor terminates
        # its pool, DiskCache.store unlinks its lock in a finally), so
        # exit with the conventional 130 and no traceback.
        print("interrupted", file=sys.stderr)
        return 130
    except (ValueError, OSError) as error:
        # Bad source names/paths, unparsable netlists, unknown presets:
        # user input, not harness bugs — render without a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
