"""The thin client side of :mod:`repro.cachesvc`.

:class:`RemoteCache` duck-types :class:`~repro.analysis.diskcache.DiskCache`
— ``load`` / ``store`` / ``entry_path`` / ``stats`` plus the session
counters — so :class:`~repro.analysis.runner.ExperimentCache` and every
layer above it (sessions, flows, ``run_matrix`` workers, ``repro
serve``) switch to a shared cache server by construction alone:
``Session(cache_url=...)`` / ``--cache-url`` / ``$REPRO_CACHE_URL``.

Two things distinguish it from the disk handle it replaces:

* :meth:`RemoteCache.flight` — the cross-process single-flight window.
  Compute paths open it around a miss: the first process gets a lease
  and compiles, every other process blocks on the server and receives
  the stored payload instead of recompiling.  On a plain
  :class:`DiskCache` the same call sites get a no-op window and fall
  back to the per-entry lockfile dance.
* **degradation**: a connection failure (or an injected ``cache_io``
  fault — the hook fires in every request) marks the server down for
  :attr:`retry_seconds` and degrades to the local fallback root (when
  one is configured) or to plain misses — the experiment never depends
  on the cache service being alive.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import urllib.error
import urllib.request
from contextlib import contextmanager
from typing import Dict, Optional, Tuple
from urllib.parse import urlencode

from ..analysis.diskcache import (
    DEFAULT_ROOT,
    DiskCache,
    _key_job,
    blob_digest,
    code_fingerprint,
    decode_entry,
    encode_entry,
)
from ..resilience import events as res_events
from ..resilience import faults as res_faults

#: Environment variable selecting a shared cache server.
CACHE_URL_ENV_VAR = "REPRO_CACHE_URL"


def resolve_cache_url(
    explicit: Optional[str] = None,
    *,
    default: Optional[str] = None,
) -> Optional[str]:
    """Uniform cache-server resolution: explicit > ``$REPRO_CACHE_URL`` >
    *default* — the same precedence contract as
    :func:`~repro.analysis.diskcache.resolve_cache_dir`."""
    if explicit:
        return str(explicit)
    env = os.environ.get(CACHE_URL_ENV_VAR, "").strip()
    if env:
        return env
    return default


class RemoteCache:
    """A DiskCache-shaped handle onto a running :class:`CacheServer`.

    *root* names a local directory used two ways: as the degradation
    fallback when the server is unreachable, and for
    :meth:`entry_path` (manifest annotation needs a filesystem path).
    With the server and its clients sharing one filesystem — the
    ``run_matrix`` and CI shapes — point *root* at the server's root
    and a server outage degrades to exactly the old lockfile behaviour.
    """

    def __init__(
        self,
        url: str,
        *,
        root: "str | os.PathLike[str] | None" = None,
        fingerprint: Optional[str] = None,
        timeout: float = 10.0,
        flight_wait: float = 600.0,
        retry_seconds: float = 30.0,
    ) -> None:
        self.url = str(url).rstrip("/")
        self.fingerprint = fingerprint or code_fingerprint()
        self.shard = self.fingerprint[:16]
        self.root = pathlib.Path(root) if root else None
        self._fallback = (
            DiskCache(self.root, fingerprint=self.fingerprint)
            if self.root is not None
            else None
        )
        # entry_path must always resolve (manifest annotation), even
        # without a fallback root — then it points at the conventional
        # default root, where append-events simply no-ops.
        self._pathing = self._fallback or DiskCache(
            DEFAULT_ROOT, fingerprint=self.fingerprint
        )
        self.timeout = float(timeout)
        self.flight_wait = float(flight_wait)
        self.retry_seconds = float(retry_seconds)
        self._down_until = 0.0
        self._hits = 0
        self._misses = 0
        # Remote tier counters (see tier_counters).
        self.memory_tier_hits = 0
        self.disk_tier_hits = 0
        self.flight_waits = 0
        self.fallbacks = 0
        # Lease tokens held by open flight windows, keyed by key repr.
        self._lease_tokens: Dict[str, str] = {}

    # -- DiskCache-compatible counters ---------------------------------

    @property
    def hits(self) -> int:
        fallback = self._fallback.hits if self._fallback is not None else 0
        return self._hits + fallback

    @property
    def misses(self) -> int:
        fallback = self._fallback.misses if self._fallback is not None else 0
        return self._misses + fallback

    @property
    def lock_skips(self) -> int:
        return self._fallback.lock_skips if self._fallback is not None else 0

    def tier_counters(self) -> Dict[str, int]:
        """The remote-tier counters folded into
        :meth:`ExperimentCache.counters` and ``BENCH_suite.json``."""
        return {
            "remote_memory_hits": self.memory_tier_hits,
            "remote_disk_hits": self.disk_tier_hits,
            "remote_waits": self.flight_waits,
            "remote_fallbacks": self.fallbacks,
        }

    # -- transport -----------------------------------------------------

    def _down(self) -> bool:
        return time.monotonic() < self._down_until

    def _mark_down(self, error: BaseException, job: Optional[str]) -> None:
        """Degrade to direct disk access for a cooldown window."""
        self._down_until = time.monotonic() + self.retry_seconds
        self.fallbacks += 1
        res_events.record(
            "cache_fallback", job=job, url=self.url, error=repr(error)
        )

    def _request(
        self,
        method: str,
        path: str,
        *,
        query: Optional[dict] = None,
        body: Optional[bytes] = None,
        timeout: Optional[float] = None,
        job: Optional[str] = None,
    ) -> Tuple[int, bytes, Dict[str, str]]:
        """One HTTP round-trip: ``(status, body, headers)``.

        Raises ``OSError`` on connection-level failure (the caller
        degrades); HTTP error statuses are returned, not raised.  The
        ``cache_io`` chaos hook fires here — in the *client*, before the
        socket — so injected faults exercise exactly the degradation
        path a dead server would.
        """
        res_faults.remote_io_fault(job)
        url = self.url + path
        if query:
            url += "?" + urlencode(query)
        request = urllib.request.Request(url, data=body, method=method)
        if body is not None:
            request.add_header("Content-Type", "application/octet-stream")
        try:
            with urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            ) as response:
                return (
                    response.status,
                    response.read(),
                    dict(response.headers.items()),
                )
        except urllib.error.HTTPError as error:
            with error:
                return error.code, error.read(), dict(error.headers.items())

    # -- read/write ----------------------------------------------------

    def load(self, key: Tuple):
        """Return the stored payload for *key*, or ``None``.

        Server-side corruption, a tampered response, and a key mismatch
        all decode to ``None`` — the client re-derives the entry digest
        and key, so a bad server can only ever produce a miss.
        """
        key_repr = repr(key)
        job = _key_job(key)
        if not self._down():
            try:
                status, data, headers = self._request(
                    "GET",
                    "/entry",
                    query={"key": key_repr, "shard": self.shard},
                    job=job,
                )
            except OSError as error:
                self._mark_down(error, job)
            else:
                if status == 200:
                    payload = decode_entry(data, key_repr)
                    if payload is None:
                        self._misses += 1
                        return None
                    self._hits += 1
                    if headers.get("X-Repro-Tier") == "memory":
                        self.memory_tier_hits += 1
                    else:
                        self.disk_tier_hits += 1
                    return payload
                self._misses += 1
                return None
        if self._fallback is not None:
            return self._fallback.load(key)
        self._misses += 1
        return None

    def store(self, key: Tuple, payload, *, replace=None, manifest=None) -> None:
        """Persist *payload* under *key* through the server (best-effort).

        The *replace* predicate is evaluated client-side against the
        server's current entry — a benign race (the server's writes are
        last-writer-wins under its own entry lock, and racing writers
        of the same key produce identical artefacts; certificate
        upgrades re-put deliberately with ``mode="upgrade"``).
        """
        key_repr = repr(key)
        job = _key_job(key)
        if self._down():
            if self._fallback is not None:
                self._fallback.store(
                    key, payload, replace=replace, manifest=manifest
                )
            return
        try:
            mode = "store"
            if replace is not None:
                status, data, _headers = self._request(
                    "GET",
                    "/entry",
                    query={"key": key_repr, "shard": self.shard},
                    job=job,
                )
                if status == 200:
                    current = decode_entry(data, key_repr)
                    if current is not None and not replace(current):
                        return
                    mode = "upgrade"
            blob = encode_entry(key_repr, payload)
            envelope = {
                "key": key_repr,
                "shard": self.shard,
                "sha256": blob_digest(blob),
                "mode": mode,
                "lease": self._lease_tokens.get(key_repr),
                "manifest": manifest,
            }
            body = (
                json.dumps(envelope, default=str).encode("utf-8")
                + b"\n"
                + blob
            )
            self._request("PUT", "/entry", body=body, job=job)
        except OSError as error:
            self._mark_down(error, job)
            if self._fallback is not None:
                self._fallback.store(
                    key, payload, replace=replace, manifest=manifest
                )
        except Exception:
            # Unpicklable payloads and envelope failures degrade to
            # "not persisted", mirroring DiskCache.store.
            pass

    def contains(self, key: Tuple) -> bool:
        """Whether the server (or the fallback root) holds *key*."""
        key_repr = repr(key)
        job = _key_job(key)
        if not self._down():
            try:
                status, _data, _headers = self._request(
                    "GET",
                    "/entry",
                    query={
                        "key": key_repr, "shard": self.shard, "probe": "1",
                    },
                    job=job,
                )
                return status == 204
            except OSError as error:
                self._mark_down(error, job)
        if self._fallback is not None:
            return self._fallback.load_blob(key_repr) is not None
        return False

    # -- single-flight -------------------------------------------------

    @contextmanager
    def flight(self, key: Tuple):
        """The cross-process single-flight window around one compute.

        Yields the payload another process stored while we would have
        been computing (the caller adopts it and skips the work), or
        ``None`` — meaning *we* hold the lease (or the server is
        unreachable / the wait timed out) and must compute + store.
        Leaving the window releases an unresolved lease, so a failed
        compute hands the key to the next waiter instead of wedging it
        until the TTL.
        """
        key_repr = repr(key)
        job = _key_job(key)
        if self._down():
            yield None
            return
        token: Optional[str] = None
        resolved = None
        try:
            status, data, headers = self._request(
                "GET",
                "/entry",
                query={
                    "key": key_repr,
                    "shard": self.shard,
                    "flight": "1",
                    "wait": str(self.flight_wait),
                    "pid": str(os.getpid()),
                },
                timeout=self.flight_wait + 30.0,
                job=job,
            )
            if status == 200:
                resolved = decode_entry(data, key_repr)
                if resolved is not None:
                    self._hits += 1
                    self.flight_waits += 1
                    if headers.get("X-Repro-Tier") == "memory":
                        self.memory_tier_hits += 1
                    else:
                        self.disk_tier_hits += 1
            elif status == 404 and data:
                try:
                    answer = json.loads(data.decode("utf-8"))
                except ValueError:
                    answer = {}
                token = answer.get("lease")
                if token:
                    self._lease_tokens[key_repr] = token
        except OSError as error:
            self._mark_down(error, job)
            yield None
            return
        try:
            yield resolved
        finally:
            if token is not None:
                self._lease_tokens.pop(key_repr, None)
                try:
                    self._request(
                        "POST",
                        "/lease/release",
                        body=json.dumps(
                            {
                                "key": key_repr,
                                "shard": self.shard,
                                "token": token,
                            }
                        ).encode("utf-8"),
                        job=job,
                    )
                except OSError as error:
                    self._mark_down(error, job)

    # -- DiskCache-compatible surface ----------------------------------

    def entry_path(self, key: Tuple) -> pathlib.Path:
        """Where *key* lives on the shared filesystem, when there is one.

        Meaningful when the client and server share a root (the
        ``run_matrix``/CI shape); otherwise a conventional local path
        whose manifest operations harmlessly no-op.
        """
        return self._pathing.entry_path(key)

    def stats(self) -> dict:
        """DiskCache-shaped stats plus the server's ``/stats`` payload."""
        base = {
            "url": self.url,
            "fingerprint": self.shard,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_lock_skips": self.lock_skips,
            **self.tier_counters(),
        }
        server = self.server_stats()
        if server is not None:
            base["root"] = server.get("root")
            base["entries"] = server.get("entries")
            base["server"] = server
        elif self._fallback is not None:
            base.update(self._fallback.stats())
        return base

    def server_stats(self) -> Optional[dict]:
        """The raw server ``/stats`` payload, or ``None`` when down."""
        if self._down():
            return None
        try:
            status, data, _headers = self._request("GET", "/stats")
            if status != 200:
                return None
            return json.loads(data.decode("utf-8"))
        except (OSError, ValueError) as error:
            self._mark_down(error, None)
            return None
