"""``repro.cachesvc``: the shared compile-cache service.

One cache-manager daemon (:class:`CacheServer`, stdlib HTTP — start it
with ``repro cachesvc serve``) owns a warm in-memory LRU tier and
cross-process single-flight leases over an existing
:class:`~repro.analysis.diskcache.DiskCache` root; the thin
:class:`RemoteCache` client slots in wherever a ``DiskCache`` went,
selected via ``Session(cache_url=...)`` / ``--cache-url`` /
``$REPRO_CACHE_URL``::

    from repro.cachesvc import create_cache_server
    from repro.flow import Session

    server = create_cache_server(port=0, root=".repro_cache")
    session = Session(cache_url=server.url)
    session.run_matrix(parallel=4)      # zero duplicate compiles
    server.close()

See ``examples/cachefarm.py`` for the full tour.
"""

from .client import CACHE_URL_ENV_VAR, RemoteCache, resolve_cache_url
from .service import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MEMORY_BYTES,
    DEFAULT_PORT,
    CacheServer,
    MemoryTier,
    create_cache_server,
)

__all__ = [
    "CACHE_URL_ENV_VAR",
    "CacheServer",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MEMORY_BYTES",
    "DEFAULT_PORT",
    "MemoryTier",
    "RemoteCache",
    "create_cache_server",
    "resolve_cache_url",
]
