"""The cache-manager daemon: one warm tier + single-flight over a root.

``repro cachesvc serve`` owns a shared cache root on behalf of every
worker that used to coordinate through per-entry lockfiles —
``run_matrix(parallel=N)`` pools, ``repro serve`` executors, and
separate CLI invocations.  Three things live here that the lockfile
dance could never provide:

* a **warm in-memory tier** (:class:`MemoryTier`): a byte-budgeted LRU
  of verified artefact blobs keyed by the existing content-addressed
  entry keys, so concurrent workers stop re-reading and re-verifying
  warm artefacts from disk;
* **cross-process single-flight**: the first requester of a missing key
  is granted a *lease* and compiles; every concurrent requester blocks
  on the server (no polling, no lockfiles) and receives the stored
  artefact the moment the holder puts it.  A lease whose holder died
  (PID probe for same-host clients, TTL for everything else) is broken
  and handed to a waiter — zero duplicate compiles, no wedged keys;
* **put verification**: every stored artefact's SHA-256 is re-derived
  before it is admitted to either tier, so a tampered or torn upload
  can never be laundered to other tenants.

The wire format *is* the disk format (see
:func:`repro.analysis.diskcache.encode_entry`): the server treats
artefacts as opaque, integrity-checked bytes and never unpickles them.
Clients name their code-fingerprint shard explicitly, so one server
serves clients of any code version without re-deriving keys.

Protocol (all loopback-trusted, mirroring :mod:`repro.serve`):

========================================  =============================
``GET /healthz``                          liveness probe
``GET /stats``                            tier/lease/verify counters
``GET /entry?key=&shard=``                artefact blob or 404; add
                                          ``probe=1`` for a bodyless
                                          contains check, ``flight=1``
                                          (+ ``wait=S``, ``pid=N``) to
                                          join the single-flight
``PUT /entry``                            JSON envelope line + ``\\n`` +
                                          raw blob; verified, stored,
                                          waiters released
``POST /lease/release``                   abort a lease without storing
                                          (compute failed; waiters race
                                          for a fresh lease)
========================================  =============================
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..analysis.diskcache import (
    DEFAULT_ROOT,
    DiskCache,
    blob_digest,
    verify_blob,
)
from ..resilience.manifest import load_manifest, manifest_path

#: Default warm-tier byte budget (256 MiB holds every artefact of a
#: default-preset suite several times over).
DEFAULT_MEMORY_BYTES = 256 << 20

#: Default lease TTL: a holder that neither stores nor releases within
#: this budget is presumed dead and its lease handed to a waiter.  Wide
#: enough for a paper-preset compile; same-host holder death is caught
#: much earlier by the PID probe.
DEFAULT_LEASE_SECONDS = 600.0

#: Hard cap on how long one flight GET may block its handler thread.
MAX_WAIT_SECONDS = 3600.0

#: Default TCP port (repro.serve's 8321 neighbourhood).
DEFAULT_PORT = 8344


class MemoryTier:
    """Byte-budgeted LRU of verified artefact blobs (thread-safe)."""

    def __init__(self, budget_bytes: int = DEFAULT_MEMORY_BYTES) -> None:
        self.budget = int(budget_bytes)
        self._entries: "OrderedDict[Tuple[str, str], bytes]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, tag: Tuple[str, str]) -> Optional[bytes]:
        with self._lock:
            blob = self._entries.get(tag)
            if blob is None:
                self.misses += 1
                return None
            self._entries.move_to_end(tag)
            self.hits += 1
            return blob

    def contains(self, tag: Tuple[str, str]) -> bool:
        with self._lock:
            return tag in self._entries

    def put(self, tag: Tuple[str, str], blob: bytes) -> bool:
        """Admit *blob*, evicting least-recently-used entries to budget.

        An artefact larger than the whole budget is refused (it would
        evict everything and then be evicted itself by the next put).
        """
        size = len(blob)
        if size > self.budget:
            return False
        with self._lock:
            old = self._entries.pop(tag, None)
            if old is not None:
                self._bytes -= len(old)
            self._entries[tag] = blob
            self._bytes += size
            while self._bytes > self.budget and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self.evictions += 1
            return True

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "budget_bytes": self.budget,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


@dataclass
class Lease:
    """One in-flight compile: who is computing a missing key."""

    token: str
    pid: Optional[int] = None
    deadline: float = 0.0
    granted_at: float = field(default_factory=time.time)

    def dead(self) -> bool:
        """Holder presumed gone: TTL expired, or same-host PID vanished."""
        if time.monotonic() >= self.deadline:
            return True
        if self.pid is not None:
            try:
                os.kill(self.pid, 0)
            except ProcessLookupError:
                return True
            except OSError:
                pass  # e.g. EPERM: alive, just not ours
        return False


#: The /stats counters, fixed so scrapers can rely on the key set.
COUNTER_KEYS = (
    "gets",
    "puts",
    "misses",
    "disk_hits",
    "leases",
    "flight_waits",
    "flight_served",
    "flight_timeouts",
    "lease_breaks",
    "duplicate_puts",
    "verify_rejects",
)


class CacheServer(ThreadingHTTPServer):
    """HTTP threads over one warm tier, one disk root, one lease table."""

    daemon_threads = True

    def __init__(
        self,
        address,
        *,
        root: str = DEFAULT_ROOT,
        memory_bytes: int = DEFAULT_MEMORY_BYTES,
        lease_timeout: float = DEFAULT_LEASE_SECONDS,
        verbose: bool = False,
    ) -> None:
        self.disk = DiskCache(root)
        self.memory = MemoryTier(memory_bytes)
        self.lease_timeout = float(lease_timeout)
        self.verbose = bool(verbose)
        self.started_at = time.time()
        #: Lease table and counters share one condition: a put or a
        #: release notifies every blocked flight GET.
        self._cond = threading.Condition()
        self._leases: Dict[Tuple[str, str], Lease] = {}
        self.counters: Dict[str, int] = {key: 0 for key in COUNTER_KEYS}
        self._serving = False
        super().__init__(address, _Handler)

    # -- plumbing ------------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def request_shutdown(self) -> None:
        """Stop serving, from a handler thread (see ReproServer)."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def close(self) -> None:
        """Release waiters, stop the serve loop, free the socket.

        Idempotent.  Without the ``shutdown()`` a ``serve_forever``
        thread would spin on the closed listening socket forever;
        ``shutdown()`` unguarded would deadlock when nothing is serving
        (it waits on an event only ``serve_forever`` sets).
        """
        with self._cond:
            self._leases.clear()
            self._cond.notify_all()
        if self._serving:
            self.shutdown()
        self.server_close()

    def _count(self, key: str, value: int = 1) -> None:
        with self._cond:
            self.counters[key] += value

    # -- the cache protocol --------------------------------------------

    def fetch(
        self,
        key_repr: str,
        shard: str,
        *,
        flight: bool = False,
        wait: float = 0.0,
        pid: Optional[int] = None,
    ) -> Tuple[str, Optional[bytes], Optional[str]]:
        """Resolve one GET: ``(kind, data, tier)``.

        Kinds: ``"hit"`` (data = blob, tier = ``memory``/``disk``),
        ``"miss"``, ``"lease"`` (data = the granted token — caller
        compiles), ``"timeout"`` (wait exhausted while another holder
        computes — caller compiles leaseless).

        The flight path loops: probe both tiers, then try to take the
        key's lease; a held lease means *someone is compiling* — block
        on the condition until the holder's put (or death) and probe
        again.  Handler threads are cheap (ThreadingHTTPServer), so a
        blocked waiter costs one idle thread, not a polling storm.
        """
        tag = (shard, key_repr)
        self._count("gets")
        deadline = time.monotonic() + min(max(wait, 0.0), MAX_WAIT_SECONDS)
        waited = False
        while True:
            blob = self.memory.get(tag)
            if blob is not None:
                if waited:
                    self._count("flight_served")
                return "hit", blob, "memory"
            blob = self.disk.load_blob(key_repr, shard)
            if blob is not None:
                self.memory.put(tag, blob)
                self._count("disk_hits")
                if waited:
                    self._count("flight_served")
                return "hit", blob, "disk"
            if not flight:
                self._count("misses")
                return "miss", None, None
            with self._cond:
                lease = self._leases.get(tag)
                if lease is not None and lease.dead():
                    del self._leases[tag]
                    self.counters["lease_breaks"] += 1
                    lease = None
                if lease is None:
                    token = uuid.uuid4().hex
                    self._leases[tag] = Lease(
                        token=token,
                        pid=pid,
                        deadline=time.monotonic() + self.lease_timeout,
                    )
                    self.counters["leases"] += 1
                    return "lease", token.encode(), None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.counters["flight_timeouts"] += 1
                    return "timeout", None, None
                if not waited:
                    self.counters["flight_waits"] += 1
                    waited = True
                # Wake on put/release, or poll the holder's health at
                # a coarse interval either way.
                self._cond.wait(timeout=min(0.25, remaining))

    def put(
        self,
        key_repr: str,
        shard: str,
        blob: bytes,
        *,
        sha256: Optional[str] = None,
        manifest: Optional[dict] = None,
        lease: Optional[str] = None,
        mode: str = "store",
    ) -> Tuple[bool, Optional[str]]:
        """Verify, persist, and admit one artefact; release its waiters.

        Returns ``(stored, error)``.  The artefact must carry the
        client's SHA-256 *and* decode structurally
        (:func:`~repro.analysis.diskcache.verify_blob`); anything else
        is refused before touching either tier.  ``mode="upgrade"``
        marks a deliberate overwrite (a verification-certificate
        upgrade) so it never counts as a duplicate compile.
        """
        if sha256 is not None and blob_digest(blob) != sha256:
            self._count("verify_rejects")
            return False, "artefact sha256 mismatch"
        if not verify_blob(blob):
            self._count("verify_rejects")
            return False, "artefact failed structural verification"
        tag = (shard, key_repr)
        existed = self.memory.contains(tag) or self.disk.blob_path(
            key_repr, shard
        ).is_file()
        stored = self.disk.store_blob(key_repr, blob, shard, manifest=manifest)
        self.memory.put(tag, blob)
        with self._cond:
            self.counters["puts"] += 1
            holder = self._leases.pop(tag, None)
            held = holder is not None and lease == holder.token
            if existed and mode == "store" and not held:
                # The artefact was already available (or being served)
                # and a leaseless writer recomputed it anyway — the
                # duplicate-compile count the hammer tests assert on.
                self.counters["duplicate_puts"] += 1
            self._cond.notify_all()
        return stored, None

    def release(self, key_repr: str, shard: str, token: str) -> bool:
        """Abort a lease without storing (the holder's compute failed)."""
        tag = (shard, key_repr)
        with self._cond:
            lease = self._leases.get(tag)
            if lease is None or lease.token != token:
                return False
            del self._leases[tag]
            self._cond.notify_all()
            return True

    def manifest_payload(self, key_repr: str, shard: str) -> Optional[dict]:
        """The entry's ``.manifest.json`` sidecar, if one exists."""
        return load_manifest(
            manifest_path(self.disk.blob_path(key_repr, shard))
        )

    def stats_payload(self) -> dict:
        with self._cond:
            counters = dict(self.counters)
            active = len(self._leases)
        memory = self.memory.stats()
        disk = self.disk.stats()
        return {
            "service": "repro.cachesvc",
            "uptime_seconds": time.time() - self.started_at,
            "root": str(self.disk.root),
            "fingerprint": self.disk.fingerprint[:16],
            "entries": disk["entries"],
            "bytes": disk["bytes"],
            "memory": memory,
            "single_flight": {
                "active_leases": active,
                "leases": counters["leases"],
                "waits": counters["flight_waits"],
                "served": counters["flight_served"],
                "timeouts": counters["flight_timeouts"],
                "breaks": counters["lease_breaks"],
            },
            "tiers": {
                "memory_hits": memory["hits"],
                "disk_hits": counters["disk_hits"],
                "single_flight_waits": counters["flight_waits"],
                "verify_rejects": counters["verify_rejects"],
            },
            **counters,
        }


class _Handler(BaseHTTPRequestHandler):
    """Thin translation layer between HTTP and the server methods."""

    server: "CacheServer"
    protocol_version = "HTTP/1.0"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            sys.stderr.write(
                "repro.cachesvc %s - %s\n"
                % (self.address_string(), format % args)
            )

    # -- responses -----------------------------------------------------

    def _send_json(self, status: int, payload: dict, **headers) -> None:
        body = json.dumps(payload, indent=2, default=str).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in headers.items():
            self.send_header(key.replace("_", "-"), value)
        self.end_headers()
        self.wfile.write(body)

    def _send_blob(self, blob: bytes, **headers) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(blob)))
        for key, value in headers.items():
            self.send_header(key.replace("_", "-"), value)
        self.end_headers()
        self.wfile.write(blob)

    def _send_empty(self, status: int) -> None:
        self.send_response(status)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _read_raw(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    # -- dispatch ------------------------------------------------------

    def _param(self, query, name: str, default: str = "") -> str:
        values = query.get(name)
        return values[0] if values else default

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        url = urlsplit(self.path)
        query = parse_qs(url.query)
        try:
            if url.path == "/healthz":
                self._send_json(
                    200, {"service": "repro.cachesvc", "status": "ok"}
                )
            elif url.path == "/stats":
                self._send_json(200, self.server.stats_payload())
            elif url.path == "/entry":
                self._get_entry(query)
            elif url.path == "/manifest":
                key = self._param(query, "key")
                shard = self._param(
                    query, "shard", self.server.disk.fingerprint[:16]
                )
                manifest = self.server.manifest_payload(key, shard)
                if manifest is None:
                    self._send_json(404, {"error": "no manifest"})
                else:
                    self._send_json(200, manifest)
            else:
                self._send_json(404, {"error": f"no route {url.path!r}"})
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up
        except Exception as error:  # noqa: BLE001 — server boundary
            self._send_json(
                500,
                {"error": f"internal error: {type(error).__name__}: {error}"},
            )

    def _get_entry(self, query) -> None:
        key = self._param(query, "key")
        if not key:
            self._send_json(400, {"error": "missing 'key' parameter"})
            return
        shard = self._param(query, "shard", self.server.disk.fingerprint[:16])
        if self._param(query, "probe"):
            tag = (shard, key)
            present = self.server.memory.contains(tag) or (
                self.server.disk.load_blob(key, shard) is not None
            )
            self._send_empty(204 if present else 404)
            return
        flight = bool(self._param(query, "flight"))
        try:
            wait = float(self._param(query, "wait", "0") or 0)
        except ValueError:
            wait = 0.0
        pid_raw = self._param(query, "pid")
        pid = int(pid_raw) if pid_raw.isdigit() else None
        kind, data, tier = self.server.fetch(
            key, shard, flight=flight, wait=wait, pid=pid
        )
        if kind == "hit":
            self._send_blob(data, X_Repro_Tier=tier)
        elif kind == "lease":
            self._send_json(404, {"lease": data.decode()})
        elif kind == "timeout":
            self._send_json(404, {"timeout": True})
        else:
            self._send_json(404, {"error": "miss"})

    def do_PUT(self) -> None:  # noqa: N802 — http.server API
        url = urlsplit(self.path)
        try:
            if url.path != "/entry":
                self._send_json(404, {"error": f"no route {url.path!r}"})
                return
            raw = self._read_raw()
            newline = raw.find(b"\n")
            if newline < 0:
                self._send_json(
                    400, {"error": "expected envelope line + blob"}
                )
                return
            try:
                envelope = json.loads(raw[:newline].decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self._send_json(400, {"error": "envelope is not JSON"})
                return
            key = envelope.get("key")
            if not key:
                self._send_json(400, {"error": "envelope missing 'key'"})
                return
            stored, error = self.server.put(
                key,
                envelope.get("shard") or self.server.disk.fingerprint[:16],
                raw[newline + 1:],
                sha256=envelope.get("sha256"),
                manifest=envelope.get("manifest"),
                lease=envelope.get("lease"),
                mode=envelope.get("mode") or "store",
            )
            if error is not None:
                self._send_json(400, {"error": error})
            else:
                self._send_json(200, {"stored": stored})
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as error:  # noqa: BLE001 — server boundary
            self._send_json(
                500,
                {"error": f"internal error: {type(error).__name__}: {error}"},
            )

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        url = urlsplit(self.path)
        try:
            if url.path == "/entry":
                self.do_PUT()  # POST /entry is a PUT alias (curl-friendly)
                return
            if url.path != "/lease/release":
                self._send_json(404, {"error": f"no route {url.path!r}"})
                return
            try:
                payload = json.loads(self._read_raw().decode("utf-8") or "{}")
            except (ValueError, UnicodeDecodeError):
                self._send_json(400, {"error": "request body is not JSON"})
                return
            key = payload.get("key")
            token = payload.get("token")
            if not key or not token:
                self._send_json(
                    400, {"error": "expected {'key', 'shard', 'token'}"}
                )
                return
            released = self.server.release(
                key,
                payload.get("shard") or self.server.disk.fingerprint[:16],
                token,
            )
            self._send_json(200, {"released": released})
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as error:  # noqa: BLE001 — server boundary
            self._send_json(
                500,
                {"error": f"internal error: {type(error).__name__}: {error}"},
            )


def create_cache_server(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    root: str = DEFAULT_ROOT,
    memory_bytes: int = DEFAULT_MEMORY_BYTES,
    lease_timeout: float = DEFAULT_LEASE_SECONDS,
    verbose: bool = False,
) -> CacheServer:
    """Build a ready :class:`CacheServer`.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` (tests and the example do).
    """
    return CacheServer(
        (host, port),
        root=root,
        memory_bytes=memory_bytes,
        lease_timeout=lease_timeout,
        verbose=verbose,
    )
