"""Legacy setuptools shim.

Kept so ``pip install -e .`` works on environments whose setuptools
cannot build PEP 660 editable wheels (no ``wheel`` package available);
all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
