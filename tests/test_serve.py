"""Tests for :mod:`repro.serve` — compilation-as-a-service.

Three layers, cheapest first: schema validation (no server), the job
store and queue (no sockets), and real HTTP round-trips against an
ephemeral-port server.  The E2E class holds the acceptance property:
served artefacts are byte-identical to the serial ``Flow`` path, their
manifests verify, and repeats are pure cache hits.
"""

import json
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager
from types import SimpleNamespace

import pytest

from repro.flow import Flow, Session
from repro.mig.io import dumps_aiger, dumps_program
from repro.mig.graph import Mig
from repro.serve import (
    JobQueue,
    SchemaError,
    create_server,
    parse_job,
)
from repro.serve.jobstore import JobStore
from repro.serve import routes


FRONTEND_TEXT = """
@mig_function(width=3)
def masked_inc(a):
    return (a + 1) & a
"""


def tiny_session(tmp_path=None, **kwargs):
    cache_dir = None if tmp_path is None else tmp_path / "cache"
    return Session(preset="tiny", cache_dir=cache_dir, **kwargs)


def small_aag() -> str:
    mig = Mig("andgate")
    a, b = mig.add_pi("a"), mig.add_pi("b")
    mig.add_po(mig.add_and(a, b), "f")
    return dumps_aiger(mig)


@contextmanager
def running_server(tmp_path=None, session=None, **kwargs):
    if session is None:
        session = tiny_session(tmp_path)
    kwargs.setdefault("isolate", False)
    server = create_server("127.0.0.1", 0, session=session, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)


def api(server, method, path, body=None, timeout=60):
    """One HTTP round-trip; returns (status, decoded JSON or text)."""
    data = None
    headers = {}
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        server.url + path, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = response.read()
            ctype = response.headers.get("Content-Type", "")
            status = response.status
            resp_headers = dict(response.headers)
    except urllib.error.HTTPError as error:
        raw = error.read()
        ctype = error.headers.get("Content-Type", "")
        status = error.code
        resp_headers = dict(error.headers)
    if "json" in ctype and "ndjson" not in ctype:
        return status, json.loads(raw.decode("utf-8")), resp_headers
    return status, raw.decode("utf-8"), resp_headers


def wait_done(server, job_id, timeout=120):
    assert server.store.wait_terminal(job_id, timeout), (
        f"{job_id} did not finish in {timeout}s"
    )
    job = server.store.get(job_id)
    assert job.status == "done", f"{job_id} failed: {job.error}"
    return job


def serial_artifact(spec, cache_dir):
    """The batch-path artefact for *spec*, from a fresh session."""
    session = Session(preset=spec.preset, cache_dir=cache_dir)
    result = Flow.for_job(
        spec.source,
        spec.config,
        preset=spec.preset,
        arch=spec.arch,
        opt=spec.opt,
        verify=spec.verify or None,
        session=session,
    ).run()
    return dumps_program(result.compilation.program)


class TestParseJob:
    def setup_method(self):
        self.session = tiny_session()

    def parse(self, payload, **kwargs):
        return parse_job(payload, self.session, **kwargs)

    def test_minimal_request_takes_session_defaults(self):
        spec = self.parse({"source": "adder"})
        assert spec.source.name == "adder"
        assert spec.preset == "tiny"
        assert spec.config.name == "ea-full"
        assert spec.arch.name == self.session.architecture.name
        assert spec.opt.label() == self.session.optimizer.label()
        assert spec.verify == 64
        assert spec.request["source"] == "adder"

    def test_non_object_body_rejected(self):
        with pytest.raises(SchemaError, match="JSON object"):
            self.parse(["adder"])

    def test_unknown_keys_rejected(self):
        with pytest.raises(SchemaError, match="unknown request keys: wibble"):
            self.parse({"source": "adder", "wibble": 1})

    def test_exactly_one_source_kind(self):
        with pytest.raises(SchemaError, match="exactly one"):
            self.parse({})
        with pytest.raises(SchemaError, match="exactly one"):
            self.parse({
                "source": "adder",
                "netlist": {"format": ".aag", "text": small_aag()},
            })

    def test_unresolvable_source(self):
        with pytest.raises(SchemaError, match="unresolvable source"):
            self.parse({"source": "no-such-benchmark"})

    def test_bad_preset(self):
        with pytest.raises(SchemaError, match="'preset'"):
            self.parse({"source": "adder", "preset": "huge"})

    def test_unknown_config_preset(self):
        with pytest.raises(SchemaError, match="unknown configuration"):
            self.parse({"source": "adder", "config": "nope"})

    def test_wmax_builds_full_management(self):
        spec = self.parse({"source": "adder", "wmax": 25})
        assert spec.config.name == "ea-full+wmax25"

    def test_wmax_and_config_exclusive(self):
        with pytest.raises(SchemaError, match="mutually exclusive"):
            self.parse({"source": "adder", "config": "naive", "wmax": 10})

    def test_wmax_must_be_positive_int(self):
        for bad in (0, -3, True, "10"):
            with pytest.raises(SchemaError):
                self.parse({"source": "adder", "wmax": bad})

    def test_effort_override(self):
        spec = self.parse({"source": "adder", "effort": 2})
        assert spec.config.effort == 2

    def test_verify_false_skips(self):
        assert self.parse({"source": "adder", "verify": False}).verify == 0
        assert self.parse({"source": "adder", "verify": None}).verify == 0

    def test_verify_rejects_negatives_and_bools(self):
        with pytest.raises(SchemaError, match="'verify'"):
            self.parse({"source": "adder", "verify": -1})
        with pytest.raises(SchemaError, match="'verify'"):
            self.parse({"source": "adder", "verify": True})

    def test_arch_and_opt_resolution(self):
        spec = self.parse({
            "source": "adder", "arch": "blocked", "opt": "greedy:write_cost",
        })
        assert spec.arch.name == "blocked"
        assert spec.opt.label() == "greedy:write_cost"

    def test_unknown_arch_and_opt(self):
        with pytest.raises(SchemaError, match="unknown architecture"):
            self.parse({"source": "adder", "arch": "quantum"})
        with pytest.raises(SchemaError, match="bad optimizer"):
            self.parse({"source": "adder", "opt": "sorcery:???"})

    def test_inline_netlist(self):
        spec = self.parse({
            "netlist": {"format": "aag", "text": small_aag(), "name": "mini"},
        })
        assert spec.source.name == "mini"
        assert spec.request["netlist"] == "mini"

    def test_inline_netlist_bad_text(self):
        with pytest.raises(SchemaError, match="does not parse"):
            self.parse({"netlist": {"format": ".aag", "text": "garbage"}})
        with pytest.raises(SchemaError, match="unsupported inline"):
            self.parse({"netlist": {"format": ".aig", "text": "x"}})

    def test_identical_requests_share_a_signature(self):
        body = {"source": "adder", "config": "naive"}
        assert self.parse(dict(body)).signature == \
            self.parse(dict(body)).signature
        other = self.parse({"source": "adder", "config": "naive",
                            "opt": "greedy:write_cost"})
        assert other.signature != self.parse(dict(body)).signature
        netlist = {"netlist": {"format": ".aag", "text": small_aag()}}
        assert self.parse(dict(netlist)).signature == \
            self.parse(dict(netlist)).signature

    def test_frontend_gated(self):
        with pytest.raises(SchemaError, match="--allow-frontend"):
            self.parse({"frontend": {"text": FRONTEND_TEXT}})

    def test_frontend_parses_when_allowed(self):
        spec = self.parse(
            {"frontend": {"text": FRONTEND_TEXT}}, allow_frontend=True
        )
        assert spec.source.name == "masked_inc"

    def test_frontend_must_define_exactly_one_function(self):
        with pytest.raises(SchemaError, match="exactly one"):
            self.parse({"frontend": {"text": "x = 1"}}, allow_frontend=True)

    def test_frontend_syntax_and_import_errors(self):
        with pytest.raises(SchemaError, match="does not compile"):
            self.parse({"frontend": {"text": "def ("}}, allow_frontend=True)
        with pytest.raises(SchemaError, match="raised at import"):
            self.parse(
                {"frontend": {"text": "raise RuntimeError('no')"}},
                allow_frontend=True,
            )


class TestJobStore:
    def spec(self, **overrides):
        payload = {"source": "adder"}
        payload.update(overrides)
        return parse_job(payload, tiny_session())

    def test_submit_assigns_sequential_ids(self):
        store = JobStore()
        first = store.submit(self.spec())
        second = store.submit(self.spec(config="naive"))
        assert (first.id, second.id) == ("j000001", "j000002")
        assert first.coalesced_with is None
        assert second.coalesced_with is None

    def test_duplicate_in_flight_coalesces(self):
        store = JobStore()
        primary = store.submit(self.spec())
        follower = store.submit(self.spec())
        assert follower.coalesced_with == primary.id
        assert follower.events[0]["coalesced_with"] == primary.id
        assert store.counts()["coalesced"] == 1

    def test_terminal_primary_releases_signature(self):
        store = JobStore()
        primary = store.submit(self.spec())
        store.mark_running(primary.id)
        store.finish(primary.id, result={}, artifact="",
                     manifest_entry=None)
        fresh = store.submit(self.spec())
        assert fresh.coalesced_with is None

    def test_fail_releases_signature_too(self):
        store = JobStore()
        primary = store.submit(self.spec())
        store.fail(primary.id, "boom")
        assert store.get(primary.id).error == "boom"
        assert store.submit(self.spec()).coalesced_with is None

    def test_events_are_sequenced(self):
        store = JobStore()
        job = store.submit(self.spec())
        store.mark_running(job.id)
        store.append_event(job.id, {"kind": "stage_start", "stage": "source"})
        events, terminal = store.wait_events(job.id, 0, timeout=0)
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert not terminal
        store.finish(job.id, result={}, artifact="", manifest_entry=None)
        events, terminal = store.wait_events(job.id, 3, timeout=0)
        assert terminal and events[-1]["status"] == "done"

    def test_wait_events_times_out_empty(self):
        store = JobStore()
        job = store.submit(self.spec())
        events, terminal = store.wait_events(job.id, 1, timeout=0.01)
        assert events == [] and not terminal

    def test_close_releases_waiters(self):
        store = JobStore()
        job = store.submit(self.spec())
        waiter = threading.Thread(
            target=store.wait_terminal, args=(job.id,), daemon=True
        )
        waiter.start()
        store.close()
        waiter.join(timeout=5)
        assert not waiter.is_alive()


class TestRoutesDirect:
    """Route behaviour that needs no sockets and no executors."""

    def facade(self, **overrides):
        session = tiny_session()
        store = JobStore()
        facade = SimpleNamespace(
            session=session,
            store=store,
            queue=SimpleNamespace(
                stats=lambda: {"workers": 0, "isolate": False,
                               "depth": 0, "retry_attempts": 3},
                submit=store.submit,
            ),
            allow_frontend=False,
            allow_shutdown=False,
            started_at=0.0,
            request_shutdown=lambda: None,
        )
        for key, value in overrides.items():
            setattr(facade, key, value)
        return facade

    def test_index_lists_endpoints(self):
        response = routes.handle(self.facade(), "GET", "/", {}, None)
        assert response.status == 200
        assert "POST /jobs" in response.payload["endpoints"]

    def test_healthz(self):
        response = routes.handle(self.facade(), "GET", "/healthz", {}, None)
        assert (response.status, response.payload) == (
            200, {"status": "ok"}
        )

    def test_unknown_endpoint_404(self):
        assert routes.handle(
            self.facade(), "GET", "/nope", {}, None
        ).status == 404

    def test_method_not_allowed(self):
        assert routes.handle(
            self.facade(), "POST", "/healthz", {}, None
        ).status == 405
        assert routes.handle(
            self.facade(), "GET", "/shutdown", {}, None
        ).status == 405

    def test_bad_job_schema_is_400(self):
        response = routes.handle(
            self.facade(), "POST", "/jobs", {}, {"source": "nope"}
        )
        assert response.status == 400
        assert "unresolvable" in response.payload["error"]

    def test_unknown_job_404(self):
        assert routes.handle(
            self.facade(), "GET", "/jobs/j999999", {}, None
        ).status == 404

    def test_artifact_conflict_before_done(self):
        facade = self.facade()
        job = facade.store.submit(
            parse_job({"source": "adder"}, facade.session)
        )
        response = routes.handle(
            facade, "GET", f"/jobs/{job.id}/artifact", {}, None
        )
        assert response.status == 409
        assert routes.handle(
            facade, "GET", f"/jobs/{job.id}/manifest", {}, None
        ).status == 409

    def test_manifest_needs_persistent_cache(self):
        facade = self.facade()
        job = facade.store.submit(
            parse_job({"source": "adder"}, facade.session)
        )
        facade.store.finish(job.id, result={}, artifact="",
                            manifest_entry=None)
        response = routes.handle(
            facade, "GET", f"/jobs/{job.id}/manifest", {}, None
        )
        assert response.status == 404
        assert "--cache-dir" in response.payload["error"]

    def test_events_query_validation(self):
        facade = self.facade()
        job = facade.store.submit(
            parse_job({"source": "adder"}, facade.session)
        )
        for query in ({"since": ["-1"]}, {"since": ["x"]},
                      {"timeout": ["-2"]}, {"timeout": ["x"]}):
            assert routes.handle(
                facade, "GET", f"/jobs/{job.id}/events", query, None
            ).status == 400

    def test_shutdown_forbidden_by_default(self):
        response = routes.handle(
            self.facade(), "POST", "/shutdown", {}, None
        )
        assert response.status == 403

    def test_shutdown_allowed_when_enabled(self):
        calls = []
        facade = self.facade(
            allow_shutdown=True,
            request_shutdown=lambda: calls.append(1),
        )
        response = routes.handle(facade, "POST", "/shutdown", {}, None)
        assert response.status == 200 and calls == [1]

    def test_stats_shape(self):
        payload = routes.stats_payload(self.facade())
        assert payload["service"] == "repro.serve"
        assert set(payload["jobs"]) >= {"queued", "running", "done",
                                        "failed", "total", "coalesced"}
        assert "misses" in payload["cache"]
        assert payload["disk"] is None  # session has no cache dir


class TestJobQueue:
    def test_pre_start_submissions_coalesce_deterministically(self, tmp_path):
        """Satellite: the same job submitted twice → exactly one compile.

        Both submissions land before the (single) executor starts, so
        the follower is guaranteed to coalesce; it must then assemble
        purely from the warm cache — zero misses at either tier.
        """
        session = tiny_session(tmp_path)
        queue = JobQueue(session, workers=1, isolate=False)
        spec = parse_job({"source": "ctrl", "verify": 16}, session)
        primary = queue.submit(spec)
        follower = queue.submit(
            parse_job({"source": "ctrl", "verify": 16}, session)
        )
        assert follower.coalesced_with == primary.id
        queue.start()
        try:
            assert queue.store.wait_terminal(follower.id, 120)
            primary = queue.store.get(primary.id)
            follower = queue.store.get(follower.id)
            assert primary.status == "done", primary.error
            assert follower.status == "done", follower.error
            assert primary.counters["misses"] > 0
            assert follower.counters["misses"] == 0
            assert follower.counters["disk_misses"] == 0
            assert follower.artifact == primary.artifact
            assert any(
                e["kind"] == "coalesce_wait" for e in follower.events
            )
        finally:
            queue.stop()

    def test_executor_failure_marks_job_failed(self, tmp_path, monkeypatch):
        session = tiny_session(tmp_path)
        queue = JobQueue(session, workers=1, isolate=False)

        def explode(self, job):
            raise RuntimeError("boom")

        monkeypatch.setattr(JobQueue, "_assemble", explode)
        queue.start()
        try:
            job = queue.submit(parse_job({"source": "adder"}, session))
            assert queue.store.wait_terminal(job.id, 60)
            job = queue.store.get(job.id)
            assert job.status == "failed"
            assert job.error == "RuntimeError: boom"
            assert job.events[-1]["status"] == "failed"
        finally:
            queue.stop()


class TestServeHTTP:
    """Real HTTP round-trips against an ephemeral-port server."""

    def test_submit_poll_fetch_lifecycle(self, tmp_path):
        with running_server(tmp_path) as server:
            status, body, _ = api(server, "POST", "/jobs",
                                  {"source": "adder", "verify": 16})
            assert status == 202
            job_id = body["id"]
            assert body["url"] == f"/jobs/{job_id}"

            job = wait_done(server, job_id)
            status, body, _ = api(server, "GET", f"/jobs/{job_id}")
            assert status == 200
            assert body["status"] == "done"
            result = body["result"]
            assert result["benchmark"] == "adder"
            assert result["config"] == "ea-full"
            assert result["verified_patterns"] == 16
            assert result["instructions"] > 0
            assert result["stats"]["total_writes"] > 0
            assert body["urls"]["artifact"] == f"/jobs/{job_id}/artifact"

            status, listing, _ = api(server, "GET", "/jobs")
            assert status == 200
            assert [j["id"] for j in listing["jobs"]] == [job_id]

            status, text, headers = api(
                server, "GET", f"/jobs/{job_id}/artifact"
            )
            assert status == 200
            assert text == job.artifact
            assert "X-Artifact-SHA256" in headers

            status, manifest, _ = api(
                server, "GET", f"/jobs/{job_id}/manifest"
            )
            assert status == 200
            assert manifest["problems"] == []
            assert manifest["manifest"]["benchmark"]

            status, stats, _ = api(server, "GET", "/stats")
            assert status == 200
            assert stats["jobs"]["done"] == 1
            assert stats["disk"]["entries"] > 0

    def test_event_stream_is_ndjson(self, tmp_path):
        with running_server(tmp_path) as server:
            _, body, _ = api(server, "POST", "/jobs",
                             {"source": "ctrl", "verify": 8})
            job_id = body["id"]
            wait_done(server, job_id)
            status, text, headers = api(
                server, "GET", f"/jobs/{job_id}/events?timeout=30"
            )
            assert status == 200
            assert "ndjson" in headers["Content-Type"]
            events = [json.loads(line) for line in text.splitlines()]
            kinds = [e["kind"] for e in events]
            assert kinds[0] == "job" and events[0]["status"] == "queued"
            assert events[-1]["kind"] == "job"
            assert events[-1]["status"] == "done"
            started = [e["stage"] for e in events
                       if e["kind"] == "stage_start"]
            ended = [e["stage"] for e in events if e["kind"] == "stage_end"]
            assert started == ["source", "rewrite", "compile", "verify"]
            assert ended == started
            assert [e["seq"] for e in events] == list(range(len(events)))

            # `since` resumes mid-stream.
            status, tail, _ = api(
                server, "GET",
                f"/jobs/{job_id}/events?since={len(events) - 1}",
            )
            assert [json.loads(line)["seq"] for line in tail.splitlines()] \
                == [len(events) - 1]

    def test_bad_json_body_is_400(self, tmp_path):
        with running_server(tmp_path) as server:
            request = urllib.request.Request(
                server.url + "/jobs", data=b"{not json",
                headers={"Content-Type": "application/json"}, method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400

    def test_concurrent_duplicates_compile_once(self, tmp_path):
        """Satellite: N concurrent identical submissions, one compile.

        Whether a submission coalesces (overlapped the primary) or runs
        warm (arrived after it landed), at most one job may miss the
        disk tier.
        """
        with running_server(tmp_path, workers=2) as server:
            body = {"source": "ctrl", "verify": 8}
            ids = []
            lock = threading.Lock()

            def post():
                _, payload, _ = api(server, "POST", "/jobs", dict(body))
                with lock:
                    ids.append(payload["id"])

            threads = [threading.Thread(target=post) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(ids) == 4

            jobs = [wait_done(server, job_id) for job_id in ids]
            artifacts = {job.artifact for job in jobs}
            assert len(artifacts) == 1
            cold = [j for j in jobs if j.counters["disk_misses"] > 0]
            assert len(cold) <= 1
            followers = [j for j in jobs if j.coalesced_with is not None]
            for job in followers:
                assert job.counters["disk_misses"] == 0

    def test_repeat_submission_is_fully_cached(self, tmp_path):
        with running_server(tmp_path) as server:
            body = {"source": "adder", "verify": 8}
            _, first, _ = api(server, "POST", "/jobs", dict(body))
            cold = wait_done(server, first["id"])
            assert cold.counters["disk_misses"] > 0

            _, second, _ = api(server, "POST", "/jobs", dict(body))
            warm = wait_done(server, second["id"])
            assert warm.counters["misses"] == 0
            assert warm.counters["disk_misses"] == 0
            assert warm.artifact == cold.artifact
            stage_ends = [e for e in warm.events if e["kind"] == "stage_end"]
            assert stage_ends and all(e["cached"] for e in stage_ends)

    def test_served_artifacts_match_serial_flow(self, tmp_path):
        """Acceptance: concurrent jobs across two (arch, opt) combos are
        byte-identical to the serial Flow path and their manifests
        verify."""
        combos = [
            {"source": "adder", "verify": 8,
             "arch": "endurance", "opt": "greedy:write_cost"},
            {"source": "adder", "verify": 8,
             "arch": "blocked", "opt": "greedy:node_count"},
            {"source": "ctrl", "verify": 8,
             "arch": "endurance", "opt": "greedy:write_cost"},
            {"source": "ctrl", "verify": 8,
             "arch": "blocked", "opt": "greedy:node_count"},
        ]
        with running_server(tmp_path, workers=3) as server:
            submitted = []
            for body in combos:
                _, payload, _ = api(server, "POST", "/jobs", dict(body))
                submitted.append(payload["id"])
            jobs = [wait_done(server, job_id) for job_id in submitted]

            for body, job in zip(combos, jobs):
                spec = parse_job(dict(body), tiny_session())
                expected = serial_artifact(
                    spec, tmp_path / "serial" / job.id
                )
                assert job.artifact == expected, body
                status, manifest, _ = api(
                    server, "GET", f"/jobs/{job.id}/manifest"
                )
                assert status == 200 and manifest["problems"] == [], body

            status, stats, _ = api(server, "GET", "/stats")
            assert stats["jobs"]["done"] == len(combos)
            assert stats["queue"]["depth"] == 0

    def test_frontend_job_over_http(self, tmp_path):
        with running_server(tmp_path, allow_frontend=True) as server:
            status, body, _ = api(server, "POST", "/jobs", {
                "frontend": {"text": FRONTEND_TEXT}, "verify": 8,
            })
            assert status == 202
            job = wait_done(server, body["id"])
            assert job.result["benchmark"] == "masked_inc"

            # and the same server still refuses it once disabled
            server.allow_frontend = False
            status, body, _ = api(server, "POST", "/jobs", {
                "frontend": {"text": FRONTEND_TEXT},
            })
            assert status == 400

    def test_shutdown_endpoint(self, tmp_path):
        session = tiny_session(tmp_path)
        server = create_server(
            "127.0.0.1", 0, session=session,
            isolate=False, allow_shutdown=True,
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, body, _ = api(server, "POST", "/shutdown")
            assert status == 200
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            server.close()
            thread.join(timeout=5)


@pytest.mark.slow
class TestServeIsolated:
    """Worker-process mode: the run_matrix supervised pool per job."""

    def test_isolated_job_round_trip(self, tmp_path):
        session = tiny_session(tmp_path)
        with running_server(session=session, isolate=True,
                            workers=1) as server:
            _, body, _ = api(server, "POST", "/jobs",
                             {"source": "ctrl", "verify": 8})
            job = wait_done(server, body["id"], timeout=300)
            assert any(e["kind"] == "dispatch" and e["mode"] == "process"
                       for e in job.events)

            status, manifest, _ = api(
                server, "GET", f"/jobs/{job.id}/manifest"
            )
            assert status == 200 and manifest["problems"] == []

            _, stats, _ = api(server, "GET", "/stats")
            assert stats["queue"]["isolate"] is True
            assert stats["cache"]["workers"].get("workers", 0) >= 1

            # Warm repeat short-circuits the process dispatch entirely.
            _, again, _ = api(server, "POST", "/jobs",
                              {"source": "ctrl", "verify": 8})
            warm = wait_done(server, again["id"], timeout=120)
            assert warm.counters["disk_misses"] == 0
            assert not any(e["kind"] == "dispatch" for e in warm.events)
            assert warm.artifact == job.artifact
