"""Tests for the circuit-source layer (:mod:`repro.source`).

Covers resolution precedence, content-addressed identities, the cache
read-through for external sources, and the acceptance property of the
layer: an imported netlist and a frontend function both run the full
source -> rewrite -> compile -> verify pipeline under multiple
(architecture, optimizer) combinations with the *second* run served
entirely from the disk cache.
"""

import os
import pickle

import pytest

from repro.analysis.runner import ExperimentCache, run_matrix
from repro.flow import Flow, Session
from repro.mig.graph import Mig
from repro.source import (
    FileSource,
    FrontendSource,
    MigSource,
    RegistrySource,
    Source,
    SOURCE_ENV_VAR,
    available_sources,
    get_source,
    register_source,
    resolve_source,
)
from repro.source import registry as source_registry
from repro.synth.frontend import mig_function
from repro.synth.registry import BENCHMARK_ORDER
from .conftest import make_random_mig

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
FULLADDER_BLIF = os.path.join(FIXTURES, "fulladder.blif")
ANDOR_AAG = os.path.join(FIXTURES, "andor.aag")


@mig_function(width=3, name="satsub")
def saturating_sub(a, b):
    return (a - b) & 7 if a >= b else 0


class TestResolveSource:
    def test_registry_names_preregistered(self):
        assert set(BENCHMARK_ORDER) <= set(available_sources())
        source = resolve_source("adder")
        assert source.kind == "registry"
        assert source is get_source("adder")

    def test_path_string(self):
        source = resolve_source(FULLADDER_BLIF)
        assert isinstance(source, FileSource)
        assert source.kind == "file"
        assert source.name == "fulladder"

    def test_mig_and_frontend_objects(self):
        mig = make_random_mig(4, 10, seed=1)
        assert isinstance(resolve_source(mig), MigSource)
        assert isinstance(resolve_source(saturating_sub), FrontendSource)

    def test_source_passthrough(self):
        source = FileSource(ANDOR_AAG)
        assert resolve_source(source) is source

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv(SOURCE_ENV_VAR, "adder")
        assert resolve_source(None).name == "adder"

    def test_none_without_env_raises(self, monkeypatch):
        monkeypatch.delenv(SOURCE_ENV_VAR, raising=False)
        with pytest.raises(ValueError, match="no source selected"):
            resolve_source(None)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown source"):
            resolve_source("not_a_benchmark")

    def test_missing_file_error_names_path(self, tmp_path):
        with pytest.raises(OSError):
            resolve_source(str(tmp_path / "missing.blif"))

    def test_unsupported_type(self):
        with pytest.raises(TypeError, match="cannot interpret"):
            resolve_source(42)

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_source(RegistrySource("adder"))

    def test_register_custom_source(self):
        source = FileSource(ANDOR_AAG)
        try:
            register_source(source)
            assert resolve_source("andor") is source
        finally:
            source_registry._REGISTRY.pop("andor", None)


class TestIdentity:
    def test_registry_identity_is_classic_key(self):
        assert RegistrySource("adder").identity("tiny") == ("adder", "tiny")
        assert RegistrySource("adder").label("tiny") == "adder@tiny"

    def test_file_identity_pins_bytes_not_path(self, tmp_path):
        original = FileSource(FULLADDER_BLIF)
        copy_path = tmp_path / "renamed.blif"
        with open(FULLADDER_BLIF) as handle:
            copy_path.write_text(handle.read())
        copy = FileSource(copy_path)
        assert copy.fingerprint() == original.fingerprint()
        assert copy.identity("tiny") == copy.identity("default")

        copy_path.write_text(copy_path.read_text() + "# touched\n")
        assert FileSource(copy_path).fingerprint() != original.fingerprint()

    def test_file_rejects_unknown_extension(self, tmp_path):
        path = tmp_path / "x.v"
        path.write_text("")
        with pytest.raises(ValueError, match="extension"):
            FileSource(path)

    def test_frontend_identity_before_elaboration(self):
        source = FrontendSource(saturating_sub)
        assert source.identity("tiny") == (
            "frontend", saturating_sub.fingerprint
        )

    def test_graph_identity_is_content_fingerprint(self):
        mig = make_random_mig(4, 12, seed=3)
        source = MigSource(mig)
        assert source.identity("tiny") == ("graph", mig.content_fingerprint())
        # bare graph name keeps the historical source_mig flow labels
        assert source.label("tiny") == mig.name


class TestContentFingerprint:
    def test_stable_across_pickle(self):
        mig = make_random_mig(5, 20, seed=9)
        fingerprint = mig.content_fingerprint()
        clone = pickle.loads(pickle.dumps(mig))
        assert clone.content_fingerprint() == fingerprint

    def test_sensitive_to_structure_and_names(self):
        base = Mig("t")
        a, b = base.add_pi("a"), base.add_pi("b")
        base.add_po(base.add_and(a, b), "f")

        renamed = Mig("t")
        a, b = renamed.add_pi("a"), renamed.add_pi("bb")
        renamed.add_po(renamed.add_and(a, b), "f")

        rewired = Mig("t")
        a, b = rewired.add_pi("a"), rewired.add_pi("b")
        rewired.add_po(rewired.add_or(a, b), "f")

        prints = {
            m.content_fingerprint() for m in (base, renamed, rewired)
        }
        assert len(prints) == 3

    def test_identical_builds_share_fingerprint(self):
        assert (
            make_random_mig(5, 20, seed=4).content_fingerprint()
            == make_random_mig(5, 20, seed=4).content_fingerprint()
        )


class TestCacheReadThrough:
    def test_registry_source_shares_benchmark_cache(self):
        cache = ExperimentCache()
        via_source = cache.source_mig(resolve_source("ctrl"), "tiny")
        assert cache.benchmark_mig("ctrl", "tiny") is via_source

    def test_external_source_memoized(self):
        cache = ExperimentCache()
        source = FileSource(FULLADDER_BLIF)
        first = cache.source_mig(source, "tiny")
        assert cache.source_mig(source, "default") is first  # preset-free
        assert cache.cached_source_mig(source, "tiny") is first

    def test_external_source_persists_to_disk(self, tmp_path):
        from repro.analysis.diskcache import DiskCache

        source = FileSource(FULLADDER_BLIF)
        warm = ExperimentCache(DiskCache(tmp_path / "cache"))
        built = warm.source_mig(source, "tiny")

        cold = ExperimentCache(DiskCache(tmp_path / "cache"))
        assert cold.cached_source_mig(source, "tiny") is not None
        assert cold.disk.hits == 1
        loaded = cold.source_mig(source, "tiny")
        assert loaded.num_pis == built.num_pis
        assert loaded.content_fingerprint() == built.content_fingerprint()


class TestSessionSource:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(SOURCE_ENV_VAR, "ctrl")
        session = Session(source="adder")
        assert session.default_source.name == "adder"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(SOURCE_ENV_VAR, "ctrl")
        assert Session().default_source.name == "ctrl"

    def test_no_default_without_selection(self, monkeypatch):
        monkeypatch.delenv(SOURCE_ENV_VAR, raising=False)
        assert Session().default_source is None

    def test_invalid_selection_fails_fast(self):
        with pytest.raises(ValueError, match="unknown source"):
            Session(source="not_a_benchmark")

    def test_spec_round_trip(self):
        session = Session(source="adder", preset="tiny")
        rebuilt = Session.from_spec(session.spec())
        assert rebuilt.default_source.name == "adder"

    def test_flow_uses_session_default(self, monkeypatch):
        monkeypatch.delenv(SOURCE_ENV_VAR, raising=False)
        session = Session(source="ctrl", preset="tiny")
        result = Flow.for_config("naive", session=session).run()
        assert result.mig.name == "ctrl"

    def test_flow_without_source_raises(self, monkeypatch):
        monkeypatch.delenv(SOURCE_ENV_VAR, raising=False)
        with pytest.raises(ValueError, match="no source"):
            Flow.for_config("naive").run()


class TestRunMatrixSources:
    def test_mixed_entries_serial(self):
        mig = make_random_mig(4, 16, seed=11, num_pos=2)
        evaluations = run_matrix(
            ["ctrl", FULLADDER_BLIF, mig, saturating_sub],
            configs=["naive"],
            preset="tiny",
        )
        assert [e.name for e in evaluations] == [
            "ctrl", "fulladder", mig.name, "satsub"
        ]
        assert all("naive" in e.results for e in evaluations)

    def test_mixed_entries_parallel_matches_serial(self):
        entries = [FULLADDER_BLIF, saturating_sub]
        serial = run_matrix(entries, configs=["naive"], preset="tiny")
        fanned = run_matrix(
            entries, configs=["naive"], preset="tiny", parallel=2
        )
        assert [e.name for e in serial] == [e.name for e in fanned]
        for a, b in zip(serial, fanned):
            assert a.results["naive"].stats == b.results["naive"].stats
            assert (
                a.results["naive"].program.instructions
                == b.results["naive"].program.instructions
            )


class TestAcceptance:
    """The issue's acceptance criteria: external sources run the full
    pipeline under two (arch, opt) combos; a second cold session is
    served from the disk cache at every stage."""

    COMBOS = (("endurance", "script"), ("blocked", "greedy"))

    def _run_all(self, session, source):
        results = []
        for arch_name, opt_spec in self.COMBOS:
            results.append(
                Flow(session)
                .source(source)
                .compile("ea-full")
                .arch(arch_name)
                .optimize(opt_spec)
                .verify(patterns=16)
                .run()
            )
        return results

    @pytest.mark.parametrize(
        "source_factory",
        [
            lambda: FULLADDER_BLIF,
            lambda: saturating_sub,
        ],
        ids=["blif-file", "frontend-function"],
    )
    def test_second_run_served_from_disk(self, tmp_path, source_factory):
        source = source_factory()
        root = tmp_path / "cache"

        warm_session = Session(cache_dir=root, preset="tiny")
        warm = self._run_all(warm_session, source)
        for result in warm:
            assert result.verified_patterns == 16
            assert not result.stages["source"].cached or result is not warm[0]

        # fresh session, fresh memory tier: everything must come off disk
        cold_session = Session(cache_dir=root, preset="tiny")
        disk = cold_session.cache.disk
        cold = self._run_all(cold_session, source)

        for stage in ("source", "rewrite", "compile", "verify"):
            assert all(r.stages[stage].cached for r in cold), stage
        assert disk.hits > 0
        assert disk.misses == 0

        for before, after in zip(warm, cold):
            assert before.stats == after.stats
            assert (
                before.program.instructions == after.program.instructions
            )
