"""Tests for the cost-guided rewriting optimizer layer (repro.opt)."""

import pytest

from repro.arch import Architecture, CostModel, get_architecture
from repro.mig import kernel
from repro.mig.simulate import equivalent, truth_tables
from repro.opt import (
    DEFAULT_EFFORT,
    Objective,
    Optimizer,
    OptimizerSpec,
    RewritePass,
    atomic_passes,
    available_objectives,
    available_passes,
    available_strategies,
    candidate_passes,
    estimated_write_cost,
    get_objective,
    get_pass,
    get_strategy,
    opt_from_env,
    register_objective,
    register_pass,
    register_strategy,
    resolve_optimizer,
    rewrite,
)
from repro.opt.engine import OPT_ENV_VAR
from repro.synth.registry import build_benchmark
from .conftest import make_random_mig

ENDURANCE = get_architecture("endurance")


@pytest.fixture(autouse=True)
def _reset_backend():
    yield
    kernel.set_backend(None)


class TestPassRegistry:
    def test_builtin_passes_registered(self):
        names = available_passes()
        for expected in (
            "M", "D_rl", "A", "Psi_C", "I_rl_1_3", "I_rl", "P",
            "cycle:dac16", "cycle:endurance",
        ):
            assert expected in names

    def test_metadata(self):
        assert get_pass("M").kind == "atomic"
        assert get_pass("cycle:endurance").kind == "cycle"
        assert all(p.preserves_equivalence for p in candidate_passes())
        assert get_pass("P").description

    def test_atomic_subset(self):
        atomics = {p.name for p in atomic_passes()}
        assert "cycle:dac16" not in atomics
        assert "M" in atomics and "P" in atomics

    def test_unknown_pass_lists_known(self):
        with pytest.raises(ValueError, match="unknown rewrite pass"):
            get_pass("nope")

    def test_duplicate_registration_refused(self):
        with pytest.raises(ValueError, match="already registered"):
            register_pass(RewritePass(name="M", fn=lambda m: m))
        # overwrite=True replaces (restore the original right away)
        original = get_pass("M")
        register_pass(original, overwrite=True)


class TestPassEquivalence:
    """Every registered pass preserves the function at every output —
    the metadata's `preserves_equivalence` claim, sweep-tested on
    randomized MIGs across both simulation backends."""

    SEEDS = (3, 11, 29)

    def _backends(self):
        return kernel.available_backends()

    @pytest.mark.parametrize("name", [
        "M", "D_rl", "A", "Psi_C", "I_rl_1_3", "I_rl", "P",
        "cycle:dac16", "cycle:endurance",
    ])
    def test_pass_preserves_truth_tables(self, name):
        rewrite_pass = get_pass(name)
        for backend in self._backends():
            with kernel.backend_scope(backend):
                for seed in self.SEEDS:
                    mig = make_random_mig(
                        num_pis=6, num_gates=45, seed=seed
                    )
                    result = rewrite_pass.apply(mig)
                    assert truth_tables(result) == truth_tables(mig), (
                        f"pass {name} broke seed {seed} on {backend}"
                    )

    @pytest.mark.parametrize("spec", ["greedy", "budget", "greedy:depth"])
    def test_strategies_preserve_equivalence(self, spec):
        optimizer = Optimizer(spec, ENDURANCE)
        for backend in self._backends():
            with kernel.backend_scope(backend):
                mig = make_random_mig(num_pis=6, num_gates=40, seed=17)
                result = optimizer.run(mig, "endurance", effort=2)
                assert equivalent(mig, result)


class TestObjectives:
    def test_builtins_registered(self):
        for name in ("node_count", "depth", "write_cost"):
            assert name in available_objectives()

    def test_node_count_and_depth(self, tiny_adder):
        assert get_objective("node_count").score(
            tiny_adder, ENDURANCE
        ) == tiny_adder.num_live_gates()
        assert get_objective("depth").score(
            tiny_adder, ENDURANCE
        ) == tiny_adder.depth()

    def test_write_cost_prices_through_the_cost_model(self):
        from repro.mig.graph import Mig

        mig = Mig("qz")
        a, b, c = (mig.add_pi(n) for n in "abc")
        # three plain PI fanins: a Q violation (nothing intrinsically
        # inverted) and a Z violation (nothing overwritable) at once
        mig.add_po(mig.add_maj(a, b, c), "f")
        base = estimated_write_cost(mig, ENDURANCE)
        pricey_q = Architecture(
            name="pricey-inverts", cost=CostModel(q_invert_instructions=9)
        )
        pricey_z = Architecture(
            name="pricey-copies", cost=CostModel(z_copy_instructions=9)
        )
        assert estimated_write_cost(mig, pricey_q) > base
        assert estimated_write_cost(mig, pricey_z) > base

    def test_write_cost_constant_semantics_match_the_machine(self):
        """Constants follow the compiler's rules: either polarity of a
        constant edge is violation-free and serves as the free Q, and a
        constant destination is the cheaper z_const repair."""
        from repro.mig.graph import Mig
        from repro.mig.signal import CONST0, CONST1, complement

        cost = ENDURANCE.cost
        # AND gate MAJ(a, b, 0): the constant is the free Q (not a
        # q_invert violation); the destination still needs a copy.
        mig = Mig("and")
        a, b = mig.add_pi("a"), mig.add_pi("b")
        mig.add_po(mig.add_maj(a, b, CONST0), "f")
        assert estimated_write_cost(mig, ENDURANCE) == (
            1 + cost.z_copy_instructions
        )
        # OR gate MAJ(a, b, 1): the complemented-constant edge is NOT a
        # complement violation — same bill as the AND.
        mig = Mig("or")
        a, b = mig.add_pi("a"), mig.add_pi("b")
        mig.add_po(mig.add_maj(a, b, CONST1), "f")
        assert estimated_write_cost(mig, ENDURANCE) == (
            1 + cost.z_copy_instructions
        )
        # One complemented PI fanin: ideal Q, but still no destination.
        mig = Mig("ideal-q")
        a, b, c = (mig.add_pi(n) for n in "abc")
        mig.add_po(mig.add_maj(complement(a), b, c), "f")
        assert estimated_write_cost(mig, ENDURANCE) == (
            1 + cost.z_copy_instructions
        )
        # Complemented Q *and* a spare constant: the cheaper z_const
        # repair applies.
        mig = Mig("const-z")
        a, b = mig.add_pi("a"), mig.add_pi("b")
        mig.add_po(mig.add_maj(complement(a), b, CONST0), "f")
        assert estimated_write_cost(mig, ENDURANCE) == (
            1 + cost.z_const_instructions
        )

    def test_write_cost_lower_bounded_by_gates(self, small_random_mig):
        assert estimated_write_cost(
            small_random_mig, ENDURANCE
        ) >= small_random_mig.num_live_gates()

    def test_custom_objective_registration(self, small_random_mig):
        register_objective(
            Objective(
                name="complement_edges",
                fn=lambda mig, arch: mig.num_complemented_edges(),
                description="total complemented edges",
            ),
            overwrite=True,
        )
        optimizer = Optimizer("greedy:complement_edges", ENDURANCE)
        result = optimizer.run(small_random_mig, "endurance", effort=2)
        assert equivalent(small_random_mig, result)
        assert optimizer.score(result) <= small_random_mig.num_complemented_edges()

    def test_duplicate_registration_refused(self):
        with pytest.raises(ValueError, match="already registered"):
            register_objective(
                Objective(name="depth", fn=lambda m, a: 0)
            )


class TestSpec:
    def test_parse_label_round_trip(self):
        for text in (
            "script", "greedy", "greedy:node_count",
            "budget:write_cost@3", "budget:depth@1",
        ):
            spec = OptimizerSpec.parse(text)
            assert OptimizerSpec.parse(spec.label()) == spec

    def test_defaults(self):
        spec = OptimizerSpec.parse("greedy")
        assert spec.objective == "write_cost"
        assert OptimizerSpec().strategy == "script"

    def test_invalid_specs_raise(self):
        with pytest.raises(ValueError):
            OptimizerSpec.parse("warp-drive")
        with pytest.raises(ValueError):
            OptimizerSpec.parse("greedy:not_an_objective")
        with pytest.raises(ValueError):
            OptimizerSpec.parse("budget@zero")
        with pytest.raises(ValueError):
            OptimizerSpec.parse("budget@0")
        with pytest.raises(ValueError):
            OptimizerSpec.parse("")

    def test_script_key_collapses(self):
        # the script strategy's result is fully determined by the
        # configuration, so every script spec shares one cache identity
        assert OptimizerSpec.parse("script").key() == ("script",)
        assert OptimizerSpec.parse("greedy").key() != ("script",)

    def test_strategy_registry(self):
        assert available_strategies()[0] == "script"
        with pytest.raises(ValueError, match="unknown optimizer strategy"):
            get_strategy("anneal")
        with pytest.raises(ValueError, match="already registered"):
            register_strategy(get_strategy("greedy"))


class TestResolutionPrecedence:
    """flag > $REPRO_OPT > default, mirroring resolve_architecture."""

    def test_default_when_nothing_selected(self, monkeypatch):
        monkeypatch.delenv(OPT_ENV_VAR, raising=False)
        assert resolve_optimizer(None).label() == "script"
        assert opt_from_env() is None

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(OPT_ENV_VAR, "greedy:node_count")
        assert resolve_optimizer(None).label() == "greedy:node_count"
        assert opt_from_env() == "greedy:node_count"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(OPT_ENV_VAR, "greedy")
        assert resolve_optimizer("budget").strategy == "budget"

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(OPT_ENV_VAR, "warp-drive")
        with pytest.raises(ValueError):
            resolve_optimizer(None)

    def test_session_explicit_beats_env(self, monkeypatch):
        from repro.flow import Session

        monkeypatch.setenv(OPT_ENV_VAR, "greedy")
        assert Session(opt="budget").optimizer.strategy == "budget"

    def test_session_env_resolution(self, monkeypatch):
        from repro.flow import Session

        monkeypatch.setenv(OPT_ENV_VAR, "greedy:depth")
        session = Session.from_env()
        assert session.opt == "greedy:depth"
        monkeypatch.delenv(OPT_ENV_VAR)
        assert Session.from_env().opt is None

    def test_session_from_args_flag_beats_env(self, monkeypatch):
        import argparse

        from repro.flow import Session

        monkeypatch.setenv(OPT_ENV_VAR, "greedy")
        parser = argparse.ArgumentParser()
        Session.add_arguments(parser)
        session = Session.from_args(parser.parse_args(["--opt", "budget"]))
        assert session.optimizer.strategy == "budget"
        # absent flag: the ambient env selection applies at use time
        session = Session.from_args(parser.parse_args([]))
        assert session.optimizer.strategy == "greedy"

    def test_session_rejects_unknown_opt_eagerly(self):
        from repro.flow import Session

        with pytest.raises(ValueError):
            Session(opt="warp-drive")

    def test_spec_round_trip_carries_opt(self):
        from repro.flow import Session

        spec = Session(opt="budget:node_count@4", preset="tiny").spec()
        assert spec.opt == "budget:node_count@4"
        rebuilt = Session.from_spec(spec)
        assert rebuilt.optimizer == OptimizerSpec(
            strategy="budget", objective="node_count", lookahead=4
        )


class TestScriptParity:
    """The script strategy is byte-identical to the legacy pipelines."""

    def _identical(self, a, b):
        return (
            a._fanins == b._fanins
            and a._pis == b._pis
            and a._pos == b._pos
        )

    @pytest.mark.parametrize("script", ["none", "dac16", "endurance"])
    def test_script_strategy_matches_legacy_rewrite(self, script):
        optimizer = Optimizer("script", ENDURANCE)
        for seed in (5, 23):
            mig = make_random_mig(num_pis=6, num_gates=50, seed=seed)
            assert self._identical(
                optimizer.run(mig, script, effort=DEFAULT_EFFORT),
                rewrite(mig, script, effort=DEFAULT_EFFORT),
            )

    @pytest.mark.parametrize("script", ["dac16", "endurance"])
    def test_script_strategy_matches_on_benchmarks(self, script):
        optimizer = Optimizer("script", ENDURANCE)
        for name in ("ctrl", "int2float"):
            mig = build_benchmark(name, "tiny")
            assert self._identical(
                optimizer.run(mig, script, effort=DEFAULT_EFFORT),
                rewrite(mig, script, effort=DEFAULT_EFFORT),
            )

    def test_core_rewriting_shim_warns_and_agrees(self, small_random_mig):
        from repro.core import rewriting as legacy

        with pytest.deprecated_call():
            shimmed = legacy.rewrite(small_random_mig, "endurance")
        assert self._identical(
            shimmed, rewrite(small_random_mig, "endurance")
        )
        with pytest.deprecated_call():
            legacy.rewrite_dac16(small_random_mig, effort=1)
        with pytest.deprecated_call():
            legacy.rewrite_endurance_aware(small_random_mig, effort=1)

    def test_flow_default_optimizer_is_script_parity(self, tmp_path):
        """An unconfigured Flow compiles exactly like the pre-optimizer
        harness: its rewrite stage equals the legacy script result."""
        from repro.flow import Flow, Session

        session = Session(preset="tiny")
        result = Flow.for_config("ea-full", session=session).source("ctrl").run()
        assert result.optimizer.label() == "script"
        legacy = rewrite(result.mig, "endurance", effort=DEFAULT_EFFORT)
        assert self._identical(result.rewritten, legacy)


class TestSearchStrategies:
    def test_greedy_never_worse_than_input(self, small_random_mig):
        optimizer = Optimizer("greedy", ENDURANCE)
        result = optimizer.run(small_random_mig, "endurance", effort=3)
        assert optimizer.score(result) <= optimizer.score(
            small_random_mig.cleanup()
        )

    def test_greedy_deterministic(self, small_random_mig):
        optimizer = Optimizer("greedy", ENDURANCE)
        first = optimizer.run(small_random_mig, "endurance", effort=3)
        second = optimizer.run(small_random_mig, "endurance", effort=3)
        assert first._fanins == second._fanins
        assert first._pos == second._pos

    def test_greedy_beats_or_matches_script_on_benchmarks(self):
        optimizer = Optimizer("greedy", ENDURANCE)
        for name in ("ctrl", "int2float", "priority"):
            mig = build_benchmark(name, "tiny")
            scripted = rewrite(mig, "endurance", effort=DEFAULT_EFFORT)
            optimized = optimizer.run(
                mig, "endurance", effort=DEFAULT_EFFORT
            )
            assert optimizer.score(optimized) <= optimizer.score(scripted)

    def test_budget_never_worse_than_input(self, small_random_mig):
        optimizer = Optimizer("budget:write_cost@2", ENDURANCE)
        result = optimizer.run(small_random_mig, "endurance", effort=2)
        assert optimizer.score(result) <= optimizer.score(
            small_random_mig.cleanup()
        )

    def test_none_script_is_untouched_under_every_strategy(
        self, small_random_mig
    ):
        """Baseline configurations stay baselines in optimizer sweeps."""
        cleaned = small_random_mig.cleanup()
        for spec in ("script", "greedy", "budget"):
            result = Optimizer(spec, ENDURANCE).run(
                small_random_mig, "none", effort=5
            )
            assert result._fanins == cleaned._fanins
            assert result._pos == cleaned._pos

    def test_architecture_steers_the_search_key(self):
        """The write-cost objective binds the machine into the cache
        identity of search results — but not of script results."""
        blocked = get_architecture("blocked")
        greedy_a = Optimizer("greedy", ENDURANCE)
        greedy_b = Optimizer("greedy", blocked)
        assert greedy_a.rewrite_key("endurance", 5) != (
            greedy_b.rewrite_key("endurance", 5)
        )
        assert greedy_a.key() == greedy_b.key()  # compile key adds arch anyway
        script_a = Optimizer("script", ENDURANCE)
        script_b = Optimizer("script", blocked)
        assert script_a.rewrite_key("endurance", 5) == (
            script_b.rewrite_key("endurance", 5)
        )
        # arch-oblivious objectives share across machines too
        depth_a = Optimizer("greedy:depth", ENDURANCE)
        depth_b = Optimizer("greedy:depth", blocked)
        assert depth_a.rewrite_key("endurance", 5) == (
            depth_b.rewrite_key("endurance", 5)
        )


class TestCacheKeying:
    def test_rewritten_keyed_by_optimizer(self):
        from repro.analysis.runner import ExperimentCache

        cache = ExperimentCache()
        mig = build_benchmark("ctrl", "tiny")
        scripted = cache.rewritten(mig, "endurance", DEFAULT_EFFORT)
        greedy = cache.rewritten(
            mig, "endurance", DEFAULT_EFFORT,
            optimizer=Optimizer("greedy", ENDURANCE),
        )
        assert scripted is not greedy
        # and a re-request of either is a pure memory hit
        assert cache.rewritten(mig, "endurance", DEFAULT_EFFORT) is scripted
        assert cache.rewritten(
            mig, "endurance", DEFAULT_EFFORT,
            optimizer=Optimizer("greedy", ENDURANCE),
        ) is greedy

    def test_compile_keyed_by_optimizer(self):
        from repro.analysis.runner import ExperimentCache
        from repro.core.manager import PRESETS

        cache = ExperimentCache()
        mig = build_benchmark("ctrl", "tiny")
        cache.compile(mig, PRESETS["ea-full"])
        assert cache.misses == 1
        cache.compile(mig, PRESETS["ea-full"], optimizer="greedy")
        assert cache.misses == 2  # distinct cache line
        cache.compile(mig, PRESETS["ea-full"], optimizer="greedy")
        assert cache.hits == 1

    def test_has_respects_optimizer(self):
        from repro.analysis.runner import ExperimentCache
        from repro.core.manager import PRESETS

        cache = ExperimentCache()
        mig = build_benchmark("ctrl", "tiny")
        cache.compile(mig, PRESETS["ea-full"])
        assert cache.has(mig, PRESETS["ea-full"])
        assert not cache.has(mig, PRESETS["ea-full"], optimizer="greedy")

    def test_disk_cache_keyed_by_optimizer(self, tmp_path):
        from repro.flow import Flow, Session

        session = Session(cache_dir=tmp_path, preset="tiny")
        scripted = (
            Flow.for_config("ea-full", session=session).source("ctrl").run()
        )
        optimized = (
            Flow.for_config("ea-full", session=session)
            .optimize("greedy")
            .source("ctrl")
            .run()
        )
        # a fresh session on the same root serves each spec its own MIG
        warm = Session(cache_dir=tmp_path, preset="tiny")
        warm_scripted = (
            Flow.for_config("ea-full", session=warm).source("ctrl").run()
        )
        warm_optimized = (
            Flow.for_config("ea-full", session=warm)
            .optimize("greedy")
            .source("ctrl")
            .run()
        )
        assert warm_scripted.stages["rewrite"].cached
        assert warm_optimized.stages["rewrite"].cached
        assert (
            warm_scripted.rewritten._fanins == scripted.rewritten._fanins
        )
        assert (
            warm_optimized.rewritten._fanins == optimized.rewritten._fanins
        )

    def test_flow_override_beats_session(self):
        from repro.flow import Flow, Session

        session = Session(preset="tiny", opt="greedy")
        result = (
            Flow.for_config("ea-full", session=session)
            .optimize("script")
            .source("ctrl")
            .run()
        )
        assert result.optimizer.label() == "script"


class TestMatrixIntegration:
    def test_run_matrix_explicit_opt_beats_session(self):
        from repro.flow import Session
        from repro.analysis.runner import run_matrix

        session = Session(preset="tiny", opt="greedy")
        explicit = run_matrix(
            ["ctrl"], ["ea-full"], preset="tiny", session=session,
            opt="script",
        )
        ambient = run_matrix(
            ["ctrl"], ["ea-full"], preset="tiny",
        )
        assert (
            explicit[0].results["ea-full"].program.instructions
            == ambient[0].results["ea-full"].program.instructions
        )

    @pytest.mark.slow
    def test_parallel_matches_serial_under_greedy(self):
        from repro.flow import Session

        names = ["ctrl", "int2float", "priority"]
        serial = Session(preset="tiny", opt="greedy").run_matrix(
            names, ["naive", "ea-full"]
        )
        fanned = Session(preset="tiny", opt="greedy").run_matrix(
            names, ["naive", "ea-full"], parallel=2
        )
        for a, b in zip(serial, fanned):
            for label in ("naive", "ea-full"):
                assert (
                    a.results[label].program.instructions
                    == b.results[label].program.instructions
                )

    def test_optimizer_sweep_points(self):
        from repro.analysis.scenarios import optimizer_sweep
        from repro.flow import Session

        session = Session(preset="tiny")
        points = optimizer_sweep(
            "ctrl", opts=("script", "greedy"), configs=("ea-full",),
            session=session,
        )
        assert [p.opt for p in points] == ["script", "greedy:write_cost"]
        by_opt = {p.opt: p for p in points}
        assert (
            by_opt["greedy:write_cost"].objective
            <= by_opt["script"].objective
        )

    def test_objective_study_rows(self):
        from repro.analysis.scenarios import optimizer_objective_study
        from repro.flow import Session

        session = Session(preset="tiny")
        rows = optimizer_objective_study(
            ["ctrl", "int2float"], session=session
        )
        assert [r.benchmark for r in rows] == ["ctrl", "int2float"]
        for row in rows:
            assert row.optimized <= row.script <= row.raw
            assert row.improved == (row.optimized < row.script)

    def test_render_optimizer_sweep_and_study(self):
        from repro.analysis.report import (
            render_objective_study,
            render_optimizer_sweep,
        )
        from repro.analysis.scenarios import (
            optimizer_objective_study,
            optimizer_sweep,
        )
        from repro.flow import Session

        session = Session(preset="tiny")
        sweep = render_optimizer_sweep(
            optimizer_sweep("ctrl", opts=("script", "greedy"), session=session)
        )
        assert "script" in sweep and "greedy:write_cost" in sweep
        study = render_objective_study(
            optimizer_objective_study(["ctrl"], session=session)
        )
        assert "strictly improved on" in study
