"""Tests for the CORDIC sine and squaring-log2 generators."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.mig.simulate import simulate
from repro.synth import cordic


def unpack(value, width):
    return [(value >> i) & 1 for i in range(width)]


def pack(bits):
    return sum(b << i for i, b in enumerate(bits))


SIN_W = 8


class TestSin:
    @pytest.fixture(scope="class")
    def mig(self):
        return cordic.build_sin(width=SIN_W)

    @settings(max_examples=40, deadline=None)
    @given(angle=st.integers(min_value=0, max_value=(1 << SIN_W) - 1))
    def test_circuit_matches_model(self, mig, angle):
        outs = simulate(mig, unpack(angle, SIN_W))
        assert pack(outs) == cordic.sin_model(angle, SIN_W)

    def test_interface(self, mig):
        assert mig.num_pis == SIN_W
        assert mig.num_pos == SIN_W + 1

    @pytest.mark.parametrize("angle_frac", [0.1, 0.25, 0.5, 0.75, 0.9])
    def test_model_approximates_sin(self, angle_frac):
        width = 12
        angle = int(angle_frac * (1 << width))
        theta = angle / (1 << width) * math.pi / 2
        got = cordic.sin_model(angle, width) / (1 << width)
        assert abs(got - math.sin(theta)) < 0.01

    def test_zero_angle(self):
        # sin(0) = 0 up to CORDIC truncation noise
        width = 10
        got = cordic.sin_model(0, width) / (1 << width)
        assert got < 0.01 or got > 1.9  # tiny positive or tiny negative wrap


LOG_W = 8
LOG_F = 4


class TestLog2:
    @pytest.fixture(scope="class")
    def mig(self):
        return cordic.build_log2(width=LOG_W, frac_bits=LOG_F)

    @settings(max_examples=50, deadline=None)
    @given(x=st.integers(min_value=0, max_value=(1 << LOG_W) - 1))
    def test_circuit_matches_model(self, mig, x):
        outs = simulate(mig, unpack(x, LOG_W))
        exp_bits = max(1, (LOG_W - 1).bit_length())
        exp = pack(outs[:exp_bits])
        digits = [o & 1 for o in outs[exp_bits:]]
        m_exp, m_digits = cordic.log2_model(x, LOG_W, LOG_F)
        assert exp == m_exp
        assert digits == m_digits

    def test_interface(self, mig):
        assert mig.num_pos == cordic.log2_output_bits(LOG_W, LOG_F)

    def test_zero_input_all_zero(self):
        assert cordic.log2_model(0, LOG_W, LOG_F) == (0, [0] * LOG_F)

    @pytest.mark.parametrize("x", [3, 10, 100, 200, 255])
    def test_model_approximates_log2(self, x):
        exp, digits = cordic.log2_model(x, LOG_W, 10)
        frac = sum(d / (1 << (i + 1)) for i, d in enumerate(digits))
        assert abs((exp + frac) - math.log2(x)) < 0.01

    def test_powers_of_two_exact(self):
        for k in range(LOG_W):
            exp, digits = cordic.log2_model(1 << k, LOG_W, LOG_F)
            assert exp == k
            assert digits == [0] * LOG_F
